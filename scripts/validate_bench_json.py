#!/usr/bin/env python3
"""Validates the BENCH_*.json files the benchmark binaries emit.

A valid file is a JSON object with a string "benchmark" name and at least
one non-empty array of flat sample records; every record field must be a
finite number, a string, or a boolean.  Known reports additionally carry
required arrays and record fields (BENCH_replication.json must show the
scaling sweep, the faulted run, and the acceptance gates).  Exits non-zero
(failing the check_bench / check_repl targets) on the first malformed file.
"""
import json
import math
import sys

# Per-benchmark schema: array key -> fields every record must carry.
REQUIRED_ARRAYS = {
    "bench_queries_access_paths": {
        "samples": ["workload", "table_rows", "indexed", "ns_per_op",
                    "rows_examined_per_op", "rows_emitted_per_op"],
        "join_samples": ["workload", "fact_rows", "cost_based", "ns_per_op",
                         "rows_examined_per_op", "index_probes_per_op"],
        "sharded_samples": ["workload", "table_rows", "shards", "ns_per_op",
                            "rows_examined_per_op", "critical_path_rows_per_op",
                            "modeled_speedup_x", "wall_ns_per_op",
                            "wall_speedup_x", "single_shard_probes",
                            "fanout_scans", "matched_rows"],
        "gates": ["name", "value", "pass"],
    },
    "bench_propagation": {
        "convergence": ["config", "flaky_permille", "seed", "hosts", "passes",
                        "converged", "soft_failures", "host_retries"],
        "quarantine": ["config", "passes", "attempts_on_down_host",
                       "breaker_opens", "breaker_skips", "probe_failures"],
        "incremental": ["config", "users", "churn_per_pass", "passes",
                        "rows_examined", "bytes_shipped", "journal_entries",
                        "patch_ships", "patch_fallbacks", "full_regens",
                        "wall_ms", "oracle_files", "oracle_ok"],
        "gates": ["name", "value", "pass"],
    },
    "bench_quota": {
        "rollup": ["config", "users", "queries", "rows_examined", "wall_ms",
                   "mismatches"],
        "sweep": ["config", "rounds", "sweeps", "skipped", "applied",
                  "ingest_deduped", "flagged", "notices_expected",
                  "notices_fired", "missed", "duplicates"],
        "gates": ["name", "value", "pass"],
    },
    "bench_replication": {
        "scaling": ["replicas", "reads", "busiest_server_reads", "read_speedup_x",
                    "ryw_failures", "converged"],
        "faulted": ["replicas", "seed", "reads", "read_speedup_x", "max_lag",
                    "ryw_checks", "ryw_failures", "snapshot_loads", "converged"],
        "failover": ["rounds", "seed", "write_attempts", "acked_writes",
                     "lost_acked_writes", "elections_started", "promotions",
                     "epochs_observed", "split_brain_epochs",
                     "unique_final_primary", "converged"],
        "gates": ["name", "value", "pass"],
    },
}


def fail(msg):
    print("validate_bench_json: " + msg, file=sys.stderr)
    sys.exit(1)


def main(paths):
    if not paths:
        fail("no BENCH_*.json files to validate")
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            fail("%s: %s" % (path, e))
        if not isinstance(doc, dict) or not isinstance(doc.get("benchmark"), str):
            fail("%s: missing string 'benchmark' key" % path)
        arrays = [(k, v) for k, v in doc.items() if isinstance(v, list)]
        if not arrays:
            fail("%s: no sample arrays" % path)
        for key, rows in arrays:
            if not rows:
                fail("%s: sample array '%s' is empty" % (path, key))
            for i, row in enumerate(rows):
                if not isinstance(row, dict) or not row:
                    fail("%s: %s[%d] is not a record" % (path, key, i))
                for field, value in row.items():
                    if isinstance(value, bool):
                        continue
                    if isinstance(value, (int, float)):
                        if not math.isfinite(value):
                            fail("%s: %s[%d].%s is not finite" % (path, key, i, field))
                    elif not isinstance(value, str):
                        fail("%s: %s[%d].%s has type %s" %
                             (path, key, i, field, type(value).__name__))
        required = REQUIRED_ARRAYS.get(doc["benchmark"], {})
        for key, fields in required.items():
            rows = doc.get(key)
            if not isinstance(rows, list) or not rows:
                fail("%s: missing required array '%s'" % (path, key))
            for i, row in enumerate(rows):
                for field in fields:
                    if field not in row:
                        fail("%s: %s[%d] lacks required field '%s'" %
                             (path, key, i, field))
    print("validate_bench_json: %d file(s) OK" % len(paths))


if __name__ == "__main__":
    main(sys.argv[1:])
