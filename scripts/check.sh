#!/bin/sh
# Tier-1 test suite under AddressSanitizer + UndefinedBehaviorSanitizer,
# plus a bench smoke mode that runs the report-generating benchmark once
# (microbenchmarks filtered out) and fails on malformed BENCH_*.json.
# Usage: scripts/check.sh [build-dir]                 (default: build-asan)
#        scripts/check.sh --bench-smoke [build-dir]   (default: build)
set -e
cd "$(dirname "$0")/.."

if [ "$1" = "--bench-smoke" ]; then
  BUILD_DIR="${2:-build}"
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_queries
  SMOKE_DIR="$BUILD_DIR/bench-smoke"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench/bench_queries"
  # An unmatchable filter skips the timing loops but still runs the report
  # paths, which write BENCH_*.json into the working directory.
  (cd "$SMOKE_DIR" && "$BENCH_BIN" --benchmark_filter='^$')
  python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json
  exit 0
fi

BUILD_DIR="${1:-build-asan}"
cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j
