#!/bin/sh
# Tier-1 test suite under AddressSanitizer + UndefinedBehaviorSanitizer,
# plus a bench smoke mode that runs the report-generating benchmark once
# (microbenchmarks filtered out) and fails on malformed BENCH_*.json, plus a
# fault smoke mode that replays the deterministic flaky-fleet sweep under the
# sanitizers and fails if the resilience layer stops converging the fleet,
# plus a replication smoke mode that runs the journal-shipping
# replication workload under the sanitizers and fails unless its scaling,
# read-your-writes, and convergence gates hold, plus a TSan smoke mode that
# builds the concurrency tests (worker pool, parallel shard fan-out, server
# batch dispatch) under ThreadSanitizer and runs them.
# A restore smoke mode exercises the checkpoint/changelog lifecycle
# (checkpoint -> rotate -> truncate -> restart -> replica bootstrap under the
# seeded fault plan) under the sanitizers and replays a recorded data
# directory through the offline mrrestore CLI.
# A DCM smoke mode runs the incremental-propagation sweep (full regeneration
# vs journal-delta patch shipping at 100k users / 0.1% churn per pass) plus
# the dedicated incremental test binary, and fails unless the row/byte
# reduction and byte-identity gates hold.
# A quota smoke mode runs the hierarchical quota suite (ingest/rollup
# accounting, grace lifecycle, notice dedup, replica replay, dbck repair)
# under the sanitizers, then the bench_quota gates (rollup row reduction,
# seeded-fault sweep vs the notice oracle) in a plain build.
# A failover smoke mode runs the quorum-write + automatic-failover suite
# (elections, epoch fencing, router replay, the randomized
# partition/flap/crash sweep) under ASan+UBSan and again under TSan, plus the
# bench_replication failover gates (zero acked writes lost, automatic
# convergence, one primary per epoch).
# Usage: scripts/check.sh [build-dir]                   (default: build-asan)
#        scripts/check.sh --bench-smoke [build-dir]     (default: build)
#        scripts/check.sh --dcm-smoke [build-dir]       (default: build)
#        scripts/check.sh --failover-smoke [build-dir] [tsan-build-dir]
#                                          (defaults: build-asan, build-tsan)
#        scripts/check.sh --fault-smoke [build-dir]     (default: build-asan)
#        scripts/check.sh --quota-smoke [build-dir] [plain-build-dir]
#                                          (defaults: build-asan, build)
#        scripts/check.sh --repl-smoke [build-dir]      (default: build-asan)
#        scripts/check.sh --restore-smoke [build-dir]   (default: build-asan)
#        scripts/check.sh --tsan-smoke [build-dir]      (default: build-tsan)
set -e
cd "$(dirname "$0")/.."

if [ "$1" = "--tsan-smoke" ]; then
  BUILD_DIR="${2:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=thread >/dev/null
  cmake --build "$BUILD_DIR" -j --target test_worker_pool --target test_shard_consistency
  # The worker pool suite runs whole; the shard suite is narrowed to the
  # tests that actually execute on multiple threads (parallel fan-out and
  # server batch dispatch) — the shard-count-invariance sweeps are serial
  # and already covered by the tier-1 run.
  "$BUILD_DIR"/tests/test_worker_pool
  "$BUILD_DIR"/tests/test_shard_consistency --gtest_filter='*Parallel*'
  exit 0
fi

if [ "$1" = "--fault-smoke" ]; then
  BUILD_DIR="${2:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_propagation
  SMOKE_DIR="$BUILD_DIR/fault-smoke"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench/bench_propagation"
  # The unmatchable filter skips the timing loops; the resilience report still
  # runs, writes BENCH_propagation.json, and exits non-zero if the flaky
  # fleet fails to converge (or converges no faster than the baseline).  The
  # incremental sweep is capped at 10k users here — the sanitizers make the
  # 100k full-regeneration arm too slow for a smoke; the full-size sweep is
  # the --dcm-smoke mode's job.
  (cd "$SMOKE_DIR" && MOIRA_BENCH_INCREMENTAL_MAX_USERS=10000 \
    "$BENCH_BIN" --benchmark_filter='^$')
  python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json
  exit 0
fi

if [ "$1" = "--dcm-smoke" ]; then
  BUILD_DIR="${2:-build}"
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_propagation --target test_dcm_incremental
  # The dedicated suite first: delta extraction, keyed patch shipping with
  # base-CRC fallback, truncation fallback, torn-write self-healing, the
  # randomized churn oracle, and replica-offloaded generation reads.
  "$BUILD_DIR"/tests/test_dcm_incremental
  SMOKE_DIR="$BUILD_DIR/dcm-smoke"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench/bench_propagation"
  # The unmatchable filter skips the timing loops; the incremental sweep
  # still runs full vs journal-delta arms at 10k and 100k users and exits
  # non-zero unless incremental mode examines >= 50x fewer rows, ships
  # >= 50x fewer bytes, and the patched fleets match a fresh full
  # regeneration byte for byte under the seeded fault plan.
  (cd "$SMOKE_DIR" && MOIRA_BENCH_INCREMENTAL_MAX_USERS=100000 \
    "$BENCH_BIN" --benchmark_filter='^$')
  python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json
  exit 0
fi

if [ "$1" = "--quota-smoke" ]; then
  BUILD_DIR="${2:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON >/dev/null
  cmake --build "$BUILD_DIR" -j --target test_quota
  # The dedicated suite: journalled ingest with per-machine sequence dedup,
  # rollup maintenance, limit validation, the grace lifecycle on the
  # simulated clock, exactly-one-notice under flapping, the dirty-bit sweep
  # skip, byte-identical replica replay, the seeded-fault telemetry oracle,
  # and dbck detection/repair of the quota invariants.
  "$BUILD_DIR"/tests/test_quota
  # The bench gates run in a plain build: the rollup arm ingests telemetry
  # for a 100k-user site, too slow under the sanitizers.
  PLAIN_DIR="${3:-build}"
  cmake -B "$PLAIN_DIR" -S . >/dev/null
  cmake --build "$PLAIN_DIR" -j --target bench_quota
  SMOKE_DIR="$PLAIN_DIR/quota-smoke"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  BENCH_BIN="$(pwd)/$PLAIN_DIR/bench/bench_quota"
  # The unmatchable filter skips the timing loops; the report still runs,
  # writes BENCH_quota.json, and exits non-zero unless the rollups examine
  # >= 50x fewer rows than the full-scan baseline (agreeing on every answer)
  # and the seeded-fault sweep fires every oracle-expected hard-limit notice
  # exactly once.
  (cd "$SMOKE_DIR" && "$BENCH_BIN" --benchmark_filter='^$')
  python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json
  exit 0
fi

if [ "$1" = "--repl-smoke" ]; then
  BUILD_DIR="${2:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_replication
  SMOKE_DIR="$BUILD_DIR/repl-smoke"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench/bench_replication"
  # The unmatchable filter skips the timing loops; the replication report
  # still runs, writes BENCH_replication.json, and exits non-zero unless the
  # read-scaling (>= 3x with 4 replicas under seeded faults), read-your-writes,
  # and byte-identical-convergence gates all hold.
  (cd "$SMOKE_DIR" && "$BENCH_BIN" --benchmark_filter='^$')
  python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json
  exit 0
fi

if [ "$1" = "--failover-smoke" ]; then
  BUILD_DIR="${2:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON >/dev/null
  cmake --build "$BUILD_DIR" -j --target test_failover --target bench_replication
  # The dedicated suite: the quorum gate and its degraded modes, heartbeat
  # elections with pre-vote and epoch fencing (split-brain regressions),
  # asymmetric partitions, torn quorum pushes, tagged router replay, DCM
  # offload over a cluster replica, and the randomized partition/flap/crash
  # sweep against the lost-acked-write oracle.
  "$BUILD_DIR"/tests/test_failover
  SMOKE_DIR="$BUILD_DIR/failover-smoke"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench/bench_replication"
  # The unmatchable filter skips the timing loops; the report still runs the
  # failover sweep and exits non-zero unless zero acked writes were lost,
  # failover converged without operator action, and every epoch had exactly
  # one writable primary.
  (cd "$SMOKE_DIR" && "$BENCH_BIN" --benchmark_filter='^$')
  python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json
  # The same suite again under ThreadSanitizer (TSan and ASan cannot share a
  # build tree, hence the second one).
  TSAN_DIR="${3:-build-tsan}"
  cmake -B "$TSAN_DIR" -S . -DMOIRA_SANITIZE=thread >/dev/null
  cmake --build "$TSAN_DIR" -j --target test_failover
  "$TSAN_DIR"/tests/test_failover
  exit 0
fi

if [ "$1" = "--restore-smoke" ]; then
  BUILD_DIR="${2:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON >/dev/null
  cmake --build "$BUILD_DIR" -j --target test_restore --target mrrestore
  # The full lifecycle suite: segment rotation and on-disk truncation
  # invariants, crash-safe checkpoint writes, recovery (including the
  # gapped-tail refusal and base_seq restoration), point-in-time replay
  # against reference dumps, and the end-to-end checkpoint -> rotate ->
  # truncate -> restart -> replica bootstrap flow under seeded faults.
  "$BUILD_DIR"/tests/test_restore
  # The point-in-time test leaves its data directory behind; replay it
  # through the offline CLI to a mid-history seq and to the end, exercising
  # the same recovery code path an operator would run.
  PIT_DIR="${TMPDIR:-/tmp}/moira-test/restore-pit"
  if [ -d "$PIT_DIR" ]; then
    "$BUILD_DIR"/examples/mrrestore "$PIT_DIR" --to-seq 5 >/dev/null
    "$BUILD_DIR"/examples/mrrestore "$PIT_DIR" --dump >/dev/null
  else
    echo "restore-smoke: missing $PIT_DIR (test_restore should have left it)" >&2
    exit 1
  fi
  echo "restore-smoke: ok"
  exit 0
fi

if [ "$1" = "--bench-smoke" ]; then
  BUILD_DIR="${2:-build}"
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_queries
  SMOKE_DIR="$BUILD_DIR/bench-smoke"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  BENCH_BIN="$(pwd)/$BUILD_DIR/bench/bench_queries"
  # An unmatchable filter skips the timing loops but still runs the report
  # paths, which write BENCH_*.json into the working directory.
  (cd "$SMOKE_DIR" && "$BENCH_BIN" --benchmark_filter='^$')
  python3 scripts/validate_bench_json.py "$SMOKE_DIR"/BENCH_*.json
  exit 0
fi

BUILD_DIR="${1:-build-asan}"
cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j
