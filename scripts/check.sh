#!/bin/sh
# Tier-1 test suite under AddressSanitizer + UndefinedBehaviorSanitizer.
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -e
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
cmake -B "$BUILD_DIR" -S . -DMOIRA_SANITIZE=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j
