// Zephyr ACL generator (paper section 5.8.2): for each controlled class, an
// acl file with the recursive membership of its access control entities, one
// entry per line.  Every zephyr server receives the same archive.
#include "src/db/exec.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

constexpr const char* kAcePrefixes[4] = {"xmt", "sub", "iws", "iui"};

}  // namespace

int32_t GenerateZephyrAcls(MoiraContext& mc, GeneratorResult* out) {
  Table* zephyr = mc.zephyr();
  From(zephyr).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    const std::string& klass = MoiraContext::StrCell(zephyr, row, "class");
    std::string contents;
    for (const char* prefix : kAcePrefixes) {
      std::string type_col = std::string(prefix) + "_type";
      std::string id_col = std::string(prefix) + "_id";
      const std::string& type = MoiraContext::StrCell(zephyr, row, type_col.c_str());
      int64_t ace_id = MoiraContext::IntCell(zephyr, row, id_col.c_str());
      contents += std::string("; ") + prefix + "\n";
      if (type == "NONE") {
        // An unrestricted function: the wildcard principal.
        contents += "*.*@*\n";
      } else if (type == "USER") {
        contents += mc.AceName(type, ace_id) + "@ATHENA.MIT.EDU\n";
      } else if (type == "LIST") {
        for (const std::string& login :
             ExpandListToLogins(mc, ace_id, /*active_only=*/true)) {
          contents += login + "@ATHENA.MIT.EDU\n";
        }
      }
    }
    out->common.Add(klass + ".acl", contents);
  });
  return MR_SUCCESS;
}

}  // namespace moira
