// Server-specific file generators (paper sections 5.7, 5.8).
//
// Each generator is the sub-program the DCM runs to extract Moira data and
// convert it to one service's format: Hesiod's 11 BIND .db files, the NFS
// credentials/quotas/directories files, the sendmail aliases file plus the
// mailhub password file, and the Zephyr ACL files.  A generator produces an
// archive payload per target (a common one, plus per-host overrides for
// services like NFS whose files differ per server).
#ifndef MOIRA_SRC_DCM_GENERATORS_H_
#define MOIRA_SRC_DCM_GENERATORS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/context.h"
#include "src/dcm/delta.h"
#include "src/update/archive.h"
#include "src/update/patch.h"

namespace moira {

struct GeneratorResult {
  // Payload shipped to every host of the service...
  Archive common;
  // ...unless the host has an override here (keyed by canonical machine
  // name).  NFS partition files and per-host credentials land here.
  std::map<std::string, Archive> per_host;

  // The archive that will be shipped to `host`.
  const Archive& ForHost(const std::string& host) const {
    auto it = per_host.find(host);
    return it != per_host.end() ? it->second : common;
  }
};

// Returns MR_SUCCESS and fills `out`, or an error code.  Generators do not
// decide MR_NO_CHANGE themselves; the DCM compares table modtimes first.
using GeneratorFn = std::function<int32_t(MoiraContext&, GeneratorResult*)>;

int32_t GenerateHesiod(MoiraContext& mc, GeneratorResult* out);
int32_t GenerateNfs(MoiraContext& mc, GeneratorResult* out);
int32_t GenerateMail(MoiraContext& mc, GeneratorResult* out);
int32_t GenerateZephyrAcls(MoiraContext& mc, GeneratorResult* out);

// --- incremental patch builders (DESIGN.md "Incremental propagation") ---

// Keyed edits for one archive member, before the DCM resolves them against
// the staged bytes (computes CRCs, drops no-op members, updates the staged
// archive).
struct MemberEdit {
  KeyRule rule = KeyRule::kFirstToken;
  bool replace = false;       // whole-file rebuild (unkeyed members)
  std::string replacement;    // contents when replace is set
  std::vector<PatchOp> ops;   // keyed edits otherwise
};

// The edits a delta plan implies for one service: edits against the common
// archive plus per-host edits (keyed by canonical machine name, for services
// like NFS whose files differ per server).
struct ServicePatch {
  std::map<std::string, MemberEdit> common;
  std::map<std::string, std::map<std::string, MemberEdit>> per_host;

  bool empty() const { return common.empty() && per_host.empty(); }
};

// Recomputes the blocks of every dirty record in `plan` against the current
// database state and emits the implied edits.  Builders see the staged
// result only to know which per-host archives exist; the DCM diffs the edits
// against the staged bytes afterwards.  Any nonzero return escalates the
// service to a full regeneration.
using PatchBuilderFn = std::function<int32_t(
    MoiraContext&, const DeltaPlan&, const GeneratorResult&, ServicePatch*)>;

int32_t BuildHesiodPatch(MoiraContext& mc, const DeltaPlan& plan,
                         const GeneratorResult& staged, ServicePatch* out);
int32_t BuildNfsPatch(MoiraContext& mc, const DeltaPlan& plan,
                      const GeneratorResult& staged, ServicePatch* out);
int32_t BuildMailPatch(MoiraContext& mc, const DeltaPlan& plan,
                       const GeneratorResult& staged, ServicePatch* out);

// --- helpers shared by the generators (exposed for tests) ---

// Recursively expands a list to its USER member logins (active users only if
// `active_only`); STRING members are returned verbatim.
std::vector<std::string> ExpandListToLogins(MoiraContext& mc, int64_t list_id,
                                            bool active_only);

// The (login, gid) group pairs of every active group list a user belongs to,
// directly or through sub-lists.
struct GroupMembership {
  std::string group_name;
  int64_t gid = 0;
};
std::map<int64_t, std::vector<GroupMembership>> BuildUserGroupMap(MoiraContext& mc);

// The same pairs for one user, recomputed from the containing-list closure.
// Matches BuildUserGroupMap's per-user vector exactly (ascending list id).
std::vector<GroupMembership> UserGroupsFor(MoiraContext& mc, int64_t users_id);

// A standard /etc/passwd line for a users-relation row.
std::string PasswdLine(MoiraContext& mc, size_t user_row);

}  // namespace moira

#endif  // MOIRA_SRC_DCM_GENERATORS_H_
