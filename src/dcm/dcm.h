// The Data Control Manager (paper section 5.7).
//
// Invoked regularly by cron (here: RunOnce()), the DCM scans the services
// table for services that are enabled, error-free, and due; generates their
// server files (skipping generation with MR_NO_CHANGE when no relevant table
// changed since dfgen); then scans the serverhosts table and pushes the
// generated files to every enabled, error-free host that has not been updated
// since the files were generated (or has override set), via the update
// protocol of section 5.9.  Hard errors raise a zephyrgram on class MOIRA
// instance DCM.
#ifndef MOIRA_SRC_DCM_DCM_H_
#define MOIRA_SRC_DCM_DCM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/context.h"
#include "src/dcm/generators.h"
#include "src/dcm/locks.h"
#include "src/server/journal.h"
#include "src/update/sim_host.h"
#include "src/update/update_client.h"
#include "src/zephyrd/zephyr_bus.h"

namespace moira {

// The principal the DCM authenticates as for host updates.
inline constexpr char kDcmPrincipal[] = "moira.dcm";

// serverhosts.breaker states, persisted across DCM passes (and rendered by
// the privileged get_server_host_health query).
inline constexpr int64_t kBreakerClosed = 0;
inline constexpr int64_t kBreakerOpen = 1;
inline constexpr int64_t kBreakerHalfOpen = 2;

struct DcmServiceConfig {
  GeneratorFn generator;
  // Tables whose modification invalidates this service's generated files.
  std::vector<std::string> relevant_tables;
  // The install instruction sequence shipped to the hosts (the "script"
  // column names it; the DCM owns the content, one per service).
  std::string script;
  // Incremental mode (journal attached): recomputes the blocks of the dirty
  // records in a delta plan.  Null: the service falls back to
  // regenerate-and-diff, still shipping patches but paying full-scan reads.
  PatchBuilderFn patch_builder;
  // Whether a delta plan touches this service at all; a pass whose plan does
  // not affect the service skips generation entirely (the seq high-water
  // mark still advances).  Null: any journal entry counts as relevant.
  std::function<bool(const DeltaPlan&)> delta_affected;
};

struct DcmRunSummary {
  bool ran = false;             // false if /etc/nodcm or dcm_enable=0
  int services_considered = 0;
  int services_generated = 0;   // generators that produced fresh files
  int services_no_change = 0;   // skipped via MR_NO_CHANGE
  int generation_hard_errors = 0;
  int hosts_updated = 0;
  int host_soft_failures = 0;
  int host_hard_failures = 0;
  int64_t bytes_propagated = 0;
  int files_generated = 0;      // total archive members across fresh payloads
  int propagations = 0;         // file deliveries: members x hosts reached
  // Resilience-layer counters (DESIGN.md).
  int host_retries = 0;         // in-pass retry attempts beyond the first
  int update_timeouts = 0;      // updates that ended on a phase deadline
  int breaker_opens = 0;        // hosts quarantined this pass
  int breaker_skips = 0;        // update attempts saved by open breakers
  int probe_successes = 0;      // half-open probes that closed the breaker
  int probe_failures = 0;       // half-open probes that re-opened it
  int directory_outages = 0;    // updates deferred because Hesiod was down
  // Incremental-propagation counters (journal mode; DESIGN.md).
  int services_patched = 0;       // passes that staged a keyed/diff patch
  int services_delta_skipped = 0; // journal showed no relevant mutations
  int full_regens = 0;            // journal-mode passes regenerated fully
  int truncation_fallbacks = 0;   // full regens forced by a truncated journal
  int patch_ships = 0;            // host updates delivered as patches
  int patch_fallbacks = 0;        // base-CRC refusals -> full archive reship
  int64_t journal_entries_examined = 0;
  int64_t generation_rows_primary = 0;  // generation reads on the primary
  int64_t generation_rows_replica = 0;  // generation reads on the replica
};

// Knobs for the DCM's resilience layer: the in-pass retry policy handed to
// the UpdateClient and the per-host circuit breaker.  Disabled reproduces the
// paper's one-attempt-per-pass behaviour exactly.
// Per-service-class breaker overrides: a replicated service whose hosts must
// converge quickly can trip faster and cool down sooner than a bulk file
// service.  Zero fields fall back to the global knobs.
struct BreakerTunables {
  int threshold = 0;          // 0 -> DcmResilienceConfig::breaker_threshold
  UnixTime cooldown = 0;      // 0 -> DcmResilienceConfig::breaker_cooldown
};

struct DcmResilienceConfig {
  bool enabled = true;
  // Consecutive soft failures (across passes) that open a host's breaker.
  int breaker_threshold = 3;
  // How long an open breaker quarantines its host before a half-open probe.
  UnixTime breaker_cooldown = kSecondsPerHour;
  // Overrides keyed by uppercase service name.
  std::map<std::string, BreakerTunables> per_service;
  RetryPolicy retry;            // default: one attempt, no in-pass retries
  UpdateDeadlines deadlines;    // default: unbounded phases
};

class Dcm {
 public:
  Dcm(MoiraContext* mc, KerberosRealm* realm, ZephyrBus* zephyr, HostDirectory* hosts);

  // Registers the generator, incremental-check table list, and install
  // script for a service name (uppercase, matching the servers relation).
  void ConfigureService(const std::string& service, DcmServiceConfig config);

  // The /etc/nodcm disable file (paper section 5.7.1).
  void set_nodcm(bool nodcm) { nodcm_ = nodcm; }

  // Installs the resilience configuration (retry policy, phase deadlines,
  // breaker thresholds).  May be called between runs to reconfigure.
  void set_resilience(const DcmResilienceConfig& config);
  const DcmResilienceConfig& resilience() const { return resilience_; }

  // Access to the update client, e.g. to install a sleep hook that advances
  // a simulated clock during retry backoffs.
  UpdateClient& update_client() { return update_client_; }

  // Attaches the server journal: generation switches from table-modtime
  // checks to journal-delta extraction (servers.last_gen_seq records each
  // service's consumed prefix), and host updates ship keyed patches with a
  // full-archive fallback (DESIGN.md "Incremental propagation").  Null
  // detaches and restores the legacy behaviour.
  void AttachJournal(const Journal* journal) { journal_ = journal; }

  // Routes generation reads through a replica context.  At the start of each
  // pass `catch_up` is invoked with the pass's high-water journal seq and
  // must return true once the replica has applied at least that much; on
  // false the pass falls back to reading the primary.  Null detaches.
  void SetReadSource(MoiraContext* replica,
                     std::function<bool(uint64_t)> catch_up);

  // One cron-invoked DCM pass over all services and hosts.
  DcmRunSummary RunOnce();

  // The generated payload currently staged for a service (empty name -> the
  // common archive).  Exposed for tests and benches.
  const GeneratorResult* StagedPayload(const std::string& service) const;

  LockManager& locks() { return locks_; }

 private:
  struct ServiceRow;

  // One host's shippable patch bytes plus its file count (for propagation
  // accounting).
  struct HostPatch {
    std::string bytes;
    int files = 0;
  };
  // The patch staged by the last generating pass of a service.  Hosts whose
  // lts matches base_dfgen (they installed the previous payload) take the
  // patch; everyone else gets the full archive.
  struct PatchState {
    UnixTime base_dfgen = 0;
    std::string script;  // applypatch + the service script's exec tail
    // Keyed by machine name; "" holds the common-archive patch.  A machine
    // present in the staged per-host map but untouched by the pass maps to
    // an empty (bump-only) patch.
    std::map<std::string, HostPatch> per_host;
  };

  bool GenerationDue(const ServiceRow& service) const;
  bool TablesChangedSince(const DcmServiceConfig& config, UnixTime since) const;
  void GeneratePhase(const ServiceRow& service, DcmRunSummary* summary);
  // Journal-mode generation: delta extraction, patch build, fallbacks.
  void JournalGenerate(const ServiceRow& service, const DcmServiceConfig& config,
                       UnixTime now, DcmRunSummary* summary);
  void HostScanPhase(const ServiceRow& service, DcmRunSummary* summary);
  void ReportHardError(const std::string& where, const std::string& message);

  // The context generation reads go through (the replica when a read source
  // is attached and caught up, the primary otherwise).
  MoiraContext& GenContext();
  // Adds the rows examined in `gen`'s database since `rows_before` to the
  // matching generation-read counter.
  void ChargeGenerationRows(MoiraContext& gen, int64_t rows_before,
                            DcmRunSummary* summary);

  // Applies keyed/replace edits to `archive` in place and appends a
  // FilePatch per member whose bytes changed.  Returns false when an edit
  // references a missing member (caller escalates to a full regeneration).
  bool ResolveEdits(const std::map<std::string, MemberEdit>& edits,
                    const std::string& script, Archive* archive,
                    ArchivePatch* out);

  MoiraContext* mc_;
  ZephyrBus* zephyr_;
  HostDirectory* hosts_;
  UpdateClient update_client_;
  LockManager locks_;
  std::map<std::string, DcmServiceConfig> configs_;
  std::map<std::string, GeneratorResult> staged_;
  std::map<std::string, PatchState> patch_state_;
  DcmResilienceConfig resilience_;
  bool nodcm_ = false;

  const Journal* journal_ = nullptr;
  MoiraContext* read_mc_ = nullptr;
  std::function<bool(uint64_t)> catch_up_;
  bool read_source_ok_ = false;   // this pass: replica caught up to high water
  uint64_t pass_high_seq_ = 0;    // journal last_seq at pass start
};

// Installs the four standard Athena services' generators and scripts
// (HESIOD, NFS, SMTP, ZEPHYR) with the relevant-table lists used for
// incremental generation.
void ConfigureStandardServices(Dcm* dcm);

}  // namespace moira

#endif  // MOIRA_SRC_DCM_DCM_H_
