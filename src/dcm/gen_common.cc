#include <set>

#include "src/core/acl.h"
#include "src/db/exec.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Recursive expansion with cycle protection.
void ExpandInto(MoiraContext& mc, int64_t list_id, bool active_only,
                std::set<int64_t>* seen_lists, std::set<std::string>* out) {
  if (!seen_lists->insert(list_id).second) {
    return;
  }
  Table* members = mc.members();
  int type_col = members->ColumnIndex("member_type");
  int id_col = members->ColumnIndex("member_id");
  for (size_t row : From(members).WhereEq("list_id", Value(list_id)).Rows()) {
    const std::string& type = members->Cell(row, type_col).AsString();
    int64_t member_id = members->Cell(row, id_col).AsInt();
    if (type == "USER") {
      RowRef user = mc.ExactOne(mc.users(), "users_id", Value(member_id), MR_USER);
      if (user.code != MR_SUCCESS) {
        continue;
      }
      if (active_only &&
          MoiraContext::IntCell(mc.users(), user.row, "status") != kUserActive) {
        continue;
      }
      out->insert(MoiraContext::StrCell(mc.users(), user.row, "login"));
    } else if (type == "LIST") {
      ExpandInto(mc, member_id, active_only, seen_lists, out);
    } else if (type == "STRING") {
      out->insert(mc.StringById(member_id));
    }
  }
}

}  // namespace

std::vector<std::string> ExpandListToLogins(MoiraContext& mc, int64_t list_id,
                                            bool active_only) {
  std::set<int64_t> seen;
  std::set<std::string> logins;
  ExpandInto(mc, list_id, active_only, &seen, &logins);
  return {logins.begin(), logins.end()};
}

std::map<int64_t, std::vector<GroupMembership>> BuildUserGroupMap(MoiraContext& mc) {
  std::map<int64_t, std::vector<GroupMembership>> out;
  Table* lists = mc.list();
  int id_col = lists->ColumnIndex("list_id");
  int gid_col = lists->ColumnIndex("gid");
  int name_col = lists->ColumnIndex("name");
  // For each active group list, expand to users once, then invert.  The
  // expansion runs in ascending list-id order so each user's membership
  // vector matches UserGroupsFor's closure-derived order exactly — the
  // incremental patch builders recompute single users and must reproduce the
  // full build byte for byte.
  Table* users = mc.users();
  int login_col = users->ColumnIndex("login");
  int users_id_col = users->ColumnIndex("users_id");
  std::map<std::string, int64_t> login_to_id;
  From(users).Emit([&](const std::vector<size_t>& rows) {
    login_to_id[users->Cell(rows[0], login_col).AsString()] =
        users->Cell(rows[0], users_id_col).AsInt();
  });
  std::map<int64_t, GroupMembership> group_lists;  // list_id -> (name, gid)
  From(lists)
      .WhereNe("active", Value(int64_t{0}))
      .WhereNe("grouplist", Value(int64_t{0}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        group_lists[lists->Cell(row, id_col).AsInt()] =
            GroupMembership{lists->Cell(row, name_col).AsString(),
                            lists->Cell(row, gid_col).AsInt()};
      });
  for (const auto& [list_id, membership] : group_lists) {
    for (const std::string& login :
         ExpandListToLogins(mc, list_id, /*active_only=*/true)) {
      auto it = login_to_id.find(login);
      if (it != login_to_id.end()) {
        out[it->second].push_back(membership);
      }
    }
  }
  return out;
}

std::vector<GroupMembership> UserGroupsFor(MoiraContext& mc, int64_t users_id) {
  std::vector<GroupMembership> out;
  Table* lists = mc.list();
  // The containing-list closure is already ascending by list id, mirroring
  // BuildUserGroupMap's expansion order.
  for (int64_t list_id : mc.ContainingListClosure("USER", users_id)) {
    RowRef list = mc.ListById(list_id);
    if (list.code != MR_SUCCESS ||
        MoiraContext::IntCell(lists, list.row, "active") == 0 ||
        MoiraContext::IntCell(lists, list.row, "grouplist") == 0) {
      continue;
    }
    out.push_back(GroupMembership{MoiraContext::StrCell(lists, list.row, "name"),
                                  MoiraContext::IntCell(lists, list.row, "gid")});
  }
  return out;
}

std::string PasswdLine(MoiraContext& mc, size_t user_row) {
  const Table* users = mc.users();
  const std::string& login = MoiraContext::StrCell(users, user_row, "login");
  std::string line = login;
  line += ":*:";
  line += std::to_string(MoiraContext::IntCell(users, user_row, "uid"));
  line += ":101:";  // the default workstation group, as in the paper's examples
  line += MoiraContext::StrCell(users, user_row, "fullname");
  line += ",,,,:/mit/";
  line += login;
  line += ":";
  line += MoiraContext::StrCell(users, user_row, "shell");
  return line;
}

}  // namespace moira
