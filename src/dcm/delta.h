// Journal-delta extraction for incremental DCM propagation.
//
// The journal's monotone sequence numbers name exactly which mutations
// happened since a service's last successful generation pass
// (servers.last_gen_seq).  ExtractDeltaPlan folds that entry range into the
// set of *records* whose generated blocks may have changed — dirty logins,
// dirty list names, dirty (filesystem, login) quota pairs, and dirty-file
// flags for the small rebuild-whole-file members — plus per-service (or
// global) full-regeneration escalations for the rare mutations whose reach
// cannot be bounded after the fact (renames, deletes with cascades, uid
// changes).  Unknown queries escalate to a full regeneration of everything:
// the plan is safe by default.
#ifndef MOIRA_SRC_DCM_DELTA_H_
#define MOIRA_SRC_DCM_DELTA_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/server/journal.h"

namespace moira {

struct DeltaPlan {
  // Every service must regenerate from scratch (rename/delete-class ops).
  bool full_all = false;
  // Specific services that must regenerate from scratch.
  std::set<std::string> full_services;

  // Logins whose per-user blocks must be recomputed (passwd/uid/pobox/
  // grplist entries, mail route + passwd line, credentials line).
  std::set<std::string> users;
  // List names whose per-list blocks must be recomputed (group/gid entries,
  // alias + owner-alias lines).
  std::set<std::string> lists;
  // (filesystem label, login) pairs whose quota blocks must be recomputed.
  std::set<std::pair<std::string, std::string>> quotas;

  // Small files rebuilt whole (and shipped as replacements) when dirty.
  bool clusters_dirty = false;   // hesiod cluster.db
  bool filsys_dirty = false;     // hesiod filsys.db
  bool printcaps_dirty = false;  // hesiod printcap.db
  bool services_dirty = false;   // hesiod service.db
  bool sloc_dirty = false;       // hesiod sloc.db
  // Zephyr ACLs are few and expansion-heavy: any relevant mutation triggers
  // a full ACL regeneration, diffed against the staged files for shipping.
  bool zephyr_dirty = false;
  // Quota accounting state (quotausage/quotarollup/nfsquota limits) changed
  // in this range.  No generated-file footprint of its own, but the quota
  // sweep uses it to skip idle passes (src/quota/quota.cc).
  bool quota_state_dirty = false;

  size_t entries = 0;  // journal entries folded into this plan

  bool FullFor(const std::string& service) const {
    return full_all || full_services.contains(service);
  }
};

// Folds a journal entry range into a DeltaPlan.  `mc` is only read (to
// resolve membership expansions and containing lists after the fact); pass
// the same context the patch builders will read from.
DeltaPlan ExtractDeltaPlan(MoiraContext& mc,
                           const std::vector<JournalEntry>& entries);

// Executes a mutation query through the registry and journals it on success,
// mirroring the Moira server's dispatch path (for benches and tests that
// drive churn without a wire server).  Returns the query's code.
int32_t ExecuteJournaled(MoiraContext& mc, Journal* journal,
                         std::string_view principal, std::string_view client,
                         std::string_view query,
                         const std::vector<std::string>& args,
                         const TupleSink& emit = [](Tuple) {});

}  // namespace moira

#endif  // MOIRA_SRC_DCM_DELTA_H_
