// NFS generator (paper section 5.8.2): per-server partition .dirs and
// .quotas files plus the credentials file.  Unlike Hesiod, every NFS server
// receives different partition files, so the payloads are per-host.
#include <map>

#include "src/common/strutil.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Flattens a partition directory ("/u1") into a file-name stem ("u1").
std::string PartitionStem(std::string_view dir) {
  std::string out;
  for (char c : dir) {
    if (c == '/') {
      if (!out.empty()) {
        out += '_';
      }
    } else {
      out += c;
    }
  }
  return out.empty() ? "root" : out;
}

// Builds the credentials contents for every active user (the master file),
// or for the membership of `list_id` if non-negative.
std::string BuildCredentials(MoiraContext& mc,
                             const std::map<int64_t, std::vector<GroupMembership>>& groups,
                             int64_t list_id) {
  std::string out;
  Table* users = mc.users();
  int status_col = users->ColumnIndex("status");
  int users_id_col = users->ColumnIndex("users_id");
  std::map<std::string, bool> allowed;
  bool restrict = list_id >= 0;
  if (restrict) {
    for (const std::string& login : ExpandListToLogins(mc, list_id, /*active_only=*/true)) {
      allowed[login] = true;
    }
  }
  users->Scan([&](size_t row, const Row& r) {
    if (r[status_col].AsInt() != kUserActive) {
      return true;
    }
    const std::string& login = MoiraContext::StrCell(users, row, "login");
    if (restrict && !allowed.contains(login)) {
      return true;
    }
    out += login;
    out += ":";
    out += std::to_string(MoiraContext::IntCell(users, row, "uid"));
    auto it = groups.find(r[users_id_col].AsInt());
    if (it != groups.end()) {
      for (const GroupMembership& m : it->second) {
        out += ":" + std::to_string(m.gid);
      }
    }
    out += "\n";
    return true;
  });
  return out;
}

}  // namespace

int32_t GenerateNfs(MoiraContext& mc, GeneratorResult* out) {
  std::map<int64_t, std::vector<GroupMembership>> groups = BuildUserGroupMap(mc);
  std::string master_credentials = BuildCredentials(mc, groups, -1);

  // Index filesystems and quotas by physical partition.
  Table* filesys = mc.filesys();
  Table* quota = mc.nfsquota();
  Table* phys = mc.nfsphys();
  Table* users = mc.users();
  std::map<int64_t, std::string> dirs_by_phys;
  std::map<int64_t, std::string> quotas_by_phys;

  int fs_phys_col = filesys->ColumnIndex("phys_id");
  int fs_create_col = filesys->ColumnIndex("createflg");
  filesys->Scan([&](size_t row, const Row& r) {
    if (MoiraContext::StrCell(filesys, row, "type") != "NFS" ||
        r[fs_create_col].AsInt() == 0) {
      return true;
    }
    // directory name, owning uid, owning gid, locker type.
    int64_t owner_id = MoiraContext::IntCell(filesys, row, "owner");
    int64_t owners_list = MoiraContext::IntCell(filesys, row, "owners");
    RowRef owner = mc.ExactOne(users, "users_id", Value(owner_id), MR_USER);
    int64_t uid = owner.code == MR_SUCCESS ? MoiraContext::IntCell(users, owner.row, "uid")
                                           : 0;
    RowRef group = mc.ExactOne(mc.list(), "list_id", Value(owners_list), MR_LIST);
    int64_t gid = group.code == MR_SUCCESS
                      ? MoiraContext::IntCell(mc.list(), group.row, "gid")
                      : 0;
    dirs_by_phys[r[fs_phys_col].AsInt()] +=
        MoiraContext::StrCell(filesys, row, "name") + " " + std::to_string(uid) + " " +
        std::to_string(gid) + " " + MoiraContext::StrCell(filesys, row, "lockertype") + "\n";
    return true;
  });

  int q_phys_col = quota->ColumnIndex("phys_id");
  int q_user_col = quota->ColumnIndex("users_id");
  int q_quota_col = quota->ColumnIndex("quota");
  quota->Scan([&](size_t, const Row& r) {
    RowRef user = mc.ExactOne(users, "users_id", Value(r[q_user_col].AsInt()), MR_USER);
    int64_t uid = user.code == MR_SUCCESS ? MoiraContext::IntCell(users, user.row, "uid") : 0;
    quotas_by_phys[r[q_phys_col].AsInt()] +=
        std::to_string(uid) + " " + std::to_string(r[q_quota_col].AsInt()) + "\n";
    return true;
  });

  // Assemble one archive per NFS serverhost.
  Table* sh = mc.serverhosts();
  int sh_service_col = sh->ColumnIndex("service");
  int sh_mach_col = sh->ColumnIndex("mach_id");
  int sh_value3_col = sh->ColumnIndex("value3");
  for (size_t row :
       sh->Match({Condition{sh_service_col, Condition::Op::kEq, Value("NFS")}})) {
    int64_t mach_id = sh->Cell(row, sh_mach_col).AsInt();
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
    if (mach.code != MR_SUCCESS) {
      continue;
    }
    const std::string& machine_name = MoiraContext::StrCell(mc.machine(), mach.row, "name");
    Archive archive;
    // Per-partition files for every partition exported by this machine.
    int phys_mach_col = phys->ColumnIndex("mach_id");
    for (size_t p :
         phys->Match({Condition{phys_mach_col, Condition::Op::kEq, Value(mach_id)}})) {
      int64_t phys_id = MoiraContext::IntCell(phys, p, "nfsphys_id");
      std::string stem = PartitionStem(MoiraContext::StrCell(phys, p, "dir"));
      archive.Add(stem + ".dirs", dirs_by_phys[phys_id]);
      archive.Add(stem + ".quotas", quotas_by_phys[phys_id]);
    }
    // Which credentials file this server gets is determined by value3: blank
    // means all active users, otherwise the named list's membership.
    const std::string& value3 = sh->Cell(row, sh_value3_col).AsString();
    if (value3.empty()) {
      archive.Add("credentials", master_credentials);
    } else {
      RowRef list = mc.ListByName(value3);
      archive.Add("credentials",
                  list.code == MR_SUCCESS
                      ? BuildCredentials(mc, groups,
                                         MoiraContext::IntCell(mc.list(), list.row,
                                                               "list_id"))
                      : std::string());
    }
    out->per_host[machine_name] = std::move(archive);
  }
  return MR_SUCCESS;
}

}  // namespace moira
