// NFS generator (paper section 5.8.2): per-server partition .dirs and
// .quotas files plus the credentials file.  Unlike Hesiod, every NFS server
// receives different partition files, so the payloads are per-host.
//
// credentials (keyed by login) and *.quotas (keyed by uid) go through
// KeyedFile for the incremental patch path; *.dirs changes only on
// filesystem-topology mutations, which escalate to a full NFS regeneration.
#include <map>
#include <set>

#include "src/common/strutil.h"
#include "src/db/exec.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Flattens a partition directory ("/u1") into a file-name stem ("u1").
std::string PartitionStem(std::string_view dir) {
  std::string out;
  for (char c : dir) {
    if (c == '/') {
      if (!out.empty()) {
        out += '_';
      }
    } else {
      out += c;
    }
  }
  return out.empty() ? "root" : out;
}

// One user's credentials line: login:uid followed by every group gid.
std::string CredentialLine(MoiraContext& mc, size_t user_row,
                           const std::vector<GroupMembership>& groups) {
  std::string out = MoiraContext::StrCell(mc.users(), user_row, "login");
  out += ":";
  out += std::to_string(MoiraContext::IntCell(mc.users(), user_row, "uid"));
  for (const GroupMembership& m : groups) {
    out += ":" + std::to_string(m.gid);
  }
  out += "\n";
  return out;
}

// Builds the credentials contents for every active user (the master file),
// or for the membership of `list_id` if non-negative.
std::string BuildCredentials(MoiraContext& mc,
                             const std::map<int64_t, std::vector<GroupMembership>>& groups,
                             int64_t list_id) {
  KeyedFile out(KeyRule::kUpToColon);
  Table* users = mc.users();
  int users_id_col = users->ColumnIndex("users_id");
  std::map<std::string, bool> allowed;
  bool restrict = list_id >= 0;
  if (restrict) {
    for (const std::string& login : ExpandListToLogins(mc, list_id, /*active_only=*/true)) {
      allowed[login] = true;
    }
  }
  static const std::vector<GroupMembership> kNoGroups;
  From(users)
      .WhereEq("status", Value(int64_t{kUserActive}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        if (restrict &&
            !allowed.contains(MoiraContext::StrCell(users, row, "login"))) {
          return;
        }
        auto it = groups.find(users->Cell(row, users_id_col).AsInt());
        out.AppendLine(
            CredentialLine(mc, row, it != groups.end() ? it->second : kNoGroups));
      });
  return out.Serialize();
}

// The quota block one uid owns in a partition's .quotas file: that user's
// quota rows on the partition, in storage order (matching the full build's
// whole-table scan).
std::string QuotaBlock(MoiraContext& mc, int64_t users_id, int64_t uid,
                       int64_t phys_id) {
  std::string out;
  Table* quota = mc.nfsquota();
  int q_quota_col = quota->ColumnIndex("quota");
  for (size_t row : From(quota)
                        .WhereEq("users_id", Value(users_id))
                        .WhereEq("phys_id", Value(phys_id))
                        .Rows()) {
    out += std::to_string(uid) + " " +
           std::to_string(quota->Cell(row, q_quota_col).AsInt()) + "\n";
  }
  return out;
}

void Upsert(MemberEdit* edit, std::string key, std::string block) {
  edit->ops.push_back(PatchOp{PatchOp::kUpsert, std::move(key), std::move(block)});
}

void Delete(MemberEdit* edit, std::string key) {
  edit->ops.push_back(PatchOp{PatchOp::kDelete, std::move(key), ""});
}

}  // namespace

int32_t GenerateNfs(MoiraContext& mc, GeneratorResult* out) {
  std::map<int64_t, std::vector<GroupMembership>> groups = BuildUserGroupMap(mc);
  std::string master_credentials = BuildCredentials(mc, groups, -1);

  // Index filesystems and quotas by physical partition.
  Table* filesys = mc.filesys();
  Table* quota = mc.nfsquota();
  Table* phys = mc.nfsphys();
  Table* users = mc.users();
  std::map<int64_t, std::string> dirs_by_phys;
  std::map<int64_t, KeyedFile> quotas_by_phys;

  int fs_phys_col = filesys->ColumnIndex("phys_id");
  From(filesys)
      .WhereEq("type", Value("NFS"))
      .WhereNe("createflg", Value(int64_t{0}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        // directory name, owning uid, owning gid, locker type.
        int64_t owner_id = MoiraContext::IntCell(filesys, row, "owner");
        int64_t owners_list = MoiraContext::IntCell(filesys, row, "owners");
        RowRef owner = mc.ExactOne(users, "users_id", Value(owner_id), MR_USER);
        int64_t uid =
            owner.code == MR_SUCCESS ? MoiraContext::IntCell(users, owner.row, "uid") : 0;
        RowRef group = mc.ExactOne(mc.list(), "list_id", Value(owners_list), MR_LIST);
        int64_t gid = group.code == MR_SUCCESS
                          ? MoiraContext::IntCell(mc.list(), group.row, "gid")
                          : 0;
        dirs_by_phys[filesys->Cell(row, fs_phys_col).AsInt()] +=
            MoiraContext::StrCell(filesys, row, "name") + " " + std::to_string(uid) + " " +
            std::to_string(gid) + " " + MoiraContext::StrCell(filesys, row, "lockertype") +
            "\n";
      });

  int q_phys_col = quota->ColumnIndex("phys_id");
  int q_user_col = quota->ColumnIndex("users_id");
  int q_quota_col = quota->ColumnIndex("quota");
  From(quota).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    RowRef user =
        mc.ExactOne(users, "users_id", Value(quota->Cell(row, q_user_col).AsInt()), MR_USER);
    int64_t uid = user.code == MR_SUCCESS ? MoiraContext::IntCell(users, user.row, "uid") : 0;
    quotas_by_phys[quota->Cell(row, q_phys_col).AsInt()].AppendLine(
        std::to_string(uid) + " " + std::to_string(quota->Cell(row, q_quota_col).AsInt()) +
        "\n");
  });

  // Assemble one archive per NFS serverhost.
  Table* sh = mc.serverhosts();
  int sh_mach_col = sh->ColumnIndex("mach_id");
  int sh_value3_col = sh->ColumnIndex("value3");
  for (size_t row : From(sh).WhereEq("service", Value("NFS")).Rows()) {
    int64_t mach_id = sh->Cell(row, sh_mach_col).AsInt();
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
    if (mach.code != MR_SUCCESS) {
      continue;
    }
    const std::string& machine_name = MoiraContext::StrCell(mc.machine(), mach.row, "name");
    Archive archive;
    // Per-partition files for every partition exported by this machine.
    for (size_t p : From(phys).WhereEq("mach_id", Value(mach_id)).Rows()) {
      int64_t phys_id = MoiraContext::IntCell(phys, p, "nfsphys_id");
      std::string stem = PartitionStem(MoiraContext::StrCell(phys, p, "dir"));
      archive.Add(stem + ".dirs", dirs_by_phys[phys_id]);
      archive.Add(stem + ".quotas", quotas_by_phys[phys_id].Serialize());
    }
    // Which credentials file this server gets is determined by value3: blank
    // means all active users, otherwise the named list's membership.
    const std::string& value3 = sh->Cell(row, sh_value3_col).AsString();
    if (value3.empty()) {
      archive.Add("credentials", master_credentials);
    } else {
      RowRef list = mc.ListByName(value3);
      archive.Add("credentials",
                  list.code == MR_SUCCESS
                      ? BuildCredentials(mc, groups,
                                         MoiraContext::IntCell(mc.list(), list.row,
                                                               "list_id"))
                      : std::string());
    }
    out->per_host[machine_name] = std::move(archive);
  }
  return MR_SUCCESS;
}

int32_t BuildNfsPatch(MoiraContext& mc, const DeltaPlan& plan,
                      const GeneratorResult& staged, ServicePatch* out) {
  // Per-user credentials edits, fanned out to every NFS serverhost (each may
  // restrict its credentials file to one list's membership via value3).
  if (!plan.users.empty()) {
    Table* sh = mc.serverhosts();
    int sh_mach_col = sh->ColumnIndex("mach_id");
    int sh_value3_col = sh->ColumnIndex("value3");
    for (size_t row : From(sh).WhereEq("service", Value("NFS")).Rows()) {
      RowRef mach = mc.ExactOne(mc.machine(), "mach_id",
                                Value(sh->Cell(row, sh_mach_col).AsInt()), MR_MACHINE);
      if (mach.code != MR_SUCCESS) {
        continue;  // the full build skips this serverhost too
      }
      const std::string& machine_name =
          MoiraContext::StrCell(mc.machine(), mach.row, "name");
      if (!staged.per_host.contains(machine_name)) {
        return MR_NO_MATCH;  // serverhost appeared since the staged pass
      }
      const std::string& value3 = sh->Cell(row, sh_value3_col).AsString();
      bool restrict = !value3.empty();
      std::set<std::string> allowed;
      if (restrict) {
        RowRef list = mc.ListByName(value3);
        if (list.code != MR_SUCCESS) {
          continue;  // full build ships an empty credentials file
        }
        for (const std::string& login : ExpandListToLogins(
                 mc, MoiraContext::IntCell(mc.list(), list.row, "list_id"),
                 /*active_only=*/true)) {
          allowed.insert(login);
        }
      }
      MemberEdit& edit = out->per_host[machine_name]["credentials"];
      edit.rule = KeyRule::kUpToColon;
      for (const std::string& login : plan.users) {
        RowRef user = mc.UserByLogin(login);
        if (user.code != MR_SUCCESS) {
          return user.code;
        }
        bool present =
            MoiraContext::IntCell(mc.users(), user.row, "status") == kUserActive &&
            (!restrict || allowed.contains(login));
        if (present) {
          int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
          Upsert(&edit, login,
                 CredentialLine(mc, user.row, UserGroupsFor(mc, users_id)));
        } else {
          Delete(&edit, login);
        }
      }
    }
  }

  // Per-(filesystem, login) quota edits on the owning partition's file.
  for (const auto& [label, login] : plan.quotas) {
    RowRef fs = mc.ExactOne(mc.filesys(), "label", Value(label), MR_FILESYS);
    if (fs.code != MR_SUCCESS) {
      return fs.code;  // label gone: the delta window is not reconstructible
    }
    int64_t phys_id = MoiraContext::IntCell(mc.filesys(), fs.row, "phys_id");
    RowRef phys = mc.ExactOne(mc.nfsphys(), "nfsphys_id", Value(phys_id), MR_NFSPHYS);
    if (phys.code != MR_SUCCESS) {
      return phys.code;
    }
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id",
                              Value(MoiraContext::IntCell(mc.nfsphys(), phys.row, "mach_id")),
                              MR_MACHINE);
    if (mach.code != MR_SUCCESS) {
      continue;  // partition not exported by any reachable serverhost
    }
    const std::string& machine_name =
        MoiraContext::StrCell(mc.machine(), mach.row, "name");
    if (!staged.per_host.contains(machine_name)) {
      continue;  // no NFS serverhost on that machine: file exists in no archive
    }
    RowRef user = mc.UserByLogin(login);
    if (user.code != MR_SUCCESS) {
      return user.code;
    }
    int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
    int64_t uid = MoiraContext::IntCell(mc.users(), user.row, "uid");
    std::string stem = PartitionStem(MoiraContext::StrCell(mc.nfsphys(), phys.row, "dir"));
    MemberEdit& edit = out->per_host[machine_name][stem + ".quotas"];
    std::string block = QuotaBlock(mc, users_id, uid, phys_id);
    if (block.empty()) {
      Delete(&edit, std::to_string(uid));
    } else {
      Upsert(&edit, std::to_string(uid), std::move(block));
    }
  }

  for (auto host_it = out->per_host.begin(); host_it != out->per_host.end();) {
    auto& edits = host_it->second;
    for (auto it = edits.begin(); it != edits.end();) {
      it = (it->second.ops.empty() && !it->second.replace) ? edits.erase(it)
                                                           : std::next(it);
    }
    host_it = edits.empty() ? out->per_host.erase(host_it) : std::next(host_it);
  }
  return MR_SUCCESS;
}

}  // namespace moira
