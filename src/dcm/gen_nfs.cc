// NFS generator (paper section 5.8.2): per-server partition .dirs and
// .quotas files plus the credentials file.  Unlike Hesiod, every NFS server
// receives different partition files, so the payloads are per-host.
#include <map>

#include "src/common/strutil.h"
#include "src/db/exec.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Flattens a partition directory ("/u1") into a file-name stem ("u1").
std::string PartitionStem(std::string_view dir) {
  std::string out;
  for (char c : dir) {
    if (c == '/') {
      if (!out.empty()) {
        out += '_';
      }
    } else {
      out += c;
    }
  }
  return out.empty() ? "root" : out;
}

// Builds the credentials contents for every active user (the master file),
// or for the membership of `list_id` if non-negative.
std::string BuildCredentials(MoiraContext& mc,
                             const std::map<int64_t, std::vector<GroupMembership>>& groups,
                             int64_t list_id) {
  std::string out;
  Table* users = mc.users();
  int users_id_col = users->ColumnIndex("users_id");
  std::map<std::string, bool> allowed;
  bool restrict = list_id >= 0;
  if (restrict) {
    for (const std::string& login : ExpandListToLogins(mc, list_id, /*active_only=*/true)) {
      allowed[login] = true;
    }
  }
  From(users)
      .WhereEq("status", Value(int64_t{kUserActive}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        const std::string& login = MoiraContext::StrCell(users, row, "login");
        if (restrict && !allowed.contains(login)) {
          return;
        }
        out += login;
        out += ":";
        out += std::to_string(MoiraContext::IntCell(users, row, "uid"));
        auto it = groups.find(users->Cell(row, users_id_col).AsInt());
        if (it != groups.end()) {
          for (const GroupMembership& m : it->second) {
            out += ":" + std::to_string(m.gid);
          }
        }
        out += "\n";
      });
  return out;
}

}  // namespace

int32_t GenerateNfs(MoiraContext& mc, GeneratorResult* out) {
  std::map<int64_t, std::vector<GroupMembership>> groups = BuildUserGroupMap(mc);
  std::string master_credentials = BuildCredentials(mc, groups, -1);

  // Index filesystems and quotas by physical partition.
  Table* filesys = mc.filesys();
  Table* quota = mc.nfsquota();
  Table* phys = mc.nfsphys();
  Table* users = mc.users();
  std::map<int64_t, std::string> dirs_by_phys;
  std::map<int64_t, std::string> quotas_by_phys;

  int fs_phys_col = filesys->ColumnIndex("phys_id");
  From(filesys)
      .WhereEq("type", Value("NFS"))
      .WhereNe("createflg", Value(int64_t{0}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        // directory name, owning uid, owning gid, locker type.
        int64_t owner_id = MoiraContext::IntCell(filesys, row, "owner");
        int64_t owners_list = MoiraContext::IntCell(filesys, row, "owners");
        RowRef owner = mc.ExactOne(users, "users_id", Value(owner_id), MR_USER);
        int64_t uid =
            owner.code == MR_SUCCESS ? MoiraContext::IntCell(users, owner.row, "uid") : 0;
        RowRef group = mc.ExactOne(mc.list(), "list_id", Value(owners_list), MR_LIST);
        int64_t gid = group.code == MR_SUCCESS
                          ? MoiraContext::IntCell(mc.list(), group.row, "gid")
                          : 0;
        dirs_by_phys[filesys->Cell(row, fs_phys_col).AsInt()] +=
            MoiraContext::StrCell(filesys, row, "name") + " " + std::to_string(uid) + " " +
            std::to_string(gid) + " " + MoiraContext::StrCell(filesys, row, "lockertype") +
            "\n";
      });

  int q_phys_col = quota->ColumnIndex("phys_id");
  int q_user_col = quota->ColumnIndex("users_id");
  int q_quota_col = quota->ColumnIndex("quota");
  From(quota).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    RowRef user =
        mc.ExactOne(users, "users_id", Value(quota->Cell(row, q_user_col).AsInt()), MR_USER);
    int64_t uid = user.code == MR_SUCCESS ? MoiraContext::IntCell(users, user.row, "uid") : 0;
    quotas_by_phys[quota->Cell(row, q_phys_col).AsInt()] +=
        std::to_string(uid) + " " + std::to_string(quota->Cell(row, q_quota_col).AsInt()) +
        "\n";
  });

  // Assemble one archive per NFS serverhost.
  Table* sh = mc.serverhosts();
  int sh_mach_col = sh->ColumnIndex("mach_id");
  int sh_value3_col = sh->ColumnIndex("value3");
  for (size_t row : From(sh).WhereEq("service", Value("NFS")).Rows()) {
    int64_t mach_id = sh->Cell(row, sh_mach_col).AsInt();
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
    if (mach.code != MR_SUCCESS) {
      continue;
    }
    const std::string& machine_name = MoiraContext::StrCell(mc.machine(), mach.row, "name");
    Archive archive;
    // Per-partition files for every partition exported by this machine.
    for (size_t p : From(phys).WhereEq("mach_id", Value(mach_id)).Rows()) {
      int64_t phys_id = MoiraContext::IntCell(phys, p, "nfsphys_id");
      std::string stem = PartitionStem(MoiraContext::StrCell(phys, p, "dir"));
      archive.Add(stem + ".dirs", dirs_by_phys[phys_id]);
      archive.Add(stem + ".quotas", quotas_by_phys[phys_id]);
    }
    // Which credentials file this server gets is determined by value3: blank
    // means all active users, otherwise the named list's membership.
    const std::string& value3 = sh->Cell(row, sh_value3_col).AsString();
    if (value3.empty()) {
      archive.Add("credentials", master_credentials);
    } else {
      RowRef list = mc.ListByName(value3);
      archive.Add("credentials",
                  list.code == MR_SUCCESS
                      ? BuildCredentials(mc, groups,
                                         MoiraContext::IntCell(mc.list(), list.row,
                                                               "list_id"))
                      : std::string());
    }
    out->per_host[machine_name] = std::move(archive);
  }
  return MR_SUCCESS;
}

}  // namespace moira
