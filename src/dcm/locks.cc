#include "src/dcm/locks.h"

namespace moira {

bool LockManager::Acquire(std::string_view name, Mode mode) {
  State& state = locks_[std::string(name)];
  if (mode == Mode::kExclusive) {
    if (state.exclusive || state.shared > 0) {
      return false;
    }
    state.exclusive = true;
    return true;
  }
  if (state.exclusive) {
    return false;
  }
  ++state.shared;
  return true;
}

void LockManager::Release(std::string_view name, Mode mode) {
  auto it = locks_.find(name);
  if (it == locks_.end()) {
    return;
  }
  if (mode == Mode::kExclusive) {
    it->second.exclusive = false;
  } else if (it->second.shared > 0) {
    --it->second.shared;
  }
  if (!it->second.exclusive && it->second.shared == 0) {
    locks_.erase(it);
  }
}

bool LockManager::IsLocked(std::string_view name) const {
  return locks_.contains(name);
}

}  // namespace moira
