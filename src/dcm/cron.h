// A minimal cron substrate (paper section 5.7): "the DCM is invoked
// regularly by cron at intervals which become the minimum update time for
// any service", and nightly.sh runs the backups.  Jobs fire against the
// injected clock, so simulated days replay instantly in tests and benches.
#ifndef MOIRA_SRC_DCM_CRON_H_
#define MOIRA_SRC_DCM_CRON_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace moira {

class CronScheduler {
 public:
  explicit CronScheduler(const Clock* clock) : clock_(clock) {}

  // Registers a job firing every `interval` seconds, first due one interval
  // from now.
  void Schedule(std::string name, UnixTime interval, std::function<void()> job);

  // Fires every job whose due time has arrived (each at most once per call,
  // as cron would — a missed window is not replayed N times).  Returns the
  // number of jobs fired.
  int RunDue();

  // Earliest due time across all jobs; 0 if none scheduled.
  UnixTime NextDue() const;

  // Fires the named job immediately (operator "run it now"), rescheduling its
  // next regular firing one interval out.  Returns false if no such job.
  bool TriggerNow(const std::string& name);

  size_t job_count() const { return jobs_.size(); }

 private:
  struct Job {
    std::string name;
    UnixTime interval;
    UnixTime next_due;
    std::function<void()> run;
  };

  const Clock* clock_;
  std::vector<Job> jobs_;
};

}  // namespace moira

#endif  // MOIRA_SRC_DCM_CRON_H_
