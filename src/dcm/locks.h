// Shared/exclusive named locks used by the DCM (paper section 5.7.1): a
// service is locked exclusively while its files are generated, shared (or
// exclusively for replicated services) during the host scan, and each host is
// locked exclusively while being updated.  The inprogress database flags are
// advisory and "not relied upon for locking" — these locks are.
#ifndef MOIRA_SRC_DCM_LOCKS_H_
#define MOIRA_SRC_DCM_LOCKS_H_

#include <map>
#include <string>
#include <string_view>

namespace moira {

class LockManager {
 public:
  enum class Mode { kShared, kExclusive };

  // Attempts to take the lock; returns false on conflict.
  bool Acquire(std::string_view name, Mode mode);

  // Releases one hold.  Release of an unheld lock is a no-op.
  void Release(std::string_view name, Mode mode);

  bool IsLocked(std::string_view name) const;

 private:
  struct State {
    int shared = 0;
    bool exclusive = false;
  };
  std::map<std::string, State, std::less<>> locks_;
};

// RAII lock hold.
class ScopedLock {
 public:
  ScopedLock(LockManager* manager, std::string name, LockManager::Mode mode)
      : manager_(manager), name_(std::move(name)), mode_(mode) {
    held_ = manager_->Acquire(name_, mode_);
  }
  ~ScopedLock() {
    if (held_) {
      manager_->Release(name_, mode_);
    }
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  bool held() const { return held_; }

 private:
  LockManager* manager_;
  std::string name_;
  LockManager::Mode mode_;
  bool held_;
};

}  // namespace moira

#endif  // MOIRA_SRC_DCM_LOCKS_H_
