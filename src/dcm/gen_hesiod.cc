// Hesiod generator: the 11 BIND-format .db files of paper section 5.8.2.
// All hesiod target machines receive identical files, so the DCM prepares one
// archive and propagates it to every target host.
//
// The per-record files (passwd/uid/pobox/grplist/group/gid) are emitted
// through KeyedFile so the full build and the incremental patch path produce
// byte-identical output; the small topology files (cluster/filsys/printcap/
// service/sloc) are rebuilt whole and shipped as replacements when dirty.
#include <map>
#include <set>

#include "src/common/strutil.h"
#include "src/db/exec.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Formats one UNSPECA record line.
std::string UnspecA(std::string_view key, std::string_view data) {
  return std::string(key) + " HS UNSPECA \"" + std::string(data) + "\"\n";
}

std::string Cname(std::string_view key, std::string_view target) {
  return std::string(key) + " HS CNAME " + std::string(target) + "\n";
}

std::string MachineNameById(MoiraContext& mc, int64_t mach_id) {
  RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
  return mach.code == MR_SUCCESS ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                 : "???";
}

// --- per-record lines, shared by the full build and the patch builder ---

std::string UserPasswdLine(MoiraContext& mc, size_t user_row) {
  const std::string& login = MoiraContext::StrCell(mc.users(), user_row, "login");
  return UnspecA(login + ".passwd", PasswdLine(mc, user_row));
}

std::string UserUidLine(MoiraContext& mc, size_t user_row) {
  const std::string& login = MoiraContext::StrCell(mc.users(), user_row, "login");
  return Cname(std::to_string(MoiraContext::IntCell(mc.users(), user_row, "uid")) + ".uid",
               login + ".passwd");
}

// Empty unless the user has a POP box.
std::string UserPoboxLine(MoiraContext& mc, size_t user_row) {
  if (MoiraContext::StrCell(mc.users(), user_row, "potype") != "POP") {
    return "";
  }
  const std::string& login = MoiraContext::StrCell(mc.users(), user_row, "login");
  std::string machine =
      MachineNameById(mc, MoiraContext::IntCell(mc.users(), user_row, "pop_id"));
  return UnspecA(login + ".pobox", "POP " + machine + " " + login);
}

std::string GrplistLine(const std::string& login,
                        const std::vector<GroupMembership>& groups) {
  std::string data = login;
  // The user's own group (named after the login) leads, as in the paper's
  // examples.
  for (const GroupMembership& m : groups) {
    if (m.group_name == login) {
      data += ":" + std::to_string(m.gid);
    }
  }
  for (const GroupMembership& m : groups) {
    if (m.group_name != login) {
      data += ":" + m.group_name + ":" + std::to_string(m.gid);
    }
  }
  return UnspecA(login + ".grplist", data);
}

std::string GroupLine(const std::string& name, int64_t gid) {
  return UnspecA(name + ".group", name + ":*:" + std::to_string(gid) + ":");
}

std::string GidLine(const std::string& name, int64_t gid) {
  return Cname(std::to_string(gid) + ".gid", name + ".group");
}

// cluster.db: per-cluster service data plus a CNAME for every machine; a
// machine in several clusters gets a pseudo-cluster with the union of the
// data (paper section 5.8.2, CLUSTER.DB).
std::string BuildClusterDb(MoiraContext& mc) {
  std::string out =
      "; lines for per-cluster info (type UNSPECA)\n"
      "; and a line for each machine (CNAME referring to one of the lines above)\n;\n";
  Table* cluster = mc.cluster();
  Table* svc = mc.svc();
  Table* mcmap = mc.mcmap();
  int svc_clu_col = svc->ColumnIndex("clu_id");
  std::map<int64_t, std::string> cluster_names;
  std::map<int64_t, std::vector<std::string>> cluster_data;  // clu_id -> "label data"
  From(cluster).Emit([&](const std::vector<size_t>& rows) {
    int64_t clu_id = MoiraContext::IntCell(cluster, rows[0], "clu_id");
    cluster_names[clu_id] = MoiraContext::StrCell(cluster, rows[0], "name");
  });
  From(svc).Emit([&](const std::vector<size_t>& rows) {
    cluster_data[svc->Cell(rows[0], svc_clu_col).AsInt()].push_back(
        MoiraContext::StrCell(svc, rows[0], "serv_label") + " " +
        MoiraContext::StrCell(svc, rows[0], "serv_cluster"));
  });
  for (const auto& [clu_id, name] : cluster_names) {
    for (const std::string& data : cluster_data[clu_id]) {
      out += UnspecA(name + ".cluster", data);
    }
  }
  // Machine memberships.
  int map_mach_col = mcmap->ColumnIndex("mach_id");
  int map_clu_col = mcmap->ColumnIndex("clu_id");
  std::map<int64_t, std::vector<int64_t>> machine_clusters;
  From(mcmap).Emit([&](const std::vector<size_t>& rows) {
    machine_clusters[mcmap->Cell(rows[0], map_mach_col).AsInt()].push_back(
        mcmap->Cell(rows[0], map_clu_col).AsInt());
  });
  for (const auto& [mach_id, clusters] : machine_clusters) {
    std::string machine_name = MachineNameById(mc, mach_id);
    if (clusters.size() == 1) {
      out += Cname(machine_name + ".cluster", cluster_names[clusters[0]] + ".cluster");
      continue;
    }
    // Pseudo-cluster: union of the member clusters' data.
    std::string pseudo = ToLowerCopy(machine_name) + "-pseudo";
    for (int64_t clu_id : clusters) {
      for (const std::string& data : cluster_data[clu_id]) {
        out += UnspecA(pseudo + ".cluster", data);
      }
    }
    out += Cname(machine_name + ".cluster", pseudo + ".cluster");
  }
  return out;
}

std::string BuildFilsysDb(MoiraContext& mc) {
  std::string out;
  Table* filesys = mc.filesys();
  From(filesys)
      .WhereNe("type", Value("ERR"))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        const std::string& type = MoiraContext::StrCell(filesys, row, "type");
        std::string machine =
            ToLowerCopy(MachineNameById(mc, MoiraContext::IntCell(filesys, row, "mach_id")));
        out += UnspecA(MoiraContext::StrCell(filesys, row, "label") + ".filsys",
                       type + " " + MoiraContext::StrCell(filesys, row, "name") + " " +
                           machine + " " + MoiraContext::StrCell(filesys, row, "access") +
                           " " + MoiraContext::StrCell(filesys, row, "mount"));
      });
  return out;
}

// group.db / gid.db / grplist.db share the active-group scan.
void BuildGroupFiles(MoiraContext& mc, KeyedFile* group_db, KeyedFile* gid_db,
                     KeyedFile* grplist_db) {
  Table* lists = mc.list();
  From(lists)
      .WhereNe("active", Value(int64_t{0}))
      .WhereNe("grouplist", Value(int64_t{0}))
      .Emit([&](const std::vector<size_t>& rows) {
        const std::string& name = MoiraContext::StrCell(lists, rows[0], "name");
        int64_t gid = MoiraContext::IntCell(lists, rows[0], "gid");
        group_db->AppendLine(GroupLine(name, gid));
        gid_db->AppendLine(GidLine(name, gid));
      });
  // grplist.db: one entry per active user listing (groupname, gid) pairs.
  std::map<int64_t, std::vector<GroupMembership>> user_groups = BuildUserGroupMap(mc);
  Table* users = mc.users();
  int users_id_col = users->ColumnIndex("users_id");
  static const std::vector<GroupMembership> kNoGroups;
  From(users)
      .WhereEq("status", Value(int64_t{kUserActive}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        auto it = user_groups.find(users->Cell(row, users_id_col).AsInt());
        grplist_db->AppendLine(
            GrplistLine(MoiraContext::StrCell(users, row, "login"),
                        it != user_groups.end() ? it->second : kNoGroups));
      });
}

void BuildUserFiles(MoiraContext& mc, KeyedFile* passwd_db, KeyedFile* uid_db,
                    KeyedFile* pobox_db) {
  Table* users = mc.users();
  From(users)
      .WhereEq("status", Value(int64_t{kUserActive}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        passwd_db->AppendLine(UserPasswdLine(mc, row));
        uid_db->AppendLine(UserUidLine(mc, row));
        std::string pobox = UserPoboxLine(mc, row);
        if (!pobox.empty()) {
          pobox_db->AppendLine(pobox);
        }
      });
}

std::string BuildPrintcapDb(MoiraContext& mc) {
  std::string out;
  Table* printcap = mc.printcap();
  From(printcap).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    const std::string& name = MoiraContext::StrCell(printcap, row, "name");
    std::string machine =
        MachineNameById(mc, MoiraContext::IntCell(printcap, row, "mach_id"));
    out += UnspecA(name + ".pcap",
                   name + ":rp=" + MoiraContext::StrCell(printcap, row, "rp") +
                       ":rm=" + machine +
                       ":sd=" + MoiraContext::StrCell(printcap, row, "dir"));
  });
  return out;
}

std::string BuildServiceDb(MoiraContext& mc) {
  std::string out;
  Table* services = mc.services();
  From(services).Emit([&](const std::vector<size_t>& rows) {
    const std::string& name = MoiraContext::StrCell(services, rows[0], "name");
    out += UnspecA(name + ".service",
                   name + " " +
                       ToLowerCopy(MoiraContext::StrCell(services, rows[0], "protocol")) +
                       " " + std::to_string(MoiraContext::IntCell(services, rows[0], "port")));
  });
  return out;
}

std::string BuildSlocDb(MoiraContext& mc) {
  std::string out;
  Table* sh = mc.serverhosts();
  From(sh).Emit([&](const std::vector<size_t>& rows) {
    out += MoiraContext::StrCell(sh, rows[0], "service") + ".sloc HS UNSPECA " +
           MachineNameById(mc, MoiraContext::IntCell(sh, rows[0], "mach_id")) + "\n";
  });
  return out;
}

void Upsert(MemberEdit* edit, std::string key, std::string block) {
  edit->ops.push_back(PatchOp{PatchOp::kUpsert, std::move(key), std::move(block)});
}

void Delete(MemberEdit* edit, std::string key) {
  edit->ops.push_back(PatchOp{PatchOp::kDelete, std::move(key), ""});
}

}  // namespace

int32_t GenerateHesiod(MoiraContext& mc, GeneratorResult* out) {
  KeyedFile group_db;
  KeyedFile gid_db;
  KeyedFile grplist_db;
  BuildGroupFiles(mc, &group_db, &gid_db, &grplist_db);
  KeyedFile passwd_db;
  KeyedFile uid_db;
  KeyedFile pobox_db;
  BuildUserFiles(mc, &passwd_db, &uid_db, &pobox_db);
  out->common.Add("cluster.db", BuildClusterDb(mc));
  out->common.Add("filsys.db", BuildFilsysDb(mc));
  out->common.Add("gid.db", gid_db.Serialize());
  out->common.Add("group.db", group_db.Serialize());
  out->common.Add("grplist.db", grplist_db.Serialize());
  out->common.Add("passwd.db", passwd_db.Serialize());
  out->common.Add("pobox.db", pobox_db.Serialize());
  out->common.Add("printcap.db", BuildPrintcapDb(mc));
  out->common.Add("service.db", BuildServiceDb(mc));
  out->common.Add("sloc.db", BuildSlocDb(mc));
  out->common.Add("uid.db", uid_db.Serialize());
  return MR_SUCCESS;
}

int32_t BuildHesiodPatch(MoiraContext& mc, const DeltaPlan& plan,
                         const GeneratorResult& staged, ServicePatch* out) {
  (void)staged;  // hesiod ships one common archive; nothing per-host to probe
  MemberEdit& passwd = out->common["passwd.db"];
  MemberEdit& uid = out->common["uid.db"];
  MemberEdit& pobox = out->common["pobox.db"];
  MemberEdit& grplist = out->common["grplist.db"];
  MemberEdit& group = out->common["group.db"];
  MemberEdit& gid = out->common["gid.db"];

  for (const std::string& login : plan.users) {
    RowRef user = mc.UserByLogin(login);
    if (user.code != MR_SUCCESS) {
      return user.code;  // escalate: the plan says dirty but the row is gone
    }
    bool active =
        MoiraContext::IntCell(mc.users(), user.row, "status") == kUserActive;
    // A dirty user's uid is stable across the delta window (uid changes
    // escalate to full regeneration), so the uid.db key is reconstructible.
    std::string uid_key =
        std::to_string(MoiraContext::IntCell(mc.users(), user.row, "uid")) + ".uid";
    if (active) {
      Upsert(&passwd, login + ".passwd", UserPasswdLine(mc, user.row));
      Upsert(&uid, uid_key, UserUidLine(mc, user.row));
      std::string pobox_line = UserPoboxLine(mc, user.row);
      if (pobox_line.empty()) {
        Delete(&pobox, login + ".pobox");
      } else {
        Upsert(&pobox, login + ".pobox", std::move(pobox_line));
      }
      int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
      Upsert(&grplist, login + ".grplist",
             GrplistLine(login, UserGroupsFor(mc, users_id)));
    } else {
      Delete(&passwd, login + ".passwd");
      Delete(&uid, uid_key);
      Delete(&pobox, login + ".pobox");
      Delete(&grplist, login + ".grplist");
    }
  }

  for (const std::string& name : plan.lists) {
    RowRef list = mc.ListByName(name);
    if (list.code != MR_SUCCESS) {
      return list.code;
    }
    int64_t list_gid = MoiraContext::IntCell(mc.list(), list.row, "gid");
    bool grouped =
        MoiraContext::IntCell(mc.list(), list.row, "active") != 0 &&
        MoiraContext::IntCell(mc.list(), list.row, "grouplist") != 0;
    if (grouped) {
      Upsert(&group, name + ".group", GroupLine(name, list_gid));
      Upsert(&gid, std::to_string(list_gid) + ".gid", GidLine(name, list_gid));
    } else {
      Delete(&group, name + ".group");
      Delete(&gid, std::to_string(list_gid) + ".gid");
    }
  }

  // Small topology files: rebuild whole and ship as replacements.
  if (plan.clusters_dirty) {
    MemberEdit& edit = out->common["cluster.db"];
    edit.replace = true;
    edit.replacement = BuildClusterDb(mc);
  }
  if (plan.filsys_dirty) {
    MemberEdit& edit = out->common["filsys.db"];
    edit.replace = true;
    edit.replacement = BuildFilsysDb(mc);
  }
  if (plan.printcaps_dirty) {
    MemberEdit& edit = out->common["printcap.db"];
    edit.replace = true;
    edit.replacement = BuildPrintcapDb(mc);
  }
  if (plan.services_dirty) {
    MemberEdit& edit = out->common["service.db"];
    edit.replace = true;
    edit.replacement = BuildServiceDb(mc);
  }
  if (plan.sloc_dirty) {
    MemberEdit& edit = out->common["sloc.db"];
    edit.replace = true;
    edit.replacement = BuildSlocDb(mc);
  }

  // Drop edit entries that gathered no ops (e.g. no dirty user had a pobox).
  for (auto it = out->common.begin(); it != out->common.end();) {
    it = (it->second.ops.empty() && !it->second.replace) ? out->common.erase(it)
                                                         : std::next(it);
  }
  return MR_SUCCESS;
}

}  // namespace moira
