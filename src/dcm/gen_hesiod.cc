// Hesiod generator: the 11 BIND-format .db files of paper section 5.8.2.
// All hesiod target machines receive identical files, so the DCM prepares one
// archive and propagates it to every target host.
#include <map>
#include <set>

#include "src/common/strutil.h"
#include "src/db/exec.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Formats one UNSPECA record line.
std::string UnspecA(std::string_view key, std::string_view data) {
  return std::string(key) + " HS UNSPECA \"" + std::string(data) + "\"\n";
}

std::string Cname(std::string_view key, std::string_view target) {
  return std::string(key) + " HS CNAME " + std::string(target) + "\n";
}

std::string MachineNameById(MoiraContext& mc, int64_t mach_id) {
  RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
  return mach.code == MR_SUCCESS ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                 : "???";
}

// cluster.db: per-cluster service data plus a CNAME for every machine; a
// machine in several clusters gets a pseudo-cluster with the union of the
// data (paper section 5.8.2, CLUSTER.DB).
std::string BuildClusterDb(MoiraContext& mc) {
  std::string out =
      "; lines for per-cluster info (type UNSPECA)\n"
      "; and a line for each machine (CNAME referring to one of the lines above)\n;\n";
  Table* cluster = mc.cluster();
  Table* svc = mc.svc();
  Table* mcmap = mc.mcmap();
  int svc_clu_col = svc->ColumnIndex("clu_id");
  std::map<int64_t, std::string> cluster_names;
  std::map<int64_t, std::vector<std::string>> cluster_data;  // clu_id -> "label data"
  From(cluster).Emit([&](const std::vector<size_t>& rows) {
    int64_t clu_id = MoiraContext::IntCell(cluster, rows[0], "clu_id");
    cluster_names[clu_id] = MoiraContext::StrCell(cluster, rows[0], "name");
  });
  From(svc).Emit([&](const std::vector<size_t>& rows) {
    cluster_data[svc->Cell(rows[0], svc_clu_col).AsInt()].push_back(
        MoiraContext::StrCell(svc, rows[0], "serv_label") + " " +
        MoiraContext::StrCell(svc, rows[0], "serv_cluster"));
  });
  for (const auto& [clu_id, name] : cluster_names) {
    for (const std::string& data : cluster_data[clu_id]) {
      out += UnspecA(name + ".cluster", data);
    }
  }
  // Machine memberships.
  int map_mach_col = mcmap->ColumnIndex("mach_id");
  int map_clu_col = mcmap->ColumnIndex("clu_id");
  std::map<int64_t, std::vector<int64_t>> machine_clusters;
  From(mcmap).Emit([&](const std::vector<size_t>& rows) {
    machine_clusters[mcmap->Cell(rows[0], map_mach_col).AsInt()].push_back(
        mcmap->Cell(rows[0], map_clu_col).AsInt());
  });
  for (const auto& [mach_id, clusters] : machine_clusters) {
    std::string machine_name = MachineNameById(mc, mach_id);
    if (clusters.size() == 1) {
      out += Cname(machine_name + ".cluster", cluster_names[clusters[0]] + ".cluster");
      continue;
    }
    // Pseudo-cluster: union of the member clusters' data.
    std::string pseudo = ToLowerCopy(machine_name) + "-pseudo";
    for (int64_t clu_id : clusters) {
      for (const std::string& data : cluster_data[clu_id]) {
        out += UnspecA(pseudo + ".cluster", data);
      }
    }
    out += Cname(machine_name + ".cluster", pseudo + ".cluster");
  }
  return out;
}

std::string BuildFilsysDb(MoiraContext& mc) {
  std::string out;
  Table* filesys = mc.filesys();
  From(filesys)
      .WhereNe("type", Value("ERR"))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        const std::string& type = MoiraContext::StrCell(filesys, row, "type");
        std::string machine =
            ToLowerCopy(MachineNameById(mc, MoiraContext::IntCell(filesys, row, "mach_id")));
        out += UnspecA(MoiraContext::StrCell(filesys, row, "label") + ".filsys",
                       type + " " + MoiraContext::StrCell(filesys, row, "name") + " " +
                           machine + " " + MoiraContext::StrCell(filesys, row, "access") +
                           " " + MoiraContext::StrCell(filesys, row, "mount"));
      });
  return out;
}

// group.db / gid.db / grplist.db share the active-group scan.
void BuildGroupFiles(MoiraContext& mc, std::string* group_db, std::string* gid_db,
                     std::string* grplist_db) {
  Table* lists = mc.list();
  From(lists)
      .WhereNe("active", Value(int64_t{0}))
      .WhereNe("grouplist", Value(int64_t{0}))
      .Emit([&](const std::vector<size_t>& rows) {
        const std::string& name = MoiraContext::StrCell(lists, rows[0], "name");
        int64_t gid = MoiraContext::IntCell(lists, rows[0], "gid");
        *group_db += UnspecA(name + ".group", name + ":*:" + std::to_string(gid) + ":");
        *gid_db += Cname(std::to_string(gid) + ".gid", name + ".group");
      });
  // grplist.db: one entry per active user listing (groupname, gid) pairs.
  std::map<int64_t, std::vector<GroupMembership>> user_groups = BuildUserGroupMap(mc);
  Table* users = mc.users();
  int users_id_col = users->ColumnIndex("users_id");
  From(users)
      .WhereEq("status", Value(int64_t{kUserActive}))
      .Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    const std::string& login = MoiraContext::StrCell(users, row, "login");
    std::string data = login;
    auto it = user_groups.find(users->Cell(row, users_id_col).AsInt());
    if (it != user_groups.end()) {
      // The user's own group (named after the login) leads, as in the
      // paper's examples.
      for (const GroupMembership& m : it->second) {
        if (m.group_name == login) {
          data += ":" + std::to_string(m.gid);
        }
      }
      for (const GroupMembership& m : it->second) {
        if (m.group_name != login) {
          data += ":" + m.group_name + ":" + std::to_string(m.gid);
        }
      }
    }
    *grplist_db += UnspecA(login + ".grplist", data);
  });
}

void BuildUserFiles(MoiraContext& mc, std::string* passwd_db, std::string* uid_db,
                    std::string* pobox_db) {
  Table* users = mc.users();
  From(users)
      .WhereEq("status", Value(int64_t{kUserActive}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        const std::string& login = MoiraContext::StrCell(users, row, "login");
        *passwd_db += UnspecA(login + ".passwd", PasswdLine(mc, row));
        *uid_db += Cname(std::to_string(MoiraContext::IntCell(users, row, "uid")) + ".uid",
                         login + ".passwd");
        if (MoiraContext::StrCell(users, row, "potype") == "POP") {
          std::string machine =
              MachineNameById(mc, MoiraContext::IntCell(users, row, "pop_id"));
          *pobox_db += UnspecA(login + ".pobox", "POP " + machine + " " + login);
        }
      });
}

std::string BuildPrintcapDb(MoiraContext& mc) {
  std::string out;
  Table* printcap = mc.printcap();
  From(printcap).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    const std::string& name = MoiraContext::StrCell(printcap, row, "name");
    std::string machine =
        MachineNameById(mc, MoiraContext::IntCell(printcap, row, "mach_id"));
    out += UnspecA(name + ".pcap",
                   name + ":rp=" + MoiraContext::StrCell(printcap, row, "rp") +
                       ":rm=" + machine +
                       ":sd=" + MoiraContext::StrCell(printcap, row, "dir"));
  });
  return out;
}

std::string BuildServiceDb(MoiraContext& mc) {
  std::string out;
  Table* services = mc.services();
  From(services).Emit([&](const std::vector<size_t>& rows) {
    const std::string& name = MoiraContext::StrCell(services, rows[0], "name");
    out += UnspecA(name + ".service",
                   name + " " +
                       ToLowerCopy(MoiraContext::StrCell(services, rows[0], "protocol")) +
                       " " + std::to_string(MoiraContext::IntCell(services, rows[0], "port")));
  });
  return out;
}

std::string BuildSlocDb(MoiraContext& mc) {
  std::string out;
  Table* sh = mc.serverhosts();
  From(sh).Emit([&](const std::vector<size_t>& rows) {
    out += MoiraContext::StrCell(sh, rows[0], "service") + ".sloc HS UNSPECA " +
           MachineNameById(mc, MoiraContext::IntCell(sh, rows[0], "mach_id")) + "\n";
  });
  return out;
}

}  // namespace

int32_t GenerateHesiod(MoiraContext& mc, GeneratorResult* out) {
  std::string group_db;
  std::string gid_db;
  std::string grplist_db;
  BuildGroupFiles(mc, &group_db, &gid_db, &grplist_db);
  std::string passwd_db;
  std::string uid_db;
  std::string pobox_db;
  BuildUserFiles(mc, &passwd_db, &uid_db, &pobox_db);
  out->common.Add("cluster.db", BuildClusterDb(mc));
  out->common.Add("filsys.db", BuildFilsysDb(mc));
  out->common.Add("gid.db", std::move(gid_db));
  out->common.Add("group.db", std::move(group_db));
  out->common.Add("grplist.db", std::move(grplist_db));
  out->common.Add("passwd.db", std::move(passwd_db));
  out->common.Add("pobox.db", std::move(pobox_db));
  out->common.Add("printcap.db", BuildPrintcapDb(mc));
  out->common.Add("service.db", BuildServiceDb(mc));
  out->common.Add("sloc.db", BuildSlocDb(mc));
  out->common.Add("uid.db", std::move(uid_db));
  return MR_SUCCESS;
}

}  // namespace moira
