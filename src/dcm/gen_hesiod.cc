// Hesiod generator: the 11 BIND-format .db files of paper section 5.8.2.
// All hesiod target machines receive identical files, so the DCM prepares one
// archive and propagates it to every target host.
#include <map>
#include <set>

#include "src/common/strutil.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Formats one UNSPECA record line.
std::string UnspecA(std::string_view key, std::string_view data) {
  return std::string(key) + " HS UNSPECA \"" + std::string(data) + "\"\n";
}

std::string Cname(std::string_view key, std::string_view target) {
  return std::string(key) + " HS CNAME " + std::string(target) + "\n";
}

std::string MachineNameById(MoiraContext& mc, int64_t mach_id) {
  RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
  return mach.code == MR_SUCCESS ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                 : "???";
}

// cluster.db: per-cluster service data plus a CNAME for every machine; a
// machine in several clusters gets a pseudo-cluster with the union of the
// data (paper section 5.8.2, CLUSTER.DB).
std::string BuildClusterDb(MoiraContext& mc) {
  std::string out =
      "; lines for per-cluster info (type UNSPECA)\n"
      "; and a line for each machine (CNAME referring to one of the lines above)\n;\n";
  Table* cluster = mc.cluster();
  Table* svc = mc.svc();
  Table* mcmap = mc.mcmap();
  int svc_clu_col = svc->ColumnIndex("clu_id");
  std::map<int64_t, std::string> cluster_names;
  std::map<int64_t, std::vector<std::string>> cluster_data;  // clu_id -> "label data"
  cluster->Scan([&](size_t row, const Row&) {
    int64_t clu_id = MoiraContext::IntCell(cluster, row, "clu_id");
    cluster_names[clu_id] = MoiraContext::StrCell(cluster, row, "name");
    return true;
  });
  svc->Scan([&](size_t row, const Row& r) {
    cluster_data[r[svc_clu_col].AsInt()].push_back(
        MoiraContext::StrCell(svc, row, "serv_label") + " " +
        MoiraContext::StrCell(svc, row, "serv_cluster"));
    return true;
  });
  for (const auto& [clu_id, name] : cluster_names) {
    for (const std::string& data : cluster_data[clu_id]) {
      out += UnspecA(name + ".cluster", data);
    }
  }
  // Machine memberships.
  int map_mach_col = mcmap->ColumnIndex("mach_id");
  int map_clu_col = mcmap->ColumnIndex("clu_id");
  std::map<int64_t, std::vector<int64_t>> machine_clusters;
  mcmap->Scan([&](size_t, const Row& r) {
    machine_clusters[r[map_mach_col].AsInt()].push_back(r[map_clu_col].AsInt());
    return true;
  });
  for (const auto& [mach_id, clusters] : machine_clusters) {
    std::string machine_name = MachineNameById(mc, mach_id);
    if (clusters.size() == 1) {
      out += Cname(machine_name + ".cluster", cluster_names[clusters[0]] + ".cluster");
      continue;
    }
    // Pseudo-cluster: union of the member clusters' data.
    std::string pseudo = ToLowerCopy(machine_name) + "-pseudo";
    for (int64_t clu_id : clusters) {
      for (const std::string& data : cluster_data[clu_id]) {
        out += UnspecA(pseudo + ".cluster", data);
      }
    }
    out += Cname(machine_name + ".cluster", pseudo + ".cluster");
  }
  return out;
}

std::string BuildFilsysDb(MoiraContext& mc) {
  std::string out;
  Table* filesys = mc.filesys();
  filesys->Scan([&](size_t row, const Row&) {
    const std::string& type = MoiraContext::StrCell(filesys, row, "type");
    if (type == "ERR") {
      return true;
    }
    std::string machine =
        ToLowerCopy(MachineNameById(mc, MoiraContext::IntCell(filesys, row, "mach_id")));
    out += UnspecA(MoiraContext::StrCell(filesys, row, "label") + ".filsys",
                   type + " " + MoiraContext::StrCell(filesys, row, "name") + " " + machine +
                       " " + MoiraContext::StrCell(filesys, row, "access") + " " +
                       MoiraContext::StrCell(filesys, row, "mount"));
    return true;
  });
  return out;
}

// group.db / gid.db / grplist.db share the active-group scan.
void BuildGroupFiles(MoiraContext& mc, std::string* group_db, std::string* gid_db,
                     std::string* grplist_db) {
  Table* lists = mc.list();
  int active_col = lists->ColumnIndex("active");
  int group_col = lists->ColumnIndex("grouplist");
  lists->Scan([&](size_t row, const Row& r) {
    if (r[active_col].AsInt() == 0 || r[group_col].AsInt() == 0) {
      return true;
    }
    const std::string& name = MoiraContext::StrCell(lists, row, "name");
    int64_t gid = MoiraContext::IntCell(lists, row, "gid");
    *group_db += UnspecA(name + ".group", name + ":*:" + std::to_string(gid) + ":");
    *gid_db += Cname(std::to_string(gid) + ".gid", name + ".group");
    return true;
  });
  // grplist.db: one entry per active user listing (groupname, gid) pairs.
  std::map<int64_t, std::vector<GroupMembership>> user_groups = BuildUserGroupMap(mc);
  Table* users = mc.users();
  int status_col = users->ColumnIndex("status");
  int users_id_col = users->ColumnIndex("users_id");
  users->Scan([&](size_t row, const Row& r) {
    if (r[status_col].AsInt() != kUserActive) {
      return true;
    }
    const std::string& login = MoiraContext::StrCell(users, row, "login");
    std::string data = login;
    auto it = user_groups.find(r[users_id_col].AsInt());
    if (it != user_groups.end()) {
      // The user's own group (named after the login) leads, as in the
      // paper's examples.
      for (const GroupMembership& m : it->second) {
        if (m.group_name == login) {
          data += ":" + std::to_string(m.gid);
        }
      }
      for (const GroupMembership& m : it->second) {
        if (m.group_name != login) {
          data += ":" + m.group_name + ":" + std::to_string(m.gid);
        }
      }
    }
    *grplist_db += UnspecA(login + ".grplist", data);
    return true;
  });
}

void BuildUserFiles(MoiraContext& mc, std::string* passwd_db, std::string* uid_db,
                    std::string* pobox_db) {
  Table* users = mc.users();
  int status_col = users->ColumnIndex("status");
  users->Scan([&](size_t row, const Row& r) {
    if (r[status_col].AsInt() != kUserActive) {
      return true;
    }
    const std::string& login = MoiraContext::StrCell(users, row, "login");
    *passwd_db += UnspecA(login + ".passwd", PasswdLine(mc, row));
    *uid_db += Cname(std::to_string(MoiraContext::IntCell(users, row, "uid")) + ".uid",
                     login + ".passwd");
    if (MoiraContext::StrCell(users, row, "potype") == "POP") {
      std::string machine = MachineNameById(mc, MoiraContext::IntCell(users, row, "pop_id"));
      *pobox_db += UnspecA(login + ".pobox", "POP " + machine + " " + login);
    }
    return true;
  });
}

std::string BuildPrintcapDb(MoiraContext& mc) {
  std::string out;
  Table* printcap = mc.printcap();
  printcap->Scan([&](size_t row, const Row&) {
    const std::string& name = MoiraContext::StrCell(printcap, row, "name");
    std::string machine =
        MachineNameById(mc, MoiraContext::IntCell(printcap, row, "mach_id"));
    out += UnspecA(name + ".pcap",
                   name + ":rp=" + MoiraContext::StrCell(printcap, row, "rp") +
                       ":rm=" + machine +
                       ":sd=" + MoiraContext::StrCell(printcap, row, "dir"));
    return true;
  });
  return out;
}

std::string BuildServiceDb(MoiraContext& mc) {
  std::string out;
  Table* services = mc.services();
  services->Scan([&](size_t row, const Row&) {
    const std::string& name = MoiraContext::StrCell(services, row, "name");
    out += UnspecA(name + ".service",
                   name + " " + ToLowerCopy(MoiraContext::StrCell(services, row, "protocol")) +
                       " " + std::to_string(MoiraContext::IntCell(services, row, "port")));
    return true;
  });
  return out;
}

std::string BuildSlocDb(MoiraContext& mc) {
  std::string out;
  Table* sh = mc.serverhosts();
  sh->Scan([&](size_t row, const Row&) {
    out += MoiraContext::StrCell(sh, row, "service") + ".sloc HS UNSPECA " +
           MachineNameById(mc, MoiraContext::IntCell(sh, row, "mach_id")) + "\n";
    return true;
  });
  return out;
}

}  // namespace

int32_t GenerateHesiod(MoiraContext& mc, GeneratorResult* out) {
  std::string group_db;
  std::string gid_db;
  std::string grplist_db;
  BuildGroupFiles(mc, &group_db, &gid_db, &grplist_db);
  std::string passwd_db;
  std::string uid_db;
  std::string pobox_db;
  BuildUserFiles(mc, &passwd_db, &uid_db, &pobox_db);
  out->common.Add("cluster.db", BuildClusterDb(mc));
  out->common.Add("filsys.db", BuildFilsysDb(mc));
  out->common.Add("gid.db", std::move(gid_db));
  out->common.Add("group.db", std::move(group_db));
  out->common.Add("grplist.db", std::move(grplist_db));
  out->common.Add("passwd.db", std::move(passwd_db));
  out->common.Add("pobox.db", std::move(pobox_db));
  out->common.Add("printcap.db", BuildPrintcapDb(mc));
  out->common.Add("service.db", BuildServiceDb(mc));
  out->common.Add("sloc.db", BuildSlocDb(mc));
  out->common.Add("uid.db", std::move(uid_db));
  return MR_SUCCESS;
}

}  // namespace moira
