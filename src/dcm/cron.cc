#include "src/dcm/cron.h"

#include <algorithm>

namespace moira {

void CronScheduler::Schedule(std::string name, UnixTime interval,
                             std::function<void()> job) {
  jobs_.push_back(Job{std::move(name), interval, clock_->Now() + interval,
                      std::move(job)});
}

int CronScheduler::RunDue() {
  const UnixTime now = clock_->Now();
  int fired = 0;
  for (Job& job : jobs_) {
    if (now < job.next_due) {
      continue;
    }
    job.run();
    ++fired;
    // Align the next firing to the schedule, skipping missed windows.
    job.next_due += job.interval;
    if (job.next_due <= now) {
      job.next_due = now + job.interval;
    }
  }
  return fired;
}

bool CronScheduler::TriggerNow(const std::string& name) {
  for (Job& job : jobs_) {
    if (job.name == name) {
      job.run();
      job.next_due = clock_->Now() + job.interval;
      return true;
    }
  }
  return false;
}

UnixTime CronScheduler::NextDue() const {
  UnixTime earliest = 0;
  for (const Job& job : jobs_) {
    if (earliest == 0 || job.next_due < earliest) {
      earliest = job.next_due;
    }
  }
  return earliest;
}

}  // namespace moira
