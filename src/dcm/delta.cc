#include "src/dcm/delta.h"

#include "src/db/exec.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

// Marks a login dirty.  Missing users escalate to a full regeneration: the
// entry range says the login was touched, but the row is gone (or renamed)
// and the reach of its old blocks cannot be reconstructed.
void DirtyUser(MoiraContext& mc, DeltaPlan* plan, const std::string& login) {
  if (mc.UserByLogin(login).code == MR_SUCCESS) {
    plan->users.insert(login);
  } else {
    plan->full_all = true;
  }
}

// Marks every login in a list's (post-state) expansion dirty — the users
// whose group closures changed when the list gained or lost a member.
void DirtyListExpansion(MoiraContext& mc, DeltaPlan* plan,
                        const std::string& list_name) {
  RowRef list = mc.ListByName(list_name);
  if (list.code != MR_SUCCESS) {
    plan->full_all = true;
    return;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  for (const std::string& login :
       ExpandListToLogins(mc, list_id, /*active_only=*/true)) {
    if (mc.UserByLogin(login).code == MR_SUCCESS) {
      plan->users.insert(login);
    }
  }
}

// Lists whose alias line carries this user as a *direct* member (a status
// flip adds or removes the login from those lines).
void DirtyDirectLists(MoiraContext& mc, DeltaPlan* plan,
                      const std::string& login) {
  RowRef user = mc.UserByLogin(login);
  if (user.code != MR_SUCCESS) {
    plan->full_all = true;
    return;
  }
  int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
  Table* members = mc.members();
  int list_col = members->ColumnIndex("list_id");
  for (size_t row : From(members)
                        .WhereEq("member_type", Value("USER"))
                        .WhereEq("member_id", Value(users_id))
                        .Rows()) {
    RowRef list = mc.ListById(members->Cell(row, list_col).AsInt());
    if (list.code == MR_SUCCESS) {
      plan->lists.insert(MoiraContext::StrCell(mc.list(), list.row, "name"));
    }
  }
}

void ApplyEntry(MoiraContext& mc, const JournalEntry& entry, DeltaPlan* plan) {
  const std::string& q = entry.query;
  const std::vector<std::string>& args = entry.args;
  auto arg = [&args](size_t i) -> const std::string& {
    static const std::string kEmpty;
    return i < args.size() ? args[i] : kEmpty;
  };

  // --- user-keyed mutations: recompute that login's blocks ---
  if (q == "add_user" || q == "update_user_shell" ||
      q == "update_finger_by_login" || q == "set_pobox" ||
      q == "set_pobox_pop" || q == "delete_pobox") {
    DirtyUser(mc, plan, arg(0));
    return;
  }
  if (q == "update_user_status") {
    // The login's own blocks, the alias lines of lists carrying it directly,
    // and every expansion-based ACL.
    DirtyUser(mc, plan, arg(0));
    DirtyDirectLists(mc, plan, arg(0));
    plan->zephyr_dirty = true;
    return;
  }

  // --- list/membership mutations ---
  if (q == "add_list") {
    plan->lists.insert(arg(0));
    return;
  }
  if (q == "add_member_to_list" || q == "delete_member_from_list") {
    plan->lists.insert(arg(0));
    plan->zephyr_dirty = true;
    if (arg(1) == "USER") {
      DirtyUser(mc, plan, arg(2));
    } else if (arg(1) == "LIST") {
      DirtyListExpansion(mc, plan, arg(2));
    }
    // STRING members only appear verbatim on the list's own alias line.
    return;
  }

  // --- quota mutations: recompute one (filesystem, login) block ---
  if (q == "add_nfs_quota" || q == "update_nfs_quota" ||
      q == "delete_nfs_quota" || q == "set_quota_limits") {
    plan->quotas.emplace(arg(0), arg(1));
    plan->quota_state_dirty = true;
    return;
  }

  // --- quota accounting: no generated-file footprint (the shipped .quotas
  // files carry only the hard limits), but the sweep's idle-skip cares ---
  if (q == "report_quota_usage") {
    plan->quota_state_dirty = true;
    return;
  }
  if (q == "process_quota_sweep") {
    return;  // flag/counter bookkeeping only
  }

  // --- dirty-file rebuilds (small or rarely-touched members) ---
  if (q == "add_cluster" || q == "update_cluster" || q == "delete_cluster" ||
      q == "add_cluster_data" || q == "delete_cluster_data" ||
      q == "add_machine_to_cluster" || q == "delete_machine_from_cluster") {
    plan->clusters_dirty = true;
    return;
  }
  if (q == "add_printcap" || q == "delete_printcap") {
    plan->printcaps_dirty = true;
    return;
  }
  if (q == "add_service" || q == "delete_service") {
    plan->services_dirty = true;
    return;
  }
  if (q == "add_zephyr_class" || q == "update_zephyr_class" ||
      q == "delete_zephyr_class") {
    plan->zephyr_dirty = true;
    return;
  }

  // --- filesystem topology: full NFS regen, hesiod filsys.db rebuild ---
  if (q == "add_filesys" || q == "update_filesys" || q == "delete_filesys" ||
      q == "add_nfsphys" || q == "update_nfsphys" || q == "delete_nfsphys") {
    plan->full_services.insert("NFS");
    plan->filsys_dirty = true;
    return;
  }

  // --- serverhost topology: sloc.db + which hosts get which NFS files ---
  if (q == "add_server_host_info" || q == "update_server_host_info" ||
      q == "delete_server_host_info") {
    plan->sloc_dirty = true;
    plan->full_services.insert("NFS");
    return;
  }

  // --- mutations with no generated-file footprint ---
  if (q == "adjust_nfsphys_allocation" || q == "add_machine" ||
      q == "add_server_info" || q == "update_server_info" ||
      q == "delete_server_info" || q == "reset_server_error" ||
      q == "set_server_internal_flags" || q == "set_server_host_override" ||
      q == "set_server_host_internal" || q == "reset_server_host_error" ||
      q == "add_server_host_access" || q == "update_server_host_access" ||
      q == "delete_server_host_access" || q == "trigger_dcm" ||
      q == "add_alias" || q == "delete_alias" || q == "add_value" ||
      q == "update_value" || q == "delete_value") {
    return;
  }

  // Renames, deletes with cascades, uid/gid changes, registration (which
  // fans out to pobox + filesys + quota), and anything unrecognized: the old
  // blocks' reach cannot be bounded after the fact.
  plan->full_all = true;
}

}  // namespace

DeltaPlan ExtractDeltaPlan(MoiraContext& mc,
                           const std::vector<JournalEntry>& entries) {
  DeltaPlan plan;
  plan.entries = entries.size();
  for (const JournalEntry& entry : entries) {
    if (plan.full_all) {
      break;  // nothing left to refine
    }
    ApplyEntry(mc, entry, &plan);
  }
  return plan;
}

int32_t ExecuteJournaled(MoiraContext& mc, Journal* journal,
                         std::string_view principal, std::string_view client,
                         std::string_view query,
                         const std::vector<std::string>& args,
                         const TupleSink& emit) {
  const QueryRegistry& registry = QueryRegistry::Instance();
  int32_t code = registry.Execute(mc, principal, client, query, args, emit);
  const QueryDef* def = registry.Find(query);
  if (code == MR_SUCCESS && def != nullptr &&
      def->qclass != QueryClass::kRetrieve && journal != nullptr) {
    journal->Append(JournalEntry{0, mc.Now(), std::string(principal),
                                 std::string(client), std::string(def->name),
                                 args});
  }
  return code;
}

}  // namespace moira
