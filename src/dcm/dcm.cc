#include "src/dcm/dcm.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "src/common/checksum.h"
#include "src/common/strutil.h"
#include "src/db/exec.h"

namespace moira {

// Snapshot of one servers-relation row the DCM works from.
struct Dcm::ServiceRow {
  size_t row = 0;
  std::string name;
  int64_t interval_minutes = 0;
  std::string target;
  int64_t dfgen = 0;
  int64_t dfcheck = 0;
  std::string type;
  bool enable = false;
  bool harderror = false;
};

Dcm::Dcm(MoiraContext* mc, KerberosRealm* realm, ZephyrBus* zephyr, HostDirectory* hosts)
    : mc_(mc),
      zephyr_(zephyr),
      hosts_(hosts),
      update_client_(realm, kDcmPrincipal, "dcm-service-password") {
  // Register the DCM's own principal so it can obtain update tickets.
  realm->AddPrincipal(kDcmPrincipal, "dcm-service-password");
  set_resilience(resilience_);
}

void Dcm::set_resilience(const DcmResilienceConfig& config) {
  resilience_ = config;
  update_client_.set_retry_policy(config.enabled ? config.retry : RetryPolicy{});
  update_client_.set_deadlines(config.enabled ? config.deadlines : UpdateDeadlines{});
}

void Dcm::ConfigureService(const std::string& service, DcmServiceConfig config) {
  configs_[ToUpperCopy(service)] = std::move(config);
}

const GeneratorResult* Dcm::StagedPayload(const std::string& service) const {
  auto it = staged_.find(ToUpperCopy(service));
  return it != staged_.end() ? &it->second : nullptr;
}

bool Dcm::GenerationDue(const ServiceRow& service) const {
  return mc_->Now() >= service.dfcheck + service.interval_minutes * kSecondsPerMinute;
}

bool Dcm::TablesChangedSince(const DcmServiceConfig& config, UnixTime since) const {
  for (const std::string& table_name : config.relevant_tables) {
    const Table* table = mc_->db().GetTable(table_name);
    if (table != nullptr && table->stats().modtime > since) {
      return true;
    }
  }
  return false;
}

void Dcm::ReportHardError(const std::string& where, const std::string& message) {
  // Paper section 5.7.1: a zephyr message is sent to class MOIRA instance
  // DCM indicating the error.
  zephyr_->Send("MOIRA", "DCM", "dcm", where + ": " + message);
}

void Dcm::GeneratePhase(const ServiceRow& service, DcmRunSummary* summary) {
  auto config_it = configs_.find(service.name);
  Table* servers = mc_->servers();
  ScopedLock lock(&locks_, "service:" + service.name, LockManager::Mode::kExclusive);
  if (!lock.held()) {
    return;  // another DCM is generating this service right now
  }
  MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{1}));
  const UnixTime now = mc_->Now();
  // Incremental check: only rebuild if a relevant table changed since the
  // files were last generated (paper section 5.1.E).
  if (staged_.contains(service.name) &&
      !TablesChangedSince(config_it->second, service.dfgen)) {
    MoiraContext::SetCellInternal(servers, service.row, "dfcheck", Value(now));
    ++summary->services_no_change;
    MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{0}));
    return;
  }
  GeneratorResult result;
  int32_t code = config_it->second.generator(*mc_, &result);
  if (code != MR_SUCCESS) {
    MoiraContext::SetCellInternal(servers, service.row, "harderror", Value(int64_t{code}));
    MoiraContext::SetCellInternal(servers, service.row, "errmsg", Value(ErrorMessage(code)));
    ReportHardError("generator " + service.name, ErrorMessage(code));
    ++summary->generation_hard_errors;
    MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{0}));
    return;
  }
  // Count distinct generated files: per-host members with identical content
  // (e.g. a shared credentials file) count once.
  std::set<std::pair<std::string, uint32_t>> distinct;
  for (const auto& [name, contents] : result.common.members()) {
    distinct.emplace(name, Crc32(contents));
  }
  for (const auto& [host, archive] : result.per_host) {
    for (const auto& [name, contents] : archive.members()) {
      distinct.emplace(name, Crc32(contents));
    }
  }
  summary->files_generated += static_cast<int>(distinct.size());
  staged_[service.name] = std::move(result);
  MoiraContext::SetCellInternal(servers, service.row, "dfgen", Value(now));
  MoiraContext::SetCellInternal(servers, service.row, "dfcheck", Value(now));
  ++summary->services_generated;
  MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{0}));
}

void Dcm::HostScanPhase(const ServiceRow& service, DcmRunSummary* summary) {
  auto staged_it = staged_.find(service.name);
  if (staged_it == staged_.end()) {
    // Nothing staged (e.g. the DCM restarted): regenerate on demand without
    // touching dfgen so host due-ness is preserved.
    auto config_it = configs_.find(service.name);
    GeneratorResult result;
    if (config_it->second.generator(*mc_, &result) != MR_SUCCESS) {
      return;
    }
    staged_it = staged_.emplace(service.name, std::move(result)).first;
  }
  // Replicated services are locked exclusively during the host scan; unique
  // services share the lock (paper section 5.7.1).
  LockManager::Mode mode = service.type == "REPLICAT" ? LockManager::Mode::kExclusive
                                                      : LockManager::Mode::kShared;
  ScopedLock service_lock(&locks_, "service:" + service.name, mode);
  if (!service_lock.held()) {
    return;
  }
  Table* servers = mc_->servers();
  Table* sh = mc_->serverhosts();
  const UnixTime dfgen = MoiraContext::IntCell(servers, service.row, "dfgen");
  // A host needs an update when it is eligible (enabled, no standing hard
  // error) and either stale — last success predates the current data files
  // (lts < dfgen) — or explicitly forced via the override flag.  Both arms
  // are planned predicates rather than opaque in-loop checks, so the planner
  // picks the most selective index for each; Rows() is storage-ordered and
  // deduplicated, so the two arms merge with a set union.
  auto eligible = [&] {
    return From(sh)
        .WhereEq("service", Value(service.name))
        .WhereGe("enable", Value(int64_t{1}))
        .WhereEq("hosterror", Value(int64_t{0}));
  };
  std::vector<size_t> stale = eligible().WhereLt("lts", Value(dfgen)).Rows();
  std::vector<size_t> forced = eligible().WhereGe("override", Value(int64_t{1})).Rows();
  std::vector<size_t> host_rows;
  host_rows.reserve(stale.size() + forced.size());
  std::set_union(stale.begin(), stale.end(), forced.begin(), forced.end(),
                 std::back_inserter(host_rows));
  bool replicated_halt = false;
  for (size_t row : host_rows) {
    if (replicated_halt) {
      break;
    }
    RowRef mach = mc_->ExactOne(mc_->machine(), "mach_id",
                                Value(MoiraContext::IntCell(sh, row, "mach_id")),
                                MR_MACHINE);
    if (mach.code != MR_SUCCESS) {
      continue;
    }
    const std::string& machine_name =
        MoiraContext::StrCell(mc_->machine(), mach.row, "name");
    ScopedLock host_lock(&locks_, "host:" + machine_name, LockManager::Mode::kExclusive);
    if (!host_lock.held()) {
      continue;
    }
    // Circuit breaker: an open breaker quarantines the host — skipped
    // outright, consuming zero update attempts — until its cool-down
    // expires, after which one half-open probe attempt decides whether to
    // close it again.
    bool half_open_probe = false;
    if (resilience_.enabled) {
      int64_t breaker = MoiraContext::IntCell(sh, row, "breaker");
      if (breaker == kBreakerOpen) {
        if (mc_->Now() < MoiraContext::IntCell(sh, row, "breaker_until")) {
          ++summary->breaker_skips;
          continue;
        }
        MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerHalfOpen));
        half_open_probe = true;
      } else if (breaker == kBreakerHalfOpen) {
        // A previous DCM died mid-probe; probe again rather than trust it.
        half_open_probe = true;
      }
    }
    MoiraContext::SetCellInternal(sh, row, "inprogress", Value(int64_t{1}));
    const UnixTime now = mc_->Now();
    MoiraContext::SetCellInternal(sh, row, "ltt", Value(now));
    const Archive& archive = staged_it->second.ForHost(machine_name);
    std::string payload = archive.Serialize();
    UpdateOutcome outcome;
    if (hosts_->down()) {
      // Hesiod outage: the machine cannot be resolved right now.  That is a
      // transient directory failure, not a missing serverhosts entry — defer
      // softly instead of hard-failing the host.
      ++summary->directory_outages;
      outcome = UpdateOutcome{MR_UPDATE_CONN, /*hard=*/false,
                              "directory server unreachable", 0, 0, UpdatePhase::kNone};
    } else {
      outcome = update_client_.Update(hosts_->Find(machine_name), service.target, payload,
                                      configs_[service.name].script,
                                      /*single_attempt=*/half_open_probe);
    }
    if (outcome.attempts > 1) {
      summary->host_retries += outcome.attempts - 1;
    }
    if (outcome.code == MR_UPDATE_TIMEOUT) {
      ++summary->update_timeouts;
    }
    if (outcome.code == MR_SUCCESS) {
      MoiraContext::SetCellInternal(sh, row, "success", Value(int64_t{1}));
      MoiraContext::SetCellInternal(sh, row, "lts", Value(now));
      MoiraContext::SetCellInternal(sh, row, "override", Value(int64_t{0}));
      MoiraContext::SetCellInternal(sh, row, "hosterrmsg", Value(""));
      MoiraContext::SetCellInternal(sh, row, "consec_soft", Value(int64_t{0}));
      if (MoiraContext::IntCell(sh, row, "breaker") != kBreakerClosed) {
        MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerClosed));
        MoiraContext::SetCellInternal(sh, row, "breaker_until", Value(int64_t{0}));
      }
      if (half_open_probe) {
        ++summary->probe_successes;
      }
      ++summary->hosts_updated;
      summary->propagations += static_cast<int>(archive.size());
      summary->bytes_propagated += static_cast<int64_t>(payload.size());
    } else if (!outcome.hard) {
      // Soft failure: record the message, retry on a later pass.
      MoiraContext::SetCellInternal(sh, row, "success", Value(int64_t{0}));
      MoiraContext::SetCellInternal(sh, row, "hosterrmsg", Value(outcome.message));
      ++summary->host_soft_failures;
      const int64_t consec = MoiraContext::IntCell(sh, row, "consec_soft") + 1;
      MoiraContext::SetCellInternal(sh, row, "consec_soft", Value(consec));
      if (resilience_.enabled) {
        // In-pass backoffs may have advanced the clock; the cool-down starts
        // from when the attempt actually ended.
        const UnixTime after = mc_->Now();
        if (half_open_probe) {
          MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerOpen));
          MoiraContext::SetCellInternal(sh, row, "breaker_until",
                                        Value(after + resilience_.breaker_cooldown));
          ++summary->probe_failures;
        } else if (consec >= resilience_.breaker_threshold) {
          MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerOpen));
          MoiraContext::SetCellInternal(sh, row, "breaker_until",
                                        Value(after + resilience_.breaker_cooldown));
          MoiraContext::SetCellInternal(
              sh, row, "breaker_opens",
              Value(MoiraContext::IntCell(sh, row, "breaker_opens") + 1));
          ++summary->breaker_opens;
          // Escalate once per quarantine, not once per skipped pass.
          ReportHardError("quarantine " + service.name + "/" + machine_name,
                          outcome.message + " (" + std::to_string(consec) +
                              " consecutive soft failures)");
        }
      }
    } else {
      // Hard failure: record, notify via zephyr and mail, and for a
      // replicated service stop updating its other hosts.
      MoiraContext::SetCellInternal(sh, row, "success", Value(int64_t{0}));
      MoiraContext::SetCellInternal(sh, row, "hosterror", Value(int64_t{outcome.code}));
      MoiraContext::SetCellInternal(sh, row, "hosterrmsg", Value(outcome.message));
      ReportHardError("update " + service.name + "/" + machine_name, outcome.message);
      zephyr_->Send("MAIL", "moira-maintainers", "dcm",
                    "update failed hard: " + service.name + "/" + machine_name);
      ++summary->host_hard_failures;
      if (service.type == "REPLICAT") {
        MoiraContext::SetCellInternal(servers, service.row, "harderror",
                              Value(int64_t{outcome.code}));
        MoiraContext::SetCellInternal(servers, service.row, "errmsg", Value(outcome.message));
        replicated_halt = true;
      }
    }
    MoiraContext::SetCellInternal(sh, row, "inprogress", Value(int64_t{0}));
  }
}

DcmRunSummary Dcm::RunOnce() {
  DcmRunSummary summary;
  // Disable file and dcm_enable state variable (paper section 5.7.1).
  if (nodcm_) {
    return summary;
  }
  int64_t dcm_enable = 0;
  if (mc_->GetValue("dcm_enable", &dcm_enable) != MR_SUCCESS || dcm_enable == 0) {
    return summary;
  }
  summary.ran = true;
  Table* servers = mc_->servers();
  std::vector<ServiceRow> services;
  From(servers).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    ServiceRow service;
    service.row = row;
    service.name = MoiraContext::StrCell(servers, row, "name");
    service.interval_minutes = MoiraContext::IntCell(servers, row, "update_int");
    service.target = MoiraContext::StrCell(servers, row, "target_file");
    service.dfgen = MoiraContext::IntCell(servers, row, "dfgen");
    service.dfcheck = MoiraContext::IntCell(servers, row, "dfcheck");
    service.type = MoiraContext::StrCell(servers, row, "type");
    service.enable = MoiraContext::IntCell(servers, row, "enable") != 0;
    service.harderror = MoiraContext::IntCell(servers, row, "harderror") != 0;
    services.push_back(std::move(service));
  });
  for (const ServiceRow& service : services) {
    // Qualify: enabled, no hard errors, non-zero interval, generator exists.
    if (!service.enable || service.harderror || service.interval_minutes <= 0 ||
        !configs_.contains(service.name)) {
      continue;
    }
    ++summary.services_considered;
    if (GenerationDue(service)) {
      GeneratePhase(service, &summary);
    }
    // The hosts are scanned for every qualified service, regardless of
    // whether it was time to build data files (paper section 5.7.1).
    ServiceRow refreshed = service;
    refreshed.dfgen = MoiraContext::IntCell(servers, service.row, "dfgen");
    if (MoiraContext::IntCell(servers, service.row, "harderror") != 0) {
      continue;  // generation just failed hard
    }
    HostScanPhase(refreshed, &summary);
  }
  return summary;
}

void ConfigureStandardServices(Dcm* dcm) {
  // HESIOD: 11 .db files extracted one at a time and swapped in atomically,
  // then the name server is killed and restarted to reload them.
  std::string hesiod_script;
  for (const char* file :
       {"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db", "passwd.db",
        "pobox.db", "printcap.db", "service.db", "sloc.db", "uid.db"}) {
    hesiod_script += std::string("extract ") + file + " /etc/athena/hesiod/" + file + "\n";
    hesiod_script += std::string("install /etc/athena/hesiod/") + file + "\n";
  }
  hesiod_script += "exec restart_hesiod\n";
  dcm->ConfigureService(
      "HESIOD",
      DcmServiceConfig{GenerateHesiod,
                       {kUsersTable, kMachineTable, kClusterTable, kMcmapTable, kSvcTable,
                        kListTable, kMembersTable, kFilesysTable, kPrintcapTable,
                        kServicesTable, kServerHostsTable},
                       hesiod_script});

  // NFS: partition files and credentials, then the quota/locker script runs.
  dcm->ConfigureService(
      "NFS", DcmServiceConfig{GenerateNfs,
                              {kUsersTable, kListTable, kMembersTable, kFilesysTable,
                               kNfsPhysTable, kNfsQuotaTable, kServerHostsTable},
                              "syncdir /site/moira\nexec update_lockers\n"});

  // SMTP (mail hub): the aliases file is staged but not auto-installed — the
  // mail spool must be disabled during the switchover (paper section 5.8.2).
  dcm->ConfigureService(
      "SMTP", DcmServiceConfig{GenerateMail,
                               {kUsersTable, kListTable, kMembersTable, kMachineTable,
                                kStringsTable},
                               "syncdir /usr/lib/moira.staged\n"});

  // ZEPHYR: acl files installed and the servers restarted.
  dcm->ConfigureService(
      "ZEPHYR", DcmServiceConfig{GenerateZephyrAcls,
                                 {kZephyrTable, kListTable, kMembersTable, kUsersTable},
                                 "syncdir /etc/athena/zephyr/acl\nexec restart_zephyrd\n"});
}

}  // namespace moira
