#include "src/dcm/dcm.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "src/common/checksum.h"
#include "src/common/strutil.h"
#include "src/db/exec.h"

namespace moira {
namespace {

// Total rows examined across every table of a context's database: the
// generation-read ledger the replica-offload counters are built from.
int64_t DbRowsExamined(MoiraContext& mc) {
  int64_t total = 0;
  for (const std::string& name : mc.db().TableNames()) {
    const Table* table = mc.db().GetTable(name);
    total += table->stats().rows_examined;
  }
  return total;
}

// Splits a script into trimmed lines.
std::vector<std::string> ScriptLines(const std::string& script) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < script.size()) {
    size_t nl = script.find('\n', pos);
    std::string_view line(script.data() + pos,
                          (nl == std::string::npos ? script.size() : nl) - pos);
    pos = nl == std::string::npos ? script.size() : nl + 1;
    std::string_view trimmed = TrimWhitespace(line);
    if (!trimmed.empty()) {
      lines.emplace_back(trimmed);
    }
  }
  return lines;
}

// The install path of an archive member under a service's script: an
// "extract <member> <dest>" line pins it exactly, a "syncdir <dir>" line
// maps the whole archive to <dir>/<member>.
struct InstallPaths {
  std::map<std::string, std::string> by_member;
  std::string sync_dir;

  explicit InstallPaths(const std::string& script) {
    for (const std::string& line : ScriptLines(script)) {
      std::vector<std::string> words = Split(line, ' ');
      if (words.size() == 3 && words[0] == "extract") {
        by_member[words[1]] = words[2];
      } else if (words.size() == 2 && words[0] == "syncdir") {
        sync_dir = words[1];
      }
    }
  }

  std::string For(const std::string& member) const {
    auto it = by_member.find(member);
    if (it != by_member.end()) {
      return it->second;
    }
    return sync_dir.empty() ? member : sync_dir + "/" + member;
  }
};

// Derives the patch-apply script from a service's install script: the
// extract/install/syncdir file plumbing collapses into one applypatch
// instruction (the patch carries its own install paths); the exec/signal
// tail is preserved so daemons still restart after a patched install.
std::string PatchScript(const std::string& script) {
  std::string out = "applypatch\n";
  for (const std::string& line : ScriptLines(script)) {
    std::vector<std::string> words = Split(line, ' ');
    if (words[0] == "extract" || words[0] == "install" || words[0] == "syncdir") {
      continue;
    }
    out += line + "\n";
  }
  return out;
}

// Regenerate-and-diff fallback for services without a patch builder: every
// member whose bytes changed becomes a whole-file replace edit.  Machines
// absent from the old result are skipped — their hosts fail the
// lts >= base_dfgen gate and take the full archive.
ServicePatch DiffResults(const GeneratorResult& old_result,
                         const GeneratorResult& fresh) {
  ServicePatch sp;
  auto diff_archive = [](const Archive& old_archive, const Archive& new_archive,
                         std::map<std::string, MemberEdit>* edits) {
    for (const auto& [member, contents] : new_archive.members()) {
      const std::string* old_contents = old_archive.Find(member);
      if (old_contents == nullptr || *old_contents != contents) {
        MemberEdit edit;
        edit.replace = true;
        edit.replacement = contents;
        (*edits)[member] = std::move(edit);
      }
    }
  };
  diff_archive(old_result.common, fresh.common, &sp.common);
  for (const auto& [machine, archive] : fresh.per_host) {
    auto it = old_result.per_host.find(machine);
    if (it == old_result.per_host.end()) {
      continue;
    }
    std::map<std::string, MemberEdit> edits;
    diff_archive(it->second, archive, &edits);
    if (!edits.empty()) {
      sp.per_host[machine] = std::move(edits);
    }
  }
  return sp;
}

}  // namespace

// Snapshot of one servers-relation row the DCM works from.
struct Dcm::ServiceRow {
  size_t row = 0;
  std::string name;
  int64_t interval_minutes = 0;
  std::string target;
  int64_t dfgen = 0;
  int64_t dfcheck = 0;
  std::string type;
  bool enable = false;
  bool harderror = false;
};

Dcm::Dcm(MoiraContext* mc, KerberosRealm* realm, ZephyrBus* zephyr, HostDirectory* hosts)
    : mc_(mc),
      zephyr_(zephyr),
      hosts_(hosts),
      update_client_(realm, kDcmPrincipal, "dcm-service-password") {
  // Register the DCM's own principal so it can obtain update tickets.
  realm->AddPrincipal(kDcmPrincipal, "dcm-service-password");
  set_resilience(resilience_);
}

void Dcm::set_resilience(const DcmResilienceConfig& config) {
  resilience_ = config;
  update_client_.set_retry_policy(config.enabled ? config.retry : RetryPolicy{});
  update_client_.set_deadlines(config.enabled ? config.deadlines : UpdateDeadlines{});
}

void Dcm::ConfigureService(const std::string& service, DcmServiceConfig config) {
  configs_[ToUpperCopy(service)] = std::move(config);
}

void Dcm::SetReadSource(MoiraContext* replica,
                        std::function<bool(uint64_t)> catch_up) {
  read_mc_ = replica;
  catch_up_ = std::move(catch_up);
  read_source_ok_ = false;
}

MoiraContext& Dcm::GenContext() {
  return read_source_ok_ && read_mc_ != nullptr ? *read_mc_ : *mc_;
}

void Dcm::ChargeGenerationRows(MoiraContext& gen, int64_t rows_before,
                               DcmRunSummary* summary) {
  int64_t delta = DbRowsExamined(gen) - rows_before;
  if (&gen == mc_) {
    summary->generation_rows_primary += delta;
  } else {
    summary->generation_rows_replica += delta;
  }
}

bool Dcm::ResolveEdits(const std::map<std::string, MemberEdit>& edits,
                       const std::string& script, Archive* archive,
                       ArchivePatch* out) {
  static const std::string kEmptyBase;
  InstallPaths paths(script);
  for (const auto& [member, edit] : edits) {
    const std::string* old_contents = archive->Find(member);
    if (old_contents == nullptr) {
      // A keyed edit needs the member's current bytes; only whole-file
      // replacements may introduce a member (hosts that already carry a
      // stale copy fail the base CRC and take the full archive).
      if (!edit.replace) {
        return false;
      }
      old_contents = &kEmptyBase;
    }
    std::string fresh;
    if (edit.replace) {
      fresh = edit.replacement;
    } else {
      KeyedFile file = KeyedFile::Parse(*old_contents, edit.rule);
      for (const PatchOp& op : edit.ops) {
        if (op.kind == PatchOp::kDelete) {
          file.DeleteBlock(op.key);
        } else {
          file.SetBlock(op.key, op.block);
        }
      }
      fresh = file.Serialize();
    }
    if (fresh == *old_contents) {
      continue;  // the mutation had no effect on this member's bytes
    }
    FilePatch patch;
    patch.member = member;
    patch.path = paths.For(member);
    patch.key_rule = edit.rule;
    patch.base_crc = Crc32(*old_contents);
    patch.result_crc = Crc32(fresh);
    patch.replace = edit.replace;
    if (edit.replace) {
      patch.contents = edit.replacement;
    } else {
      patch.ops = edit.ops;
    }
    out->Add(std::move(patch));
    archive->Add(member, std::move(fresh));
  }
  return true;
}

const GeneratorResult* Dcm::StagedPayload(const std::string& service) const {
  auto it = staged_.find(ToUpperCopy(service));
  return it != staged_.end() ? &it->second : nullptr;
}

bool Dcm::GenerationDue(const ServiceRow& service) const {
  return mc_->Now() >= service.dfcheck + service.interval_minutes * kSecondsPerMinute;
}

bool Dcm::TablesChangedSince(const DcmServiceConfig& config, UnixTime since) const {
  for (const std::string& table_name : config.relevant_tables) {
    const Table* table = mc_->db().GetTable(table_name);
    if (table != nullptr && table->stats().modtime > since) {
      return true;
    }
  }
  return false;
}

void Dcm::ReportHardError(const std::string& where, const std::string& message) {
  // Paper section 5.7.1: a zephyr message is sent to class MOIRA instance
  // DCM indicating the error.
  zephyr_->Send("MOIRA", "DCM", "dcm", where + ": " + message);
}

void Dcm::GeneratePhase(const ServiceRow& service, DcmRunSummary* summary) {
  auto config_it = configs_.find(service.name);
  Table* servers = mc_->servers();
  ScopedLock lock(&locks_, "service:" + service.name, LockManager::Mode::kExclusive);
  if (!lock.held()) {
    return;  // another DCM is generating this service right now
  }
  MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{1}));
  const UnixTime now = mc_->Now();
  if (journal_ != nullptr) {
    // Journal mode: delta extraction and patch staging replace the
    // table-modtime check entirely.
    JournalGenerate(service, config_it->second, now, summary);
    MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{0}));
    return;
  }
  // Incremental check: only rebuild if a relevant table changed since the
  // files were last generated (paper section 5.1.E).
  if (staged_.contains(service.name) &&
      !TablesChangedSince(config_it->second, service.dfgen)) {
    MoiraContext::SetCellInternal(servers, service.row, "dfcheck", Value(now));
    ++summary->services_no_change;
    MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{0}));
    return;
  }
  GeneratorResult result;
  int32_t code = config_it->second.generator(*mc_, &result);
  if (code != MR_SUCCESS) {
    MoiraContext::SetCellInternal(servers, service.row, "harderror", Value(int64_t{code}));
    MoiraContext::SetCellInternal(servers, service.row, "errmsg", Value(ErrorMessage(code)));
    ReportHardError("generator " + service.name, ErrorMessage(code));
    ++summary->generation_hard_errors;
    MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{0}));
    return;
  }
  // Count distinct generated files: per-host members with identical content
  // (e.g. a shared credentials file) count once.
  std::set<std::pair<std::string, uint32_t>> distinct;
  for (const auto& [name, contents] : result.common.members()) {
    distinct.emplace(name, Crc32(contents));
  }
  for (const auto& [host, archive] : result.per_host) {
    for (const auto& [name, contents] : archive.members()) {
      distinct.emplace(name, Crc32(contents));
    }
  }
  summary->files_generated += static_cast<int>(distinct.size());
  staged_[service.name] = std::move(result);
  MoiraContext::SetCellInternal(servers, service.row, "dfgen", Value(now));
  MoiraContext::SetCellInternal(servers, service.row, "dfcheck", Value(now));
  ++summary->services_generated;
  MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(int64_t{0}));
}

void Dcm::JournalGenerate(const ServiceRow& service, const DcmServiceConfig& config,
                          UnixTime now, DcmRunSummary* summary) {
  Table* servers = mc_->servers();
  MoiraContext& gen = GenContext();
  const int64_t rows_before = DbRowsExamined(gen);
  const uint64_t last_gen = static_cast<uint64_t>(
      MoiraContext::IntCell(servers, service.row, "last_gen_seq"));
  const uint64_t high = pass_high_seq_;

  // Advances the consumed-journal marker (and dfgen when fresh files were
  // staged, so hosts become due).
  auto advance = [&](bool bump_dfgen) {
    if (bump_dfgen) {
      MoiraContext::SetCellInternal(servers, service.row, "dfgen", Value(now));
    }
    MoiraContext::SetCellInternal(servers, service.row, "dfcheck", Value(now));
    MoiraContext::SetCellInternal(servers, service.row, "last_gen_seq",
                                  Value(static_cast<int64_t>(high)));
  };

  auto skip_pass = [&] {
    advance(/*bump_dfgen=*/false);
    ++summary->services_no_change;
    ++summary->services_delta_skipped;
  };

  auto count_distinct_files = [&](const GeneratorResult& result) {
    std::set<std::pair<std::string, uint32_t>> distinct;
    for (const auto& [name, contents] : result.common.members()) {
      distinct.emplace(name, Crc32(contents));
    }
    for (const auto& [host, archive] : result.per_host) {
      for (const auto& [name, contents] : archive.members()) {
        distinct.emplace(name, Crc32(contents));
      }
    }
    summary->files_generated += static_cast<int>(distinct.size());
  };

  // Full regeneration: first pass, truncated journal, unbounded mutation
  // reach, or a patch build that could not complete.  Clears the patch state
  // so every host takes the full archive.
  auto full_regen = [&](bool truncated) {
    patch_state_.erase(service.name);
    ++summary->full_regens;
    if (truncated) {
      ++summary->truncation_fallbacks;
    }
    GeneratorResult result;
    int32_t code = config.generator(gen, &result);
    if (code != MR_SUCCESS) {
      MoiraContext::SetCellInternal(servers, service.row, "harderror",
                                    Value(int64_t{code}));
      MoiraContext::SetCellInternal(servers, service.row, "errmsg",
                                    Value(ErrorMessage(code)));
      ReportHardError("generator " + service.name, ErrorMessage(code));
      ++summary->generation_hard_errors;
      return;
    }
    count_distinct_files(result);
    staged_[service.name] = std::move(result);
    advance(/*bump_dfgen=*/true);
    ++summary->services_generated;
  };

  auto run = [&] {
    if (!staged_.contains(service.name)) {
      // First journal-mode pass (or a restarted DCM): no staged base to
      // patch against.
      full_regen(/*truncated=*/false);
      return;
    }
    if (journal_->base_seq() > last_gen) {
      // Entries (last_gen, base_seq] were pruned past a checkpoint: the
      // delta cannot be reconstructed, so regenerate — never ship a gapped
      // patch (same contract as the replica snapshot fallback).
      full_regen(/*truncated=*/true);
      return;
    }
    if (high <= last_gen) {
      skip_pass();
      return;
    }
    std::vector<JournalEntry> entries = journal_->EntriesFromSeq(last_gen + 1);
    while (!entries.empty() && entries.back().seq > high) {
      entries.pop_back();  // appended after this pass's high-water snapshot
    }
    summary->journal_entries_examined += static_cast<int64_t>(entries.size());
    DeltaPlan plan = ExtractDeltaPlan(gen, entries);
    if (plan.FullFor(service.name)) {
      full_regen(/*truncated=*/false);
      return;
    }
    if (config.delta_affected ? !config.delta_affected(plan) : plan.entries == 0) {
      skip_pass();
      return;
    }

    GeneratorResult& staged = staged_[service.name];
    std::set<std::string> old_machines;
    for (const auto& [machine, archive] : staged.per_host) {
      old_machines.insert(machine);
    }
    ServicePatch sp;
    GeneratorResult fresh;
    bool have_fresh = false;
    if (config.patch_builder) {
      if (config.patch_builder(gen, plan, staged, &sp) != MR_SUCCESS) {
        full_regen(/*truncated=*/false);
        return;
      }
    } else {
      // No keyed builder: regenerate and diff, shipping only changed members.
      if (config.generator(gen, &fresh) != MR_SUCCESS) {
        full_regen(/*truncated=*/false);
        return;
      }
      sp = DiffResults(staged, fresh);
      have_fresh = true;
    }

    PatchState ps;
    ps.base_dfgen = MoiraContext::IntCell(servers, service.row, "dfgen");
    ps.script = PatchScript(config.script);
    int total_files = 0;
    ArchivePatch common_patch;
    if (!ResolveEdits(sp.common, config.script, &staged.common, &common_patch)) {
      full_regen(/*truncated=*/false);
      return;
    }
    if (!common_patch.empty()) {
      total_files += static_cast<int>(common_patch.size());
      ps.per_host[""] =
          HostPatch{common_patch.Serialize(), static_cast<int>(common_patch.size())};
    }
    for (const auto& [machine, edits] : sp.per_host) {
      auto archive_it = staged.per_host.find(machine);
      if (archive_it == staged.per_host.end()) {
        full_regen(/*truncated=*/false);
        return;
      }
      ArchivePatch host_patch;
      if (!ResolveEdits(edits, config.script, &archive_it->second, &host_patch)) {
        full_regen(/*truncated=*/false);
        return;
      }
      if (!host_patch.empty()) {
        total_files += static_cast<int>(host_patch.size());
        ps.per_host[machine] =
            HostPatch{host_patch.Serialize(), static_cast<int>(host_patch.size())};
      }
    }
    if (have_fresh) {
      staged_[service.name] = std::move(fresh);
    }
    if (total_files == 0) {
      // Every recomputed block matched the staged bytes: the mutations had
      // no effect on this service's files.
      skip_pass();
      return;
    }
    // Hosts whose per-host archive was untouched this pass still need their
    // lts bumped; they get an empty (verify-nothing) patch.
    std::string empty_patch = ArchivePatch().Serialize();
    for (const std::string& machine : old_machines) {
      if (!ps.per_host.contains(machine)) {
        ps.per_host[machine] = HostPatch{empty_patch, 0};
      }
    }
    patch_state_[service.name] = std::move(ps);
    advance(/*bump_dfgen=*/true);
    summary->files_generated += total_files;
    ++summary->services_generated;
    ++summary->services_patched;
  };
  run();
  ChargeGenerationRows(gen, rows_before, summary);
}

void Dcm::HostScanPhase(const ServiceRow& service, DcmRunSummary* summary) {
  auto staged_it = staged_.find(service.name);
  if (staged_it == staged_.end()) {
    // Nothing staged (e.g. the DCM restarted): regenerate on demand without
    // touching dfgen so host due-ness is preserved.  In journal mode
    // last_gen_seq is also left alone — the staged files simply reflect a
    // state at least as new, which idempotent keyed recomputes tolerate.
    auto config_it = configs_.find(service.name);
    MoiraContext& gen = GenContext();
    const int64_t rows_before = DbRowsExamined(gen);
    GeneratorResult result;
    int32_t code = config_it->second.generator(gen, &result);
    ChargeGenerationRows(gen, rows_before, summary);
    if (code != MR_SUCCESS) {
      return;
    }
    staged_it = staged_.emplace(service.name, std::move(result)).first;
  }
  // Replicated services are locked exclusively during the host scan; unique
  // services share the lock (paper section 5.7.1).
  LockManager::Mode mode = service.type == "REPLICAT" ? LockManager::Mode::kExclusive
                                                      : LockManager::Mode::kShared;
  ScopedLock service_lock(&locks_, "service:" + service.name, mode);
  if (!service_lock.held()) {
    return;
  }
  Table* servers = mc_->servers();
  Table* sh = mc_->serverhosts();
  const UnixTime dfgen = MoiraContext::IntCell(servers, service.row, "dfgen");
  // Per-service breaker tunables, falling back to the global knobs.
  int breaker_threshold = resilience_.breaker_threshold;
  UnixTime breaker_cooldown = resilience_.breaker_cooldown;
  if (auto tunables = resilience_.per_service.find(service.name);
      tunables != resilience_.per_service.end()) {
    if (tunables->second.threshold > 0) {
      breaker_threshold = tunables->second.threshold;
    }
    if (tunables->second.cooldown > 0) {
      breaker_cooldown = tunables->second.cooldown;
    }
  }
  // The patch staged for this service, if its last generating pass was
  // incremental.
  const PatchState* patch_state = nullptr;
  if (journal_ != nullptr) {
    auto ps_it = patch_state_.find(service.name);
    if (ps_it != patch_state_.end()) {
      patch_state = &ps_it->second;
    }
  }
  // A host needs an update when it is eligible (enabled, no standing hard
  // error) and either stale — last success predates the current data files
  // (lts < dfgen) — or explicitly forced via the override flag.  Both arms
  // are planned predicates rather than opaque in-loop checks, so the planner
  // picks the most selective index for each; Rows() is storage-ordered and
  // deduplicated, so the two arms merge with a set union.
  auto eligible = [&] {
    return From(sh)
        .WhereEq("service", Value(service.name))
        .WhereGe("enable", Value(int64_t{1}))
        .WhereEq("hosterror", Value(int64_t{0}));
  };
  std::vector<size_t> stale = eligible().WhereLt("lts", Value(dfgen)).Rows();
  std::vector<size_t> forced = eligible().WhereGe("override", Value(int64_t{1})).Rows();
  std::vector<size_t> host_rows;
  host_rows.reserve(stale.size() + forced.size());
  std::set_union(stale.begin(), stale.end(), forced.begin(), forced.end(),
                 std::back_inserter(host_rows));
  bool replicated_halt = false;
  for (size_t row : host_rows) {
    if (replicated_halt) {
      break;
    }
    RowRef mach = mc_->ExactOne(mc_->machine(), "mach_id",
                                Value(MoiraContext::IntCell(sh, row, "mach_id")),
                                MR_MACHINE);
    if (mach.code != MR_SUCCESS) {
      continue;
    }
    const std::string& machine_name =
        MoiraContext::StrCell(mc_->machine(), mach.row, "name");
    ScopedLock host_lock(&locks_, "host:" + machine_name, LockManager::Mode::kExclusive);
    if (!host_lock.held()) {
      continue;
    }
    // Circuit breaker: an open breaker quarantines the host — skipped
    // outright, consuming zero update attempts — until its cool-down
    // expires, after which one half-open probe attempt decides whether to
    // close it again.
    bool half_open_probe = false;
    if (resilience_.enabled) {
      int64_t breaker = MoiraContext::IntCell(sh, row, "breaker");
      if (breaker == kBreakerOpen) {
        if (mc_->Now() < MoiraContext::IntCell(sh, row, "breaker_until")) {
          ++summary->breaker_skips;
          continue;
        }
        MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerHalfOpen));
        half_open_probe = true;
      } else if (breaker == kBreakerHalfOpen) {
        // A previous DCM died mid-probe; probe again rather than trust it.
        half_open_probe = true;
      }
    }
    MoiraContext::SetCellInternal(sh, row, "inprogress", Value(int64_t{1}));
    const UnixTime now = mc_->Now();
    MoiraContext::SetCellInternal(sh, row, "ltt", Value(now));
    const Archive& archive = staged_it->second.ForHost(machine_name);
    // Patch eligibility: the host installed the previous payload (lts at
    // least the patch's base dfgen) and is not explicitly forced.  Forced
    // hosts and stragglers receive the full archive.
    const HostPatch* host_patch = nullptr;
    if (patch_state != nullptr &&
        MoiraContext::IntCell(sh, row, "override") == 0 &&
        MoiraContext::IntCell(sh, row, "lts") >= patch_state->base_dfgen) {
      auto hp_it = patch_state->per_host.find(machine_name);
      if (hp_it == patch_state->per_host.end()) {
        hp_it = patch_state->per_host.find("");
      }
      if (hp_it != patch_state->per_host.end()) {
        host_patch = &hp_it->second;
      }
    }
    bool use_patch = host_patch != nullptr;
    std::string payload = use_patch ? host_patch->bytes : archive.Serialize();
    UpdateOutcome outcome;
    if (hosts_->down()) {
      // Hesiod outage: the machine cannot be resolved right now.  That is a
      // transient directory failure, not a missing serverhosts entry — defer
      // softly instead of hard-failing the host.
      ++summary->directory_outages;
      outcome = UpdateOutcome{MR_UPDATE_CONN, /*hard=*/false,
                              "directory server unreachable", 0, 0, UpdatePhase::kNone};
    } else {
      outcome = update_client_.Update(
          hosts_->Find(machine_name), service.target, payload,
          use_patch ? patch_state->script : configs_[service.name].script,
          /*single_attempt=*/half_open_probe);
      if (outcome.code == MR_UPDATE_PATCH && use_patch) {
        // The host's installed base did not match the patch (missed pass,
        // torn write, manual edit): reship the full archive in the same pass
        // so it self-heals instead of drifting.
        ++summary->patch_fallbacks;
        use_patch = false;
        payload = archive.Serialize();
        outcome = update_client_.Update(hosts_->Find(machine_name), service.target,
                                        payload, configs_[service.name].script,
                                        /*single_attempt=*/half_open_probe);
      }
    }
    if (outcome.attempts > 1) {
      summary->host_retries += outcome.attempts - 1;
    }
    if (outcome.code == MR_UPDATE_TIMEOUT) {
      ++summary->update_timeouts;
    }
    if (outcome.code == MR_SUCCESS) {
      MoiraContext::SetCellInternal(sh, row, "success", Value(int64_t{1}));
      MoiraContext::SetCellInternal(sh, row, "lts", Value(now));
      MoiraContext::SetCellInternal(sh, row, "override", Value(int64_t{0}));
      MoiraContext::SetCellInternal(sh, row, "hosterrmsg", Value(""));
      MoiraContext::SetCellInternal(sh, row, "consec_soft", Value(int64_t{0}));
      if (MoiraContext::IntCell(sh, row, "breaker") != kBreakerClosed) {
        MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerClosed));
        MoiraContext::SetCellInternal(sh, row, "breaker_until", Value(int64_t{0}));
      }
      if (half_open_probe) {
        ++summary->probe_successes;
      }
      ++summary->hosts_updated;
      if (use_patch) {
        ++summary->patch_ships;
        summary->propagations += host_patch->files;
      } else {
        summary->propagations += static_cast<int>(archive.size());
      }
      summary->bytes_propagated += static_cast<int64_t>(payload.size());
    } else if (!outcome.hard) {
      // Soft failure: record the message, retry on a later pass.
      MoiraContext::SetCellInternal(sh, row, "success", Value(int64_t{0}));
      MoiraContext::SetCellInternal(sh, row, "hosterrmsg", Value(outcome.message));
      ++summary->host_soft_failures;
      const int64_t consec = MoiraContext::IntCell(sh, row, "consec_soft") + 1;
      MoiraContext::SetCellInternal(sh, row, "consec_soft", Value(consec));
      if (resilience_.enabled) {
        // In-pass backoffs may have advanced the clock; the cool-down starts
        // from when the attempt actually ended.
        const UnixTime after = mc_->Now();
        if (half_open_probe) {
          MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerOpen));
          MoiraContext::SetCellInternal(sh, row, "breaker_until",
                                        Value(after + breaker_cooldown));
          ++summary->probe_failures;
        } else if (consec >= breaker_threshold) {
          MoiraContext::SetCellInternal(sh, row, "breaker", Value(kBreakerOpen));
          MoiraContext::SetCellInternal(sh, row, "breaker_until",
                                        Value(after + breaker_cooldown));
          MoiraContext::SetCellInternal(
              sh, row, "breaker_opens",
              Value(MoiraContext::IntCell(sh, row, "breaker_opens") + 1));
          ++summary->breaker_opens;
          // Escalate once per quarantine, not once per skipped pass.
          ReportHardError("quarantine " + service.name + "/" + machine_name,
                          outcome.message + " (" + std::to_string(consec) +
                              " consecutive soft failures)");
        }
      }
    } else {
      // Hard failure: record, notify via zephyr and mail, and for a
      // replicated service stop updating its other hosts.
      MoiraContext::SetCellInternal(sh, row, "success", Value(int64_t{0}));
      MoiraContext::SetCellInternal(sh, row, "hosterror", Value(int64_t{outcome.code}));
      MoiraContext::SetCellInternal(sh, row, "hosterrmsg", Value(outcome.message));
      ReportHardError("update " + service.name + "/" + machine_name, outcome.message);
      zephyr_->Send("MAIL", "moira-maintainers", "dcm",
                    "update failed hard: " + service.name + "/" + machine_name);
      ++summary->host_hard_failures;
      if (service.type == "REPLICAT") {
        MoiraContext::SetCellInternal(servers, service.row, "harderror",
                              Value(int64_t{outcome.code}));
        MoiraContext::SetCellInternal(servers, service.row, "errmsg", Value(outcome.message));
        replicated_halt = true;
      }
    }
    MoiraContext::SetCellInternal(sh, row, "inprogress", Value(int64_t{0}));
  }
}

DcmRunSummary Dcm::RunOnce() {
  DcmRunSummary summary;
  // Disable file and dcm_enable state variable (paper section 5.7.1).
  if (nodcm_) {
    return summary;
  }
  int64_t dcm_enable = 0;
  if (mc_->GetValue("dcm_enable", &dcm_enable) != MR_SUCCESS || dcm_enable == 0) {
    return summary;
  }
  summary.ran = true;
  // Journal mode: fix the pass's high-water seq, and try to bring the read
  // replica (if any) up to it so generation reads can be offloaded.  All
  // writes (dfgen/lts/last_gen_seq bookkeeping) stay on the primary.
  pass_high_seq_ = journal_ != nullptr ? journal_->last_seq() : 0;
  read_source_ok_ = journal_ != nullptr && read_mc_ != nullptr &&
                    catch_up_ && catch_up_(pass_high_seq_);
  Table* servers = mc_->servers();
  std::vector<ServiceRow> services;
  From(servers).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    ServiceRow service;
    service.row = row;
    service.name = MoiraContext::StrCell(servers, row, "name");
    service.interval_minutes = MoiraContext::IntCell(servers, row, "update_int");
    service.target = MoiraContext::StrCell(servers, row, "target_file");
    service.dfgen = MoiraContext::IntCell(servers, row, "dfgen");
    service.dfcheck = MoiraContext::IntCell(servers, row, "dfcheck");
    service.type = MoiraContext::StrCell(servers, row, "type");
    service.enable = MoiraContext::IntCell(servers, row, "enable") != 0;
    service.harderror = MoiraContext::IntCell(servers, row, "harderror") != 0;
    services.push_back(std::move(service));
  });
  for (const ServiceRow& service : services) {
    // Qualify: enabled, no hard errors, non-zero interval, generator exists.
    if (!service.enable || service.harderror || service.interval_minutes <= 0 ||
        !configs_.contains(service.name)) {
      continue;
    }
    ++summary.services_considered;
    if (GenerationDue(service)) {
      GeneratePhase(service, &summary);
    }
    // The hosts are scanned for every qualified service, regardless of
    // whether it was time to build data files (paper section 5.7.1).
    ServiceRow refreshed = service;
    refreshed.dfgen = MoiraContext::IntCell(servers, service.row, "dfgen");
    if (MoiraContext::IntCell(servers, service.row, "harderror") != 0) {
      continue;  // generation just failed hard
    }
    HostScanPhase(refreshed, &summary);
  }
  return summary;
}

void ConfigureStandardServices(Dcm* dcm) {
  // HESIOD: 11 .db files extracted one at a time and swapped in atomically,
  // then the name server is killed and restarted to reload them.
  std::string hesiod_script;
  for (const char* file :
       {"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db", "passwd.db",
        "pobox.db", "printcap.db", "service.db", "sloc.db", "uid.db"}) {
    hesiod_script += std::string("extract ") + file + " /etc/athena/hesiod/" + file + "\n";
    hesiod_script += std::string("install /etc/athena/hesiod/") + file + "\n";
  }
  hesiod_script += "exec restart_hesiod\n";
  dcm->ConfigureService(
      "HESIOD",
      DcmServiceConfig{GenerateHesiod,
                       {kUsersTable, kMachineTable, kClusterTable, kMcmapTable, kSvcTable,
                        kListTable, kMembersTable, kFilesysTable, kPrintcapTable,
                        kServicesTable, kServerHostsTable},
                       hesiod_script, BuildHesiodPatch,
                       [](const DeltaPlan& plan) {
                         return !plan.users.empty() || !plan.lists.empty() ||
                                plan.clusters_dirty || plan.filsys_dirty ||
                                plan.printcaps_dirty || plan.services_dirty ||
                                plan.sloc_dirty;
                       }});

  // NFS: partition files and credentials, then the quota/locker script runs.
  dcm->ConfigureService(
      "NFS", DcmServiceConfig{GenerateNfs,
                              {kUsersTable, kListTable, kMembersTable, kFilesysTable,
                               kNfsPhysTable, kNfsQuotaTable, kServerHostsTable},
                              "syncdir /site/moira\nexec update_lockers\n",
                              BuildNfsPatch, [](const DeltaPlan& plan) {
                                return !plan.users.empty() || !plan.quotas.empty();
                              }});

  // SMTP (mail hub): the aliases file is staged but not auto-installed — the
  // mail spool must be disabled during the switchover (paper section 5.8.2).
  dcm->ConfigureService(
      "SMTP", DcmServiceConfig{GenerateMail,
                               {kUsersTable, kListTable, kMembersTable, kMachineTable,
                                kStringsTable},
                               "syncdir /usr/lib/moira.staged\n", BuildMailPatch,
                               [](const DeltaPlan& plan) {
                                 return !plan.users.empty() || !plan.lists.empty();
                               }});

  // ZEPHYR: acl files installed and the servers restarted.
  // No patch builder: journal mode regenerates and diffs the acl files
  // (zephyr class membership expansion is not block-local).
  dcm->ConfigureService(
      "ZEPHYR", DcmServiceConfig{GenerateZephyrAcls,
                                 {kZephyrTable, kListTable, kMembersTable, kUsersTable},
                                 "syncdir /etc/athena/zephyr/acl\nexec restart_zephyrd\n",
                                 nullptr, [](const DeltaPlan& plan) {
                                   return plan.zephyr_dirty;
                                 }});
}

}  // namespace moira
