// A hermetic, uniform replication cluster for failover tests and benches
// (DESIGN.md "Heartbeats, elections, and epoch fencing").
//
// Every node is a ReplicaServer — the initial primary is simply node 0
// promoted at epoch 1 — wired all-to-all through loopback connectors that
// pass every byte through a directional NetworkPartition matrix.  That makes
// the interesting failure shapes one-liners: a full partition blocks both
// directions, an asymmetric partition blocks one (requests arrive but
// replies are lost, or vice versa), and healing is instantaneous.  Tick()
// advances every clock and runs one heartbeat round in deterministic (index)
// order, which is all the scheduling the decentralized election needs.
#ifndef MOIRA_SRC_REPL_CLUSTER_H_
#define MOIRA_SRC_REPL_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/client/client.h"
#include "src/dcm/dcm.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/repl/replica.h"

namespace moira {

// Directional reachability between named endpoints.  Everything is allowed
// until blocked; blocking ("a", "b") drops a->b traffic only (requests from
// a, and — because the transport is request/reply — replies travelling back
// to a are cut by the matching Recv check on the same edge).
class NetworkPartition {
 public:
  void Block(const std::string& from, const std::string& to) {
    blocked_.insert({from, to});
  }
  void BlockBoth(const std::string& a, const std::string& b) {
    Block(a, b);
    Block(b, a);
  }
  void Heal(const std::string& from, const std::string& to) {
    blocked_.erase({from, to});
  }
  void HealBoth(const std::string& a, const std::string& b) {
    Heal(a, b);
    Heal(b, a);
  }
  void HealAll() { blocked_.clear(); }
  bool Allowed(const std::string& from, const std::string& to) const {
    return blocked_.find({from, to}) == blocked_.end();
  }

  // A connector from `from` to `to`'s handler whose channel consults this
  // matrix on every exchange: Send drops when from->to is blocked (the
  // request never arrives), Recv drops when to->from is blocked (the request
  // WAS delivered and applied, but the reply is lost — the asymmetric case
  // that forces idempotent re-delivery).  The matrix must outlive every
  // channel built here.
  MrClient::Connector Connector(std::string from, std::string to,
                                MessageHandler* handler) const;

 private:
  std::set<std::pair<std::string, std::string>> blocked_;
};

struct ReplClusterOptions {
  int nodes = 3;
  // Heartbeat misses before a replica starts failover.
  int missed_heartbeats = 2;
  // Quorum configuration stamped into every node's embedded server.
  // write_quorum 0 = majority of cluster_size (= nodes).
  int write_quorum = 0;
  bool quorum_ack_local = false;
  int quorum_attempts = 3;
  UnixTime start_time = 568000000;
};

class ReplCluster {
 public:
  explicit ReplCluster(ReplClusterOptions options = {});
  ~ReplCluster();

  int size() const { return static_cast<int>(nodes_.size()); }
  ReplicaServer* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }
  const std::string& node_name(int i) const {
    return names_[static_cast<size_t>(i)];
  }
  NetworkPartition& net() { return net_; }
  KerberosRealm& realm() { return *realm_; }
  SimulatedClock& clock() { return clock_; }

  // One simulated heartbeat interval: advances the shared clock and every
  // node clock by `dt` seconds, then runs HeartbeatTick on every node in
  // index order.  Returns each node's event (crashed nodes report kCrashed).
  std::vector<ReplicaServer::HeartbeatEvent> Tick(UnixTime dt = 1);

  // The unique live, unfenced primary — nullptr if none or several (several
  // should be impossible; the split-brain tests assert via WritablePrimaries).
  ReplicaServer* primary();
  // Every node currently accepting writes (promoted, alive, unfenced).
  std::vector<ReplicaServer*> WritablePrimaries();

  // A partition-aware connector from the external "client" endpoint to node
  // i (client traffic can be partitioned too, but is allowed by default).
  MrClient::Connector ClientConnector(int i);

  // Canonical full-database dump of node i (BackupManager format): the
  // byte-identical convergence oracle.
  std::string DumpNode(int i);

  static constexpr const char* kClientEndpoint = "client";

 private:
  ReplClusterOptions options_;
  SimulatedClock clock_;  // realm + external-client clock
  std::unique_ptr<KerberosRealm> realm_;
  NetworkPartition net_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<ReplicaServer>> nodes_;
};

// Satellite glue: route a DCM's generation reads through a live cluster
// replica.  The catch-up hook pulls the replica over its wire link and
// reports whether it reached the pass's high-water seq; on false the DCM
// falls back to primary reads (its existing contract), so a crashed or
// partitioned replica degrades rather than breaks propagation.
void AttachDcmReadSource(Dcm* dcm, ReplicaServer* replica);

}  // namespace moira

#endif  // MOIRA_SRC_REPL_CLUSTER_H_
