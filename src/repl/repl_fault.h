// Seeded fault injection for the replication layer.
//
// Mirrors the DCM fault harness (src/update/sim_host.h): every fault draw
// comes from its own SplitMix64 stream keyed on (seed, round, replica index),
// so a given seed produces the same fault schedule regardless of how many
// random draws any round consumes.  Faults modelled per round:
//   - crash: the replica dies (stops answering) for one round, then reboots
//     with its state lost and must resynchronize via a snapshot transfer;
//   - link flap: the primary link drops; the next catch-up reconnects,
//     re-authenticates, and resumes from applied_seq + 1;
//   - slow apply: the replica applies at most `slow_apply_limit` entries per
//     catch-up call, building observable lag;
//   - KDC outage: the realm refuses new initial tickets (cached tickets keep
//     working — the catch-up path must ride it out).
//   - torn push: the replica's next kReplPush applies only half its entries
//     and dies mid-reply — the mid-FlushWrites partial write of a quorum
//     batch; the pusher must converge by idempotent re-push;
//   - partition: a random node pair loses both directions for the round;
//   - asymmetric partition: a random ordered pair loses one direction only
//     (requests arrive but replies vanish, or vice versa).
#ifndef MOIRA_SRC_REPL_REPL_FAULT_H_
#define MOIRA_SRC_REPL_REPL_FAULT_H_

#include <cstdint>
#include <vector>

#include <string>

#include "src/krb/kerberos.h"
#include "src/repl/replica.h"

namespace moira {

class NetworkPartition;

struct ReplFaultSpec {
  uint64_t seed = 1988;
  int crash_permille = 0;       // replica crashes for the round
  int flap_permille = 0;        // primary link drops
  int slow_permille = 0;        // apply limit engaged for the round
  int slow_apply_limit = 8;     // entries per catch-up call while slowed
  int kdc_down_permille = 0;    // realm refuses new tickets for the round
  int torn_push_permille = 0;   // next quorum push tears halfway through
  int partition_permille = 0;   // a random pair partitions (both directions)
  int asym_partition_permille = 0;  // a random ordered pair loses one direction
};

class ReplFaultPlan {
 public:
  explicit ReplFaultPlan(const ReplFaultSpec& spec) : spec_(spec) {}

  // Applies round `round`'s draws: reboots replicas crashed in an earlier
  // round (so a crash outage lasts exactly one round), then rolls each
  // replica's crash/flap/slow fate and the realm-wide KDC outage.
  void ArmRound(const std::vector<ReplicaServer*>& replicas, KerberosRealm* realm,
                int round) const;

  // As above, plus the network dimensions: heals the whole partition matrix
  // (last round's cuts last exactly one round, like crashes), then draws this
  // round's full and asymmetric partitions between nodes named in `names`,
  // and each node's torn-push fate.  `net` may be null (network draws skipped,
  // same per-node schedule as the 3-argument form).
  void ArmRound(const std::vector<ReplicaServer*>& replicas, KerberosRealm* realm,
                int round, NetworkPartition* net,
                const std::vector<std::string>& names) const;

  const ReplFaultSpec& spec() const { return spec_; }

 private:
  ReplFaultSpec spec_;
};

}  // namespace moira

#endif  // MOIRA_SRC_REPL_REPL_FAULT_H_
