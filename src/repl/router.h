// Client-side read/write routing over a replicated Moira deployment.
//
// ReplicatedClient presents the ordinary MoiraClientApi but splits traffic:
// mutations go to the primary, retrieval queries fan out round-robin across
// the read replicas.  Read-your-writes consistency rides on a sequence token:
// every successful write records the journal sequence number the primary
// assigned (surfaced in the final reply), and every read is sent as
// kQueryAtSeq carrying the highest token seen.  A replica that cannot reach
// the token (MR_REPL_BEHIND) — or that is down (transport failure) — is
// skipped; if no replica can serve, the read redirects to the primary, which
// trivially satisfies any token it issued.
//
// Failover (DESIGN.md "Heartbeats, elections, and epoch fencing"): with
// endpoints registered and tagged writes enabled, every mutation carries a
// router-generated idempotency tag and is queued until a definitive verdict
// arrives.  When the primary stops answering — transport failure, fencing
// (MR_REPL_EPOCH), a demoted node (MR_REPL_READONLY), or a quorum timeout —
// the router probes every endpoint with the unauthenticated kReplHello,
// adopts the writable node with the highest epoch as its new primary, and
// replays the queued writes in order.  The tags make the replay idempotent:
// a write the old primary applied (and replicated) before dying is recognized
// by the new primary and acked without re-running, so an ack lost in flight
// cannot become a double apply.
#ifndef MOIRA_SRC_REPL_ROUTER_H_
#define MOIRA_SRC_REPL_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/client/client.h"

namespace moira {

// A named node the router can probe and adopt during primary rediscovery.
struct ReplEndpoint {
  std::string name;
  MrClient::Connector connector;
};

class ReplicatedClient final : public MoiraClientApi {
 public:
  // The clients arrive configured (identity, retry policy) and are owned by
  // the router; connect/auth state is managed per client as usual.
  explicit ReplicatedClient(std::unique_ptr<MrClient> primary);

  void AddReplica(std::unique_ptr<MrClient> replica);

  // Routes by query class: retrieval queries to a replica (with the
  // read-your-writes token), everything else — mutations, unknown names, and
  // the server-state queries (_list_users, get_replica_status) — to the
  // primary.
  int32_t Query(std::string_view name, const std::vector<std::string>& args,
                const TupleSink& sink) override;
  int32_t Access(std::string_view name, const std::vector<std::string>& args) override;

  // The read-your-writes token: the highest journal seq this client's writes
  // have been assigned.  Exposed for failover handoff and tests.
  uint64_t write_token() const { return token_; }
  void set_write_token(uint64_t token) { token_ = token; }

  MrClient& primary() { return *primary_; }
  // Replaces the primary client after an operator failover promotion.  The
  // token survives: the promoted replica continues the same sequence.
  void ReplacePrimary(std::unique_ptr<MrClient> primary);
  size_t replica_count() const { return replicas_.size(); }
  MrClient& replica(size_t i) { return *replicas_[i]; }

  // Builds a configured (identity, retry policy) but unconnected client for
  // an endpoint; the router connects and authenticates it itself.
  using ClientFactory = std::function<std::unique_ptr<MrClient>(const ReplEndpoint&)>;

  // Registers the probe/adopt endpoint set for automatic primary
  // rediscovery.  `client_name` is the program name used when the router
  // authenticates an adopted primary.
  void SetEndpoints(std::vector<ReplEndpoint> endpoints, ClientFactory factory,
                    std::string client_name);

  // Turns on tagged (idempotent, replayable) writes.  Tags are
  // "<prefix>:<n>" with n counting up — unique per router lifetime, which is
  // exactly the dedup horizon an in-flight replay needs.
  void EnableTaggedWrites(std::string tag_prefix);

  // Writes whose outcome is still unknown (sent, no definitive verdict).
  // Non-empty after a quorum timeout or an exhausted failover search; the
  // next write (or explicit Flush via any mutation) replays them first.
  size_t pending_writes() const { return pending_.size(); }
  // The endpoint name of the currently adopted primary ("" until the first
  // rediscovery picks one).
  const std::string& primary_name() const { return primary_name_; }

  struct Stats {
    uint64_t writes = 0;
    uint64_t replica_reads = 0;  // reads a replica answered
    uint64_t primary_reads = 0;  // reads the primary answered
    uint64_t redirects = 0;      // reads that fell back to the primary
    uint64_t rediscoveries = 0;  // hello sweeps that adopted a new primary
    uint64_t replays = 0;        // tagged writes re-sent after a failover
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PendingWrite {
    std::string tag;
    std::string name;
    std::vector<std::string> args;
  };

  // True for verdicts that mean "this primary cannot serve writes (or its
  // answer was lost)" rather than "the query itself failed".
  static bool IsFailoverError(int32_t code);
  void NoteWriteToken();
  // Sends queued writes in order; pops each on a definitive verdict.  `sink`
  // receives only the final (newest) write's tuples.  Returns MR_SUCCESS when
  // the queue drained, else the first verdict that stopped it.
  int32_t TryDrain(const TupleSink& sink, bool replaying);
  // TryDrain plus rediscovery: on a failover error, hello-probe the
  // endpoints, adopt the writable max-epoch node, and replay.
  int32_t DrainWithFailover(const TupleSink& sink);
  bool RediscoverPrimary();

  std::unique_ptr<MrClient> primary_;
  std::vector<std::unique_ptr<MrClient>> replicas_;
  size_t next_replica_ = 0;
  uint64_t token_ = 0;
  std::vector<ReplEndpoint> endpoints_;
  ClientFactory factory_;
  std::string auth_client_name_;
  std::string primary_name_;
  bool tagged_writes_ = false;
  std::string tag_prefix_;
  uint64_t tag_counter_ = 0;
  std::vector<PendingWrite> pending_;
  Stats stats_;
};

}  // namespace moira

#endif  // MOIRA_SRC_REPL_ROUTER_H_
