// Client-side read/write routing over a replicated Moira deployment.
//
// ReplicatedClient presents the ordinary MoiraClientApi but splits traffic:
// mutations go to the primary, retrieval queries fan out round-robin across
// the read replicas.  Read-your-writes consistency rides on a sequence token:
// every successful write records the journal sequence number the primary
// assigned (surfaced in the final reply), and every read is sent as
// kQueryAtSeq carrying the highest token seen.  A replica that cannot reach
// the token (MR_REPL_BEHIND) — or that is down (transport failure) — is
// skipped; if no replica can serve, the read redirects to the primary, which
// trivially satisfies any token it issued.
#ifndef MOIRA_SRC_REPL_ROUTER_H_
#define MOIRA_SRC_REPL_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/client/client.h"

namespace moira {

class ReplicatedClient final : public MoiraClientApi {
 public:
  // The clients arrive configured (identity, retry policy) and are owned by
  // the router; connect/auth state is managed per client as usual.
  explicit ReplicatedClient(std::unique_ptr<MrClient> primary);

  void AddReplica(std::unique_ptr<MrClient> replica);

  // Routes by query class: retrieval queries to a replica (with the
  // read-your-writes token), everything else — mutations, unknown names, and
  // the server-state queries (_list_users, get_replica_status) — to the
  // primary.
  int32_t Query(std::string_view name, const std::vector<std::string>& args,
                const TupleSink& sink) override;
  int32_t Access(std::string_view name, const std::vector<std::string>& args) override;

  // The read-your-writes token: the highest journal seq this client's writes
  // have been assigned.  Exposed for failover handoff and tests.
  uint64_t write_token() const { return token_; }
  void set_write_token(uint64_t token) { token_ = token; }

  MrClient& primary() { return *primary_; }
  // Replaces the primary client after an operator failover promotion.  The
  // token survives: the promoted replica continues the same sequence.
  void ReplacePrimary(std::unique_ptr<MrClient> primary);
  size_t replica_count() const { return replicas_.size(); }
  MrClient& replica(size_t i) { return *replicas_[i]; }

  struct Stats {
    uint64_t writes = 0;
    uint64_t replica_reads = 0;  // reads a replica answered
    uint64_t primary_reads = 0;  // reads the primary answered
    uint64_t redirects = 0;      // reads that fell back to the primary
  };
  const Stats& stats() const { return stats_; }

 private:
  std::unique_ptr<MrClient> primary_;
  std::vector<std::unique_ptr<MrClient>> replicas_;
  size_t next_replica_ = 0;
  uint64_t token_ = 0;
  Stats stats_;
};

}  // namespace moira

#endif  // MOIRA_SRC_REPL_ROUTER_H_
