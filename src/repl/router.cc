#include "src/repl/router.h"

#include <utility>

#include "src/comerr/moira_errors.h"
#include "src/common/strutil.h"

namespace moira {
namespace {

// Server-state queries are answered from the primary's connection and replica
// directories, which replicas do not have.
bool PrimaryOnly(std::string_view name) {
  return name == "_list_users" || name == "lusr" || name == "get_replica_status" ||
         name == "grst";
}

}  // namespace

ReplicatedClient::ReplicatedClient(std::unique_ptr<MrClient> primary)
    : primary_(std::move(primary)) {}

void ReplicatedClient::AddReplica(std::unique_ptr<MrClient> replica) {
  replicas_.push_back(std::move(replica));
}

void ReplicatedClient::ReplacePrimary(std::unique_ptr<MrClient> primary) {
  primary_ = std::move(primary);
}

void ReplicatedClient::SetEndpoints(std::vector<ReplEndpoint> endpoints,
                                    ClientFactory factory, std::string client_name) {
  endpoints_ = std::move(endpoints);
  factory_ = std::move(factory);
  auth_client_name_ = std::move(client_name);
}

void ReplicatedClient::EnableTaggedWrites(std::string tag_prefix) {
  tagged_writes_ = true;
  tag_prefix_ = std::move(tag_prefix);
}

bool ReplicatedClient::IsFailoverError(int32_t code) {
  // MR_QUORUM_TIMEOUT is here on purpose: the write is applied locally but
  // not quorum-acked, so its fate is unknown — the idempotent replay either
  // hits the tag (already applied, possibly now quorum-acked) or re-runs it.
  return code == MR_ABORTED || code == MR_NOT_CONNECTED || code == MR_REPL_EPOCH ||
         code == MR_REPL_READONLY || code == MR_QUORUM_TIMEOUT;
}

void ReplicatedClient::NoteWriteToken() {
  if (primary_->last_fields().empty()) {
    return;
  }
  std::optional<int64_t> seq = ParseInt(primary_->last_fields()[0]);
  if (seq.has_value() && static_cast<uint64_t>(*seq) > token_) {
    token_ = static_cast<uint64_t>(*seq);
  }
}

int32_t ReplicatedClient::TryDrain(const TupleSink& sink, bool replaying) {
  while (!pending_.empty()) {
    const PendingWrite& write = pending_.front();
    const bool newest = pending_.size() == 1;
    int32_t code = primary_->QueryTagged(write.tag, write.name, write.args,
                                         newest ? sink : TupleSink([](Tuple) {}));
    if (IsFailoverError(code)) {
      return code;  // outcome unknown; keep it queued for the replay
    }
    // A definitive verdict — success or a genuine query error — settles the
    // write whether or not it succeeded.
    if (code == MR_SUCCESS) {
      NoteWriteToken();
    }
    if (replaying) {
      ++stats_.replays;
    }
    pending_.erase(pending_.begin());
    if (code != MR_SUCCESS) {
      return code;
    }
  }
  return MR_SUCCESS;
}

int32_t ReplicatedClient::DrainWithFailover(const TupleSink& sink) {
  int32_t code = TryDrain(sink, /*replaying=*/false);
  if (!IsFailoverError(code)) {
    return code;
  }
  // One rediscovery attempt per endpoint: each failed adoption means that
  // node died (or was fenced) after answering the hello, and another sweep
  // may find its successor.  More rounds than endpoints cannot help.
  for (size_t attempt = 0; attempt < endpoints_.size(); ++attempt) {
    if (!RediscoverPrimary()) {
      return code;  // no writable primary anywhere; surface the soft error
    }
    code = TryDrain(sink, /*replaying=*/true);
    if (!IsFailoverError(code)) {
      return code;
    }
  }
  return code;
}

bool ReplicatedClient::RediscoverPrimary() {
  if (endpoints_.empty() || factory_ == nullptr) {
    return false;
  }
  // Hello sweep: adopt the writable node with the highest epoch (ties by
  // applied seq) — the same rule the replicas' own adoption logic uses, so
  // the router and the cluster converge on the same primary.
  int best = -1;
  uint64_t best_epoch = 0;
  uint64_t best_applied = 0;
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    std::unique_ptr<MrClient> probe = factory_(endpoints_[i]);
    if (probe == nullptr || probe->Connect() != MR_SUCCESS ||
        probe->ReplHello() != MR_SUCCESS) {
      continue;
    }
    const std::vector<std::string>& fields = probe->last_fields();
    if (fields.size() < 3 || fields[2] != "1") {
      continue;  // not writable
    }
    const uint64_t applied =
        static_cast<uint64_t>(ParseInt(fields[0]).value_or(0));
    const uint64_t epoch = static_cast<uint64_t>(ParseInt(fields[1]).value_or(0));
    if (best < 0 || epoch > best_epoch ||
        (epoch == best_epoch && applied > best_applied)) {
      best = static_cast<int>(i);
      best_epoch = epoch;
      best_applied = applied;
    }
  }
  if (best < 0) {
    return false;
  }
  std::unique_ptr<MrClient> adopted = factory_(endpoints_[static_cast<size_t>(best)]);
  if (adopted == nullptr || adopted->Connect() != MR_SUCCESS ||
      adopted->Auth(auth_client_name_) != MR_SUCCESS) {
    return false;
  }
  primary_ = std::move(adopted);
  primary_name_ = endpoints_[static_cast<size_t>(best)].name;
  ++stats_.rediscoveries;
  return true;
}

int32_t ReplicatedClient::Access(std::string_view name,
                                 const std::vector<std::string>& args) {
  return primary_->Access(name, args);
}

int32_t ReplicatedClient::Query(std::string_view name,
                                const std::vector<std::string>& args,
                                const TupleSink& sink) {
  const QueryDef* def = QueryRegistry::Instance().Find(name);
  const bool is_read =
      def != nullptr && def->qclass == QueryClass::kRetrieve && !PrimaryOnly(name);
  if (!is_read) {
    ++stats_.writes;
    const bool is_mutation =
        def != nullptr && def->qclass != QueryClass::kRetrieve && !PrimaryOnly(name);
    if (tagged_writes_ && is_mutation) {
      // Queue behind any still-unsettled writes so replay order matches
      // submission order, then drain through the failover machinery.
      pending_.push_back(
          {tag_prefix_ + ":" + std::to_string(++tag_counter_), std::string(name), args});
      return DrainWithFailover(sink);
    }
    int32_t code = primary_->Query(name, args, sink);
    if (code == MR_SUCCESS && def != nullptr && def->qclass != QueryClass::kRetrieve &&
        !primary_->last_fields().empty()) {
      // The final reply of a successful mutation carries the journal seq the
      // primary assigned: our new read-your-writes floor.
      std::optional<int64_t> seq = ParseInt(primary_->last_fields()[0]);
      if (seq.has_value() && static_cast<uint64_t>(*seq) > token_) {
        token_ = static_cast<uint64_t>(*seq);
      }
    }
    return code;
  }
  // Round-robin across replicas, skipping any that is down or behind.
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const size_t pick = (next_replica_ + i) % replicas_.size();
    MrClient* replica = replicas_[pick].get();
    int32_t code = replica->QueryAtSeq(token_, name, args, sink);
    if (code == MR_REPL_BEHIND || code == MR_ABORTED || code == MR_NOT_CONNECTED) {
      continue;
    }
    next_replica_ = (pick + 1) % replicas_.size();
    ++stats_.replica_reads;
    return code;  // a genuine query verdict (success, MR_NO_MATCH, MR_PERM, ...)
  }
  if (!replicas_.empty()) {
    ++stats_.redirects;
  }
  ++stats_.primary_reads;
  return primary_->Query(name, args, sink);
}

}  // namespace moira
