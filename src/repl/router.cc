#include "src/repl/router.h"

#include <utility>

#include "src/comerr/moira_errors.h"
#include "src/common/strutil.h"

namespace moira {
namespace {

// Server-state queries are answered from the primary's connection and replica
// directories, which replicas do not have.
bool PrimaryOnly(std::string_view name) {
  return name == "_list_users" || name == "lusr" || name == "get_replica_status" ||
         name == "grst";
}

}  // namespace

ReplicatedClient::ReplicatedClient(std::unique_ptr<MrClient> primary)
    : primary_(std::move(primary)) {}

void ReplicatedClient::AddReplica(std::unique_ptr<MrClient> replica) {
  replicas_.push_back(std::move(replica));
}

void ReplicatedClient::ReplacePrimary(std::unique_ptr<MrClient> primary) {
  primary_ = std::move(primary);
}

int32_t ReplicatedClient::Access(std::string_view name,
                                 const std::vector<std::string>& args) {
  return primary_->Access(name, args);
}

int32_t ReplicatedClient::Query(std::string_view name,
                                const std::vector<std::string>& args,
                                const TupleSink& sink) {
  const QueryDef* def = QueryRegistry::Instance().Find(name);
  const bool is_read =
      def != nullptr && def->qclass == QueryClass::kRetrieve && !PrimaryOnly(name);
  if (!is_read) {
    ++stats_.writes;
    int32_t code = primary_->Query(name, args, sink);
    if (code == MR_SUCCESS && def != nullptr && def->qclass != QueryClass::kRetrieve &&
        !primary_->last_fields().empty()) {
      // The final reply of a successful mutation carries the journal seq the
      // primary assigned: our new read-your-writes floor.
      std::optional<int64_t> seq = ParseInt(primary_->last_fields()[0]);
      if (seq.has_value() && static_cast<uint64_t>(*seq) > token_) {
        token_ = static_cast<uint64_t>(*seq);
      }
    }
    return code;
  }
  // Round-robin across replicas, skipping any that is down or behind.
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const size_t pick = (next_replica_ + i) % replicas_.size();
    MrClient* replica = replicas_[pick].get();
    int32_t code = replica->QueryAtSeq(token_, name, args, sink);
    if (code == MR_REPL_BEHIND || code == MR_ABORTED || code == MR_NOT_CONNECTED) {
      continue;
    }
    next_replica_ = (pick + 1) % replicas_.size();
    ++stats_.replica_reads;
    return code;  // a genuine query verdict (success, MR_NO_MATCH, MR_PERM, ...)
  }
  if (!replicas_.empty()) {
    ++stats_.redirects;
  }
  ++stats_.primary_reads;
  return primary_->Query(name, args, sink);
}

}  // namespace moira
