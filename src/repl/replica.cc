#include "src/repl/replica.h"

#include <utility>

#include "src/backup/backup.h"
#include "src/comerr/moira_errors.h"
#include "src/common/strutil.h"
#include "src/core/schema.h"

namespace moira {
namespace {

std::string SingleReply(int32_t code) {
  return EncodeReply(MrReply{kMrProtocolVersion, code, {}});
}

}  // namespace

ReplicaServer::ReplicaServer(KerberosRealm* realm, ReplicaOptions options)
    : options_(std::move(options)), clock_(options_.start_time), realm_(realm) {
  db_ = std::make_unique<Database>(&clock_);
  CreateMoiraSchema(db_.get());
  SeedMoiraDefaults(db_.get());
  mc_ = std::make_unique<MoiraContext>(db_.get());
  server_ = std::make_unique<MoiraServer>(mc_.get(), realm);
}

void ReplicaServer::SetPrimaryLink(MrClient::Connector connector, std::string principal,
                                   std::string password) {
  link_ = std::make_unique<MrClient>(std::move(connector));
  link_->SetKerberosIdentity(realm_, std::move(principal), std::move(password));
  link_authed_ = false;
}

bool ReplicaServer::EnsureLink() {
  if (link_ == nullptr) {
    return false;
  }
  if (!link_->connected()) {
    if (link_->Connect() != MR_SUCCESS) {
      return false;
    }
    link_authed_ = false;
  }
  if (!link_authed_) {
    // Auth reuses the cached Kerberos ticket for its lifetime, so a
    // reconnect during a KDC outage still succeeds (the cached-ticket path).
    if (link_->Auth("mrrepl-" + options_.name) != MR_SUCCESS) {
      link_->Disconnect();
      return false;
    }
    link_authed_ = true;
  }
  return true;
}

void ReplicaServer::DropLink() {
  if (link_ != nullptr && link_->connected()) {
    link_->Disconnect();
  }
  link_authed_ = false;
}

void ReplicaServer::Restart() {
  crashed_ = false;
  // The in-memory state died with the process: everything — including the
  // seeded defaults — comes back via a full snapshot transfer.
  db_->ClearAllRows();
  applied_seq_ = 0;
  force_snapshot_ = true;
  server_->InvalidateAccessCaches();
  DropLink();
}

void ReplicaServer::ApplyEntry(const JournalEntry& entry) {
  // Replay with the entry's original timestamp, principal, and client so
  // modtime/modby/modwith stamps — and therefore full dumps — are
  // byte-identical to the primary's.
  clock_.Set(entry.when);
  const std::string& principal = entry.principal.empty() ? "root" : entry.principal;
  const std::string& client = entry.client.empty() ? "journal-replay" : entry.client;
  int32_t code = QueryRegistry::Instance().Execute(*mc_, principal, client, entry.query,
                                                   entry.args, [](Tuple) {});
  if (code == MR_SUCCESS) {
    ++stats_.entries_applied;
  } else {
    ++stats_.apply_failures;
  }
  applied_seq_ = entry.seq;
}

int32_t ReplicaServer::LoadSnapshot() {
  db_->ClearAllRows();
  applied_seq_ = 0;
  bool malformed = false;
  ++stats_.snapshot_loads;
  int32_t code = link_->ReplSnapshot(options_.name, [&](Tuple tuple) {
    if (malformed) {
      return;
    }
    if (tuple.size() != 2) {
      malformed = true;
      return;
    }
    Table* table = db_->GetTable(tuple[0]);
    if (table == nullptr) {
      malformed = true;
      return;
    }
    Row row;
    if (!BackupManager::LineToRow(tuple[1], table->schema(), &row)) {
      malformed = true;
      return;
    }
    table->Append(std::move(row));
  });
  if (code != MR_SUCCESS) {
    DropLink();
    return code;
  }
  if (malformed) {
    return MR_INTERNAL;
  }
  const std::vector<std::string>& fields = link_->last_fields();
  if (fields.size() >= 2) {
    applied_seq_ = static_cast<uint64_t>(ParseInt(fields[0]).value_or(0));
    stats_.last_snapshot_seq = applied_seq_;
    UnixTime primary_now = ParseInt(fields[1]).value_or(0);
    if (primary_now > 0) {
      clock_.Set(primary_now);
    }
  }
  force_snapshot_ = false;
  server_->InvalidateAccessCaches();
  return MR_SUCCESS;
}

int32_t ReplicaServer::CatchUp() {
  return CatchUpInternal(UINT64_MAX, INT32_MAX);
}

int32_t ReplicaServer::CatchUpInternal(uint64_t target_seq, int max_batches) {
  if (crashed_) {
    return MR_ABORTED;
  }
  if (link_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  int applied_this_call = 0;
  for (int batch = 0; batch < max_batches; ++batch) {
    if (!EnsureLink()) {
      return MR_NOT_CONNECTED;
    }
    if (force_snapshot_) {
      if (int32_t code = LoadSnapshot(); code != MR_SUCCESS) {
        return code;
      }
      if (applied_seq_ >= target_seq) {
        return MR_SUCCESS;
      }
      continue;  // resume incremental fetching from snapshot_seq + 1
    }
    std::vector<JournalEntry> entries;
    bool parse_error = false;
    ++stats_.fetch_rounds;
    int32_t code = link_->ReplFetch(
        options_.name, applied_seq_ + 1, options_.max_entries_per_fetch,
        [&](Tuple tuple) {
          std::optional<JournalEntry> entry =
              tuple.empty() ? std::nullopt : JournalEntry::FromLine(tuple[0]);
          if (entry.has_value()) {
            entries.push_back(std::move(*entry));
          } else {
            parse_error = true;
          }
        });
    if (code == MR_REPL_TRUNCATED) {
      // The primary pruned its journal past our position; only a full
      // snapshot can resynchronize us.
      force_snapshot_ = true;
      continue;
    }
    if (code != MR_SUCCESS) {
      DropLink();
      return code;
    }
    if (parse_error) {
      return MR_INTERNAL;
    }
    uint64_t primary_seq = 0;
    UnixTime primary_now = 0;
    const std::vector<std::string>& fields = link_->last_fields();
    if (fields.size() >= 2) {
      primary_seq = static_cast<uint64_t>(ParseInt(fields[0]).value_or(0));
      primary_now = ParseInt(fields[1]).value_or(0);
    }
    bool limited = false;
    for (const JournalEntry& entry : entries) {
      if (apply_limit_ > 0 && applied_this_call >= apply_limit_) {
        limited = true;  // injected slow apply: stop with work outstanding
        break;
      }
      ApplyEntry(entry);
      ++applied_this_call;
    }
    // Applying rewound our clock to each entry's original time; step back to
    // the primary's present so client authenticators stay within skew.
    if (primary_now > clock_.Now()) {
      clock_.Set(primary_now);
    }
    server_->InvalidateAccessCaches();
    if (limited) {
      return MR_MORE_DATA;
    }
    if (applied_seq_ >= target_seq && target_seq != UINT64_MAX) {
      return MR_SUCCESS;  // a token read needs no directory-freshness fetch
    }
    if (applied_seq_ >= primary_seq) {
      if (entries.empty()) {
        return MR_SUCCESS;
      }
      // One more (empty) fetch so the primary's replica directory records our
      // final position before this catch-up reports success.
      continue;
    }
    if (entries.empty()) {
      return MR_INTERNAL;  // behind but the primary sent nothing: a gap
    }
  }
  return applied_seq_ >= target_seq ? MR_SUCCESS : MR_MORE_DATA;
}

MoiraServer* ReplicaServer::Promote() {
  promoted_ = true;
  // Post-failover mutations extend the old primary's sequence, so surviving
  // replicas (and routing clients' tokens) stay meaningful.
  server_->journal().ResetSequence(applied_seq_ + 1);
  return server_.get();
}

std::string ReplicaServer::OnMessage(uint64_t conn_id, std::string_view payload) {
  if (crashed_) {
    // A crashed replica answers nothing; the client's Recv sees a dead
    // connection (MR_ABORTED) and its router tries the next replica.
    return std::string();
  }
  std::optional<MrRequest> request = DecodeRequest(payload);
  if (!request.has_value() || request->version != kMrProtocolVersion) {
    return server_->OnMessage(conn_id, payload);  // let the server report it
  }
  const QueryRegistry& registry = QueryRegistry::Instance();
  switch (request->major) {
    case MajorRequest::kQuery: {
      if (!promoted_ && !request->args.empty()) {
        const QueryDef* def = registry.Find(request->args[0]);
        if (def != nullptr && def->qclass != QueryClass::kRetrieve) {
          return SingleReply(MR_REPL_READONLY);
        }
      }
      return server_->OnMessage(conn_id, payload);
    }
    case MajorRequest::kQueryAtSeq: {
      if (request->args.size() < 2) {
        return SingleReply(MR_ARGS);
      }
      std::optional<int64_t> token = ParseInt(request->args[0]);
      if (!token.has_value() || *token < 0) {
        return SingleReply(MR_ARGS);
      }
      if (!promoted_) {
        const QueryDef* def = registry.Find(request->args[1]);
        if (def != nullptr && def->qclass != QueryClass::kRetrieve) {
          return SingleReply(MR_REPL_READONLY);
        }
        uint64_t want = static_cast<uint64_t>(*token);
        if (want > applied_seq_) {
          // Behind the caller's token: wait briefly (a bounded on-demand
          // pull) before giving up and redirecting them to the primary.
          if (options_.catch_up_on_read && link_ != nullptr) {
            ++stats_.read_catch_ups;
            CatchUpInternal(want, options_.read_catch_up_batches);
          }
          if (want > applied_seq_) {
            ++stats_.reads_behind;
            return SingleReply(MR_REPL_BEHIND);
          }
        }
      }
      ++stats_.reads_served;
      // The embedded server strips the (now satisfied) token and serves.
      return server_->OnMessage(conn_id, payload);
    }
    default:
      return server_->OnMessage(conn_id, payload);
  }
}

void ReplicaServer::OnConnect(uint64_t conn_id, std::string peer) {
  server_->OnConnect(conn_id, std::move(peer));
}

void ReplicaServer::OnDisconnect(uint64_t conn_id) {
  server_->OnDisconnect(conn_id);
}

ReplicaServer* ChooseFailoverCandidate(const std::vector<ReplicaServer*>& replicas) {
  ReplicaServer* best = nullptr;
  for (ReplicaServer* replica : replicas) {
    if (replica == nullptr || replica->crashed() || replica->promoted()) {
      continue;
    }
    if (best == nullptr || replica->applied_seq() > best->applied_seq() ||
        (replica->applied_seq() == best->applied_seq() &&
         replica->name() < best->name())) {
      best = replica;
    }
  }
  return best;
}

}  // namespace moira
