#include "src/repl/replica.h"

#include <algorithm>
#include <utility>

#include "src/backup/backup.h"
#include "src/comerr/moira_errors.h"
#include "src/common/strutil.h"
#include "src/core/schema.h"

namespace moira {
namespace {

std::string SingleReply(int32_t code) {
  return EncodeReply(MrReply{kMrProtocolVersion, code, {}});
}

// Quorum push target over the authenticated wire: a promoted replica installs
// one of these per cluster peer, so the embedded server's QuorumGate ships
// journal windows exactly as a from-birth primary would.
class WirePushPeer final : public QuorumPeer {
 public:
  WirePushPeer(std::string name, MrClient::Connector connector, KerberosRealm* realm,
               std::string principal, std::string password)
      : name_(std::move(name)), client_(std::make_unique<MrClient>(std::move(connector))) {
    client_->SetKerberosIdentity(realm, std::move(principal), std::move(password));
  }

  const std::string& name() const override { return name_; }

  int32_t Push(uint64_t epoch, uint64_t prev_seq, uint64_t prev_epoch,
               const std::vector<std::string>& lines, uint64_t* applied_seq,
               uint64_t* peer_epoch) override {
    if (!Ensure()) {
      return MR_NOT_CONNECTED;
    }
    int32_t code = client_->ReplPush(epoch, prev_seq, prev_epoch, lines);
    if (code == MR_ABORTED || code == MR_NOT_CONNECTED) {
      authed_ = false;  // the channel died; reconnect and re-auth next round
      return code;
    }
    const std::vector<std::string>& fields = client_->last_fields();
    if (fields.size() >= 2) {
      *applied_seq = static_cast<uint64_t>(ParseInt(fields[0]).value_or(0));
      *peer_epoch = static_cast<uint64_t>(ParseInt(fields[1]).value_or(0));
    }
    return code;
  }

 private:
  bool Ensure() {
    if (!client_->connected()) {
      if (client_->Connect() != MR_SUCCESS) {
        return false;
      }
      authed_ = false;
    }
    if (!authed_) {
      if (client_->Auth("mrrepl-push") != MR_SUCCESS) {
        client_->Disconnect();
        return false;
      }
      authed_ = true;
    }
    return true;
  }

  std::string name_;
  std::unique_ptr<MrClient> client_;
  bool authed_ = false;
};

}  // namespace

ReplicaServer::ReplicaServer(KerberosRealm* realm, ReplicaOptions options)
    : options_(std::move(options)), clock_(options_.start_time), realm_(realm) {
  db_ = std::make_unique<Database>(&clock_);
  CreateMoiraSchema(db_.get());
  SeedMoiraDefaults(db_.get());
  mc_ = std::make_unique<MoiraContext>(db_.get());
  server_ = std::make_unique<MoiraServer>(mc_.get(), realm, options_.server_options);
}

ReplicaServer::~ReplicaServer() = default;

void ReplicaServer::SetPrimaryLink(MrClient::Connector connector, std::string principal,
                                   std::string password) {
  // Keep the credentials: adopting a new primary after failover (or pushing
  // as one) re-authenticates with the same identity.
  repl_principal_ = principal;
  repl_password_ = password;
  link_ = std::make_unique<MrClient>(std::move(connector));
  link_->SetKerberosIdentity(realm_, std::move(principal), std::move(password));
  link_authed_ = false;
}

void ReplicaServer::AddPeer(const std::string& name, MrClient::Connector connector) {
  peers_[name] = std::move(connector);
}

bool ReplicaServer::EnsureLink() {
  if (link_ == nullptr) {
    return false;
  }
  if (!link_->connected()) {
    if (link_->Connect() != MR_SUCCESS) {
      return false;
    }
    link_authed_ = false;
  }
  if (!link_authed_) {
    // Auth reuses the cached Kerberos ticket for its lifetime, so a
    // reconnect during a KDC outage still succeeds (the cached-ticket path).
    if (link_->Auth("mrrepl-" + options_.name) != MR_SUCCESS) {
      link_->Disconnect();
      return false;
    }
    link_authed_ = true;
  }
  return true;
}

void ReplicaServer::DropLink() {
  if (link_ != nullptr && link_->connected()) {
    link_->Disconnect();
  }
  link_authed_ = false;
}

void ReplicaServer::DisconnectAll() {
  DropLink();
  server_->SetQuorumPeers({});
  push_peers_.clear();
}

uint64_t ReplicaServer::VoteFloor() const { return std::max(epoch_, voted_epoch_); }

uint64_t ReplicaServer::epoch() const {
  return promoted_ ? server_->journal().epoch() : std::max(epoch_, voted_epoch_);
}

void ReplicaServer::Restart() {
  crashed_ = false;
  // The in-memory state died with the process: everything — including the
  // seeded defaults — comes back via a full snapshot transfer.  epoch_ and
  // voted_epoch_ survive on purpose: they are the one durable bit a correct
  // election needs (cf. Raft's persisted votedFor), keeping a rebooted node
  // from helping elect two primaries in the same epoch.
  db_->ClearAllRows();
  applied_seq_ = 0;
  applied_entry_epoch_ = 0;
  force_snapshot_ = true;
  if (promoted_) {
    // A primary reboots as a replica; re-promotion takes a fresh election.
    promoted_ = false;
    push_peers_.clear();
    server_->SetQuorumPeers({});
  }
  server_->InvalidateAccessCaches();
  DropLink();
  misses_ = options_.missed_heartbeats;  // re-discover the primary promptly
}

void ReplicaServer::StepDown() {
  // This reign is over and its local suffix may contain writes no quorum
  // acknowledged (that is exactly why MR_QUORUM_TIMEOUT is a soft error):
  // condemn the whole local state and resync from the new primary's history.
  promoted_ = false;
  push_peers_.clear();
  server_->SetQuorumPeers({});
  db_->ClearAllRows();
  applied_seq_ = 0;
  applied_entry_epoch_ = 0;
  force_snapshot_ = true;
  server_->InvalidateAccessCaches();
  DropLink();
  misses_ = options_.missed_heartbeats;  // probe for the new primary at once
  ++stats_.step_downs;
}

void ReplicaServer::AdoptPrimary(const std::string& peer_name) {
  auto it = peers_.find(peer_name);
  if (it == peers_.end()) {
    return;
  }
  SetPrimaryLink(it->second, repl_principal_, repl_password_);
  misses_ = 0;
  ++stats_.adoptions;
}

void ReplicaServer::ApplyEntry(const JournalEntry& entry) {
  // Replay with the entry's original timestamp, principal, and client so
  // modtime/modby/modwith stamps — and therefore full dumps — are
  // byte-identical to the primary's.
  clock_.Set(entry.when);
  const std::string& principal = entry.principal.empty() ? "root" : entry.principal;
  const std::string& client = entry.client.empty() ? "journal-replay" : entry.client;
  int32_t code = QueryRegistry::Instance().Execute(*mc_, principal, client, entry.query,
                                                   entry.args, [](Tuple) {});
  if (code == MR_SUCCESS) {
    ++stats_.entries_applied;
  } else {
    ++stats_.apply_failures;
  }
  applied_seq_ = entry.seq;
  applied_entry_epoch_ = entry.epoch;
  if (entry.epoch > epoch_) {
    epoch_ = entry.epoch;
  }
  if (!entry.tag.empty()) {
    // Tag dedup must survive failover: record it on the embedded server so a
    // client replaying the tag after this node's promotion is acknowledged
    // with the original seq instead of double-applying.
    server_->RecordAppliedTag(entry.tag, entry.seq);
  }
}

int32_t ReplicaServer::LoadSnapshot() {
  db_->ClearAllRows();
  applied_seq_ = 0;
  bool malformed = false;
  ++stats_.snapshot_loads;
  int32_t code = link_->ReplSnapshot(options_.name, [&](Tuple tuple) {
    if (malformed) {
      return;
    }
    if (tuple.size() != 2) {
      malformed = true;
      return;
    }
    Table* table = db_->GetTable(tuple[0]);
    if (table == nullptr) {
      malformed = true;
      return;
    }
    Row row;
    if (!BackupManager::LineToRow(tuple[1], table->schema(), &row)) {
      malformed = true;
      return;
    }
    table->Append(std::move(row));
  });
  if (code != MR_SUCCESS) {
    DropLink();
    return code;
  }
  if (malformed) {
    return MR_INTERNAL;
  }
  const std::vector<std::string>& fields = link_->last_fields();
  // A snapshot can be the first contact with a node, so the epoch check
  // happens here, on the reply: never bootstrap from a primary older than an
  // epoch we have already seen or voted in.
  if (fields.size() >= 3) {
    uint64_t snapshot_epoch = static_cast<uint64_t>(ParseInt(fields[2]).value_or(0));
    if (snapshot_epoch < VoteFloor()) {
      DropLink();
      return MR_REPL_EPOCH;
    }
    if (snapshot_epoch > epoch_) {
      epoch_ = snapshot_epoch;
    }
  }
  if (fields.size() >= 2) {
    applied_seq_ = static_cast<uint64_t>(ParseInt(fields[0]).value_or(0));
    stats_.last_snapshot_seq = applied_seq_;
    UnixTime primary_now = ParseInt(fields[1]).value_or(0);
    if (primary_now > 0) {
      clock_.Set(primary_now);
    }
  }
  // The epoch of the entry at the snapshot cut is unknown; 0 marks it
  // "trusted, by construction a prefix of the source's log".
  applied_entry_epoch_ = 0;
  force_snapshot_ = false;
  server_->InvalidateAccessCaches();
  return MR_SUCCESS;
}

int32_t ReplicaServer::CatchUp() {
  return CatchUpInternal(UINT64_MAX, INT32_MAX);
}

int32_t ReplicaServer::CatchUpInternal(uint64_t target_seq, int max_batches) {
  if (crashed_) {
    return MR_ABORTED;
  }
  if (link_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  int applied_this_call = 0;
  for (int batch = 0; batch < max_batches; ++batch) {
    if (!EnsureLink()) {
      return MR_NOT_CONNECTED;
    }
    if (force_snapshot_) {
      if (int32_t code = LoadSnapshot(); code != MR_SUCCESS) {
        return code;
      }
      if (applied_seq_ >= target_seq) {
        return MR_SUCCESS;
      }
      continue;  // resume incremental fetching from snapshot_seq + 1
    }
    std::vector<JournalEntry> entries;
    bool parse_error = false;
    ++stats_.fetch_rounds;
    // The fetch carries the highest epoch we have SEEN (not VoteFloor): a
    // deposed primary is fenced on first contact with any node that lived
    // under its successor, but a failed candidacy — voted_epoch_ raised with
    // no election won anywhere — must not depose a healthy primary when the
    // flapped link heals.  Split-brain safety never rests on this floor; the
    // push and vote paths check the full VoteFloor.
    int32_t code = link_->ReplFetch(
        options_.name, applied_seq_ + 1, options_.max_entries_per_fetch, epoch_,
        [&](Tuple tuple) {
          std::optional<JournalEntry> entry =
              tuple.empty() ? std::nullopt : JournalEntry::FromLine(tuple[0]);
          if (entry.has_value()) {
            entries.push_back(std::move(*entry));
          } else {
            parse_error = true;
          }
        });
    if (code == MR_REPL_TRUNCATED) {
      // The primary pruned its journal past our position; only a full
      // snapshot can resynchronize us.
      force_snapshot_ = true;
      continue;
    }
    if (code != MR_SUCCESS) {
      DropLink();
      return code;
    }
    if (parse_error) {
      return MR_INTERNAL;
    }
    uint64_t primary_seq = 0;
    UnixTime primary_now = 0;
    uint64_t primary_epoch = 0;
    uint64_t prev_epoch = 0;
    const std::vector<std::string>& fields = link_->last_fields();
    if (fields.size() >= 2) {
      primary_seq = static_cast<uint64_t>(ParseInt(fields[0]).value_or(0));
      primary_now = ParseInt(fields[1]).value_or(0);
    }
    if (fields.size() >= 3) {
      primary_epoch = static_cast<uint64_t>(ParseInt(fields[2]).value_or(0));
      if (primary_epoch > epoch_) {
        epoch_ = primary_epoch;
      }
    }
    if (fields.size() >= 4) {
      prev_epoch = static_cast<uint64_t>(ParseInt(fields[3]).value_or(0));
    }
    // Divergence checks (DESIGN.md "epoch fencing"): our applied prefix must
    // be a prefix of the serving primary's log.  Either mismatch means our
    // tail came from a dead reign that the elected history replaced — the
    // only cure is a snapshot resync.
    if (prev_epoch != 0 && applied_entry_epoch_ != 0 &&
        prev_epoch != applied_entry_epoch_) {
      ++stats_.divergence_resyncs;
      force_snapshot_ = true;
      continue;
    }
    if (applied_seq_ > primary_seq && primary_epoch > applied_entry_epoch_ &&
        applied_entry_epoch_ != 0) {
      // We extend past a newer primary's whole log: the suffix is dead.
      ++stats_.divergence_resyncs;
      force_snapshot_ = true;
      continue;
    }
    bool limited = false;
    for (const JournalEntry& entry : entries) {
      if (apply_limit_ > 0 && applied_this_call >= apply_limit_) {
        limited = true;  // injected slow apply: stop with work outstanding
        break;
      }
      ApplyEntry(entry);
      ++applied_this_call;
    }
    // Applying rewound our clock to each entry's original time; step back to
    // the primary's present so client authenticators stay within skew.
    if (primary_now > clock_.Now()) {
      clock_.Set(primary_now);
    }
    server_->InvalidateAccessCaches();
    if (limited) {
      return MR_MORE_DATA;
    }
    if (applied_seq_ >= target_seq && target_seq != UINT64_MAX) {
      return MR_SUCCESS;  // a token read needs no directory-freshness fetch
    }
    if (applied_seq_ >= primary_seq) {
      if (entries.empty()) {
        return MR_SUCCESS;
      }
      // One more (empty) fetch so the primary's replica directory records our
      // final position before this catch-up reports success.
      continue;
    }
    if (entries.empty()) {
      return MR_INTERNAL;  // behind but the primary sent nothing: a gap
    }
  }
  return applied_seq_ >= target_seq ? MR_SUCCESS : MR_MORE_DATA;
}

MoiraServer* ReplicaServer::Promote() {
  // Operator-driven failover keeps the historical entry point; the epoch
  // still advances so the deposed primary is fenced on first contact.
  return PromoteWithEpoch(VoteFloor() + 1);
}

MoiraServer* ReplicaServer::PromoteWithEpoch(uint64_t epoch) {
  promoted_ = true;
  if (epoch > epoch_) {
    epoch_ = epoch;
  }
  // A primary pulls from nobody.  Dropping the link matters after a crash:
  // a restarted ex-primary with a live link would happily "catch up" from a
  // stale source instead of probing for the reign that replaced it.
  link_.reset();
  link_authed_ = false;
  server_->UnfenceAt(epoch_);
  // Post-failover mutations extend the old primary's sequence, so surviving
  // replicas (and routing clients' tokens) stay meaningful.  RebaseTo also
  // discards any stale entries left from an earlier reign of this node.
  server_->journal().RebaseTo(applied_seq_ + 1);
  // Every registered peer becomes a quorum push target: post-failover writes
  // are quorum-acknowledged exactly like the old primary's were.
  push_peers_.clear();
  std::vector<QuorumPeer*> raw;
  for (const auto& [peer_name, connector] : peers_) {
    push_peers_.push_back(std::make_unique<WirePushPeer>(
        peer_name, connector, realm_, repl_principal_, repl_password_));
    raw.push_back(push_peers_.back().get());
  }
  server_->SetQuorumPeers(std::move(raw));
  server_->InvalidateAccessCaches();
  misses_ = 0;
  return server_.get();
}

ReplicaServer::HeartbeatEvent ReplicaServer::HeartbeatTick() {
  if (crashed_) {
    return HeartbeatEvent::kCrashed;
  }
  if (promoted_) {
    if (server_->fenced()) {
      // A successor exists; a fenced primary that stayed up rejoins as a
      // replica rather than refusing writes forever.
      StepDown();
      return HeartbeatEvent::kSteppedDown;
    }
    // An idle primary is only fenced when one of its own pushes meets a node
    // that outlived it — which never happens without writes.  Probe the
    // peers so a deposed primary that sat out a partition discovers the
    // successor reign promptly; only a WRITABLE peer at a higher epoch
    // proves a new reign exists (a raised vote floor alone might be a failed
    // candidacy, and stepping down on that would sacrifice the one live
    // primary).
    for (const auto& [peer_name, connector] : peers_) {
      MrClient probe(connector);
      if (probe.Connect() != MR_SUCCESS || probe.ReplHello() != MR_SUCCESS) {
        continue;
      }
      const std::vector<std::string>& f = probe.last_fields();
      if (f.size() >= 3 && f[2] == "1") {
        const uint64_t peer_epoch =
            static_cast<uint64_t>(ParseInt(f[1]).value_or(0));
        if (peer_epoch > server_->journal().epoch()) {
          server_->Fence(peer_epoch);
          StepDown();
          return HeartbeatEvent::kSteppedDown;
        }
      }
    }
    return HeartbeatEvent::kPrimaryRole;
  }
  // 1. Heartbeat: one bounded catch-up batch against the primary link.
  // Contact (even partial progress) is a heartbeat; transport failure or a
  // fenced/stale primary is a miss.
  if (link_ != nullptr) {
    int32_t code = CatchUpInternal(UINT64_MAX, 1);
    if (code == MR_SUCCESS || code == MR_MORE_DATA) {
      misses_ = 0;
      return HeartbeatEvent::kOk;
    }
  }
  ++misses_;
  ++stats_.heartbeat_misses;
  if (link_ != nullptr && misses_ < options_.missed_heartbeats) {
    return HeartbeatEvent::kMiss;
  }
  if (peers_.empty()) {
    return HeartbeatEvent::kMiss;  // nobody to fail over with
  }
  // 2. Probe every peer with the unauthenticated hello: who is reachable,
  // how far along is their log, and is one of them already primary?
  struct View {
    std::string name;
    uint64_t applied = 0;
    uint64_t epoch = 0;
    uint64_t tail_epoch = 0;
    bool writable = false;
  };
  std::vector<View> views;
  for (const auto& [peer_name, connector] : peers_) {
    MrClient probe(connector);
    if (probe.Connect() != MR_SUCCESS) {
      continue;
    }
    if (probe.ReplHello() != MR_SUCCESS) {
      continue;
    }
    const std::vector<std::string>& f = probe.last_fields();
    if (f.size() < 3) {
      continue;
    }
    View v;
    v.name = peer_name;
    v.applied = static_cast<uint64_t>(ParseInt(f[0]).value_or(0));
    v.epoch = static_cast<uint64_t>(ParseInt(f[1]).value_or(0));
    v.writable = f[2] == "1";
    v.tail_epoch =
        f.size() >= 4 ? static_cast<uint64_t>(ParseInt(f[3]).value_or(0)) : 0;
    views.push_back(std::move(v));
  }
  // 2a. Someone is already primary at an acceptable epoch: adopt it (this
  // also heals a plain link flap, where the old primary is alive and well).
  const View* best_primary = nullptr;
  for (const View& v : views) {
    if (v.writable && v.epoch >= VoteFloor() &&
        (best_primary == nullptr || v.epoch > best_primary->epoch)) {
      best_primary = &v;
    }
  }
  if (best_primary != nullptr) {
    AdoptPrimary(best_primary->name);
    return HeartbeatEvent::kAdopted;
  }
  // 2b. Candidacy self-check: stand only with the best log among reachable
  // peers — compare (tail_epoch, applied_seq), name as the deterministic
  // tie-break — so at most one node starts an election per round.
  for (const View& v : views) {
    if (std::make_pair(v.tail_epoch, v.applied) >
            std::make_pair(TailEpoch(), applied_seq_) ||
        (v.tail_epoch == TailEpoch() && v.applied == applied_seq_ &&
         v.name < options_.name)) {
      return HeartbeatEvent::kDeferred;
    }
  }
  // 3. Stand for election one epoch past everything seen or reported — in
  // two phases.  The pre-vote round binds nobody: only once a majority says
  // it WOULD grant does the candidate raise its own floor and collect real
  // votes.  Without this, a node on the wrong side of an asymmetric
  // partition inflates voted_epoch_ with every hopeless candidacy and
  // fences the healthy primary the moment its link heals.
  uint64_t election_epoch = VoteFloor();
  for (const View& v : views) {
    election_epoch = std::max(election_epoch, v.epoch);
  }
  ++election_epoch;
  ++stats_.elections_started;
  const int cluster = static_cast<int>(peers_.size()) + 1;
  const int needed = cluster / 2 + 1;  // strict majority
  auto solicit = [&](bool pre) {
    int votes = 1;  // self
    for (const View& v : views) {
      if (v.writable) {
        continue;  // a primary never grants votes
      }
      MrClient voter(peers_[v.name]);
      if (voter.Connect() != MR_SUCCESS) {
        continue;
      }
      if (voter.ReplVote(election_epoch, applied_seq_, TailEpoch(), options_.name,
                         pre) != MR_SUCCESS) {
        continue;
      }
      const std::vector<std::string>& f = voter.last_fields();
      if (!f.empty() && f[0] == "1") {
        ++votes;
      }
    }
    return votes;
  };
  if (solicit(/*pre=*/true) < needed) {
    return HeartbeatEvent::kElectionLost;
  }
  voted_epoch_ = election_epoch;  // vote for self, binding from here on
  if (solicit(/*pre=*/false) >= needed) {
    PromoteWithEpoch(election_epoch);
    ++stats_.promotions;
    return HeartbeatEvent::kPromoted;
  }
  return HeartbeatEvent::kElectionLost;
}

std::string ReplicaServer::HandleReplPush(uint64_t conn_id, const MrRequest& request) {
  if (request.args.size() < 3) {
    return SingleReply(MR_ARGS);
  }
  // Same capability as journal streaming: applying pushed entries is the
  // write half of the replication stream.
  if (int32_t code = server_->CheckConnPrivilege(conn_id, "get_replica_status");
      code != MR_SUCCESS) {
    return SingleReply(code);
  }
  std::optional<int64_t> push_epoch = ParseInt(request.args[0]);
  std::optional<int64_t> prev_seq = ParseInt(request.args[1]);
  std::optional<int64_t> prev_epoch = ParseInt(request.args[2]);
  if (!push_epoch.has_value() || *push_epoch < 1 || !prev_seq.has_value() ||
      *prev_seq < 0 || !prev_epoch.has_value() || *prev_epoch < 0) {
    return SingleReply(MR_ARGS);
  }
  const uint64_t epoch = static_cast<uint64_t>(*push_epoch);
  auto reply = [&](int32_t code, uint64_t applied) {
    return EncodeReply(MrReply{kMrProtocolVersion, code,
                               {std::to_string(applied), std::to_string(VoteFloor())}});
  };
  if (epoch < VoteFloor()) {
    ++stats_.fence_refusals;
    return reply(MR_REPL_EPOCH, applied_seq_);
  }
  if (epoch > epoch_) {
    epoch_ = epoch;
  }
  if (force_snapshot_) {
    // Mid-resync: nothing may be applied onto a condemned state.  Reporting
    // position 0 keeps the pusher from counting us toward its quorum until
    // the pull path has re-bootstrapped us.
    return reply(MR_REPL_BEHIND, 0);
  }
  std::vector<JournalEntry> entries;
  for (size_t i = 3; i < request.args.size(); ++i) {
    std::optional<JournalEntry> entry = JournalEntry::FromLine(request.args[i]);
    if (!entry.has_value()) {
      return SingleReply(MR_INTERNAL);
    }
    entries.push_back(std::move(*entry));
  }
  const uint64_t window_top = entries.empty() ? static_cast<uint64_t>(*prev_seq)
                                              : entries.back().seq;
  // Divergence checks: our applied prefix must be a prefix of the pusher's
  // log, or our tail came from a dead reign and only a snapshot resync cures
  // it (stop counting toward quorums until then).
  auto condemn = [&] {
    ++stats_.divergence_resyncs;
    force_snapshot_ = true;
    return reply(MR_REPL_BEHIND, 0);
  };
  if (static_cast<uint64_t>(*prev_seq) == applied_seq_ && *prev_epoch != 0 &&
      applied_entry_epoch_ != 0 &&
      static_cast<uint64_t>(*prev_epoch) != applied_entry_epoch_) {
    return condemn();
  }
  if (window_top < applied_seq_ && applied_entry_epoch_ != 0 &&
      epoch > applied_entry_epoch_) {
    // A newer primary's whole log ends below our position.
    return condemn();
  }
  for (const JournalEntry& entry : entries) {
    if (entry.seq == applied_seq_ && entry.epoch != 0 && applied_entry_epoch_ != 0 &&
        entry.epoch != applied_entry_epoch_) {
      return condemn();
    }
  }
  if (static_cast<uint64_t>(*prev_seq) > applied_seq_) {
    // The window starts past our position; the pusher re-sends from ours.
    return reply(MR_REPL_BEHIND, applied_seq_);
  }
  // Apply the new suffix contiguously.  An armed torn push applies only half
  // and then the connection dies mid-reply — the pusher must treat the batch
  // as unacknowledged and converge by re-pushing.
  size_t allow = entries.size();
  bool torn = false;
  if (torn_push_armed_ && !entries.empty()) {
    torn_push_armed_ = false;
    torn = true;
    allow = entries.size() / 2;
  }
  const UnixTime before = clock_.Now();
  bool gap = false;
  size_t applied_count = 0;
  for (const JournalEntry& entry : entries) {
    if (entry.seq <= applied_seq_) {
      continue;  // duplicate delivery (re-push after a lost reply)
    }
    if (entry.seq != applied_seq_ + 1) {
      gap = true;
      break;
    }
    if (torn && applied_count >= allow) {
      break;
    }
    ApplyEntry(entry);
    ++applied_count;
  }
  if (before > clock_.Now()) {
    clock_.Set(before);  // applying never rewinds our present
  }
  if (applied_count > 0) {
    ++stats_.push_batches;
    server_->InvalidateAccessCaches();
  }
  if (torn) {
    return std::string();  // the connection died before the reply
  }
  return reply(gap ? MR_REPL_BEHIND : MR_SUCCESS, applied_seq_);
}

std::string ReplicaServer::HandleReplVote(const MrRequest& request) {
  // Unauthenticated by design, like the hello probe: failover liveness must
  // not depend on the KDC, and a vote grant is fenced by epoch monotonicity.
  if (request.args.size() < 4) {
    return SingleReply(MR_ARGS);
  }
  std::optional<int64_t> vote_epoch = ParseInt(request.args[0]);
  std::optional<int64_t> cand_applied = ParseInt(request.args[1]);
  std::optional<int64_t> cand_tail = ParseInt(request.args[2]);
  if (!vote_epoch.has_value() || *vote_epoch < 1 || !cand_applied.has_value() ||
      *cand_applied < 0 || !cand_tail.has_value() || *cand_tail < 0) {
    return SingleReply(MR_ARGS);
  }
  const uint64_t epoch = static_cast<uint64_t>(*vote_epoch);
  // A 5th argument marks a pre-vote: answer whether we WOULD grant, without
  // recording anything (Raft pre-vote) — the candidate only stands for real
  // once a majority says yes, so a partitioned node's hopeless candidacies
  // never inflate any epoch floor.
  const bool pre = request.args.size() >= 5 && request.args[4] == "pre";
  bool granted = false;
  // Grant iff (a) the epoch is new to us, (b) the candidate's log is at
  // least as complete as ours — (tail_epoch, applied_seq) lexicographically,
  // the Raft log-comparison rule, which guarantees every quorum-acked write
  // survives into the new reign — and (c) leader stickiness: we have missed
  // at least one heartbeat ourselves, so a candidate with a broken link
  // cannot depose a primary the rest of the cluster still sees.
  if (epoch > VoteFloor() &&
      std::make_pair(static_cast<uint64_t>(*cand_tail),
                     static_cast<uint64_t>(*cand_applied)) >=
          std::make_pair(TailEpoch(), applied_seq_) &&
      (misses_ >= 1 || link_ == nullptr)) {
    granted = true;
    if (!pre) {
      voted_epoch_ = epoch;
      ++stats_.votes_granted;
    }
  } else if (epoch <= VoteFloor() && !pre) {
    ++stats_.fence_refusals;
  }
  return EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS,
                             {granted ? "1" : "0", std::to_string(VoteFloor())}});
}

std::string ReplicaServer::OnMessage(uint64_t conn_id, std::string_view payload) {
  if (crashed_) {
    // A crashed replica answers nothing; the client's Recv sees a dead
    // connection (MR_ABORTED) and its router tries the next replica.
    return std::string();
  }
  std::optional<MrRequest> request = DecodeRequest(payload);
  if (!request.has_value() || request->version != kMrProtocolVersion) {
    return server_->OnMessage(conn_id, payload);  // let the server report it
  }
  const QueryRegistry& registry = QueryRegistry::Instance();
  switch (request->major) {
    case MajorRequest::kQuery: {
      if (!promoted_ && !request->args.empty()) {
        const QueryDef* def = registry.Find(request->args[0]);
        if (def != nullptr && def->qclass != QueryClass::kRetrieve) {
          return SingleReply(MR_REPL_READONLY);
        }
      }
      return server_->OnMessage(conn_id, payload);
    }
    case MajorRequest::kQueryTagged: {
      if (!promoted_) {
        // Tagged writes are a primary-only operation; the router redirects.
        return SingleReply(MR_REPL_READONLY);
      }
      return server_->OnMessage(conn_id, payload);
    }
    case MajorRequest::kReplPush: {
      if (promoted_) {
        // The embedded server fences the stale pusher (or is fenced by it).
        return server_->OnMessage(conn_id, payload);
      }
      return HandleReplPush(conn_id, *request);
    }
    case MajorRequest::kReplHello: {
      if (promoted_) {
        return server_->OnMessage(conn_id, payload);
      }
      return EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS,
                                 {std::to_string(applied_seq_),
                                  std::to_string(VoteFloor()), "0",
                                  std::to_string(TailEpoch())}});
    }
    case MajorRequest::kReplVote: {
      if (promoted_) {
        return server_->OnMessage(conn_id, payload);  // primaries never grant
      }
      return HandleReplVote(*request);
    }
    case MajorRequest::kQueryAtSeq: {
      if (request->args.size() < 2) {
        return SingleReply(MR_ARGS);
      }
      std::optional<int64_t> token = ParseInt(request->args[0]);
      if (!token.has_value() || *token < 0) {
        return SingleReply(MR_ARGS);
      }
      if (!promoted_) {
        const QueryDef* def = registry.Find(request->args[1]);
        if (def != nullptr && def->qclass != QueryClass::kRetrieve) {
          return SingleReply(MR_REPL_READONLY);
        }
        uint64_t want = static_cast<uint64_t>(*token);
        if (want > applied_seq_) {
          // Behind the caller's token: wait briefly (a bounded on-demand
          // pull) before giving up and redirecting them to the primary.
          if (options_.catch_up_on_read && link_ != nullptr) {
            ++stats_.read_catch_ups;
            CatchUpInternal(want, options_.read_catch_up_batches);
          }
          if (want > applied_seq_) {
            ++stats_.reads_behind;
            return SingleReply(MR_REPL_BEHIND);
          }
        }
      }
      ++stats_.reads_served;
      // The embedded server strips the (now satisfied) token and serves.
      return server_->OnMessage(conn_id, payload);
    }
    default:
      return server_->OnMessage(conn_id, payload);
  }
}

void ReplicaServer::OnConnect(uint64_t conn_id, std::string peer) {
  server_->OnConnect(conn_id, std::move(peer));
}

void ReplicaServer::OnDisconnect(uint64_t conn_id) {
  server_->OnDisconnect(conn_id);
}

ReplicaServer* ChooseFailoverCandidate(const std::vector<ReplicaServer*>& replicas) {
  ReplicaServer* best = nullptr;
  for (ReplicaServer* replica : replicas) {
    if (replica == nullptr || replica->crashed() || replica->promoted()) {
      continue;
    }
    if (best == nullptr || replica->applied_seq() > best->applied_seq() ||
        (replica->applied_seq() == best->applied_seq() &&
         replica->name() < best->name())) {
      best = replica;
    }
  }
  return best;
}

}  // namespace moira
