// Journal-shipping read replicas (DESIGN.md "Replication layer").
//
// The paper runs one central Moira server and offloads read traffic only
// through derived services (Hesiod).  The journal of section 5.2.2 already
// records every successful change as a replayable query+args line — exactly a
// replication log.  A ReplicaServer owns its own embedded database (seeded to
// the same initial state as the primary), pulls journal entries from the
// primary over the authenticated wire protocol (kReplFetch), applies them
// deterministically through the query registry with the original principal,
// client name, and timestamp — so modby/modwith/modtime stamps, and therefore
// full database dumps, come out byte-identical — and serves read-only queries
// through an embedded MoiraServer.
//
// Consistency: replicas track applied_seq, the highest journal sequence
// number applied.  A read carrying a read-your-writes token (kQueryAtSeq)
// greater than applied_seq triggers a brief on-demand catch-up pull; if the
// replica still cannot reach the token it answers MR_REPL_BEHIND and the
// client redirects to the primary.  A replica that reconnects after a
// disconnect resumes fetching from applied_seq + 1; if the primary has
// truncated its journal past that point (MR_REPL_TRUNCATED) the replica falls
// back to a full snapshot transfer (kReplSnapshot).
//
// Automatic failover (DESIGN.md "Heartbeats, elections, and epoch fencing"):
// every HeartbeatTick a replica runs one bounded catch-up against its primary
// link; transport failure counts as a missed heartbeat.  After
// ReplicaOptions::missed_heartbeats consecutive misses the replica probes its
// peers with the unauthenticated kReplHello — if a newer primary already
// exists it adopts it; otherwise, if it holds the best log among reachable
// peers (by (tail_epoch, applied_seq), name as tie-break), it stands for
// election at epoch max(seen)+1 and promotes itself once a strict majority of
// the cluster grants its kReplVote.  Elections are two-phase (Raft pre-vote):
// a non-binding round must reach a majority before the candidate raises its
// own epoch floor, so a partitioned node's hopeless candidacies cannot fence
// the healthy primary when its link heals.  Voters apply leader stickiness
// (no vote while their own primary link is healthy), so one slow link cannot
// depose a live primary.  Every repl wire exchange carries epochs: a deposed primary
// is fenced on first contact with any node that has seen the newer epoch, and
// pushes/fetches carry the predecessor entry's (seq, epoch) so a replica that
// kept a dead reign's unreplicated suffix detects the divergence and resyncs
// from a snapshot instead of silently keeping it.  Operator-driven failover
// (Promote()) remains as the manual path.
#ifndef MOIRA_SRC_REPL_REPLICA_H_
#define MOIRA_SRC_REPL_REPLICA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/client/client.h"
#include "src/common/clock.h"
#include "src/core/context.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/server/server.h"

namespace moira {

struct ReplicaOptions {
  std::string name = "replica";
  // The replica seeds its database (schema + defaults) at this time; it must
  // match the primary's seed time or the two initial states diverge.
  UnixTime start_time = 568000000;
  // Batch size of one kReplFetch round trip.
  int max_entries_per_fetch = 256;
  // A read whose token is ahead of applied_seq "waits briefly": up to this
  // many on-demand fetch batches before answering MR_REPL_BEHIND.
  bool catch_up_on_read = true;
  int read_catch_up_batches = 4;
  // Consecutive missed heartbeats before the replica gives up on its primary
  // and starts failover (probe peers, adopt or stand for election).
  int missed_heartbeats = 3;
  // Options for the embedded server — a promoted replica runs quorum writes
  // under these (write_quorum, cluster_size, quorum_ack_local, ...).
  ServerOptions server_options;
};

class ReplicaServer final : public MessageHandler {
 public:
  // `realm` is the shared KDC: the embedded read server authenticates clients
  // against it, and the primary link authenticates with it.  Must outlive the
  // replica.
  explicit ReplicaServer(KerberosRealm* realm, ReplicaOptions options = {});
  ~ReplicaServer() override;

  // Configures the pull link to the primary.  `principal` must be authorized
  // for get_replica_status on the primary (root or CAPACLS member) — the
  // capability that gates journal streaming, and the identity this replica
  // will push/fetch with after adopting or winning a failover.
  void SetPrimaryLink(MrClient::Connector connector, std::string principal,
                      std::string password);

  // Registers a cluster peer (every node other than this one, including the
  // original primary) for hello probes, votes, and post-promotion quorum
  // pushes.  Uses the credentials from SetPrimaryLink.
  void AddPeer(const std::string& name, MrClient::Connector connector);

  // One catch-up run: connect/authenticate if needed (cached ticket — a KDC
  // blip does not stop a reconnect), then fetch and apply batches until
  // caught up with the primary.  Falls back to a snapshot transfer when the
  // primary's journal has been truncated past applied_seq.  Returns
  // MR_SUCCESS when fully caught up, MR_MORE_DATA when an injected apply
  // limit stopped it early, or the transport/server error otherwise.
  int32_t CatchUp();

  uint64_t applied_seq() const { return applied_seq_; }
  bool promoted() const { return promoted_; }
  // Highest replication epoch this node has seen (as primary: its reign's
  // epoch; as replica: the fencing floor it advertises on every fetch).
  uint64_t epoch() const;

  // Operator failover: start accepting writes.  The embedded server's
  // journal continues numbering from applied_seq + 1, so post-failover
  // entries extend the old primary's sequence.  Returns the now-writable
  // embedded server (its journal is the new replication source).
  MoiraServer* Promote();
  // Election-driven promotion at a specific epoch: as Promote(), and in
  // addition installs quorum push peers over the registered peer connectors,
  // so every post-failover mutation is quorum-acknowledged.
  MoiraServer* PromoteWithEpoch(uint64_t epoch);

  // What one HeartbeatTick did (see class comment for the state machine).
  enum class HeartbeatEvent {
    kPrimaryRole,   // this node is the primary; nothing to heartbeat
    kCrashed,       // crashed nodes do nothing
    kOk,            // heartbeat succeeded (caught up or made progress)
    kMiss,          // heartbeat missed, threshold not yet reached
    kAdopted,       // found and adopted a newer primary
    kPromoted,      // won an election and promoted itself
    kDeferred,      // a reachable peer has a better log; let it stand
    kElectionLost,  // stood for election, did not reach a majority
    kSteppedDown,   // was primary, found itself fenced, demoted to replica
  };
  HeartbeatEvent HeartbeatTick();

  // --- fault hooks (seeded ReplFaultPlan) ---
  // Crash: the replica loses its in-memory state and stops serving.
  void Crash() { crashed_ = true; }
  bool crashed() const { return crashed_; }
  // Reboot after a crash: database state is gone (next CatchUp snapshots),
  // but the epoch floor and granted vote survive — the one durable bit a
  // correct election protocol requires.  A promoted node reboots demoted.
  void Restart();
  // Link flap: drops the primary connection; the next CatchUp reconnects,
  // re-authenticates, and resumes from applied_seq + 1.
  void DropLink();
  // Tears down every open connection this node holds into its peers (primary
  // link and quorum push channels).  Harness teardown only: loopback channels
  // keep raw handler pointers into sibling nodes, so all connections must die
  // while every node is still alive.  The node keeps its credentials and can
  // reconnect afterwards.
  void DisconnectAll();
  // Slow apply: at most `limit` entries applied per CatchUp call (0 = no
  // limit).
  void set_apply_limit(int limit) { apply_limit_ = limit; }
  // One-shot torn push: the next kReplPush applies only half its entries and
  // then the connection dies mid-reply (the pusher sees a transport error and
  // must converge by re-pushing).
  void ArmTornPush() { torn_push_armed_ = true; }

  // MessageHandler — the read-serving side.
  std::string OnMessage(uint64_t conn_id, std::string_view payload) override;
  void OnConnect(uint64_t conn_id, std::string peer) override;
  void OnDisconnect(uint64_t conn_id) override;

  struct Stats {
    uint64_t entries_applied = 0;
    uint64_t apply_failures = 0;  // divergence signal: an entry failed to replay
    uint64_t fetch_rounds = 0;
    uint64_t snapshot_loads = 0;
    uint64_t reads_served = 0;
    uint64_t reads_behind = 0;     // answered MR_REPL_BEHIND
    uint64_t read_catch_ups = 0;   // on-demand pulls triggered by a token
    // Seq the last snapshot transfer was cut at.  With a checkpoint-serving
    // primary this is the checkpoint's stamped seq (bootstrap = checkpoint +
    // journal tail), not the primary's last_seq.
    uint64_t last_snapshot_seq = 0;
    // Failover-path counters.
    uint64_t push_batches = 0;       // kReplPush batches applied
    uint64_t fence_refusals = 0;     // pushes/votes refused as stale-epoch
    uint64_t heartbeat_misses = 0;
    uint64_t elections_started = 0;
    uint64_t votes_granted = 0;
    uint64_t adoptions = 0;          // switched primary link to a newer primary
    uint64_t promotions = 0;         // elections won
    uint64_t step_downs = 0;         // demotions of a fenced ex-primary
    uint64_t divergence_resyncs = 0; // dead-reign suffix detected, snapshot forced
  };
  const Stats& stats() const { return stats_; }

  const std::string& name() const { return options_.name; }
  SimulatedClock& clock() { return clock_; }
  Database& db() { return *db_; }
  MoiraContext& context() { return *mc_; }
  MoiraServer& server() { return *server_; }
  MrClient* primary_link() { return link_.get(); }

 private:
  bool EnsureLink();
  int32_t CatchUpInternal(uint64_t target_seq, int max_batches);
  int32_t LoadSnapshot();
  void ApplyEntry(const JournalEntry& entry);
  // Highest epoch this node must refuse below: max(seen, voted).
  uint64_t VoteFloor() const;
  // Epoch of the last applied entry (0 = unknown, e.g. right after a
  // snapshot bootstrap); the log-comparison half of an election vote.
  uint64_t TailEpoch() const { return applied_entry_epoch_; }
  // Re-point the primary link at a peer that is (or hosts) the new primary.
  void AdoptPrimary(const std::string& peer_name);
  // Demote a fenced ex-primary back to replica: wipe local state (the dead
  // reign's suffix may not be in the cluster history) and resync.
  void StepDown();
  std::string HandleReplPush(uint64_t conn_id, const MrRequest& request);
  std::string HandleReplVote(const MrRequest& request);

  ReplicaOptions options_;
  SimulatedClock clock_;
  KerberosRealm* realm_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<MoiraContext> mc_;
  std::unique_ptr<MoiraServer> server_;
  std::unique_ptr<MrClient> link_;
  bool link_authed_ = false;
  uint64_t applied_seq_ = 0;
  bool promoted_ = false;
  bool crashed_ = false;
  bool force_snapshot_ = false;
  int apply_limit_ = 0;
  // Failover state.
  std::map<std::string, MrClient::Connector> peers_;  // name -> connector
  std::string repl_principal_;
  std::string repl_password_;
  uint64_t epoch_ = 1;               // highest epoch seen
  uint64_t voted_epoch_ = 0;         // highest epoch voted in (durable)
  uint64_t applied_entry_epoch_ = 0; // epoch of the entry at applied_seq_
  int misses_ = 0;                   // consecutive missed heartbeats
  bool torn_push_armed_ = false;
  std::vector<std::unique_ptr<QuorumPeer>> push_peers_;  // installed on promotion
  Stats stats_;
};

// Operator failover helper: the most-caught-up live replica (max applied_seq,
// ties broken by name so the choice is deterministic); nullptr if none.
ReplicaServer* ChooseFailoverCandidate(const std::vector<ReplicaServer*>& replicas);

}  // namespace moira

#endif  // MOIRA_SRC_REPL_REPLICA_H_
