// Journal-shipping read replicas (DESIGN.md "Replication layer").
//
// The paper runs one central Moira server and offloads read traffic only
// through derived services (Hesiod).  The journal of section 5.2.2 already
// records every successful change as a replayable query+args line — exactly a
// replication log.  A ReplicaServer owns its own embedded database (seeded to
// the same initial state as the primary), pulls journal entries from the
// primary over the authenticated wire protocol (kReplFetch), applies them
// deterministically through the query registry with the original principal,
// client name, and timestamp — so modby/modwith/modtime stamps, and therefore
// full database dumps, come out byte-identical — and serves read-only queries
// through an embedded MoiraServer.
//
// Consistency: replicas track applied_seq, the highest journal sequence
// number applied.  A read carrying a read-your-writes token (kQueryAtSeq)
// greater than applied_seq triggers a brief on-demand catch-up pull; if the
// replica still cannot reach the token it answers MR_REPL_BEHIND and the
// client redirects to the primary.  A replica that reconnects after a
// disconnect resumes fetching from applied_seq + 1; if the primary has
// truncated its journal past that point (MR_REPL_TRUNCATED) the replica falls
// back to a full snapshot transfer (kReplSnapshot).  Operator-driven failover
// promotes the most-caught-up replica: Promote() makes it writable and
// continues the journal sequence from applied_seq + 1.
#ifndef MOIRA_SRC_REPL_REPLICA_H_
#define MOIRA_SRC_REPL_REPLICA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/client/client.h"
#include "src/common/clock.h"
#include "src/core/context.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/server/server.h"

namespace moira {

struct ReplicaOptions {
  std::string name = "replica";
  // The replica seeds its database (schema + defaults) at this time; it must
  // match the primary's seed time or the two initial states diverge.
  UnixTime start_time = 568000000;
  // Batch size of one kReplFetch round trip.
  int max_entries_per_fetch = 256;
  // A read whose token is ahead of applied_seq "waits briefly": up to this
  // many on-demand fetch batches before answering MR_REPL_BEHIND.
  bool catch_up_on_read = true;
  int read_catch_up_batches = 4;
};

class ReplicaServer final : public MessageHandler {
 public:
  // `realm` is the shared KDC: the embedded read server authenticates clients
  // against it, and the primary link authenticates with it.  Must outlive the
  // replica.
  explicit ReplicaServer(KerberosRealm* realm, ReplicaOptions options = {});

  // Configures the pull link to the primary.  `principal` must be authorized
  // for get_replica_status on the primary (root or CAPACLS member) — the
  // capability that gates journal streaming.
  void SetPrimaryLink(MrClient::Connector connector, std::string principal,
                      std::string password);

  // One catch-up run: connect/authenticate if needed (cached ticket — a KDC
  // blip does not stop a reconnect), then fetch and apply batches until
  // caught up with the primary.  Falls back to a snapshot transfer when the
  // primary's journal has been truncated past applied_seq.  Returns
  // MR_SUCCESS when fully caught up, MR_MORE_DATA when an injected apply
  // limit stopped it early, or the transport/server error otherwise.
  int32_t CatchUp();

  uint64_t applied_seq() const { return applied_seq_; }
  bool promoted() const { return promoted_; }

  // Operator failover: start accepting writes.  The embedded server's
  // journal continues numbering from applied_seq + 1, so post-failover
  // entries extend the old primary's sequence.  Returns the now-writable
  // embedded server (its journal is the new replication source).
  MoiraServer* Promote();

  // --- fault hooks (seeded ReplFaultPlan) ---
  // Crash: the replica loses its in-memory state and stops serving.
  void Crash() { crashed_ = true; }
  bool crashed() const { return crashed_; }
  // Reboot after a crash: state is gone, so the next CatchUp performs a full
  // snapshot transfer.
  void Restart();
  // Link flap: drops the primary connection; the next CatchUp reconnects,
  // re-authenticates, and resumes from applied_seq + 1.
  void DropLink();
  // Slow apply: at most `limit` entries applied per CatchUp call (0 = no
  // limit).
  void set_apply_limit(int limit) { apply_limit_ = limit; }

  // MessageHandler — the read-serving side.
  std::string OnMessage(uint64_t conn_id, std::string_view payload) override;
  void OnConnect(uint64_t conn_id, std::string peer) override;
  void OnDisconnect(uint64_t conn_id) override;

  struct Stats {
    uint64_t entries_applied = 0;
    uint64_t apply_failures = 0;  // divergence signal: an entry failed to replay
    uint64_t fetch_rounds = 0;
    uint64_t snapshot_loads = 0;
    uint64_t reads_served = 0;
    uint64_t reads_behind = 0;     // answered MR_REPL_BEHIND
    uint64_t read_catch_ups = 0;   // on-demand pulls triggered by a token
    // Seq the last snapshot transfer was cut at.  With a checkpoint-serving
    // primary this is the checkpoint's stamped seq (bootstrap = checkpoint +
    // journal tail), not the primary's last_seq.
    uint64_t last_snapshot_seq = 0;
  };
  const Stats& stats() const { return stats_; }

  const std::string& name() const { return options_.name; }
  SimulatedClock& clock() { return clock_; }
  Database& db() { return *db_; }
  MoiraContext& context() { return *mc_; }
  MoiraServer& server() { return *server_; }
  MrClient* primary_link() { return link_.get(); }

 private:
  bool EnsureLink();
  int32_t CatchUpInternal(uint64_t target_seq, int max_batches);
  int32_t LoadSnapshot();
  void ApplyEntry(const JournalEntry& entry);

  ReplicaOptions options_;
  SimulatedClock clock_;
  KerberosRealm* realm_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<MoiraContext> mc_;
  std::unique_ptr<MoiraServer> server_;
  std::unique_ptr<MrClient> link_;
  bool link_authed_ = false;
  uint64_t applied_seq_ = 0;
  bool promoted_ = false;
  bool crashed_ = false;
  bool force_snapshot_ = false;
  int apply_limit_ = 0;
  Stats stats_;
};

// Operator failover helper: the most-caught-up live replica (max applied_seq,
// ties broken by name so the choice is deterministic); nullptr if none.
ReplicaServer* ChooseFailoverCandidate(const std::vector<ReplicaServer*>& replicas);

}  // namespace moira

#endif  // MOIRA_SRC_REPL_REPLICA_H_
