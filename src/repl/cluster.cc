#include "src/repl/cluster.h"

#include "src/backup/backup.h"
#include "src/comerr/moira_errors.h"

namespace moira {
namespace {

// Loopback channel with a partition check on both halves of the exchange.
class PartitionChannel final : public ClientChannel {
 public:
  PartitionChannel(const NetworkPartition* net, std::string from, std::string to,
                   MessageHandler* handler)
      : net_(net), from_(std::move(from)), to_(std::move(to)), inner_(handler) {}

  int32_t Send(std::string_view framed) override {
    if (!net_->Allowed(from_, to_)) {
      return MR_ABORTED;  // request dropped on the floor
    }
    return inner_.Send(framed);
  }

  int32_t Recv(std::string* payload) override {
    if (!net_->Allowed(to_, from_)) {
      // The request was delivered and possibly applied, but the reply path
      // is down: the caller sees a dead connection and must treat the
      // outcome as unknown.
      return MR_ABORTED;
    }
    return inner_.Recv(payload);
  }

 private:
  const NetworkPartition* net_;
  std::string from_;
  std::string to_;
  LoopbackChannel inner_;
};

}  // namespace

MrClient::Connector NetworkPartition::Connector(std::string from, std::string to,
                                                MessageHandler* handler) const {
  const NetworkPartition* net = this;
  return [net, from = std::move(from), to = std::move(to), handler] {
    return std::make_unique<PartitionChannel>(net, from, to, handler);
  };
}

ReplCluster::ReplCluster(ReplClusterOptions options)
    : options_(options), clock_(options.start_time) {
  realm_ = std::make_unique<KerberosRealm>(&clock_);
  realm_->AddPrincipal("root", "rootpw");
  for (int i = 0; i < options_.nodes; ++i) {
    names_.push_back("n" + std::to_string(i));
  }
  for (int i = 0; i < options_.nodes; ++i) {
    ReplicaOptions ropts;
    ropts.name = names_[static_cast<size_t>(i)];
    ropts.start_time = options_.start_time;
    ropts.missed_heartbeats = options_.missed_heartbeats;
    ropts.server_options.write_quorum = options_.write_quorum;
    ropts.server_options.cluster_size = options_.nodes;
    ropts.server_options.quorum_ack_local = options_.quorum_ack_local;
    ropts.server_options.quorum_attempts = options_.quorum_attempts;
    nodes_.push_back(std::make_unique<ReplicaServer>(realm_.get(), ropts));
  }
  // All-to-all peer wiring through the partition matrix, then the initial
  // roles: node 0 is the epoch-1 primary, everyone else pulls from it.
  for (int i = 0; i < options_.nodes; ++i) {
    for (int j = 0; j < options_.nodes; ++j) {
      if (i == j) {
        continue;
      }
      nodes_[static_cast<size_t>(i)]->AddPeer(
          names_[static_cast<size_t>(j)],
          net_.Connector(names_[static_cast<size_t>(i)],
                         names_[static_cast<size_t>(j)],
                         nodes_[static_cast<size_t>(j)].get()));
    }
  }
  for (int i = 1; i < options_.nodes; ++i) {
    nodes_[static_cast<size_t>(i)]->SetPrimaryLink(
        net_.Connector(names_[static_cast<size_t>(i)], names_[0], nodes_[0].get()),
        "root", "rootpw");
  }
  // The initial primary needs the push credentials too (SetPrimaryLink is
  // what records them), even though it never pulls from anyone.
  nodes_[0]->SetPrimaryLink(
      net_.Connector(names_[0], names_[0], nodes_[0].get()), "root", "rootpw");
  nodes_[0]->PromoteWithEpoch(1);
}

ReplCluster::~ReplCluster() {
  // Every open channel holds a raw MessageHandler pointer into a sibling
  // node; tear all connections down while every node is still alive, or the
  // channel destructors dereference freed nodes.
  for (const std::unique_ptr<ReplicaServer>& node : nodes_) {
    node->DisconnectAll();
  }
}

std::vector<ReplicaServer::HeartbeatEvent> ReplCluster::Tick(UnixTime dt) {
  clock_.Advance(dt);
  std::vector<ReplicaServer::HeartbeatEvent> events;
  events.reserve(nodes_.size());
  for (const std::unique_ptr<ReplicaServer>& node : nodes_) {
    node->clock().Advance(dt);
    events.push_back(node->HeartbeatTick());
  }
  return events;
}

ReplicaServer* ReplCluster::primary() {
  std::vector<ReplicaServer*> writable = WritablePrimaries();
  return writable.size() == 1 ? writable[0] : nullptr;
}

std::vector<ReplicaServer*> ReplCluster::WritablePrimaries() {
  std::vector<ReplicaServer*> out;
  for (const std::unique_ptr<ReplicaServer>& node : nodes_) {
    if (node->promoted() && !node->crashed() && !node->server().fenced()) {
      out.push_back(node.get());
    }
  }
  return out;
}

MrClient::Connector ReplCluster::ClientConnector(int i) {
  return net_.Connector(kClientEndpoint, names_[static_cast<size_t>(i)],
                        nodes_[static_cast<size_t>(i)].get());
}

std::string ReplCluster::DumpNode(int i) {
  return BackupManager::DumpToString(nodes_[static_cast<size_t>(i)]->db());
}

void AttachDcmReadSource(Dcm* dcm, ReplicaServer* replica) {
  dcm->SetReadSource(&replica->context(), [replica](uint64_t high_water) {
    if (replica->crashed() || replica->promoted()) {
      // A promoted replica IS the primary; reading "the replica" would not
      // offload anything, and a crashed one cannot serve.
      return replica->promoted() && !replica->crashed() &&
             replica->server().journal().last_seq() >= high_water;
    }
    replica->CatchUp();
    return replica->applied_seq() >= high_water;
  });
}

}  // namespace moira
