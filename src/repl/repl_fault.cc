#include "src/repl/repl_fault.h"

#include "src/common/random.h"

namespace moira {
namespace {

// One independent stream per (seed, round, index); the golden-ratio stride
// matches the DCM fault plan's keying.  Replica indices stay well below the
// reserved directory-server indices (8190/8191) used by FaultPlan, so a
// shared seed never aliases streams.
SplitMix64 StreamFor(uint64_t seed, int round, int index) {
  return SplitMix64(seed +
                    0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(round) * 8192 +
                                             static_cast<uint64_t>(index)));
}

}  // namespace

void ReplFaultPlan::ArmRound(const std::vector<ReplicaServer*>& replicas,
                             KerberosRealm* realm, int round) const {
  for (size_t i = 0; i < replicas.size(); ++i) {
    ReplicaServer* replica = replicas[i];
    if (replica == nullptr) {
      continue;
    }
    if (replica->crashed()) {
      replica->Restart();  // last round's crash heals; state resyncs via snapshot
    }
    SplitMix64 rng = StreamFor(spec_.seed, round, static_cast<int>(i));
    const bool crash = spec_.crash_permille > 0 && rng.Chance(spec_.crash_permille, 1000);
    const bool flap = spec_.flap_permille > 0 && rng.Chance(spec_.flap_permille, 1000);
    const bool slow = spec_.slow_permille > 0 && rng.Chance(spec_.slow_permille, 1000);
    if (crash) {
      replica->Crash();
      continue;  // a dead replica neither flaps nor applies slowly
    }
    if (flap) {
      replica->DropLink();
    }
    replica->set_apply_limit(slow ? spec_.slow_apply_limit : 0);
  }
  if (realm != nullptr && spec_.kdc_down_permille > 0) {
    // Reserved index 8190, matching FaultPlan::ArmDirectories' KDC stream.
    SplitMix64 rng = StreamFor(spec_.seed, round, 8190);
    realm->SetDown(rng.Chance(spec_.kdc_down_permille, 1000));
  }
}

}  // namespace moira
