#include "src/repl/repl_fault.h"

#include "src/common/random.h"
#include "src/repl/cluster.h"

namespace moira {
namespace {

// One independent stream per (seed, round, index); the golden-ratio stride
// matches the DCM fault plan's keying.  Replica indices stay well below the
// reserved directory-server indices (8190/8191) used by FaultPlan, so a
// shared seed never aliases streams.
SplitMix64 StreamFor(uint64_t seed, int round, int index) {
  return SplitMix64(seed +
                    0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(round) * 8192 +
                                             static_cast<uint64_t>(index)));
}

}  // namespace

void ReplFaultPlan::ArmRound(const std::vector<ReplicaServer*>& replicas,
                             KerberosRealm* realm, int round) const {
  ArmRound(replicas, realm, round, nullptr, {});
}

void ReplFaultPlan::ArmRound(const std::vector<ReplicaServer*>& replicas,
                             KerberosRealm* realm, int round,
                             NetworkPartition* net,
                             const std::vector<std::string>& names) const {
  if (net != nullptr) {
    net->HealAll();  // last round's cuts heal; this round re-draws below
  }
  for (size_t i = 0; i < replicas.size(); ++i) {
    ReplicaServer* replica = replicas[i];
    if (replica == nullptr) {
      continue;
    }
    if (replica->crashed()) {
      replica->Restart();  // last round's crash heals; state resyncs via snapshot
    }
    SplitMix64 rng = StreamFor(spec_.seed, round, static_cast<int>(i));
    const bool crash = spec_.crash_permille > 0 && rng.Chance(spec_.crash_permille, 1000);
    const bool flap = spec_.flap_permille > 0 && rng.Chance(spec_.flap_permille, 1000);
    const bool slow = spec_.slow_permille > 0 && rng.Chance(spec_.slow_permille, 1000);
    const bool torn =
        spec_.torn_push_permille > 0 && rng.Chance(spec_.torn_push_permille, 1000);
    if (crash) {
      replica->Crash();
      continue;  // a dead replica neither flaps nor applies slowly
    }
    if (flap) {
      replica->DropLink();
    }
    if (torn) {
      replica->ArmTornPush();
    }
    replica->set_apply_limit(slow ? spec_.slow_apply_limit : 0);
  }
  if (realm != nullptr && spec_.kdc_down_permille > 0) {
    // Reserved index 8190, matching FaultPlan::ArmDirectories' KDC stream.
    SplitMix64 rng = StreamFor(spec_.seed, round, 8190);
    realm->SetDown(rng.Chance(spec_.kdc_down_permille, 1000));
  }
  if (net != nullptr && names.size() >= 2) {
    // Reserved index 8189 for the network draws (below the directory-server
    // indices, above any realistic node count).
    SplitMix64 rng = StreamFor(spec_.seed, round, 8189);
    if (spec_.partition_permille > 0 && rng.Chance(spec_.partition_permille, 1000)) {
      const size_t a = static_cast<size_t>(rng.Below(names.size()));
      size_t b = static_cast<size_t>(rng.Below(names.size() - 1));
      if (b >= a) {
        ++b;
      }
      net->BlockBoth(names[a], names[b]);
    }
    if (spec_.asym_partition_permille > 0 &&
        rng.Chance(spec_.asym_partition_permille, 1000)) {
      const size_t a = static_cast<size_t>(rng.Below(names.size()));
      size_t b = static_cast<size_t>(rng.Below(names.size() - 1));
      if (b >= a) {
        ++b;
      }
      net->Block(names[a], names[b]);
    }
  }
}

}  // namespace moira
