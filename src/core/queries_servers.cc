// Server and serverhost queries (paper section 7.0.4): the per-service and
// per-host state driving the Data Control Manager.
#include "src/core/queries_common.h"

namespace moira {
namespace {

Tuple ServerInfoTuple(MoiraContext& mc, size_t row) {
  const Table* servers = mc.servers();
  return {MoiraContext::StrCell(servers, row, "name"),
          IntStr(servers, row, "update_int"),
          MoiraContext::StrCell(servers, row, "target_file"),
          MoiraContext::StrCell(servers, row, "script"),
          IntStr(servers, row, "dfgen"),
          IntStr(servers, row, "dfcheck"),
          MoiraContext::StrCell(servers, row, "type"),
          IntStr(servers, row, "enable"),
          IntStr(servers, row, "inprogress"),
          IntStr(servers, row, "harderror"),
          MoiraContext::StrCell(servers, row, "errmsg"),
          MoiraContext::StrCell(servers, row, "acl_type"),
          mc.AceName(MoiraContext::StrCell(servers, row, "acl_type"),
                     MoiraContext::IntCell(servers, row, "acl_id")),
          IntStr(servers, row, "modtime"),
          MoiraContext::StrCell(servers, row, "modby"),
          MoiraContext::StrCell(servers, row, "modwith")};
}

int32_t GetServerInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* servers = mc.servers();
  std::string pattern = ToUpperCopy(call.args[0]);
  From(servers).WhereWild("name", pattern).Emit([&](const std::vector<size_t>& rows) {
    call.emit(ServerInfoTuple(mc, rows[0]));
  });
  return MR_SUCCESS;
}

int32_t QualifiedGetServer(QueryCall& call) {
  int tri[3];
  for (int i = 0; i < 3; ++i) {
    if (int32_t code = RequireTriState(call.args[i], &tri[i]); code != MR_SUCCESS) {
      return code;
    }
  }
  const Table* servers = call.mc.servers();
  static constexpr const char* kFlagCols[3] = {"enable", "inprogress", "harderror"};
  Selector sel = From(servers);
  for (int i = 0; i < 3; ++i) {
    WhereTriState(&sel, kFlagCols[i], tri[i]);
  }
  sel.Emit([&](const std::vector<size_t>& rows) {
    call.emit({MoiraContext::StrCell(servers, rows[0], "name")});
  });
  return MR_SUCCESS;
}

// Parses the shared add/update argument block {service, interval, target,
// script, type, enable, ace_type, ace_name}.
struct ServerArgs {
  std::string name;
  int64_t interval = 0;
  int64_t enable = 0;
  int64_t ace_id = 0;
};

int32_t ParseServerArgs(QueryCall& call, ServerArgs* out) {
  MoiraContext& mc = call.mc;
  out->name = ToUpperCopy(call.args[0]);
  if (int32_t code = RequireInt(call.args[1], &out->interval); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("service-type", call.args[4])) {
    return MR_TYPE;
  }
  if (int32_t code = RequireBool(call.args[5], &out->enable); code != MR_SUCCESS) {
    return code;
  }
  return mc.ResolveAce(call.args[6], call.args[7], &out->ace_id);
}

int32_t AddServerInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  ServerArgs parsed;
  if (int32_t code = ParseServerArgs(call, &parsed); code != MR_SUCCESS) {
    return code;
  }
  if (mc.ServiceByName(parsed.name).code == MR_SUCCESS) {
    return MR_EXISTS;
  }
  size_t row = mc.servers()->Append({
      Value(parsed.name), Value(parsed.interval), Value(call.args[2]), Value(call.args[3]),
      Value(int64_t{0}) /* dfgen */, Value(int64_t{0}) /* dfcheck */, Value(call.args[4]),
      Value(parsed.enable), Value(int64_t{0}) /* inprogress */,
      Value(int64_t{0}) /* harderror */, Value("") /* errmsg */, Value(call.args[6]),
      Value(parsed.ace_id), Value(int64_t{0}), Value(""), Value(""),
      Value(int64_t{0}) /* last_gen_seq */,
  });
  mc.Stamp(mc.servers(), row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateServerInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  ServerArgs parsed;
  if (int32_t code = ParseServerArgs(call, &parsed); code != MR_SUCCESS) {
    return code;
  }
  RowRef service = mc.ServiceByName(parsed.name);
  if (service.code != MR_SUCCESS) {
    return service.code;
  }
  Table* servers = mc.servers();
  MoiraContext::SetCell(servers, service.row, "update_int", Value(parsed.interval));
  MoiraContext::SetCell(servers, service.row, "target_file", Value(call.args[2]));
  MoiraContext::SetCell(servers, service.row, "script", Value(call.args[3]));
  MoiraContext::SetCell(servers, service.row, "type", Value(call.args[4]));
  MoiraContext::SetCell(servers, service.row, "enable", Value(parsed.enable));
  MoiraContext::SetCell(servers, service.row, "acl_type", Value(call.args[6]));
  MoiraContext::SetCell(servers, service.row, "acl_id", Value(parsed.ace_id));
  mc.Stamp(servers, service.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t ResetServerError(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef service = mc.ServiceByName(call.args[0]);
  if (service.code != MR_SUCCESS) {
    return service.code;
  }
  Table* servers = mc.servers();
  MoiraContext::SetCell(servers, service.row, "harderror", Value(int64_t{0}));
  MoiraContext::SetCell(servers, service.row, "errmsg", Value(""));
  MoiraContext::SetCell(servers, service.row, "dfcheck",
                        Value(MoiraContext::IntCell(servers, service.row, "dfgen")));
  mc.Stamp(servers, service.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t SetServerInternalFlags(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef service = mc.ServiceByName(call.args[0]);
  if (service.code != MR_SUCCESS) {
    return service.code;
  }
  int64_t dfgen = 0;
  int64_t dfcheck = 0;
  int64_t inprogress = 0;
  int64_t harderr = 0;
  if (int32_t code = RequireInt(call.args[1], &dfgen); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[2], &dfcheck); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireBool(call.args[3], &inprogress); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[4], &harderr); code != MR_SUCCESS) {
    return code;
  }
  Table* servers = mc.servers();
  MoiraContext::SetCellInternal(servers, service.row, "dfgen", Value(dfgen));
  MoiraContext::SetCellInternal(servers, service.row, "dfcheck", Value(dfcheck));
  MoiraContext::SetCellInternal(servers, service.row, "inprogress", Value(inprogress));
  MoiraContext::SetCellInternal(servers, service.row, "harderror", Value(harderr));
  MoiraContext::SetCellInternal(servers, service.row, "errmsg", Value(call.args[5]));
  // The service modtime is NOT set (paper: modification by the DCM does not
  // count as user modification).
  return MR_SUCCESS;
}

int32_t DeleteServerInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef service = mc.ServiceByName(call.args[0]);
  if (service.code != MR_SUCCESS) {
    return service.code;
  }
  Table* servers = mc.servers();
  if (MoiraContext::IntCell(servers, service.row, "inprogress") != 0) {
    return MR_IN_USE;
  }
  const std::string& name = MoiraContext::StrCell(servers, service.row, "name");
  if (From(mc.serverhosts()).WhereEq("service", Value(name)).Any()) {
    return MR_IN_USE;
  }
  servers->Delete(service.row);
  return MR_SUCCESS;
}

// Resolves a serverhost by exact service + machine names.
int32_t FindServerHost(MoiraContext& mc, std::string_view service_arg,
                       std::string_view machine_arg, size_t* row_out) {
  RowRef service = mc.ServiceByName(service_arg);
  if (service.code != MR_SUCCESS) {
    return service.code;
  }
  RowRef mach = mc.MachineByName(machine_arg);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  std::vector<size_t> rows =
      From(mc.serverhosts())
          .WhereEq("service", Value(MoiraContext::StrCell(mc.servers(), service.row, "name")))
          .WhereEq("mach_id",
                   Value(MoiraContext::IntCell(mc.machine(), mach.row, "mach_id")))
          .Rows();
  if (rows.empty()) {
    return MR_NO_MATCH;
  }
  *row_out = rows[0];
  return MR_SUCCESS;
}

std::string ServerHostMachineName(MoiraContext& mc, const Table* sh, size_t row) {
  int64_t mach_id = MoiraContext::IntCell(sh, row, "mach_id");
  RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
  return mach.code == MR_SUCCESS ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                 : "???";
}

int32_t GetServerHostInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* sh = mc.serverhosts();
  const Table* machine = mc.machine();
  std::string service_pattern = ToUpperCopy(call.args[0]);
  std::string machine_pattern = ToUpperCopy(call.args[1]);
  int mname_col = machine->ColumnIndex("name");
  // Join each matching serverhost to its machine row (indexed mach_id probe);
  // the machine-name pattern runs as a planned condition on the join stage.
  From(sh)
      .WhereWild("service", service_pattern)
      .Join(machine, "mach_id", "mach_id")
      .WhereWild("name", machine_pattern)
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        call.emit({MoiraContext::StrCell(sh, row, "service"),
                   machine->Cell(rows[1], mname_col).AsString(),
                   IntStr(sh, row, "enable"), IntStr(sh, row, "override"),
                   IntStr(sh, row, "success"), IntStr(sh, row, "inprogress"),
                   IntStr(sh, row, "hosterror"), MoiraContext::StrCell(sh, row, "hosterrmsg"),
                   IntStr(sh, row, "ltt"), IntStr(sh, row, "lts"), IntStr(sh, row, "value1"),
                   IntStr(sh, row, "value2"), MoiraContext::StrCell(sh, row, "value3"),
                   IntStr(sh, row, "modtime"), MoiraContext::StrCell(sh, row, "modby"),
                   MoiraContext::StrCell(sh, row, "modwith")});
      });
  return MR_SUCCESS;
}

int32_t QualifiedGetServerHost(QueryCall& call) {
  MoiraContext& mc = call.mc;
  int tri[5];
  for (int i = 0; i < 5; ++i) {
    if (int32_t code = RequireTriState(call.args[i + 1], &tri[i]); code != MR_SUCCESS) {
      return code;
    }
  }
  const Table* sh = mc.serverhosts();
  std::string service_pattern = ToUpperCopy(call.args[0]);
  static constexpr const char* kFlagCols[5] = {"enable", "override", "success",
                                               "inprogress", "hosterror"};
  Selector sel = From(sh).WhereWild("service", service_pattern);
  for (int i = 0; i < 5; ++i) {
    WhereTriState(&sel, kFlagCols[i], tri[i]);
  }
  sel.Emit([&](const std::vector<size_t>& rows) {
    call.emit({MoiraContext::StrCell(sh, rows[0], "service"),
               ServerHostMachineName(mc, sh, rows[0])});
  });
  return MR_SUCCESS;
}

int32_t AddServerHostInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef service = mc.ServiceByName(call.args[0]);
  if (service.code != MR_SUCCESS) {
    return service.code;
  }
  RowRef mach = mc.MachineByName(call.args[1]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t enable = 0;
  int64_t value1 = 0;
  int64_t value2 = 0;
  if (int32_t code = RequireBool(call.args[2], &enable); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[3], &value1); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[4], &value2); code != MR_SUCCESS) {
    return code;
  }
  const std::string& service_name = MoiraContext::StrCell(mc.servers(), service.row, "name");
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  Table* sh = mc.serverhosts();
  if (From(sh)
          .WhereEq("service", Value(service_name))
          .WhereEq("mach_id", Value(mach_id))
          .Any()) {
    return MR_EXISTS;
  }
  size_t row = sh->Append({
      Value(service_name), Value(mach_id), Value(enable), Value(int64_t{0}) /* override */,
      Value(int64_t{0}) /* success */, Value(int64_t{0}) /* inprogress */,
      Value(int64_t{0}) /* hosterror */, Value("") /* hosterrmsg */, Value(int64_t{0}),
      Value(int64_t{0}), Value(int64_t{0}) /* consec_soft */,
      Value(int64_t{0}) /* breaker */, Value(int64_t{0}) /* breaker_until */,
      Value(int64_t{0}) /* breaker_opens */, Value(value1), Value(value2),
      Value(call.args[5]), Value(int64_t{0}), Value(""), Value(""),
  });
  mc.Stamp(sh, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateServerHostInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindServerHost(mc, call.args[0], call.args[1], &row);
      code != MR_SUCCESS) {
    return code;
  }
  Table* sh = mc.serverhosts();
  if (MoiraContext::IntCell(sh, row, "inprogress") != 0) {
    return MR_IN_USE;
  }
  int64_t enable = 0;
  int64_t value1 = 0;
  int64_t value2 = 0;
  if (int32_t code = RequireBool(call.args[2], &enable); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[3], &value1); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[4], &value2); code != MR_SUCCESS) {
    return code;
  }
  MoiraContext::SetCell(sh, row, "enable", Value(enable));
  MoiraContext::SetCell(sh, row, "value1", Value(value1));
  MoiraContext::SetCell(sh, row, "value2", Value(value2));
  MoiraContext::SetCell(sh, row, "value3", Value(call.args[5]));
  mc.Stamp(sh, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t ResetServerHostError(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindServerHost(mc, call.args[0], call.args[1], &row);
      code != MR_SUCCESS) {
    return code;
  }
  Table* sh = mc.serverhosts();
  MoiraContext::SetCell(sh, row, "hosterror", Value(int64_t{0}));
  MoiraContext::SetCell(sh, row, "hosterrmsg", Value(""));
  // An operator reset also forgives the circuit breaker: the host re-enters
  // the rotation immediately instead of waiting out a cool-down.
  MoiraContext::SetCell(sh, row, "consec_soft", Value(int64_t{0}));
  MoiraContext::SetCell(sh, row, "breaker", Value(int64_t{0}));
  MoiraContext::SetCell(sh, row, "breaker_until", Value(int64_t{0}));
  mc.Stamp(sh, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t SetServerHostOverride(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindServerHost(mc, call.args[0], call.args[1], &row);
      code != MR_SUCCESS) {
    return code;
  }
  Table* sh = mc.serverhosts();
  MoiraContext::SetCell(sh, row, "override", Value(int64_t{1}));
  mc.Stamp(sh, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t SetServerHostInternal(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindServerHost(mc, call.args[0], call.args[1], &row);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t override_flag = 0;
  int64_t success = 0;
  int64_t inprogress = 0;
  int64_t hosterror = 0;
  int64_t lasttry = 0;
  int64_t lastsuccess = 0;
  if (int32_t code = RequireBool(call.args[2], &override_flag); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireBool(call.args[3], &success); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireBool(call.args[4], &inprogress); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[5], &hosterror); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[7], &lasttry); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[8], &lastsuccess); code != MR_SUCCESS) {
    return code;
  }
  Table* sh = mc.serverhosts();
  MoiraContext::SetCellInternal(sh, row, "override", Value(override_flag));
  MoiraContext::SetCellInternal(sh, row, "success", Value(success));
  MoiraContext::SetCellInternal(sh, row, "inprogress", Value(inprogress));
  MoiraContext::SetCellInternal(sh, row, "hosterror", Value(hosterror));
  MoiraContext::SetCellInternal(sh, row, "hosterrmsg", Value(call.args[6]));
  MoiraContext::SetCellInternal(sh, row, "ltt", Value(lasttry));
  MoiraContext::SetCellInternal(sh, row, "lts", Value(lastsuccess));
  // modtime NOT set: DCM-internal modification.
  return MR_SUCCESS;
}

int32_t DeleteServerHostInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindServerHost(mc, call.args[0], call.args[1], &row);
      code != MR_SUCCESS) {
    return code;
  }
  Table* sh = mc.serverhosts();
  if (MoiraContext::IntCell(sh, row, "inprogress") != 0) {
    return MR_IN_USE;
  }
  sh->Delete(row);
  return MR_SUCCESS;
}

// Per-host resilience state: breaker position, consecutive soft failures,
// cool-down expiry, lifetime quarantine count, and the last try/success
// timestamps.  Privileged (dbadmin via CAPACLS, not world_ok): it exposes
// fleet health, which is operator material, not user material.
int32_t GetServerHostHealth(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* sh = mc.serverhosts();
  From(sh).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    int64_t breaker = MoiraContext::IntCell(sh, row, "breaker");
    const char* state = breaker == 1 ? "OPEN" : breaker == 2 ? "HALF-OPEN" : "CLOSED";
    call.emit({MoiraContext::StrCell(sh, row, "service"),
               ServerHostMachineName(mc, sh, row), state,
               IntStr(sh, row, "consec_soft"), IntStr(sh, row, "breaker_until"),
               IntStr(sh, row, "breaker_opens"), IntStr(sh, row, "hosterror"),
               IntStr(sh, row, "ltt"), IntStr(sh, row, "lts")});
  });
  return MR_SUCCESS;
}

int32_t GetServerLocations(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* sh = mc.serverhosts();
  std::string pattern = ToUpperCopy(call.args[0]);
  From(sh).WhereWild("service", pattern).Emit([&](const std::vector<size_t>& rows) {
    call.emit({MoiraContext::StrCell(sh, rows[0], "service"),
               ServerHostMachineName(mc, sh, rows[0])});
  });
  return MR_SUCCESS;
}

}  // namespace

void AppendServerQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"get_server_info", "gsin", QueryClass::kRetrieve, 1, false, "name",
           "service, interval, target, script, dfgen, dfcheck, type, enable, inprogress, "
           "harderror, errmsg, ace_type, ace_name, modtime, modby, modwith",
           SelfOnServiceAce, GetServerInfo},
          {"qualified_get_server", "qgsv", QueryClass::kRetrieve, 3, false,
           "enable, inprogress, harderror", "service", nullptr, QualifiedGetServer},
          {"add_server_info", "asin", QueryClass::kAppend, 8, false,
           "service, interval, target, script, type, enable, ace_type, ace_name", "",
           nullptr, AddServerInfo},
          {"update_server_info", "usin", QueryClass::kUpdate, 8, false,
           "service, interval, target, script, type, enable, ace_type, ace_name", "",
           SelfOnServiceAce, UpdateServerInfo},
          {"reset_server_error", "rsve", QueryClass::kUpdate, 1, false, "service", "",
           SelfOnServiceAce, ResetServerError},
          {"set_server_internal_flags", "ssif", QueryClass::kUpdate, 6, false,
           "service, dfgen, dfcheck, inprogress, harderror, errmsg", "", nullptr,
           SetServerInternalFlags},
          {"delete_server_info", "dsin", QueryClass::kDelete, 1, false, "service", "",
           nullptr, DeleteServerInfo},
          {"get_server_host_info", "gshi", QueryClass::kRetrieve, 2, false,
           "service, machine",
           "service, machine, enable, override, success, inprogress, hosterror, errmsg, "
           "lasttry, lastsuccess, value1, value2, value3, modtime, modby, modwith",
           SelfOnServiceAce, GetServerHostInfo},
          {"qualified_get_server_host", "qgsh", QueryClass::kRetrieve, 6, false,
           "service, enable, override, success, inprogress, hosterror", "service, machine",
           nullptr, QualifiedGetServerHost},
          {"add_server_host_info", "ashi", QueryClass::kAppend, 6, false,
           "service, machine, enable, value1, value2, value3", "", SelfOnServiceAce,
           AddServerHostInfo},
          {"update_server_host_info", "ushi", QueryClass::kUpdate, 6, false,
           "service, machine, enable, value1, value2, value3", "", SelfOnServiceAce,
           UpdateServerHostInfo},
          {"reset_server_host_error", "rshe", QueryClass::kUpdate, 2, false,
           "service, machine", "", SelfOnServiceAce, ResetServerHostError},
          {"set_server_host_override", "ssho", QueryClass::kUpdate, 2, false,
           "service, machine", "", SelfOnServiceAce, SetServerHostOverride},
          {"set_server_host_internal", "sshi", QueryClass::kUpdate, 9, false,
           "service, machine, override, success, inprogress, hosterror, errmsg, lasttry, "
           "lastsuccess",
           "", nullptr, SetServerHostInternal},
          {"delete_server_host_info", "dshi", QueryClass::kDelete, 2, false,
           "service, machine", "", SelfOnServiceAce, DeleteServerHostInfo},
          {"get_server_locations", "gslo", QueryClass::kRetrieve, 1, true, "service",
           "service, machine", nullptr, GetServerLocations},
          {"get_server_host_health", "gshh", QueryClass::kRetrieve, 0, false, "",
           "service, machine, breaker, consec_soft, breaker_until, breaker_opens, "
           "hosterror, lasttry, lastsuccess",
           nullptr, GetServerHostHealth},
      });
}

}  // namespace moira
