// List queries (paper section 7.0.3): general-purpose grouping of objects,
// used for mailing lists, unix groups, and access control.
#include <algorithm>
#include <iterator>
#include <set>

#include "src/core/queries_common.h"

namespace moira {
namespace {

// Resolves a member (type, name) pair to its id: a users_id, list_id, or
// string id.  STRING members are interned on `intern` (adds) or looked up
// only (deletes).
int32_t ResolveMember(MoiraContext& mc, std::string_view type, std::string_view name,
                      bool intern, int64_t* id_out) {
  if (type == "USER") {
    RowRef user = mc.UserByLogin(name);
    if (user.code != MR_SUCCESS) {
      return MR_NO_MATCH;
    }
    *id_out = MoiraContext::IntCell(mc.users(), user.row, "users_id");
    return MR_SUCCESS;
  }
  if (type == "LIST") {
    RowRef list = mc.ListByName(name);
    if (list.code != MR_SUCCESS) {
      return MR_NO_MATCH;
    }
    *id_out = MoiraContext::IntCell(mc.list(), list.row, "list_id");
    return MR_SUCCESS;
  }
  if (type == "STRING") {
    if (intern) {
      int64_t id = mc.InternString(name);
      if (id < 0) {
        return MR_NO_ID;
      }
      *id_out = id;
      return MR_SUCCESS;
    }
    std::optional<int64_t> id = mc.LookupString(name);
    if (!id.has_value()) {
      return MR_NO_MATCH;
    }
    *id_out = *id;
    return MR_SUCCESS;
  }
  return MR_TYPE;
}

// Renders a member id back to its display name.
std::string MemberName(MoiraContext& mc, std::string_view type, int64_t id) {
  if (type == "USER") {
    RowRef user = mc.ExactOne(mc.users(), "users_id", Value(id), MR_USER);
    return user.code == MR_SUCCESS ? MoiraContext::StrCell(mc.users(), user.row, "login")
                                   : "???";
  }
  if (type == "LIST") {
    RowRef list = mc.ListById(id);
    return list.code == MR_SUCCESS ? MoiraContext::StrCell(mc.list(), list.row, "name")
                                   : "???";
  }
  return mc.StringById(id);
}

Tuple ListInfoTuple(MoiraContext& mc, size_t row) {
  const Table* list = mc.list();
  return {MoiraContext::StrCell(list, row, "name"),
          IntStr(list, row, "active"),
          IntStr(list, row, "public"),
          IntStr(list, row, "hidden"),
          IntStr(list, row, "maillist"),
          IntStr(list, row, "grouplist"),
          IntStr(list, row, "gid"),
          MoiraContext::StrCell(list, row, "acl_type"),
          mc.AceName(MoiraContext::StrCell(list, row, "acl_type"),
                     MoiraContext::IntCell(list, row, "acl_id")),
          MoiraContext::StrCell(list, row, "desc"),
          IntStr(list, row, "modtime"),
          MoiraContext::StrCell(list, row, "modby"),
          MoiraContext::StrCell(list, row, "modwith")};
}

// True if the principal may see a hidden list: on its ACE or privileged.
bool MaySeeList(QueryCall& call, size_t row) {
  const Table* list = call.mc.list();
  if (MoiraContext::IntCell(list, row, "hidden") == 0 || call.privileged) {
    return true;
  }
  int64_t users_id = PrincipalUserId(call.mc, call.principal);
  return UserMatchesAce(call.mc, users_id, MoiraContext::StrCell(list, row, "acl_type"),
                        MoiraContext::IntCell(list, row, "acl_id"));
}

int32_t GetListInfo(QueryCall& call) {
  MoiraContext& mc = call.mc;
  if (HasWildcard(call.args[0]) && !call.privileged) {
    return MR_PERM;
  }
  Table* list = mc.list();
  From(list)
      .WhereWild("name", call.args[0])
      .Filter([&](const Table&, size_t row) { return MaySeeList(call, row); })
      .Emit([&](const std::vector<size_t>& rows) { call.emit(ListInfoTuple(mc, rows[0])); });
  return MR_SUCCESS;
}

int32_t ExpandListNames(QueryCall& call) {
  const Table* list = call.mc.list();
  From(list)
      .WhereWild("name", call.args[0])
      .Filter([&](const Table&, size_t row) { return MaySeeList(call, row); })
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit({MoiraContext::StrCell(list, rows[0], "name")});
      });
  return MR_SUCCESS;
}

// Parses the five list flags from args[first..first+4].
int32_t ParseListFlags(const std::vector<std::string>& args, size_t first, int64_t out[5]) {
  for (int i = 0; i < 5; ++i) {
    if (int32_t code = RequireBool(args[first + i], &out[i]); code != MR_SUCCESS) {
      return code;
    }
  }
  return MR_SUCCESS;
}

int32_t AddList(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const std::string& name = call.args[0];
  if (int32_t code = RequireLegalChars(name); code != MR_SUCCESS) {
    return code;
  }
  if (mc.ListByName(name).code == MR_SUCCESS) {
    return MR_EXISTS;
  }
  int64_t flags[5];
  if (int32_t code = ParseListFlags(call.args, 1, flags); code != MR_SUCCESS) {
    return code;
  }
  int64_t gid = 0;
  if (int32_t code = RequireInt(call.args[6], &gid); code != MR_SUCCESS) {
    return code;
  }
  const std::string& ace_type = call.args[7];
  const std::string& ace_name = call.args[8];
  int64_t list_id = 0;
  if (int32_t code = mc.AllocateId("list_id", mc.list(), "list_id", &list_id);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t ace_id = 0;
  // The access list may be the list being created (self-referential).
  if (ace_type == "LIST" && ace_name == name) {
    ace_id = list_id;
  } else if (int32_t code = mc.ResolveAce(ace_type, ace_name, &ace_id); code != MR_SUCCESS) {
    return code;
  }
  if (flags[4] != 0 && gid == kUniqueGid) {
    if (int32_t code = mc.AllocateId("gid", mc.list(), "gid", &gid); code != MR_SUCCESS) {
      return code;
    }
  }
  size_t row = mc.list()->Append({Value(name), Value(list_id), Value(flags[0]),
                                  Value(flags[1]), Value(flags[2]), Value(flags[3]),
                                  Value(flags[4]), Value(gid), Value(call.args[9]),
                                  Value(ace_type), Value(ace_id), Value(int64_t{0}),
                                  Value(""), Value("")});
  mc.Stamp(mc.list(), row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateList(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef list = mc.ListByName(call.args[0]);
  if (list.code != MR_SUCCESS) {
    return list.code;
  }
  const std::string& newname = call.args[1];
  if (int32_t code = RequireLegalChars(newname); code != MR_SUCCESS) {
    return code;
  }
  if (newname != call.args[0] && mc.ListByName(newname).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  int64_t flags[5];
  if (int32_t code = ParseListFlags(call.args, 2, flags); code != MR_SUCCESS) {
    return code;
  }
  int64_t gid = 0;
  if (int32_t code = RequireInt(call.args[7], &gid); code != MR_SUCCESS) {
    return code;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  int64_t ace_id = 0;
  if (call.args[8] == "LIST" && newname == call.args[9]) {
    ace_id = list_id;
  } else if (int32_t code = mc.ResolveAce(call.args[8], call.args[9], &ace_id);
             code != MR_SUCCESS) {
    return code;
  }
  if (flags[4] != 0 && gid == kUniqueGid) {
    if (int32_t code = mc.AllocateId("gid", mc.list(), "gid", &gid); code != MR_SUCCESS) {
      return code;
    }
  }
  Table* table = mc.list();
  MoiraContext::SetCell(table, list.row, "name", Value(newname));
  MoiraContext::SetCell(table, list.row, "active", Value(flags[0]));
  MoiraContext::SetCell(table, list.row, "public", Value(flags[1]));
  MoiraContext::SetCell(table, list.row, "hidden", Value(flags[2]));
  MoiraContext::SetCell(table, list.row, "maillist", Value(flags[3]));
  MoiraContext::SetCell(table, list.row, "grouplist", Value(flags[4]));
  MoiraContext::SetCell(table, list.row, "gid", Value(gid));
  MoiraContext::SetCell(table, list.row, "acl_type", Value(call.args[8]));
  MoiraContext::SetCell(table, list.row, "acl_id", Value(ace_id));
  MoiraContext::SetCell(table, list.row, "desc", Value(call.args[10]));
  mc.Stamp(table, list.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// True if the list is referenced: as a member of another list, or as an ACE
// anywhere, or as a filesystem owners group, or a CAPACLS target.
bool ListIsReferenced(MoiraContext& mc, int64_t list_id) {
  // Membership in another list (member_id is indexed).
  if (From(mc.members())
          .WhereEq("member_type", Value("LIST"))
          .WhereEq("member_id", Value(list_id))
          .Any()) {
    return true;
  }
  auto ace_ref = [&](Table* table, const char* tname, const char* iname) {
    return From(table)
        .WhereEq(tname, Value("LIST"))
        .WhereEq(iname, Value(list_id))
        .Any();
  };
  if (ace_ref(mc.servers(), "acl_type", "acl_id") ||
      ace_ref(mc.hostaccess(), "acl_type", "acl_id") ||
      ace_ref(mc.zephyr(), "xmt_type", "xmt_id") || ace_ref(mc.zephyr(), "sub_type", "sub_id") ||
      ace_ref(mc.zephyr(), "iws_type", "iws_id") || ace_ref(mc.zephyr(), "iui_type", "iui_id")) {
    return true;
  }
  // Another list's ACE (not counting the list itself, which may be
  // self-referential).
  if (From(mc.list())
          .WhereEq("acl_type", Value("LIST"))
          .WhereEq("acl_id", Value(list_id))
          .WhereNe("list_id", Value(list_id))
          .Any()) {
    return true;
  }
  if (From(mc.filesys()).WhereEq("owners", Value(list_id)).Any()) {
    return true;
  }
  return From(mc.capacls()).WhereEq("list_id", Value(list_id)).Any();
}

int32_t DeleteList(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef list = mc.ListByName(call.args[0]);
  if (list.code != MR_SUCCESS) {
    return list.code;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  if (From(mc.members()).WhereEq("list_id", Value(list_id)).Any()) {
    return MR_IN_USE;  // the list itself must be empty
  }
  if (ListIsReferenced(mc, list_id)) {
    return MR_IN_USE;
  }
  mc.list()->Delete(list.row);
  return MR_SUCCESS;
}

// Self-access for membership changes: anyone may add/delete themselves as a
// USER member of a public list.
bool SelfPublicListMember(MoiraContext& mc, std::string_view principal,
                          const std::vector<std::string>& args) {
  if (args.size() != 3 || args[1] != "USER" || args[2] != principal) {
    return SelfOnListAce(mc, principal, args);
  }
  RowRef list = mc.ListByName(args[0]);
  if (list.code != MR_SUCCESS) {
    return false;
  }
  if (MoiraContext::IntCell(mc.list(), list.row, "public") != 0) {
    return true;
  }
  return SelfOnListAce(mc, principal, args);
}

int32_t AddMemberToList(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef list = mc.ListByName(call.args[0]);
  if (list.code != MR_SUCCESS) {
    return list.code;
  }
  int64_t member_id = 0;
  if (int32_t code =
          ResolveMember(mc, call.args[1], call.args[2], /*intern=*/true, &member_id);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  Table* members = mc.members();
  if (From(members)
          .WhereEq("list_id", Value(list_id))
          .WhereEq("member_type", Value(call.args[1]))
          .WhereEq("member_id", Value(member_id))
          .Any()) {
    return MR_EXISTS;
  }
  members->Append({Value(list_id), Value(call.args[1]), Value(member_id)});
  mc.Stamp(mc.list(), list.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteMemberFromList(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef list = mc.ListByName(call.args[0]);
  if (list.code != MR_SUCCESS) {
    return list.code;
  }
  int64_t member_id = 0;
  if (int32_t code =
          ResolveMember(mc, call.args[1], call.args[2], /*intern=*/false, &member_id);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  Table* members = mc.members();
  std::vector<size_t> rows = From(members)
                                 .WhereEq("list_id", Value(list_id))
                                 .WhereEq("member_type", Value(call.args[1]))
                                 .WhereEq("member_id", Value(member_id))
                                 .Rows();
  if (rows.empty()) {
    return MR_NO_MATCH;
  }
  for (size_t row : rows) {
    members->Delete(row);
  }
  mc.Stamp(mc.list(), list.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// Collects the set of (USER,id)/(LIST,id) entities matched by an ace_type of
// USER/LIST/RUSER/RLIST: the recursive forms include every list the target is
// a (transitive) member of.
int32_t CollectAceEntities(MoiraContext& mc, std::string_view ace_type,
                           std::string_view ace_name,
                           std::set<std::pair<std::string, int64_t>>* out) {
  bool recursive = ace_type == "RUSER" || ace_type == "RLIST";
  bool is_user = ace_type == "USER" || ace_type == "RUSER";
  bool is_list = ace_type == "LIST" || ace_type == "RLIST";
  if (!is_user && !is_list) {
    return MR_TYPE;
  }
  int64_t base_id = 0;
  if (is_user) {
    RowRef user = mc.UserByLogin(ace_name);
    if (user.code != MR_SUCCESS) {
      return MR_NO_MATCH;
    }
    base_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
    out->emplace("USER", base_id);
  } else {
    RowRef list = mc.ListByName(ace_name);
    if (list.code != MR_SUCCESS) {
      return MR_NO_MATCH;
    }
    base_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
    out->emplace("LIST", base_id);
  }
  if (!recursive) {
    return MR_SUCCESS;
  }
  // Every list transitively containing the base entity is collected as a
  // LIST entity; the closure cache memoizes the fixed point against the
  // members-table version, so repeated expansions are a map lookup.
  for (int64_t id : mc.ContainingListClosure(is_user ? "USER" : "LIST", base_id)) {
    out->emplace("LIST", id);
  }
  return MR_SUCCESS;
}

int32_t GetAceUse(QueryCall& call) {
  MoiraContext& mc = call.mc;
  std::set<std::pair<std::string, int64_t>> entities;
  if (int32_t code = CollectAceEntities(mc, call.args[0], call.args[1], &entities);
      code != MR_SUCCESS) {
    return code;
  }
  // The entity set splits by type into two sorted id vectors, which drive
  // typed WhereEq(type) + WhereIn(ids) probes.  A row references at most one
  // ace, so the per-type row sets are disjoint; merging the sorted Rows()
  // results reproduces the old whole-table Filter scan's storage order.
  std::vector<Value> user_ids;
  std::vector<Value> list_ids;
  for (const auto& [type, id] : entities) {
    (type == "USER" ? user_ids : list_ids).emplace_back(id);
  }
  auto merged_rows = [](std::vector<size_t> a, const std::vector<size_t>& b) {
    std::vector<size_t> out;
    out.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  auto typed_rows = [&](Table* table, const char* tname, const char* iname) {
    auto branch = [&](const char* type, const std::vector<Value>& ids) {
      return ids.empty()
                 ? std::vector<size_t>()
                 : From(table).WhereEq(tname, Value(type)).WhereIn(iname, ids).Rows();
    };
    return merged_rows(branch("USER", user_ids), branch("LIST", list_ids));
  };
  auto scan_ace = [&](Table* table, const char* tname, const char* iname,
                      const char* obj_type, const char* name_col) {
    for (size_t row : typed_rows(table, tname, iname)) {
      call.emit({obj_type, MoiraContext::StrCell(table, row, name_col)});
    }
  };
  scan_ace(mc.list(), "acl_type", "acl_id", "LIST", "name");
  scan_ace(mc.servers(), "acl_type", "acl_id", "SERVICE", "name");
  scan_ace(mc.zephyr(), "xmt_type", "xmt_id", "ZEPHYR", "class");
  scan_ace(mc.zephyr(), "sub_type", "sub_id", "ZEPHYR", "class");
  scan_ace(mc.zephyr(), "iws_type", "iws_id", "ZEPHYR", "class");
  scan_ace(mc.zephyr(), "iui_type", "iui_id", "ZEPHYR", "class");
  // Filesystems: owner is a USER ace, owners a LIST ace.  The disjunction is
  // the union of two typed probes; here a row can match both branches, so the
  // merge's dedup matters.
  Table* filesys = mc.filesys();
  for (size_t row : merged_rows(
           user_ids.empty() ? std::vector<size_t>()
                            : From(filesys).WhereIn("owner", user_ids).Rows(),
           list_ids.empty() ? std::vector<size_t>()
                            : From(filesys).WhereIn("owners", list_ids).Rows())) {
    call.emit({"FILESYS", MoiraContext::StrCell(filesys, row, "label")});
  }
  // Hostaccess.
  Table* hostaccess = mc.hostaccess();
  for (size_t row : typed_rows(hostaccess, "acl_type", "acl_id")) {
    int64_t mach_id = MoiraContext::IntCell(hostaccess, row, "mach_id");
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
    call.emit({"HOSTACCESS", mach.code == MR_SUCCESS
                                 ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                 : "???"});
  }
  // Queries (CAPACLS): only LIST entities appear there.
  if (!list_ids.empty()) {
    Table* capacls = mc.capacls();
    for (size_t row : From(capacls).WhereIn("list_id", list_ids).Rows()) {
      call.emit({"QUERY", MoiraContext::StrCell(capacls, row, "capability")});
    }
  }
  return MR_SUCCESS;
}

int32_t QualifiedGetLists(QueryCall& call) {
  int tri[5];
  for (int i = 0; i < 5; ++i) {
    if (int32_t code = RequireTriState(call.args[i], &tri[i]); code != MR_SUCCESS) {
      return code;
    }
  }
  const Table* list = call.mc.list();
  static constexpr const char* kFlagCols[5] = {"active", "public", "hidden", "maillist",
                                               "grouplist"};
  Selector sel = From(list);
  for (int i = 0; i < 5; ++i) {
    WhereTriState(&sel, kFlagCols[i], tri[i]);
  }
  sel.Emit([&](const std::vector<size_t>& rows) {
    call.emit({MoiraContext::StrCell(list, rows[0], "name")});
  });
  return MR_SUCCESS;
}

int32_t GetMembersOfList(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef list = mc.ListByName(call.args[0]);
  if (list.code != MR_SUCCESS) {
    return list.code;
  }
  if (!MaySeeList(call, list.row)) {
    return MR_PERM;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  Table* members = mc.members();
  int type_col = members->ColumnIndex("member_type");
  int id_col = members->ColumnIndex("member_id");
  From(members).WhereEq("list_id", Value(list_id)).Emit([&](const std::vector<size_t>& rows) {
    const std::string& type = members->Cell(rows[0], type_col).AsString();
    call.emit({type, MemberName(mc, type, members->Cell(rows[0], id_col).AsInt())});
  });
  return MR_SUCCESS;
}

int32_t GetListsOfMember(QueryCall& call) {
  MoiraContext& mc = call.mc;
  std::string type(call.args[0]);
  bool recursive = false;
  if (type.size() > 1 && type[0] == 'R') {
    recursive = true;
    type = type.substr(1);
  }
  if (type != "USER" && type != "LIST" && type != "STRING") {
    return MR_TYPE;
  }
  int64_t member_id = 0;
  if (int32_t code = ResolveMember(mc, type, call.args[1], /*intern=*/false, &member_id);
      code != MR_SUCCESS) {
    return code;
  }
  // Direct containing lists come from an indexed member_id probe; the
  // recursive form is the memoized transitive closure (invalidated whenever
  // the members relation changes), so repeated expansions of a stable
  // membership graph cost one cache lookup.
  std::set<int64_t> containing;
  if (recursive) {
    const std::vector<int64_t>& closure = mc.ContainingListClosure(type, member_id);
    containing.insert(closure.begin(), closure.end());
  } else {
    Table* members = mc.members();
    int list_col = members->ColumnIndex("list_id");
    From(members)
        .WhereEq("member_type", Value(type))
        .WhereEq("member_id", Value(member_id))
        .Emit([&](const std::vector<size_t>& rows) {
          containing.insert(members->Cell(rows[0], list_col).AsInt());
        });
  }
  const Table* list = mc.list();
  for (int64_t id : containing) {
    RowRef ref = mc.ListById(id);
    if (ref.code != MR_SUCCESS) {
      continue;
    }
    call.emit({MoiraContext::StrCell(list, ref.row, "name"), IntStr(list, ref.row, "active"),
               IntStr(list, ref.row, "public"), IntStr(list, ref.row, "hidden"),
               IntStr(list, ref.row, "maillist"), IntStr(list, ref.row, "grouplist")});
  }
  return MR_SUCCESS;
}

int32_t CountMembersOfList(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef list = mc.ListByName(call.args[0]);
  if (list.code != MR_SUCCESS) {
    return list.code;
  }
  if (!MaySeeList(call, list.row)) {
    return MR_PERM;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  size_t count = From(mc.members()).WhereEq("list_id", Value(list_id)).Count();
  call.emit({std::to_string(count)});
  return MR_SUCCESS;
}

// Self-access: a user asking about themselves (get_ace_use, get_lists_of_member).
bool SelfIsArg1Name(MoiraContext& mc, std::string_view principal,
                    const std::vector<std::string>& args) {
  (void)mc;
  return args.size() >= 2 && args[1] == principal &&
         (args[0] == "USER" || args[0] == "RUSER");
}

}  // namespace

void AppendListQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"get_list_info", "glin", QueryClass::kRetrieve, 1, true, "list",
           "list, active, public, hidden, maillist, group, gid, acl_type, acl_name, "
           "description, modtime, modby, modwith",
           nullptr, GetListInfo},
          {"expand_list_names", "exln", QueryClass::kRetrieve, 1, true, "list", "list",
           nullptr, ExpandListNames},
          {"add_list", "alis", QueryClass::kAppend, 10, false,
           "list, active, public, hidden, maillist, group, gid, acl_type, acl_name, "
           "description",
           "", nullptr, AddList},
          {"update_list", "ulis", QueryClass::kUpdate, 11, false,
           "list, newname, active, public, hidden, maillist, group, gid, acl_type, "
           "acl_name, description",
           "", SelfOnListAce, UpdateList},
          {"delete_list", "dlis", QueryClass::kDelete, 1, false, "list", "", SelfOnListAce,
           DeleteList},
          {"add_member_to_list", "amtl", QueryClass::kAppend, 3, false,
           "list, type, member", "", SelfPublicListMember, AddMemberToList},
          {"delete_member_from_list", "dmfl", QueryClass::kDelete, 3, false,
           "list, type, member", "", SelfPublicListMember, DeleteMemberFromList},
          {"get_ace_use", "gaus", QueryClass::kRetrieve, 2, false, "ace_type, ace_name",
           "object_type, object_name", SelfIsArg1Name, GetAceUse},
          {"qualified_get_lists", "qgli", QueryClass::kRetrieve, 5, true,
           "active, public, hidden, maillist, group", "list", nullptr, QualifiedGetLists},
          {"get_members_of_list", "gmol", QueryClass::kRetrieve, 1, true, "list",
           "type, value", nullptr, GetMembersOfList},
          {"get_lists_of_member", "glom", QueryClass::kRetrieve, 2, false, "type, value",
           "list, active, public, hidden, maillist, group", SelfIsArg1Name,
           GetListsOfMember},
          {"count_members_of_list", "cmol", QueryClass::kRetrieve, 1, true, "list", "count",
           nullptr, CountMembersOfList},
      });
}

}  // namespace moira
