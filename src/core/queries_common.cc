#include "src/core/queries_common.h"

namespace moira {

bool SelfIsArg0Login(MoiraContext& mc, std::string_view principal,
                     const std::vector<std::string>& args) {
  (void)mc;
  return !args.empty() && args[0] == principal;
}

bool SelfOnListAce(MoiraContext& mc, std::string_view principal,
                   const std::vector<std::string>& args) {
  if (args.empty()) {
    return false;
  }
  RowRef ref = mc.ListByName(args[0]);
  if (ref.code != MR_SUCCESS) {
    return false;
  }
  int64_t users_id = PrincipalUserId(mc, principal);
  return UserMatchesAce(mc, users_id,
                        MoiraContext::StrCell(mc.list(), ref.row, "acl_type"),
                        MoiraContext::IntCell(mc.list(), ref.row, "acl_id"));
}

bool SelfOnServiceAce(MoiraContext& mc, std::string_view principal,
                      const std::vector<std::string>& args) {
  if (args.empty()) {
    return false;
  }
  RowRef ref = mc.ServiceByName(args[0]);
  if (ref.code != MR_SUCCESS) {
    return false;
  }
  int64_t users_id = PrincipalUserId(mc, principal);
  return UserMatchesAce(mc, users_id,
                        MoiraContext::StrCell(mc.servers(), ref.row, "acl_type"),
                        MoiraContext::IntCell(mc.servers(), ref.row, "acl_id"));
}

}  // namespace moira
