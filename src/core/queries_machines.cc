// Machine and cluster queries (paper section 7.0.2).
#include "src/core/queries_common.h"

namespace moira {
namespace {

// --- machines ---

int32_t GetMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* machine = mc.machine();
  // Machine names are case insensitive and stored in uppercase.
  std::string pattern = ToUpperCopy(call.args[0]);
  From(machine).WhereWild("name", pattern).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    call.emit({MoiraContext::StrCell(machine, row, "name"),
               MoiraContext::StrCell(machine, row, "type"), IntStr(machine, row, "modtime"),
               MoiraContext::StrCell(machine, row, "modby"),
               MoiraContext::StrCell(machine, row, "modwith")});
  });
  return MR_SUCCESS;
}

int32_t AddMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  std::string name = CanonicalizeHostname(call.args[0]);
  if (int32_t code = RequireLegalChars(name); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("mach_type", call.args[1])) {
    return MR_TYPE;
  }
  if (mc.MachineByName(name).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  int64_t mach_id = 0;
  if (int32_t code = mc.AllocateId("mach_id", mc.machine(), "mach_id", &mach_id);
      code != MR_SUCCESS) {
    return code;
  }
  size_t row = mc.machine()->Append(
      {Value(name), Value(mach_id), Value(call.args[1]), Value(int64_t{0}), Value(""),
       Value("")});
  mc.Stamp(mc.machine(), row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  std::string newname = CanonicalizeHostname(call.args[1]);
  if (int32_t code = RequireLegalChars(newname); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("mach_type", call.args[2])) {
    return MR_TYPE;
  }
  if (newname != MoiraContext::StrCell(mc.machine(), mach.row, "name") &&
      mc.MachineByName(newname).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  MoiraContext::SetCell(mc.machine(), mach.row, "name", Value(newname));
  MoiraContext::SetCell(mc.machine(), mach.row, "type", Value(call.args[2]));
  mc.Stamp(mc.machine(), mach.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// True if the machine is referenced as a post office, filesystem server,
// printer spooling host, hostaccess entry, nfs partition, or DCM serverhost.
bool MachineIsReferenced(MoiraContext& mc, int64_t mach_id) {
  auto refs = [&](Table* table, const char* column) {
    return From(table).WhereEq(column, Value(mach_id)).Any();
  };
  bool pobox_ref = From(mc.users())
                       .WhereEq("potype", Value("POP"))
                       .WhereEq("pop_id", Value(mach_id))
                       .Any();
  return pobox_ref || refs(mc.filesys(), "mach_id") || refs(mc.printcap(), "mach_id") ||
         refs(mc.hostaccess(), "mach_id") || refs(mc.nfsphys(), "mach_id") ||
         refs(mc.serverhosts(), "mach_id");
}

int32_t DeleteMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  if (MachineIsReferenced(mc, mach_id)) {
    return MR_IN_USE;
  }
  // Cluster assignments are dropped along with the machine.
  Table* mcmap = mc.mcmap();
  for (size_t row : From(mcmap).WhereEq("mach_id", Value(mach_id)).Rows()) {
    mcmap->Delete(row);
  }
  mc.machine()->Delete(mach.row);
  return MR_SUCCESS;
}

// --- clusters ---

int32_t GetCluster(QueryCall& call) {
  const Table* cluster = call.mc.cluster();
  From(cluster).WhereWild("name", call.args[0]).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    call.emit({MoiraContext::StrCell(cluster, row, "name"),
               MoiraContext::StrCell(cluster, row, "desc"),
               MoiraContext::StrCell(cluster, row, "location"),
               IntStr(cluster, row, "modtime"), MoiraContext::StrCell(cluster, row, "modby"),
               MoiraContext::StrCell(cluster, row, "modwith")});
  });
  return MR_SUCCESS;
}

int32_t AddCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  if (int32_t code = RequireLegalChars(call.args[0]); code != MR_SUCCESS) {
    return code;
  }
  if (mc.ClusterByName(call.args[0]).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  int64_t clu_id = 0;
  if (int32_t code = mc.AllocateId("clu_id", mc.cluster(), "clu_id", &clu_id);
      code != MR_SUCCESS) {
    return code;
  }
  size_t row = mc.cluster()->Append({Value(call.args[0]), Value(clu_id), Value(call.args[1]),
                                     Value(call.args[2]), Value(int64_t{0}), Value(""),
                                     Value("")});
  mc.Stamp(mc.cluster(), row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  const std::string& newname = call.args[1];
  if (int32_t code = RequireLegalChars(newname); code != MR_SUCCESS) {
    return code;
  }
  if (newname != call.args[0] && mc.ClusterByName(newname).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  MoiraContext::SetCell(mc.cluster(), clu.row, "name", Value(newname));
  MoiraContext::SetCell(mc.cluster(), clu.row, "desc", Value(call.args[2]));
  MoiraContext::SetCell(mc.cluster(), clu.row, "location", Value(call.args[3]));
  mc.Stamp(mc.cluster(), clu.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  if (From(mc.mcmap()).WhereEq("clu_id", Value(clu_id)).Any()) {
    return MR_IN_USE;
  }
  // Any service cluster data assigned to the cluster is deleted with it.
  Table* svc = mc.svc();
  for (size_t row : From(svc).WhereEq("clu_id", Value(clu_id)).Rows()) {
    svc->Delete(row);
  }
  mc.cluster()->Delete(clu.row);
  return MR_SUCCESS;
}

// --- machine/cluster map ---

int32_t GetMachineToClusterMap(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* machine = mc.machine();
  const Table* cluster = mc.cluster();
  const Table* mcmap = mc.mcmap();
  std::string mach_pattern = ToUpperCopy(call.args[0]);
  // A three-stage join machine ⋈ mcmap ⋈ cluster; the cost-based join
  // planner starts from whichever pattern is the more selective, so "*" on
  // one side no longer forces a sweep from that side.
  From(machine)
      .WhereWild("name", mach_pattern)
      .Join(mcmap, "mach_id", "mach_id")
      .Join(cluster, "clu_id", "clu_id")
      .WhereWild("name", call.args[1])
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit({MoiraContext::StrCell(machine, rows[0], "name"),
                   MoiraContext::StrCell(cluster, rows[2], "name")});
      });
  return MR_SUCCESS;
}

int32_t AddMachineToCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  RowRef clu = mc.ClusterByName(call.args[1]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  Table* mcmap = mc.mcmap();
  if (From(mcmap)
          .WhereEq("mach_id", Value(mach_id))
          .WhereEq("clu_id", Value(clu_id))
          .Any()) {
    return MR_EXISTS;
  }
  mcmap->Append({Value(mach_id), Value(clu_id)});
  mc.Stamp(mc.machine(), mach.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteMachineFromCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  RowRef clu = mc.ClusterByName(call.args[1]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  Table* mcmap = mc.mcmap();
  std::vector<size_t> rows = From(mcmap)
                                 .WhereEq("mach_id", Value(mach_id))
                                 .WhereEq("clu_id", Value(clu_id))
                                 .Rows();
  if (rows.empty()) {
    return MR_NO_MATCH;
  }
  for (size_t row : rows) {
    mcmap->Delete(row);
  }
  mc.Stamp(mc.machine(), mach.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// --- service cluster data ---

int32_t GetClusterData(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* cluster = mc.cluster();
  const Table* svc = mc.svc();
  From(cluster)
      .WhereWild("name", call.args[0])
      .Join(svc, "clu_id", "clu_id")
      .WhereWild("serv_label", call.args[1])
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit({MoiraContext::StrCell(cluster, rows[0], "name"),
                   MoiraContext::StrCell(svc, rows[1], "serv_label"),
                   MoiraContext::StrCell(svc, rows[1], "serv_cluster")});
      });
  return MR_SUCCESS;
}

int32_t AddClusterData(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  if (!mc.IsLegalType("slabel", call.args[1])) {
    return MR_TYPE;
  }
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  mc.svc()->Append({Value(clu_id), Value(call.args[1]), Value(call.args[2])});
  mc.Stamp(mc.cluster(), clu.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteClusterData(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  Table* svc = mc.svc();
  std::vector<size_t> rows = From(svc)
                                 .WhereEq("clu_id", Value(clu_id))
                                 .WhereEq("serv_label", Value(call.args[1]))
                                 .WhereEq("serv_cluster", Value(call.args[2]))
                                 .Rows();
  if (rows.empty()) {
    return MR_NO_MATCH;
  }
  if (rows.size() > 1) {
    return MR_NOT_UNIQUE;
  }
  svc->Delete(rows[0]);
  mc.Stamp(mc.cluster(), clu.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

}  // namespace

void AppendMachineQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"get_machine", "gmac", QueryClass::kRetrieve, 1, true, "name",
           "name, type, modtime, modby, modwith", nullptr, GetMachine},
          {"add_machine", "amac", QueryClass::kAppend, 2, false, "name, type", "", nullptr,
           AddMachine},
          {"update_machine", "umac", QueryClass::kUpdate, 3, false, "name, newname, type", "",
           nullptr, UpdateMachine},
          {"delete_machine", "dmac", QueryClass::kDelete, 1, false, "name", "", nullptr,
           DeleteMachine},
          {"get_cluster", "gclu", QueryClass::kRetrieve, 1, true, "name",
           "name, description, location, modtime, modby, modwith", nullptr, GetCluster},
          {"add_cluster", "aclu", QueryClass::kAppend, 3, false,
           "name, description, location", "", nullptr, AddCluster},
          {"update_cluster", "uclu", QueryClass::kUpdate, 4, false,
           "name, newname, description, location", "", nullptr, UpdateCluster},
          {"delete_cluster", "dclu", QueryClass::kDelete, 1, false, "name", "", nullptr,
           DeleteCluster},
          {"get_machine_to_cluster_map", "gmcm", QueryClass::kRetrieve, 2, true,
           "machine, cluster", "machine, cluster", nullptr, GetMachineToClusterMap},
          {"add_machine_to_cluster", "amtc", QueryClass::kAppend, 2, false,
           "machine, cluster", "", nullptr, AddMachineToCluster},
          {"delete_machine_from_cluster", "dmfc", QueryClass::kDelete, 2, false,
           "machine, cluster", "", nullptr, DeleteMachineFromCluster},
          {"get_cluster_data", "gcld", QueryClass::kRetrieve, 2, true, "cluster, label",
           "cluster, label, data", nullptr, GetClusterData},
          {"add_cluster_data", "acld", QueryClass::kAppend, 3, false,
           "cluster, label, data", "", nullptr, AddClusterData},
          {"delete_cluster_data", "dcld", QueryClass::kDelete, 3, false,
           "cluster, label, data", "", nullptr, DeleteClusterData},
      });
}

}  // namespace moira
