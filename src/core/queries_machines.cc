// Machine and cluster queries (paper section 7.0.2).
#include "src/core/queries_common.h"

namespace moira {
namespace {

// --- machines ---

int32_t GetMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* machine = mc.machine();
  // Machine names are case insensitive and stored in uppercase.
  std::string pattern = ToUpperCopy(call.args[0]);
  for (size_t row : machine->Match({WildCond(machine, "name", pattern)})) {
    call.emit({MoiraContext::StrCell(machine, row, "name"),
               MoiraContext::StrCell(machine, row, "type"), IntStr(machine, row, "modtime"),
               MoiraContext::StrCell(machine, row, "modby"),
               MoiraContext::StrCell(machine, row, "modwith")});
  }
  return MR_SUCCESS;
}

int32_t AddMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  std::string name = CanonicalizeHostname(call.args[0]);
  if (int32_t code = RequireLegalChars(name); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("mach_type", call.args[1])) {
    return MR_TYPE;
  }
  if (mc.MachineByName(name).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  int64_t mach_id = 0;
  if (int32_t code = mc.AllocateId("mach_id", mc.machine(), "mach_id", &mach_id);
      code != MR_SUCCESS) {
    return code;
  }
  size_t row = mc.machine()->Append(
      {Value(name), Value(mach_id), Value(call.args[1]), Value(int64_t{0}), Value(""),
       Value("")});
  mc.Stamp(mc.machine(), row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  std::string newname = CanonicalizeHostname(call.args[1]);
  if (int32_t code = RequireLegalChars(newname); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("mach_type", call.args[2])) {
    return MR_TYPE;
  }
  if (newname != MoiraContext::StrCell(mc.machine(), mach.row, "name") &&
      mc.MachineByName(newname).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  MoiraContext::SetCell(mc.machine(), mach.row, "name", Value(newname));
  MoiraContext::SetCell(mc.machine(), mach.row, "type", Value(call.args[2]));
  mc.Stamp(mc.machine(), mach.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// True if the machine is referenced as a post office, filesystem server,
// printer spooling host, hostaccess entry, nfs partition, or DCM serverhost.
bool MachineIsReferenced(MoiraContext& mc, int64_t mach_id) {
  auto refs = [&](Table* table, const char* column) {
    int col = table->ColumnIndex(column);
    return !table->Match({Condition{col, Condition::Op::kEq, Value(mach_id)}}).empty();
  };
  Table* users = mc.users();
  int potype_col = users->ColumnIndex("potype");
  int pop_col = users->ColumnIndex("pop_id");
  bool pobox_ref = false;
  users->Scan([&](size_t, const Row& r) {
    if (r[potype_col].AsString() == "POP" && r[pop_col].AsInt() == mach_id) {
      pobox_ref = true;
      return false;
    }
    return true;
  });
  return pobox_ref || refs(mc.filesys(), "mach_id") || refs(mc.printcap(), "mach_id") ||
         refs(mc.hostaccess(), "mach_id") || refs(mc.nfsphys(), "mach_id") ||
         refs(mc.serverhosts(), "mach_id");
}

int32_t DeleteMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  if (MachineIsReferenced(mc, mach_id)) {
    return MR_IN_USE;
  }
  // Cluster assignments are dropped along with the machine.
  Table* mcmap = mc.mcmap();
  int mach_col = mcmap->ColumnIndex("mach_id");
  for (size_t row : mcmap->Match({Condition{mach_col, Condition::Op::kEq, Value(mach_id)}})) {
    mcmap->Delete(row);
  }
  mc.machine()->Delete(mach.row);
  return MR_SUCCESS;
}

// --- clusters ---

int32_t GetCluster(QueryCall& call) {
  const Table* cluster = call.mc.cluster();
  for (size_t row : cluster->Match({WildCond(cluster, "name", call.args[0])})) {
    call.emit({MoiraContext::StrCell(cluster, row, "name"),
               MoiraContext::StrCell(cluster, row, "desc"),
               MoiraContext::StrCell(cluster, row, "location"),
               IntStr(cluster, row, "modtime"), MoiraContext::StrCell(cluster, row, "modby"),
               MoiraContext::StrCell(cluster, row, "modwith")});
  }
  return MR_SUCCESS;
}

int32_t AddCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  if (int32_t code = RequireLegalChars(call.args[0]); code != MR_SUCCESS) {
    return code;
  }
  if (mc.ClusterByName(call.args[0]).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  int64_t clu_id = 0;
  if (int32_t code = mc.AllocateId("clu_id", mc.cluster(), "clu_id", &clu_id);
      code != MR_SUCCESS) {
    return code;
  }
  size_t row = mc.cluster()->Append({Value(call.args[0]), Value(clu_id), Value(call.args[1]),
                                     Value(call.args[2]), Value(int64_t{0}), Value(""),
                                     Value("")});
  mc.Stamp(mc.cluster(), row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  const std::string& newname = call.args[1];
  if (int32_t code = RequireLegalChars(newname); code != MR_SUCCESS) {
    return code;
  }
  if (newname != call.args[0] && mc.ClusterByName(newname).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  MoiraContext::SetCell(mc.cluster(), clu.row, "name", Value(newname));
  MoiraContext::SetCell(mc.cluster(), clu.row, "desc", Value(call.args[2]));
  MoiraContext::SetCell(mc.cluster(), clu.row, "location", Value(call.args[3]));
  mc.Stamp(mc.cluster(), clu.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  Table* mcmap = mc.mcmap();
  int clu_col = mcmap->ColumnIndex("clu_id");
  if (!mcmap->Match({Condition{clu_col, Condition::Op::kEq, Value(clu_id)}}).empty()) {
    return MR_IN_USE;
  }
  // Any service cluster data assigned to the cluster is deleted with it.
  Table* svc = mc.svc();
  int svc_clu_col = svc->ColumnIndex("clu_id");
  for (size_t row : svc->Match({Condition{svc_clu_col, Condition::Op::kEq, Value(clu_id)}})) {
    svc->Delete(row);
  }
  mc.cluster()->Delete(clu.row);
  return MR_SUCCESS;
}

// --- machine/cluster map ---

int32_t GetMachineToClusterMap(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* machine = mc.machine();
  const Table* cluster = mc.cluster();
  const Table* mcmap = mc.mcmap();
  std::string mach_pattern = ToUpperCopy(call.args[0]);
  // Resolve cluster ids and machine ids up front, then join.
  std::vector<size_t> machines = machine->Match({WildCond(machine, "name", mach_pattern)});
  std::vector<size_t> clusters = cluster->Match({WildCond(cluster, "name", call.args[1])});
  int map_mach_col = mcmap->ColumnIndex("mach_id");
  int map_clu_col = mcmap->ColumnIndex("clu_id");
  for (size_t m : machines) {
    int64_t mach_id = MoiraContext::IntCell(machine, m, "mach_id");
    for (size_t c : clusters) {
      int64_t clu_id = MoiraContext::IntCell(cluster, c, "clu_id");
      if (!mcmap->Match({Condition{map_mach_col, Condition::Op::kEq, Value(mach_id)},
                         Condition{map_clu_col, Condition::Op::kEq, Value(clu_id)}})
               .empty()) {
        call.emit({MoiraContext::StrCell(machine, m, "name"),
                   MoiraContext::StrCell(cluster, c, "name")});
      }
    }
  }
  return MR_SUCCESS;
}

int32_t AddMachineToCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  RowRef clu = mc.ClusterByName(call.args[1]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  Table* mcmap = mc.mcmap();
  int mach_col = mcmap->ColumnIndex("mach_id");
  int clu_col = mcmap->ColumnIndex("clu_id");
  if (!mcmap->Match({Condition{mach_col, Condition::Op::kEq, Value(mach_id)},
                     Condition{clu_col, Condition::Op::kEq, Value(clu_id)}})
           .empty()) {
    return MR_EXISTS;
  }
  mcmap->Append({Value(mach_id), Value(clu_id)});
  mc.Stamp(mc.machine(), mach.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteMachineFromCluster(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  RowRef clu = mc.ClusterByName(call.args[1]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  Table* mcmap = mc.mcmap();
  int mach_col = mcmap->ColumnIndex("mach_id");
  int clu_col = mcmap->ColumnIndex("clu_id");
  std::vector<size_t> rows =
      mcmap->Match({Condition{mach_col, Condition::Op::kEq, Value(mach_id)},
                    Condition{clu_col, Condition::Op::kEq, Value(clu_id)}});
  if (rows.empty()) {
    return MR_NO_MATCH;
  }
  for (size_t row : rows) {
    mcmap->Delete(row);
  }
  mc.Stamp(mc.machine(), mach.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// --- service cluster data ---

int32_t GetClusterData(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* cluster = mc.cluster();
  const Table* svc = mc.svc();
  int svc_clu_col = svc->ColumnIndex("clu_id");
  for (size_t c : cluster->Match({WildCond(cluster, "name", call.args[0])})) {
    int64_t clu_id = MoiraContext::IntCell(cluster, c, "clu_id");
    for (size_t row :
         svc->Match({Condition{svc_clu_col, Condition::Op::kEq, Value(clu_id)},
                     WildCond(svc, "serv_label", call.args[1])})) {
      call.emit({MoiraContext::StrCell(cluster, c, "name"),
                 MoiraContext::StrCell(svc, row, "serv_label"),
                 MoiraContext::StrCell(svc, row, "serv_cluster")});
    }
  }
  return MR_SUCCESS;
}

int32_t AddClusterData(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  if (!mc.IsLegalType("slabel", call.args[1])) {
    return MR_TYPE;
  }
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  mc.svc()->Append({Value(clu_id), Value(call.args[1]), Value(call.args[2])});
  mc.Stamp(mc.cluster(), clu.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteClusterData(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef clu = mc.ClusterByName(call.args[0]);
  if (clu.code != MR_SUCCESS) {
    return clu.code;
  }
  int64_t clu_id = MoiraContext::IntCell(mc.cluster(), clu.row, "clu_id");
  Table* svc = mc.svc();
  std::vector<size_t> rows = svc->Match({
      Condition{svc->ColumnIndex("clu_id"), Condition::Op::kEq, Value(clu_id)},
      Condition{svc->ColumnIndex("serv_label"), Condition::Op::kEq, Value(call.args[1])},
      Condition{svc->ColumnIndex("serv_cluster"), Condition::Op::kEq, Value(call.args[2])},
  });
  if (rows.empty()) {
    return MR_NO_MATCH;
  }
  if (rows.size() > 1) {
    return MR_NOT_UNIQUE;
  }
  svc->Delete(rows[0]);
  mc.Stamp(mc.cluster(), clu.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

}  // namespace

void AppendMachineQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"get_machine", "gmac", QueryClass::kRetrieve, 1, true, "name",
           "name, type, modtime, modby, modwith", nullptr, GetMachine},
          {"add_machine", "amac", QueryClass::kAppend, 2, false, "name, type", "", nullptr,
           AddMachine},
          {"update_machine", "umac", QueryClass::kUpdate, 3, false, "name, newname, type", "",
           nullptr, UpdateMachine},
          {"delete_machine", "dmac", QueryClass::kDelete, 1, false, "name", "", nullptr,
           DeleteMachine},
          {"get_cluster", "gclu", QueryClass::kRetrieve, 1, true, "name",
           "name, description, location, modtime, modby, modwith", nullptr, GetCluster},
          {"add_cluster", "aclu", QueryClass::kAppend, 3, false,
           "name, description, location", "", nullptr, AddCluster},
          {"update_cluster", "uclu", QueryClass::kUpdate, 4, false,
           "name, newname, description, location", "", nullptr, UpdateCluster},
          {"delete_cluster", "dclu", QueryClass::kDelete, 1, false, "name", "", nullptr,
           DeleteCluster},
          {"get_machine_to_cluster_map", "gmcm", QueryClass::kRetrieve, 2, true,
           "machine, cluster", "machine, cluster", nullptr, GetMachineToClusterMap},
          {"add_machine_to_cluster", "amtc", QueryClass::kAppend, 2, false,
           "machine, cluster", "", nullptr, AddMachineToCluster},
          {"delete_machine_from_cluster", "dmfc", QueryClass::kDelete, 2, false,
           "machine, cluster", "", nullptr, DeleteMachineFromCluster},
          {"get_cluster_data", "gcld", QueryClass::kRetrieve, 2, true, "cluster, label",
           "cluster, label, data", nullptr, GetClusterData},
          {"add_cluster_data", "acld", QueryClass::kAppend, 3, false,
           "cluster, label, data", "", nullptr, AddClusterData},
          {"delete_cluster_data", "dcld", QueryClass::kDelete, 3, false,
           "cluster, label, data", "", nullptr, DeleteClusterData},
      });
}

}  // namespace moira
