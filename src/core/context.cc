#include "src/core/context.h"

#include <cassert>
#include <set>

#include "src/common/strutil.h"
#include "src/db/exec.h"

namespace moira {

RowRef MoiraContext::ExactOne(Table* table, const char* column, const Value& key,
                              int32_t missing_code) const {
  std::vector<size_t> rows = From(table).WhereEq(column, key).Rows();
  if (rows.empty()) {
    return RowRef{missing_code, 0};
  }
  if (rows.size() > 1) {
    return RowRef{MR_NOT_UNIQUE, 0};
  }
  return RowRef{MR_SUCCESS, rows[0]};
}

RowRef MoiraContext::UserByLogin(std::string_view login) {
  return ExactOne(users(), "login", Value(login), MR_USER);
}

RowRef MoiraContext::UserByUid(int64_t uid) {
  return ExactOne(users(), "uid", Value(uid), MR_USER);
}

RowRef MoiraContext::MachineByName(std::string_view name) {
  return ExactOne(machine(), "name", Value(CanonicalizeHostname(name)), MR_MACHINE);
}

RowRef MoiraContext::ClusterByName(std::string_view name) {
  return ExactOne(cluster(), "name", Value(name), MR_CLUSTER);
}

RowRef MoiraContext::ListByName(std::string_view name) {
  return ExactOne(list(), "name", Value(name), MR_LIST);
}

RowRef MoiraContext::ListById(int64_t list_id) {
  return ExactOne(list(), "list_id", Value(list_id), MR_LIST);
}

RowRef MoiraContext::FilesysByLabel(std::string_view label) {
  return ExactOne(filesys(), "label", Value(label), MR_FILESYS);
}

RowRef MoiraContext::ServiceByName(std::string_view name) {
  return ExactOne(servers(), "name", Value(ToUpperCopy(name)), MR_SERVICE);
}

int32_t MoiraContext::AllocateId(const char* counter, Table* unique_in, const char* column,
                                 int64_t* out) {
  int64_t hint = 0;
  if (GetValue(counter, &hint) != MR_SUCCESS) {
    return MR_NO_ID;
  }
  // The hint is the next id to try; advance past collisions (ids may have
  // been assigned explicitly).
  constexpr int kMaxProbes = 1 << 20;
  for (int probe = 0; probe < kMaxProbes; ++probe) {
    int64_t candidate = hint + probe;
    if (!From(unique_in).WhereEq(column, Value(candidate)).Any()) {
      SetValue(counter, candidate + 1);
      *out = candidate;
      return MR_SUCCESS;
    }
  }
  return MR_NO_ID;
}

int32_t MoiraContext::GetValue(std::string_view name, int64_t* out) const {
  const Table* table = db_->GetTable(kValuesTable);
  RowRef ref = ExactOne(const_cast<Table*>(table), "name", Value(name), MR_NO_MATCH);
  if (ref.code != MR_SUCCESS) {
    return ref.code;
  }
  *out = IntCell(table, ref.row, "value");
  return MR_SUCCESS;
}

int32_t MoiraContext::SetValue(std::string_view name, int64_t value) {
  Table* table = values();
  RowRef ref = ExactOne(table, "name", Value(name), MR_NO_MATCH);
  if (ref.code != MR_SUCCESS) {
    return ref.code;
  }
  SetCell(table, ref.row, "value", Value(value));
  return MR_SUCCESS;
}

int64_t MoiraContext::InternString(std::string_view s) {
  if (std::optional<int64_t> existing = LookupString(s); existing.has_value()) {
    return *existing;
  }
  int64_t id = 0;
  if (AllocateId("string_id", strings(), "string_id", &id) != MR_SUCCESS) {
    return -1;
  }
  strings()->Append({id, Value(s)});
  return id;
}

std::optional<int64_t> MoiraContext::LookupString(std::string_view s) const {
  const Table* table = db_->GetTable(kStringsTable);
  std::optional<size_t> row = From(table).WhereEq("string", Value(s)).One();
  if (!row.has_value()) {
    return std::nullopt;
  }
  return IntCell(table, *row, "string_id");
}

std::string MoiraContext::StringById(int64_t string_id) const {
  const Table* table = db_->GetTable(kStringsTable);
  std::optional<size_t> row = From(table).WhereEq("string_id", Value(string_id)).One();
  return row.has_value() ? StrCell(table, *row, "string") : std::string();
}

bool MoiraContext::IsLegalType(std::string_view type_name, std::string_view value) const {
  return From(db_->GetTable(kAliasTable))
      .WhereEq("name", Value(type_name))
      .WhereEq("type", Value("TYPE"))
      .WhereEq("trans", Value(value))
      .Any();
}

int64_t MoiraContext::MembersVersion() const {
  const TableStats& s = db_->GetTable(kMembersTable)->stats();
  return s.appends + s.updates + s.deletes;
}

const std::vector<int64_t>& MoiraContext::ContainingListClosure(std::string_view type,
                                                                int64_t id) {
  // One lock covers lookup, fill, and invalidation: closure computation is a
  // handful of indexed probes, so serializing concurrent fills is cheaper
  // than racing duplicate computations and reconciling them.
  std::lock_guard<std::mutex> lock(closure_mu_);
  const int64_t version = MembersVersion();
  if (version != closure_version_) {
    if (!closures_.empty()) {
      ++closure_stats_.invalidations;
      closures_.clear();
    }
    closure_version_ = version;
  }
  auto key = std::make_pair(std::string(type), id);
  if (auto it = closures_.find(key); it != closures_.end()) {
    ++closure_stats_.hits;
    return it->second;
  }
  ++closure_stats_.misses;
  // Fixed point over the members relation: probe the containing lists of
  // every newly discovered list (indexed member_id lookups, not sweeps).
  Table* members_table = members();
  int list_col = members_table->ColumnIndex("list_id");
  std::set<int64_t> closure;
  std::vector<int64_t> fresh;
  auto containing_lists = [&](std::string_view member_type, int64_t member_id) {
    From(members_table)
        .WhereEq("member_type", Value(member_type))
        .WhereEq("member_id", Value(member_id))
        .Emit([&](const std::vector<size_t>& rows) {
          int64_t parent = members_table->Cell(rows[0], list_col).AsInt();
          if (closure.insert(parent).second) {
            fresh.push_back(parent);
          }
        });
  };
  containing_lists(type, id);
  while (!fresh.empty()) {
    int64_t next = fresh.back();
    fresh.pop_back();
    containing_lists("LIST", next);
  }
  return closures_
      .emplace(std::move(key), std::vector<int64_t>(closure.begin(), closure.end()))
      .first->second;
}

int32_t MoiraContext::ResolveAce(std::string_view ace_type, std::string_view ace_name,
                                 int64_t* ace_id) {
  if (ace_type == "NONE") {
    *ace_id = 0;
    return MR_SUCCESS;
  }
  if (ace_type == "USER") {
    RowRef ref = UserByLogin(ace_name);
    if (ref.code != MR_SUCCESS) {
      return MR_ACE;
    }
    *ace_id = IntCell(users(), ref.row, "users_id");
    return MR_SUCCESS;
  }
  if (ace_type == "LIST") {
    RowRef ref = ListByName(ace_name);
    if (ref.code != MR_SUCCESS) {
      return MR_ACE;
    }
    *ace_id = IntCell(list(), ref.row, "list_id");
    return MR_SUCCESS;
  }
  return MR_ACE;
}

std::string MoiraContext::AceName(std::string_view ace_type, int64_t ace_id) {
  if (ace_type == "USER") {
    RowRef ref = ExactOne(users(), "users_id", Value(ace_id), MR_USER);
    return ref.code == MR_SUCCESS ? StrCell(users(), ref.row, "login") : "???";
  }
  if (ace_type == "LIST") {
    RowRef ref = ListById(ace_id);
    return ref.code == MR_SUCCESS ? StrCell(list(), ref.row, "name") : "???";
  }
  return "NONE";
}

void MoiraContext::Stamp(Table* table, size_t row, std::string_view who,
                         std::string_view with, const char* prefix) {
  std::string p(prefix);
  SetCell(table, row, (p + "modtime").c_str(), Value(Now()));
  SetCell(table, row, (p + "modby").c_str(), Value(who));
  SetCell(table, row, (p + "modwith").c_str(), Value(with));
}

int64_t MoiraContext::IntCell(const Table* table, size_t row, const char* column) {
  int col = table->ColumnIndex(column);
  assert(col >= 0);
  return table->Cell(row, col).AsInt();
}

const std::string& MoiraContext::StrCell(const Table* table, size_t row, const char* column) {
  int col = table->ColumnIndex(column);
  assert(col >= 0);
  return table->Cell(row, col).AsString();
}

void MoiraContext::SetCell(Table* table, size_t row, const char* column, Value v) {
  int col = table->ColumnIndex(column);
  assert(col >= 0);
  table->Update(row, col, std::move(v));
}

void MoiraContext::SetCellInternal(Table* table, size_t row, const char* column, Value v) {
  int col = table->ColumnIndex(column);
  assert(col >= 0);
  table->UpdateNoStats(row, col, std::move(v));
}

}  // namespace moira
