#include "src/core/registry.h"

#include "src/core/acl.h"

namespace moira {

std::string_view QueryClassName(QueryClass qclass) {
  switch (qclass) {
    case QueryClass::kRetrieve:
      return "retrieve";
    case QueryClass::kAppend:
      return "append";
    case QueryClass::kUpdate:
      return "update";
    case QueryClass::kDelete:
      return "delete";
  }
  return "?";
}

QueryRegistry::QueryRegistry() {
  AppendUserQueries(&defs_);
  AppendMachineQueries(&defs_);
  AppendListQueries(&defs_);
  AppendServerQueries(&defs_);
  AppendFilesysQueries(&defs_);
  AppendMiscQueries(&defs_);
  AppendQuotaQueries(&defs_);
}

const QueryRegistry& QueryRegistry::Instance() {
  static const QueryRegistry* registry = new QueryRegistry;
  return *registry;
}

const QueryDef* QueryRegistry::Find(std::string_view name) const {
  for (const QueryDef& def : defs_) {
    if (name == def.name || name == def.shortname) {
      return &def;
    }
  }
  return nullptr;
}

void QueryRegistry::SeedCapacls(MoiraContext& mc, std::string_view acl_list_name) const {
  RowRef list = mc.ListByName(acl_list_name);
  if (list.code != MR_SUCCESS) {
    return;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  Table* capacls = mc.capacls();
  for (const QueryDef& def : defs_) {
    if (def.world_ok) {
      continue;
    }
    capacls->Append({def.name, def.shortname, list_id});
  }
}

int32_t QueryRegistry::Authorize(MoiraContext& mc, const QueryDef& def,
                                 std::string_view principal,
                                 const std::vector<std::string>& args,
                                 bool* privileged) const {
  *privileged = false;
  // The DCM and backup programs authenticate as root and bypass ACLs (paper
  // section 5.7.1: the DCM "connects to the database and authenticates as
  // root").
  if (principal == "root") {
    *privileged = true;
    return MR_SUCCESS;
  }
  if (PrincipalOnCapability(mc, principal, def.name)) {
    *privileged = true;
    return MR_SUCCESS;
  }
  if (def.world_ok) {
    return MR_SUCCESS;
  }
  if (def.self_access != nullptr && !principal.empty() &&
      def.self_access(mc, principal, args)) {
    return MR_SUCCESS;
  }
  return MR_PERM;
}

int32_t QueryRegistry::CheckAccess(MoiraContext& mc, std::string_view principal,
                                   std::string_view query,
                                   const std::vector<std::string>& args) const {
  const QueryDef* def = Find(query);
  if (def == nullptr) {
    return MR_NO_HANDLE;
  }
  if (def->argc >= 0 && static_cast<int>(args.size()) != def->argc) {
    return MR_ARGS;
  }
  bool privileged = false;
  return Authorize(mc, *def, principal, args, &privileged);
}

int32_t QueryRegistry::Execute(MoiraContext& mc, std::string_view principal,
                               std::string_view client_name, std::string_view query,
                               const std::vector<std::string>& args,
                               const TupleSink& emit) const {
  const QueryDef* def = Find(query);
  if (def == nullptr) {
    return MR_NO_HANDLE;
  }
  if (def->argc >= 0 && static_cast<int>(args.size()) != def->argc) {
    return MR_ARGS;
  }
  bool privileged = false;
  if (int32_t code = Authorize(mc, *def, principal, args, &privileged);
      code != MR_SUCCESS) {
    return code;
  }
  size_t emitted = 0;
  TupleSink counting = [&](Tuple tuple) {
    ++emitted;
    emit(std::move(tuple));
  };
  QueryCall call{mc, principal, client_name, args, counting, privileged};
  int32_t code = def->handler(call);
  if (code == MR_SUCCESS && def->qclass == QueryClass::kRetrieve && emitted == 0) {
    return MR_NO_MATCH;
  }
  return code;
}

}  // namespace moira
