// Filesystem, NFS physical partition, and quota queries (paper section
// 7.0.5).
#include "src/core/queries_common.h"

namespace moira {
namespace {

Tuple FilesysTuple(MoiraContext& mc, size_t row) {
  const Table* filesys = mc.filesys();
  int64_t mach_id = MoiraContext::IntCell(filesys, row, "mach_id");
  RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
  std::string machine_name = mach.code == MR_SUCCESS
                                 ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                 : "???";
  return {MoiraContext::StrCell(filesys, row, "label"),
          MoiraContext::StrCell(filesys, row, "type"),
          machine_name,
          MoiraContext::StrCell(filesys, row, "name"),
          MoiraContext::StrCell(filesys, row, "mount"),
          MoiraContext::StrCell(filesys, row, "access"),
          MoiraContext::StrCell(filesys, row, "comments"),
          mc.AceName("USER", MoiraContext::IntCell(filesys, row, "owner")),
          mc.AceName("LIST", MoiraContext::IntCell(filesys, row, "owners")),
          IntStr(filesys, row, "createflg"),
          MoiraContext::StrCell(filesys, row, "lockertype"),
          IntStr(filesys, row, "modtime"),
          MoiraContext::StrCell(filesys, row, "modby"),
          MoiraContext::StrCell(filesys, row, "modwith")};
}

int32_t GetFilesysByLabel(QueryCall& call) {
  From(call.mc.filesys())
      .WhereWild("label", call.args[0])
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit(FilesysTuple(call.mc, rows[0]));
      });
  return MR_SUCCESS;
}

int32_t GetFilesysByMachine(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  From(mc.filesys()).WhereEq("mach_id", Value(mach_id)).Emit([&](const std::vector<size_t>& rows) {
    call.emit(FilesysTuple(mc, rows[0]));
  });
  return MR_SUCCESS;
}

// Finds the nfsphys row for an exact (machine, dir) pair.
int32_t FindNfsPhys(MoiraContext& mc, std::string_view machine_arg, std::string_view dir,
                    size_t* row_out) {
  RowRef mach = mc.MachineByName(machine_arg);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  std::vector<size_t> rows = From(mc.nfsphys())
                                 .WhereEq("mach_id", Value(mach_id))
                                 .WhereEq("dir", Value(dir))
                                 .Rows();
  if (rows.empty()) {
    return MR_NFSPHYS;
  }
  *row_out = rows[0];
  return MR_SUCCESS;
}

int32_t GetFilesysByNfsphys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  Table* phys = mc.nfsphys();
  Table* filesys = mc.filesys();
  From(phys)
      .WhereEq("mach_id", Value(mach_id))
      .WhereWild("dir", call.args[1])
      .Emit([&](const std::vector<size_t>& phys_rows) {
        int64_t phys_id = MoiraContext::IntCell(phys, phys_rows[0], "nfsphys_id");
        From(filesys).WhereEq("phys_id", Value(phys_id)).Emit(
            [&](const std::vector<size_t>& rows) { call.emit(FilesysTuple(mc, rows[0])); });
      });
  return MR_SUCCESS;
}

int32_t GetFilesysByGroup(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef list = mc.ListByName(call.args[0]);
  if (list.code != MR_SUCCESS) {
    return list.code;
  }
  int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
  From(mc.filesys()).WhereEq("owners", Value(list_id)).Emit([&](const std::vector<size_t>& rows) {
    call.emit(FilesysTuple(mc, rows[0]));
  });
  return MR_SUCCESS;
}

// Shared validation of the add/update argument block.  Fills resolved ids.
struct FilesysArgs {
  int64_t mach_id = 0;
  int64_t phys_id = 0;  // 0 for non-NFS
  int64_t owner = 0;
  int64_t owners = 0;
  int64_t createflg = 0;
};

int32_t ParseFilesysArgs(MoiraContext& mc, const std::vector<std::string>& args, size_t base,
                         FilesysArgs* out) {
  // args[base..]: fstype, machine, packname, mountpoint, access, comments,
  // owner, owners, create, lockertype
  const std::string& fstype = args[base];
  if (!mc.IsLegalType("filesys", fstype)) {
    return MR_FSTYPE;
  }
  if (!mc.IsLegalType("lockertype", args[base + 9])) {
    return MR_TYPE;
  }
  RowRef mach = mc.MachineByName(args[base + 1]);
  if (mach.code != MR_SUCCESS) {
    return MR_MACHINE;
  }
  out->mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  RowRef owner = mc.UserByLogin(args[base + 6]);
  if (owner.code != MR_SUCCESS) {
    return MR_USER;
  }
  out->owner = MoiraContext::IntCell(mc.users(), owner.row, "users_id");
  RowRef owners = mc.ListByName(args[base + 7]);
  if (owners.code != MR_SUCCESS) {
    return MR_LIST;
  }
  out->owners = MoiraContext::IntCell(mc.list(), owners.row, "list_id");
  if (int32_t code = RequireBool(args[base + 8], &out->createflg); code != MR_SUCCESS) {
    return code;
  }
  if (fstype == "NFS") {
    // The packname must live on an exported partition of the machine (the
    // partition itself, or a directory beneath it), and the access mode must
    // be r or w.
    Table* phys = mc.nfsphys();
    const std::string& packname = args[base + 2];
    int64_t found_phys = 0;
    for (size_t row : From(phys).WhereEq("mach_id", Value(out->mach_id)).Rows()) {
      const std::string& dir = MoiraContext::StrCell(phys, row, "dir");
      if (packname == dir || packname.starts_with(dir + "/")) {
        found_phys = MoiraContext::IntCell(phys, row, "nfsphys_id");
        break;
      }
    }
    if (found_phys == 0) {
      return MR_NFS;
    }
    out->phys_id = found_phys;
    if (args[base + 4] != "r" && args[base + 4] != "w") {
      return MR_FILESYS_ACCESS;
    }
  }
  return MR_SUCCESS;
}

int32_t AddFilesys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const std::string& label = call.args[0];
  if (int32_t code = RequireLegalChars(label); code != MR_SUCCESS) {
    return code;
  }
  if (mc.FilesysByLabel(label).code == MR_SUCCESS) {
    return MR_FILESYS_EXISTS;
  }
  FilesysArgs parsed;
  if (int32_t code = ParseFilesysArgs(mc, call.args, 1, &parsed); code != MR_SUCCESS) {
    return code;
  }
  int64_t filsys_id = 0;
  if (int32_t code = mc.AllocateId("filsys_id", mc.filesys(), "filsys_id", &filsys_id);
      code != MR_SUCCESS) {
    return code;
  }
  size_t row = mc.filesys()->Append({
      Value(label), Value(int64_t{0}), Value(filsys_id), Value(parsed.phys_id),
      Value(call.args[1]), Value(parsed.mach_id), Value(call.args[3]), Value(call.args[4]),
      Value(call.args[5]), Value(call.args[6]), Value(parsed.owner), Value(parsed.owners),
      Value(parsed.createflg), Value(call.args[10]), Value(int64_t{0}), Value(""), Value(""),
  });
  mc.Stamp(mc.filesys(), row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateFilesys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef fs = mc.FilesysByLabel(call.args[0]);
  if (fs.code != MR_SUCCESS) {
    return fs.code;
  }
  const std::string& newname = call.args[1];
  if (int32_t code = RequireLegalChars(newname); code != MR_SUCCESS) {
    return code;
  }
  if (newname != call.args[0] && mc.FilesysByLabel(newname).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  FilesysArgs parsed;
  if (int32_t code = ParseFilesysArgs(mc, call.args, 2, &parsed); code != MR_SUCCESS) {
    return code;
  }
  Table* filesys = mc.filesys();
  MoiraContext::SetCell(filesys, fs.row, "label", Value(newname));
  MoiraContext::SetCell(filesys, fs.row, "type", Value(call.args[2]));
  MoiraContext::SetCell(filesys, fs.row, "mach_id", Value(parsed.mach_id));
  MoiraContext::SetCell(filesys, fs.row, "phys_id", Value(parsed.phys_id));
  MoiraContext::SetCell(filesys, fs.row, "name", Value(call.args[4]));
  MoiraContext::SetCell(filesys, fs.row, "mount", Value(call.args[5]));
  MoiraContext::SetCell(filesys, fs.row, "access", Value(call.args[6]));
  MoiraContext::SetCell(filesys, fs.row, "comments", Value(call.args[7]));
  MoiraContext::SetCell(filesys, fs.row, "owner", Value(parsed.owner));
  MoiraContext::SetCell(filesys, fs.row, "owners", Value(parsed.owners));
  MoiraContext::SetCell(filesys, fs.row, "createflg", Value(parsed.createflg));
  MoiraContext::SetCell(filesys, fs.row, "lockertype", Value(call.args[11]));
  mc.Stamp(filesys, fs.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// Decrements the allocation on the partition backing `filsys_row` by the
// total of quotas being removed.
void ReleaseQuotaAllocation(MoiraContext& mc, int64_t phys_id, int64_t total) {
  if (phys_id == 0 || total == 0) {
    return;
  }
  RowRef phys = mc.ExactOne(mc.nfsphys(), "nfsphys_id", Value(phys_id), MR_NFSPHYS);
  if (phys.code != MR_SUCCESS) {
    return;
  }
  MoiraContext::SetCell(mc.nfsphys(), phys.row, "allocated",
                        Value(MoiraContext::IntCell(mc.nfsphys(), phys.row, "allocated") -
                              total));
}

int32_t DeleteFilesys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef fs = mc.FilesysByLabel(call.args[0]);
  if (fs.code != MR_SUCCESS) {
    return fs.code;
  }
  Table* filesys = mc.filesys();
  int64_t filsys_id = MoiraContext::IntCell(filesys, fs.row, "filsys_id");
  int64_t phys_id = MoiraContext::IntCell(filesys, fs.row, "phys_id");
  // Quotas assigned to the filesystem are deleted; the partition allocation
  // is decremented accordingly.
  Table* quota = mc.nfsquota();
  int q_col = quota->ColumnIndex("quota");
  int64_t released = 0;
  std::vector<size_t> quota_rows = From(quota).WhereEq("filsys_id", Value(filsys_id)).Rows();
  for (size_t row : quota_rows) {
    released += quota->Cell(row, q_col).AsInt();
    RemoveQuotaUsage(mc, MoiraContext::IntCell(quota, row, "users_id"),
                     MoiraContext::IntCell(quota, row, "phys_id"));
    quota->Delete(row);
  }
  ReleaseQuotaAllocation(mc, phys_id, released);
  filesys->Delete(fs.row);
  return MR_SUCCESS;
}

Tuple NfsPhysTuple(MoiraContext& mc, size_t row) {
  const Table* phys = mc.nfsphys();
  int64_t mach_id = MoiraContext::IntCell(phys, row, "mach_id");
  RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
  return {mach.code == MR_SUCCESS ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                  : "???",
          MoiraContext::StrCell(phys, row, "dir"),
          MoiraContext::StrCell(phys, row, "device"),
          IntStr(phys, row, "status"),
          IntStr(phys, row, "allocated"),
          IntStr(phys, row, "size"),
          IntStr(phys, row, "modtime"),
          MoiraContext::StrCell(phys, row, "modby"),
          MoiraContext::StrCell(phys, row, "modwith")};
}

int32_t GetAllNfsphys(QueryCall& call) {
  From(call.mc.nfsphys()).Emit([&](const std::vector<size_t>& rows) {
    call.emit(NfsPhysTuple(call.mc, rows[0]));
  });
  return MR_SUCCESS;
}

int32_t GetNfsphys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  From(mc.nfsphys())
      .WhereEq("mach_id", Value(mach_id))
      .WhereWild("dir", call.args[1])
      .Emit([&](const std::vector<size_t>& rows) { call.emit(NfsPhysTuple(mc, rows[0])); });
  return MR_SUCCESS;
}

int32_t AddNfsphys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  int64_t status = 0;
  int64_t allocated = 0;
  int64_t size = 0;
  if (int32_t code = RequireInt(call.args[3], &status); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[4], &allocated); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[5], &size); code != MR_SUCCESS) {
    return code;
  }
  Table* phys = mc.nfsphys();
  if (From(phys)
          .WhereEq("mach_id", Value(mach_id))
          .WhereEq("dir", Value(call.args[1]))
          .Any()) {
    return MR_EXISTS;
  }
  int64_t nfsphys_id = 0;
  if (int32_t code = mc.AllocateId("nfsphys_id", phys, "nfsphys_id", &nfsphys_id);
      code != MR_SUCCESS) {
    return code;
  }
  size_t row = phys->Append({Value(nfsphys_id), Value(mach_id), Value(call.args[1]),
                             Value(call.args[2]), Value(status), Value(allocated),
                             Value(size), Value(int64_t{0}), Value(""), Value("")});
  mc.Stamp(phys, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateNfsphys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindNfsPhys(mc, call.args[0], call.args[1], &row); code != MR_SUCCESS) {
    return code;
  }
  int64_t status = 0;
  int64_t allocated = 0;
  int64_t size = 0;
  if (int32_t code = RequireInt(call.args[3], &status); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[4], &allocated); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[5], &size); code != MR_SUCCESS) {
    return code;
  }
  Table* phys = mc.nfsphys();
  MoiraContext::SetCell(phys, row, "device", Value(call.args[2]));
  MoiraContext::SetCell(phys, row, "status", Value(status));
  MoiraContext::SetCell(phys, row, "allocated", Value(allocated));
  MoiraContext::SetCell(phys, row, "size", Value(size));
  mc.Stamp(phys, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t AdjustNfsphysAllocation(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindNfsPhys(mc, call.args[0], call.args[1], &row); code != MR_SUCCESS) {
    return code;
  }
  int64_t delta = 0;
  if (int32_t code = RequireInt(call.args[2], &delta); code != MR_SUCCESS) {
    return code;
  }
  Table* phys = mc.nfsphys();
  MoiraContext::SetCell(phys, row, "allocated",
                        Value(MoiraContext::IntCell(phys, row, "allocated") + delta));
  mc.Stamp(phys, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteNfsphys(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  if (int32_t code = FindNfsPhys(mc, call.args[0], call.args[1], &row); code != MR_SUCCESS) {
    return code;
  }
  Table* phys = mc.nfsphys();
  int64_t phys_id = MoiraContext::IntCell(phys, row, "nfsphys_id");
  if (From(mc.filesys()).WhereEq("phys_id", Value(phys_id)).Any()) {
    return MR_IN_USE;
  }
  phys->Delete(row);
  return MR_SUCCESS;
}

// --- quotas ---

Tuple QuotaTuple(MoiraContext& mc, size_t row, bool with_modtriple) {
  const Table* quota = mc.nfsquota();
  int64_t filsys_id = MoiraContext::IntCell(quota, row, "filsys_id");
  int64_t users_id = MoiraContext::IntCell(quota, row, "users_id");
  int64_t phys_id = MoiraContext::IntCell(quota, row, "phys_id");
  RowRef fs = mc.ExactOne(mc.filesys(), "filsys_id", Value(filsys_id), MR_FILESYS);
  RowRef user = mc.ExactOne(mc.users(), "users_id", Value(users_id), MR_USER);
  RowRef phys = mc.ExactOne(mc.nfsphys(), "nfsphys_id", Value(phys_id), MR_NFSPHYS);
  std::string dir = phys.code == MR_SUCCESS
                        ? MoiraContext::StrCell(mc.nfsphys(), phys.row, "dir")
                        : "";
  std::string machine;
  if (phys.code == MR_SUCCESS) {
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id",
                              Value(MoiraContext::IntCell(mc.nfsphys(), phys.row, "mach_id")),
                              MR_MACHINE);
    machine = mach.code == MR_SUCCESS
                  ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                  : "???";
  }
  Tuple tuple = {
      fs.code == MR_SUCCESS ? MoiraContext::StrCell(mc.filesys(), fs.row, "label") : "???",
      user.code == MR_SUCCESS ? MoiraContext::StrCell(mc.users(), user.row, "login") : "???",
      IntStr(quota, row, "quota"), dir, machine};
  if (with_modtriple) {
    tuple.push_back(IntStr(quota, row, "modtime"));
    tuple.push_back(MoiraContext::StrCell(quota, row, "modby"));
    tuple.push_back(MoiraContext::StrCell(quota, row, "modwith"));
  }
  return tuple;
}

int32_t GetNfsQuota(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[1]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
  Table* filesys = mc.filesys();
  Table* quota = mc.nfsquota();
  // Join label-matched filesystems to their quota rows (indexed filsys_id
  // probe), keeping only this user's entries.
  From(filesys)
      .WhereWild("label", call.args[0])
      .Join(quota, "filsys_id", "filsys_id")
      .WhereEq("users_id", Value(users_id))
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit(QuotaTuple(mc, rows[1], /*with_modtriple=*/true));
      });
  return MR_SUCCESS;
}

int32_t GetNfsQuotasByPartition(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  Table* phys = mc.nfsphys();
  Table* quota = mc.nfsquota();
  // One two-stage join instead of a nested per-partition pipeline: the
  // executor batches quota probes across partitions sharing a phys_id.
  From(phys)
      .WhereEq("mach_id", Value(mach_id))
      .WhereWild("dir", call.args[1])
      .Join(quota, "nfsphys_id", "phys_id")
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit(QuotaTuple(mc, rows[1], /*with_modtriple=*/false));
      });
  return MR_SUCCESS;
}

// Looks up a quota row for exact (filesystem, login).
int32_t FindQuota(MoiraContext& mc, std::string_view fs_arg, std::string_view login,
                  size_t* row_out, int64_t* filsys_id_out, int64_t* phys_id_out) {
  RowRef fs = mc.FilesysByLabel(fs_arg);
  if (fs.code != MR_SUCCESS) {
    return fs.code;
  }
  RowRef user = mc.UserByLogin(login);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  *filsys_id_out = MoiraContext::IntCell(mc.filesys(), fs.row, "filsys_id");
  *phys_id_out = MoiraContext::IntCell(mc.filesys(), fs.row, "phys_id");
  int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
  std::vector<size_t> rows = From(mc.nfsquota())
                                 .WhereEq("filsys_id", Value(*filsys_id_out))
                                 .WhereEq("users_id", Value(users_id))
                                 .Rows();
  if (rows.empty()) {
    *row_out = SIZE_MAX;
    return MR_SUCCESS;
  }
  *row_out = rows[0];
  return MR_SUCCESS;
}

int32_t AddNfsQuota(QueryCall& call) {
  MoiraContext& mc = call.mc;
  int64_t quota_units = 0;
  if (int32_t code = RequireInt(call.args[2], &quota_units); code != MR_SUCCESS) {
    return code;
  }
  if (quota_units <= 0) {
    return MR_QUOTA;
  }
  size_t existing = 0;
  int64_t filsys_id = 0;
  int64_t phys_id = 0;
  if (int32_t code = FindQuota(mc, call.args[0], call.args[1], &existing, &filsys_id,
                               &phys_id);
      code != MR_SUCCESS) {
    return code;
  }
  if (existing != SIZE_MAX) {
    return MR_EXISTS;
  }
  RowRef user = mc.UserByLogin(call.args[1]);
  int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
  // soft == 0 means "soft limit equals the hard quota" (schema.cc).
  size_t row = mc.nfsquota()->Append({Value(users_id), Value(filsys_id), Value(phys_id),
                                      Value(quota_units), Value(int64_t{0}),
                                      Value(int64_t{0}), Value(int64_t{0}),
                                      Value(int64_t{0}), Value(""), Value("")});
  mc.Stamp(mc.nfsquota(), row, call.principal, call.client_name);
  ReleaseQuotaAllocation(mc, phys_id, -quota_units);  // i.e. allocate
  return MR_SUCCESS;
}

int32_t UpdateNfsQuota(QueryCall& call) {
  MoiraContext& mc = call.mc;
  int64_t quota_units = 0;
  if (int32_t code = RequireInt(call.args[2], &quota_units); code != MR_SUCCESS) {
    return code;
  }
  if (quota_units <= 0) {
    return MR_QUOTA;
  }
  size_t row = 0;
  int64_t filsys_id = 0;
  int64_t phys_id = 0;
  if (int32_t code = FindQuota(mc, call.args[0], call.args[1], &row, &filsys_id, &phys_id);
      code != MR_SUCCESS) {
    return code;
  }
  if (row == SIZE_MAX) {
    return MR_NO_QUOTA;
  }
  Table* quota = mc.nfsquota();
  int64_t old = MoiraContext::IntCell(quota, row, "quota");
  MoiraContext::SetCell(quota, row, "quota", Value(quota_units));
  mc.Stamp(quota, row, call.principal, call.client_name);
  ReleaseQuotaAllocation(mc, phys_id, old - quota_units);
  return MR_SUCCESS;
}

int32_t DeleteNfsQuota(QueryCall& call) {
  MoiraContext& mc = call.mc;
  size_t row = 0;
  int64_t filsys_id = 0;
  int64_t phys_id = 0;
  if (int32_t code = FindQuota(mc, call.args[0], call.args[1], &row, &filsys_id, &phys_id);
      code != MR_SUCCESS) {
    return code;
  }
  if (row == SIZE_MAX) {
    return MR_NO_QUOTA;
  }
  Table* quota = mc.nfsquota();
  int64_t released = MoiraContext::IntCell(quota, row, "quota");
  RemoveQuotaUsage(mc, MoiraContext::IntCell(quota, row, "users_id"), phys_id);
  quota->Delete(row);
  ReleaseQuotaAllocation(mc, phys_id, released);
  return MR_SUCCESS;
}

constexpr const char* kFilesysReturns =
    "name, fstype, machine, packname, mountpoint, access, comments, owner, owners, create, "
    "lockertype, modtime, modby, modwith";

}  // namespace

void AppendFilesysQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"get_filesys_by_label", "gfsl", QueryClass::kRetrieve, 1, true, "name",
           kFilesysReturns, nullptr, GetFilesysByLabel},
          {"get_filesys_by_machine", "gfsm", QueryClass::kRetrieve, 1, true, "machine",
           kFilesysReturns, nullptr, GetFilesysByMachine},
          {"get_filesys_by_nfsphys", "gfsn", QueryClass::kRetrieve, 2, true,
           "machine, partition", kFilesysReturns, nullptr, GetFilesysByNfsphys},
          {"get_filesys_by_group", "gfsg", QueryClass::kRetrieve, 1, false, "list",
           kFilesysReturns,
           [](MoiraContext& mc, std::string_view principal,
              const std::vector<std::string>& args) {
             if (args.empty()) {
               return false;
             }
             RowRef list = mc.ListByName(args[0]);
             if (list.code != MR_SUCCESS) {
               return false;
             }
             int64_t users_id = PrincipalUserId(mc, principal);
             return users_id >= 0 &&
                    IsUserInList(mc, users_id,
                                 MoiraContext::IntCell(mc.list(), list.row, "list_id"));
           },
           GetFilesysByGroup},
          {"add_filesys", "afil", QueryClass::kAppend, 11, false,
           "name, fstype, machine, packname, mountpoint, access, comments, owner, owners, "
           "create, lockertype",
           "", nullptr, AddFilesys},
          {"update_filesys", "ufil", QueryClass::kUpdate, 12, false,
           "name, newname, fstype, machine, packname, mountpoint, access, comments, owner, "
           "owners, create, lockertype",
           "", nullptr, UpdateFilesys},
          {"delete_filesys", "dfil", QueryClass::kDelete, 1, false, "name", "", nullptr,
           DeleteFilesys},
          {"get_all_nfsphys", "ganf", QueryClass::kRetrieve, 0, true, "",
           "machine, dir, device, status, allocated, size, modtime, modby, modwith", nullptr,
           GetAllNfsphys},
          {"get_nfsphys", "gnfp", QueryClass::kRetrieve, 2, true, "machine, dir",
           "machine, dir, device, status, allocated, size, modtime, modby, modwith", nullptr,
           GetNfsphys},
          {"add_nfsphys", "anfp", QueryClass::kAppend, 6, false,
           "machine, directory, device, status, allocated, size", "", nullptr, AddNfsphys},
          {"update_nfsphys", "unfp", QueryClass::kUpdate, 6, false,
           "machine, directory, device, status, allocated, size", "", nullptr,
           UpdateNfsphys},
          {"adjust_nfsphys_allocation", "ajnf", QueryClass::kUpdate, 3, false,
           "machine, directory, delta", "", nullptr, AdjustNfsphysAllocation},
          {"delete_nfsphys", "dnfp", QueryClass::kDelete, 2, false, "machine, directory", "",
           nullptr, DeleteNfsphys},
          {"get_nfs_quota", "gnfq", QueryClass::kRetrieve, 2, false, "filesys, login",
           "filesys, login, quota, directory, machine, modtime, modby, modwith",
           [](MoiraContext&, std::string_view principal, const std::vector<std::string>& args) {
             return args.size() == 2 && args[1] == principal;
           },
           GetNfsQuota},
          {"get_nfs_quotas_by_partition", "gnqp", QueryClass::kRetrieve, 2, false,
           "machine, directory", "filesys, login, quota, directory, machine", nullptr,
           GetNfsQuotasByPartition},
          {"add_nfs_quota", "anfq", QueryClass::kAppend, 3, false,
           "filesystem, login, quota", "", nullptr, AddNfsQuota},
          {"update_nfs_quota", "unfq", QueryClass::kUpdate, 3, false,
           "filesystem, login, quota", "", nullptr, UpdateNfsQuota},
          {"delete_nfs_quota", "dnfq", QueryClass::kDelete, 2, false, "filesystem, login",
           "", nullptr, DeleteNfsQuota},
      });
}

}  // namespace moira
