// Helpers shared by the predefined-query implementations
// (src/core/queries_*.cc).  Internal to moira_core.
#ifndef MOIRA_SRC_CORE_QUERIES_COMMON_H_
#define MOIRA_SRC_CORE_QUERIES_COMMON_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/strutil.h"
#include "src/core/acl.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/db/exec.h"

namespace moira {

// Builds a Match condition for `pattern` on `column`: exact equality when the
// pattern has no metacharacters, wildcard match otherwise.
inline Condition WildCond(const Table* table, const char* column, std::string_view pattern,
                          bool case_insensitive = false) {
  Condition cond;
  cond.column = table->ColumnIndex(column);
  if (HasWildcard(pattern)) {
    cond.op = case_insensitive ? Condition::Op::kWildNoCase : Condition::Op::kWild;
  } else {
    cond.op = case_insensitive ? Condition::Op::kEqNoCase : Condition::Op::kEq;
  }
  cond.operand = Value(pattern);
  return cond;
}

// Parses an integer argument; MR_INTEGER on failure.
inline int32_t RequireInt(std::string_view arg, int64_t* out) {
  std::optional<int64_t> v = ParseInt(arg);
  if (!v.has_value()) {
    return MR_INTEGER;
  }
  *out = *v;
  return MR_SUCCESS;
}

// Parses a boolean argument (0 = false, non-zero = true per the paper).
inline int32_t RequireBool(std::string_view arg, int64_t* out) {
  int64_t v = 0;
  if (int32_t code = RequireInt(arg, &v); code != MR_SUCCESS) {
    return code;
  }
  *out = v != 0 ? 1 : 0;
  return MR_SUCCESS;
}

// Tri-state flag for the qualified_get_* queries: TRUE, FALSE, or DONTCARE.
// Returns MR_TYPE for anything else; *out is 1 / 0 / -1.
inline int32_t RequireTriState(std::string_view arg, int* out) {
  if (arg == "TRUE") {
    *out = 1;
  } else if (arg == "FALSE") {
    *out = 0;
  } else if (arg == "DONTCARE") {
    *out = -1;
  } else {
    return MR_TYPE;
  }
  return MR_SUCCESS;
}

// True if an int cell matches a tri-state filter.
inline bool TriMatches(int tri, int64_t cell) {
  return tri == -1 || (tri == 1) == (cell != 0);
}

// Adds a tri-state flag test as a *planned* predicate: DONTCARE adds nothing,
// FALSE probes for 0, TRUE becomes the range predicate `cell >= 1`.  The
// range form is equivalent to `cell != 0` because every tri-state column is
// non-negative (RequireBool coerces flags to 0/1; MR error codes are
// positive), and unlike `!= 0` the planner can serve it from an ordered
// index.
inline void WhereTriState(Selector* sel, std::string_view column, int tri) {
  if (tri == 0) {
    sel->WhereEq(column, Value(int64_t{0}));
  } else if (tri == 1) {
    sel->WhereGe(column, Value(int64_t{1}));
  }
}

// Validates name-field characters; MR_BAD_CHAR on violation.
inline int32_t RequireLegalChars(std::string_view arg) {
  return IsLegalNameChars(arg) ? MR_SUCCESS : MR_BAD_CHAR;
}

// Common self-access hooks.
bool SelfIsArg0Login(MoiraContext& mc, std::string_view principal,
                     const std::vector<std::string>& args);
bool SelfOnListAce(MoiraContext& mc, std::string_view principal,
                   const std::vector<std::string>& args);
bool SelfOnServiceAce(MoiraContext& mc, std::string_view principal,
                      const std::vector<std::string>& args);

// Removes the live quotausage rows for (user, partition) and rolls their
// usage/report counts out of the quotarollup aggregates.  Called when quota
// rows are deleted so the accounting never dangles (queries_quota.cc).
void RemoveQuotaUsage(MoiraContext& mc, int64_t users_id, int64_t phys_id);

// Renders an int64 cell as a decimal string.
inline std::string IntStr(const Table* table, size_t row, const char* column) {
  return std::to_string(MoiraContext::IntCell(table, row, column));
}

}  // namespace moira

#endif  // MOIRA_SRC_CORE_QUERIES_COMMON_H_
