// Zephyr, host access, network services, printcap, alias, values, table
// statistics, and built-in special queries (paper sections 7.0.6 - 7.0.8).
#include "src/core/queries_common.h"

namespace moira {
namespace {

// --- zephyr classes ---

// The four (type, id) ACE pairs of a zephyr class, in column order.
constexpr const char* kZephyrAcePrefixes[4] = {"xmt", "sub", "iws", "iui"};

int32_t ParseZephyrAces(MoiraContext& mc, const std::vector<std::string>& args, size_t base,
                        int64_t ids[4]) {
  for (int i = 0; i < 4; ++i) {
    if (int32_t code = mc.ResolveAce(args[base + 2 * i], args[base + 2 * i + 1], &ids[i]);
        code != MR_SUCCESS) {
      return code;
    }
  }
  return MR_SUCCESS;
}

int32_t GetZephyrClass(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* zephyr = mc.zephyr();
  From(zephyr).WhereWild("class", call.args[0]).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    Tuple tuple = {MoiraContext::StrCell(zephyr, row, "class")};
    for (const char* prefix : kZephyrAcePrefixes) {
      std::string type_col = std::string(prefix) + "_type";
      std::string id_col = std::string(prefix) + "_id";
      const std::string& type = MoiraContext::StrCell(zephyr, row, type_col.c_str());
      tuple.push_back(type);
      tuple.push_back(mc.AceName(type, MoiraContext::IntCell(zephyr, row, id_col.c_str())));
    }
    tuple.push_back(IntStr(zephyr, row, "modtime"));
    tuple.push_back(MoiraContext::StrCell(zephyr, row, "modby"));
    tuple.push_back(MoiraContext::StrCell(zephyr, row, "modwith"));
    call.emit(std::move(tuple));
  });
  return MR_SUCCESS;
}

int32_t AddZephyrClass(QueryCall& call) {
  MoiraContext& mc = call.mc;
  if (int32_t code = RequireLegalChars(call.args[0]); code != MR_SUCCESS) {
    return code;
  }
  Table* zephyr = mc.zephyr();
  if (mc.ExactOne(zephyr, "class", Value(call.args[0]), MR_ZEPHYR).code == MR_SUCCESS) {
    return MR_EXISTS;
  }
  int64_t ids[4];
  if (int32_t code = ParseZephyrAces(mc, call.args, 1, ids); code != MR_SUCCESS) {
    return code;
  }
  size_t row = zephyr->Append({Value(call.args[0]), Value(call.args[1]), Value(ids[0]),
                               Value(call.args[3]), Value(ids[1]), Value(call.args[5]),
                               Value(ids[2]), Value(call.args[7]), Value(ids[3]),
                               Value(int64_t{0}), Value(""), Value("")});
  mc.Stamp(zephyr, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateZephyrClass(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* zephyr = mc.zephyr();
  RowRef klass = mc.ExactOne(zephyr, "class", Value(call.args[0]), MR_ZEPHYR);
  if (klass.code != MR_SUCCESS) {
    return klass.code;
  }
  const std::string& newname = call.args[1];
  if (newname != call.args[0] &&
      mc.ExactOne(zephyr, "class", Value(newname), MR_ZEPHYR).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  int64_t ids[4];
  if (int32_t code = ParseZephyrAces(mc, call.args, 2, ids); code != MR_SUCCESS) {
    return code;
  }
  MoiraContext::SetCell(zephyr, klass.row, "class", Value(newname));
  for (int i = 0; i < 4; ++i) {
    std::string type_col = std::string(kZephyrAcePrefixes[i]) + "_type";
    std::string id_col = std::string(kZephyrAcePrefixes[i]) + "_id";
    MoiraContext::SetCell(zephyr, klass.row, type_col.c_str(), Value(call.args[2 + 2 * i]));
    MoiraContext::SetCell(zephyr, klass.row, id_col.c_str(), Value(ids[i]));
  }
  mc.Stamp(zephyr, klass.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteZephyrClass(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* zephyr = mc.zephyr();
  RowRef klass = mc.ExactOne(zephyr, "class", Value(call.args[0]), MR_ZEPHYR);
  if (klass.code != MR_SUCCESS) {
    return klass.code;
  }
  zephyr->Delete(klass.row);
  return MR_SUCCESS;
}

// --- host access (/.klogin generation) ---

int32_t GetServerHostAccess(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* machine = mc.machine();
  Table* hostaccess = mc.hostaccess();
  std::string pattern = ToUpperCopy(call.args[0]);
  From(machine)
      .WhereWild("name", pattern)
      .Join(hostaccess, "mach_id", "mach_id")
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[1];
        const std::string& type = MoiraContext::StrCell(hostaccess, row, "acl_type");
        call.emit({MoiraContext::StrCell(machine, rows[0], "name"), type,
                   mc.AceName(type, MoiraContext::IntCell(hostaccess, row, "acl_id")),
                   IntStr(hostaccess, row, "modtime"),
                   MoiraContext::StrCell(hostaccess, row, "modby"),
                   MoiraContext::StrCell(hostaccess, row, "modwith")});
      });
  return MR_SUCCESS;
}

int32_t AddServerHostAccess(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t ace_id = 0;
  if (int32_t code = mc.ResolveAce(call.args[1], call.args[2], &ace_id);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  Table* hostaccess = mc.hostaccess();
  if (From(hostaccess).WhereEq("mach_id", Value(mach_id)).Any()) {
    return MR_EXISTS;
  }
  size_t row = hostaccess->Append({Value(mach_id), Value(call.args[1]), Value(ace_id),
                                   Value(int64_t{0}), Value(""), Value("")});
  mc.Stamp(hostaccess, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateServerHostAccess(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t ace_id = 0;
  if (int32_t code = mc.ResolveAce(call.args[1], call.args[2], &ace_id);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  Table* hostaccess = mc.hostaccess();
  RowRef entry = mc.ExactOne(hostaccess, "mach_id", Value(mach_id), MR_NO_MATCH);
  if (entry.code != MR_SUCCESS) {
    return entry.code;
  }
  MoiraContext::SetCell(hostaccess, entry.row, "acl_type", Value(call.args[1]));
  MoiraContext::SetCell(hostaccess, entry.row, "acl_id", Value(ace_id));
  mc.Stamp(hostaccess, entry.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteServerHostAccess(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  Table* hostaccess = mc.hostaccess();
  RowRef entry = mc.ExactOne(hostaccess, "mach_id", Value(mach_id), MR_NO_MATCH);
  if (entry.code != MR_SUCCESS) {
    return entry.code;
  }
  hostaccess->Delete(entry.row);
  return MR_SUCCESS;
}

// --- network services (/etc/services) ---

int32_t GetService(QueryCall& call) {
  Table* services = call.mc.services();
  From(services).WhereWild("name", call.args[0]).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    call.emit({MoiraContext::StrCell(services, row, "name"),
               MoiraContext::StrCell(services, row, "protocol"), IntStr(services, row, "port"),
               MoiraContext::StrCell(services, row, "desc"), IntStr(services, row, "modtime"),
               MoiraContext::StrCell(services, row, "modby"),
               MoiraContext::StrCell(services, row, "modwith")});
  });
  return MR_SUCCESS;
}

int32_t AddService(QueryCall& call) {
  MoiraContext& mc = call.mc;
  if (int32_t code = RequireLegalChars(call.args[0]); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("protocol", ToUpperCopy(call.args[1]))) {
    return MR_TYPE;
  }
  int64_t port = 0;
  if (int32_t code = RequireInt(call.args[2], &port); code != MR_SUCCESS) {
    return code;
  }
  Table* services = mc.services();
  if (mc.ExactOne(services, "name", Value(call.args[0]), MR_SERVICE).code == MR_SUCCESS) {
    return MR_EXISTS;
  }
  size_t row = services->Append({Value(call.args[0]), Value(ToUpperCopy(call.args[1])),
                                 Value(port), Value(call.args[3]), Value(int64_t{0}),
                                 Value(""), Value("")});
  mc.Stamp(services, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeleteService(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* services = mc.services();
  RowRef service = mc.ExactOne(services, "name", Value(call.args[0]), MR_SERVICE);
  if (service.code != MR_SUCCESS) {
    return service.code;
  }
  services->Delete(service.row);
  return MR_SUCCESS;
}

// --- printcap ---

int32_t GetPrintcap(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* printcap = mc.printcap();
  From(printcap).WhereWild("name", call.args[0]).Emit([&](const std::vector<size_t>& rows) {
    size_t row = rows[0];
    int64_t mach_id = MoiraContext::IntCell(printcap, row, "mach_id");
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
    call.emit({MoiraContext::StrCell(printcap, row, "name"),
               mach.code == MR_SUCCESS
                   ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                   : "???",
               MoiraContext::StrCell(printcap, row, "dir"),
               MoiraContext::StrCell(printcap, row, "rp"),
               MoiraContext::StrCell(printcap, row, "comments"),
               MoiraContext::StrCell(printcap, row, "modby"),
               MoiraContext::StrCell(printcap, row, "modwith")});
  });
  return MR_SUCCESS;
}

int32_t AddPrintcap(QueryCall& call) {
  MoiraContext& mc = call.mc;
  if (int32_t code = RequireLegalChars(call.args[0]); code != MR_SUCCESS) {
    return code;
  }
  Table* printcap = mc.printcap();
  if (mc.ExactOne(printcap, "name", Value(call.args[0]), MR_NO_MATCH).code == MR_SUCCESS) {
    return MR_EXISTS;
  }
  RowRef mach = mc.MachineByName(call.args[1]);
  if (mach.code != MR_SUCCESS) {
    return MR_MACHINE;
  }
  size_t row = printcap->Append({Value(call.args[0]),
                                 Value(MoiraContext::IntCell(mc.machine(), mach.row,
                                                             "mach_id")),
                                 Value(call.args[2]), Value(call.args[3]),
                                 Value(call.args[4]), Value(int64_t{0}), Value(""),
                                 Value("")});
  mc.Stamp(printcap, row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t DeletePrintcap(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* printcap = mc.printcap();
  RowRef printer = mc.ExactOne(printcap, "name", Value(call.args[0]), MR_NO_MATCH);
  if (printer.code != MR_SUCCESS) {
    return printer.code;
  }
  printcap->Delete(printer.row);
  return MR_SUCCESS;
}

// --- aliases ---

int32_t GetAlias(QueryCall& call) {
  Table* alias = call.mc.alias();
  From(alias)
      .WhereWild("name", call.args[0])
      .WhereWild("type", call.args[1])
      .WhereWild("trans", call.args[2])
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit({MoiraContext::StrCell(alias, rows[0], "name"),
                   MoiraContext::StrCell(alias, rows[0], "type"),
                   MoiraContext::StrCell(alias, rows[0], "trans")});
      });
  return MR_SUCCESS;
}

int32_t AddAlias(QueryCall& call) {
  MoiraContext& mc = call.mc;
  if (!mc.IsLegalType("aliastype", call.args[1])) {
    return MR_TYPE;
  }
  Table* alias = mc.alias();
  // Exact duplicates are rejected; duplicate translations for a (name, type)
  // pair are allowed.
  if (From(alias)
          .WhereEq("name", Value(call.args[0]))
          .WhereEq("type", Value(call.args[1]))
          .WhereEq("trans", Value(call.args[2]))
          .Any()) {
    return MR_EXISTS;
  }
  alias->Append({Value(call.args[0]), Value(call.args[1]), Value(call.args[2])});
  return MR_SUCCESS;
}

int32_t DeleteAlias(QueryCall& call) {
  Table* alias = call.mc.alias();
  std::vector<size_t> rows = From(alias)
                                 .WhereEq("name", Value(call.args[0]))
                                 .WhereEq("type", Value(call.args[1]))
                                 .WhereEq("trans", Value(call.args[2]))
                                 .Rows();
  if (rows.empty()) {
    return MR_NO_MATCH;
  }
  if (rows.size() > 1) {
    return MR_NOT_UNIQUE;
  }
  alias->Delete(rows[0]);
  return MR_SUCCESS;
}

// --- values ---

int32_t GetValueQuery(QueryCall& call) {
  int64_t value = 0;
  if (int32_t code = call.mc.GetValue(call.args[0], &value); code != MR_SUCCESS) {
    return code;
  }
  call.emit({std::to_string(value)});
  return MR_SUCCESS;
}

int32_t AddValue(QueryCall& call) {
  MoiraContext& mc = call.mc;
  int64_t value = 0;
  if (int32_t code = RequireInt(call.args[1], &value); code != MR_SUCCESS) {
    return code;
  }
  int64_t existing = 0;
  if (mc.GetValue(call.args[0], &existing) == MR_SUCCESS) {
    return MR_EXISTS;
  }
  mc.values()->Append({Value(call.args[0]), Value(value)});
  return MR_SUCCESS;
}

int32_t UpdateValue(QueryCall& call) {
  int64_t value = 0;
  if (int32_t code = RequireInt(call.args[1], &value); code != MR_SUCCESS) {
    return code;
  }
  return call.mc.SetValue(call.args[0], value);
}

int32_t DeleteValue(QueryCall& call) {
  MoiraContext& mc = call.mc;
  Table* values = mc.values();
  RowRef ref = mc.ExactOne(values, "name", Value(call.args[0]), MR_NO_MATCH);
  if (ref.code != MR_SUCCESS) {
    return ref.code;
  }
  values->Delete(ref.row);
  return MR_SUCCESS;
}

// --- table statistics ---

int32_t GetAllTableStats(QueryCall& call) {
  MoiraContext& mc = call.mc;
  for (const std::string& name : mc.db().TableNames()) {
    const Table* table = mc.db().GetTable(name);
    const TableStats& stats = table->stats();
    // retrieves is obsolete and unused for performance reasons (paper
    // section 6, TBLSTATS): always reported as 0.
    call.emit({name, "0", std::to_string(stats.appends), std::to_string(stats.updates),
               std::to_string(stats.deletes), std::to_string(stats.modtime)});
  }
  return MR_SUCCESS;
}

// Per-table access-path statistics: how queries actually executed.  A row per
// table: mutation counters plus planner counters (index hits, prefix-pruned
// scans, full scans, rows examined vs emitted, join reorders, batched-probe
// cache hits) plus shard routing counters (shard count, probes answered by a
// single shard, accesses fanned across every shard, set probes).  Privileged
// (dbadmin only via CAPACLS; not world_ok) since it exposes workload shape.
int32_t GetTableStatistics(QueryCall& call) {
  MoiraContext& mc = call.mc;
  for (const std::string& name : mc.db().TableNames()) {
    const Table* table = mc.db().GetTable(name);
    const TableStats& stats = table->stats();
    call.emit({name, std::to_string(stats.appends), std::to_string(stats.updates),
               std::to_string(stats.deletes), std::to_string(stats.index_hits),
               std::to_string(stats.prefix_scans), std::to_string(stats.range_scans),
               std::to_string(stats.full_scans), std::to_string(stats.rows_examined),
               std::to_string(stats.rows_emitted), std::to_string(stats.join_reorders),
               std::to_string(stats.probe_cache_hits), std::to_string(table->shard_count()),
               std::to_string(stats.single_shard_probes), std::to_string(stats.fanout_scans),
               std::to_string(stats.set_probes)});
  }
  return MR_SUCCESS;
}

// --- built-in special queries (paper section 7.0.8) ---

int32_t HelpQuery(QueryCall& call) {
  const QueryDef* def = QueryRegistry::Instance().Find(call.args[0]);
  if (def == nullptr) {
    return MR_NO_HANDLE;
  }
  std::string help = std::string(def->shortname) + " (" +
                     std::string(QueryClassName(def->qclass)) + ") args: [" + def->argspec +
                     "] returns: [" + def->retspec + "]";
  call.emit({std::move(help)});
  return MR_SUCCESS;
}

int32_t ListQueries(QueryCall& call) {
  for (const QueryDef& def : QueryRegistry::Instance().All()) {
    call.emit({def.name, def.shortname});
  }
  return MR_SUCCESS;
}

// trigger_dcm is a pseudo-query: its CAPACLS entry gates the Trigger_DCM
// major request (paper section 5.3); executing it through the query path is a
// no-op handled by the server.
int32_t TriggerDcmNoop(QueryCall& call) {
  (void)call;
  return MR_SUCCESS;
}

// get_replica_status is likewise server-state backed: the Moira server
// answers it from its replica directory, and its CAPACLS entry also gates the
// journal-streaming ReplFetch/ReplSnapshot major requests (src/repl).
// Through the direct glue path there is no replica directory to report.
int32_t GetReplicaStatusNoop(QueryCall& call) {
  (void)call;
  return MR_SUCCESS;
}

}  // namespace

void AppendMiscQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"get_zephyr_class", "gzcl", QueryClass::kRetrieve, 1, false, "class",
           "class, xmt_type, xmt_name, sub_type, sub_name, iws_type, iws_name, iui_type, "
           "iui_name, modtime, modby, modwith",
           nullptr, GetZephyrClass},
          {"add_zephyr_class", "azcl", QueryClass::kAppend, 9, false,
           "class, xmt_type, xmt_name, sub_type, sub_name, iws_type, iws_name, iui_type, "
           "iui_name",
           "", nullptr, AddZephyrClass},
          {"update_zephyr_class", "uzcl", QueryClass::kUpdate, 10, false,
           "class, newclass, xmt_type, xmt_name, sub_type, sub_name, iws_type, iws_name, "
           "iui_type, iui_name",
           "", nullptr, UpdateZephyrClass},
          {"delete_zephyr_class", "dzcl", QueryClass::kDelete, 1, false, "class", "",
           nullptr, DeleteZephyrClass},
          {"get_server_host_access", "gsha", QueryClass::kRetrieve, 1, false, "machine",
           "machine, ace_type, ace_name, modtime, modby, modwith", nullptr,
           GetServerHostAccess},
          {"add_server_host_access", "asha", QueryClass::kAppend, 3, false,
           "machine, ace_type, ace_name", "", nullptr, AddServerHostAccess},
          {"update_server_host_access", "usha", QueryClass::kUpdate, 3, false,
           "machine, ace_type, ace_name", "", nullptr, UpdateServerHostAccess},
          {"delete_server_host_access", "dsha", QueryClass::kDelete, 1, false, "machine", "",
           nullptr, DeleteServerHostAccess},
          {"get_service", "gsvc", QueryClass::kRetrieve, 1, true, "service",
           "service, protocol, port, description, modtime, modby, modwith", nullptr,
           GetService},
          {"add_service", "asvc", QueryClass::kAppend, 4, false,
           "service, protocol, port, description", "", nullptr, AddService},
          {"delete_service", "dsvc", QueryClass::kDelete, 1, false, "service", "", nullptr,
           DeleteService},
          {"get_printcap", "gpcp", QueryClass::kRetrieve, 1, true, "printer",
           "printer, spool_host, spool_directory, rprinter, comments, modby, modwith",
           nullptr, GetPrintcap},
          {"add_printcap", "apcp", QueryClass::kAppend, 5, false,
           "printer, spool_host, spool_directory, rprinter, comments", "", nullptr,
           AddPrintcap},
          {"delete_printcap", "dpcp", QueryClass::kDelete, 1, false, "printer", "", nullptr,
           DeletePrintcap},
          {"get_alias", "gali", QueryClass::kRetrieve, 3, true, "name, type, translation",
           "name, type, translation", nullptr, GetAlias},
          {"add_alias", "aali", QueryClass::kAppend, 3, false, "name, type, translation", "",
           nullptr, AddAlias},
          {"delete_alias", "dali", QueryClass::kDelete, 3, false, "name, type, translation",
           "", nullptr, DeleteAlias},
          {"get_value", "gval", QueryClass::kRetrieve, 1, true, "variable", "value", nullptr,
           GetValueQuery},
          {"add_value", "aval", QueryClass::kAppend, 2, false, "variable, value", "",
           nullptr, AddValue},
          {"update_value", "uval", QueryClass::kUpdate, 2, false, "variable, value", "",
           nullptr, UpdateValue},
          {"delete_value", "dval", QueryClass::kDelete, 1, false, "variable", "", nullptr,
           DeleteValue},
          {"get_all_table_stats", "gats", QueryClass::kRetrieve, 0, true, "",
           "table, retrieves, appends, updates, deletes, modtime", nullptr,
           GetAllTableStats},
          {"get_table_statistics", "gtst", QueryClass::kRetrieve, 0, false, "",
           "table, appends, updates, deletes, index_hits, prefix_scans, range_scans, "
           "full_scans, rows_examined, rows_emitted, join_reorders, probe_cache_hits",
           nullptr, GetTableStatistics},
          {"_help", "help", QueryClass::kRetrieve, 1, true, "query", "help_message", nullptr,
           HelpQuery},
          {"_list_queries", "lque", QueryClass::kRetrieve, 0, true, "",
           "long_query_name, short_query_name", nullptr, ListQueries},
          {"trigger_dcm", "tdcm", QueryClass::kUpdate, 0, false, "", "", nullptr,
           TriggerDcmNoop},
          {"get_replica_status", "grst", QueryClass::kRetrieve, 0, false, "",
           "replica, applied_seq, primary_seq, lag, last_contact", nullptr,
           GetReplicaStatusNoop},
      });
}

}  // namespace moira
