// Users, finger, and post office box queries (paper section 7.0.1).
#include <algorithm>

#include "src/core/queries_common.h"

namespace moira {
namespace {

// --- shared emit helpers ---

Tuple UserSummaryTuple(const Table* users, size_t row) {
  return {MoiraContext::StrCell(users, row, "login"), IntStr(users, row, "uid"),
          MoiraContext::StrCell(users, row, "shell"), MoiraContext::StrCell(users, row, "last"),
          MoiraContext::StrCell(users, row, "first"),
          MoiraContext::StrCell(users, row, "middle")};
}

Tuple UserFullTuple(const Table* users, size_t row) {
  return {MoiraContext::StrCell(users, row, "login"),
          IntStr(users, row, "uid"),
          MoiraContext::StrCell(users, row, "shell"),
          MoiraContext::StrCell(users, row, "last"),
          MoiraContext::StrCell(users, row, "first"),
          MoiraContext::StrCell(users, row, "middle"),
          IntStr(users, row, "status"),
          MoiraContext::StrCell(users, row, "mit_id"),
          MoiraContext::StrCell(users, row, "mit_year"),
          IntStr(users, row, "modtime"),
          MoiraContext::StrCell(users, row, "modby"),
          MoiraContext::StrCell(users, row, "modwith")};
}

// Emits full user tuples for `rows`.  Non-privileged callers may only see
// themselves: "the query only succeeds if the only retrieved information is
// about the user making the request".
int32_t EmitFullUsers(QueryCall& call, const std::vector<size_t>& rows) {
  const Table* users = call.mc.users();
  if (!call.privileged) {
    for (size_t row : rows) {
      if (MoiraContext::StrCell(users, row, "login") != call.principal) {
        return MR_PERM;
      }
    }
  }
  for (size_t row : rows) {
    call.emit(UserFullTuple(users, row));
  }
  return MR_SUCCESS;
}

// Renders the pobox "box" field: the POP machine name, the SMTP address
// string, or "NONE".
std::string PoboxBox(MoiraContext& mc, size_t user_row) {
  const Table* users = mc.users();
  const std::string& type = MoiraContext::StrCell(users, user_row, "potype");
  if (type == "POP") {
    int64_t mach_id = MoiraContext::IntCell(users, user_row, "pop_id");
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
    return mach.code == MR_SUCCESS ? MoiraContext::StrCell(mc.machine(), mach.row, "name")
                                   : "???";
  }
  if (type == "SMTP") {
    return mc.StringById(MoiraContext::IntCell(users, user_row, "box_id"));
  }
  return "NONE";
}

// Picks the least loaded POP server: the enabled POP serverhost with the
// most headroom (value2 - value1, the max vs current pobox counts).  Returns
// MR_MACHINE if none has room.
int32_t LeastLoadedPop(MoiraContext& mc, int64_t* mach_id_out, size_t* sh_row_out) {
  Table* sh = mc.serverhosts();
  int64_t best_room = 0;
  bool found = false;
  From(sh)
      .WhereEq("service", Value("POP"))
      // enable is 0/1, so `>= 1` is `!= 0` in a form the planner can index.
      .WhereGe("enable", Value(int64_t{1}))
      .Emit([&](const std::vector<size_t>& rows) {
        size_t row = rows[0];
        int64_t room = MoiraContext::IntCell(sh, row, "value2") -
                       MoiraContext::IntCell(sh, row, "value1");
        if (room > best_room) {
          best_room = room;
          *mach_id_out = MoiraContext::IntCell(sh, row, "mach_id");
          *sh_row_out = row;
          found = true;
        }
      });
  return found ? MR_SUCCESS : MR_MACHINE;
}

// Picks the least loaded NFS partition whose status includes `fstype_bits`:
// maximum free quota units.  MR_NO_FILESYS if none.
int32_t LeastLoadedNfsPhys(MoiraContext& mc, int64_t fstype_bits, size_t* phys_row_out) {
  Table* phys = mc.nfsphys();
  int64_t best_free = -1;
  From(phys)
      .WhereAnyBits("status", fstype_bits)
      .Emit([&](const std::vector<size_t>& rows) {
        int64_t free_units = MoiraContext::IntCell(phys, rows[0], "size") -
                             MoiraContext::IntCell(phys, rows[0], "allocated");
        if (free_units > best_free) {
          best_free = free_units;
          *phys_row_out = rows[0];
        }
      });
  return best_free >= 0 ? MR_SUCCESS : MR_NO_FILESYS;
}

// --- users ---

int32_t GetAllLogins(QueryCall& call) {
  const Table* users = call.mc.users();
  From(users).Emit([&](const std::vector<size_t>& rows) {
    call.emit(UserSummaryTuple(users, rows[0]));
  });
  return MR_SUCCESS;
}

int32_t GetAllActiveLogins(QueryCall& call) {
  const Table* users = call.mc.users();
  // Statuses are the non-negative UserStatus codes (0 = not registered), so
  // "active" (`status != 0`) is the plannable range predicate `status >= 1`.
  From(users)
      .WhereGe("status", Value(int64_t{1}))
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit(UserSummaryTuple(users, rows[0]));
      });
  return MR_SUCCESS;
}

int32_t GetUserByLogin(QueryCall& call) {
  return EmitFullUsers(call,
                       From(call.mc.users()).WhereWild("login", call.args[0]).Rows());
}

int32_t GetUserByUid(QueryCall& call) {
  int64_t uid = 0;
  if (int32_t code = RequireInt(call.args[0], &uid); code != MR_SUCCESS) {
    return code;
  }
  return EmitFullUsers(call, From(call.mc.users()).WhereEq("uid", Value(uid)).Rows());
}

int32_t GetUserByName(QueryCall& call) {
  return EmitFullUsers(call, From(call.mc.users())
                                 .WhereWild("first", call.args[0])
                                 .WhereWild("last", call.args[1])
                                 .Rows());
}

int32_t GetUserByClass(QueryCall& call) {
  return EmitFullUsers(call,
                       From(call.mc.users()).WhereWild("mit_year", call.args[0]).Rows());
}

int32_t GetUserByMitId(QueryCall& call) {
  return EmitFullUsers(call,
                       From(call.mc.users()).WhereWild("mit_id", call.args[0]).Rows());
}

// Initializes the non-account columns of a fresh users row.
Row NewUserRow(std::string_view login, int64_t uid, std::string_view shell,
               std::string_view last, std::string_view first, std::string_view middle,
               int64_t status, std::string_view mit_id, std::string_view mit_year) {
  std::string fullname(first);
  if (!middle.empty()) {
    fullname += " ";
    fullname += middle;
  }
  fullname += " ";
  fullname += last;
  return {
      Value(login),   Value(int64_t{0}) /* users_id set by caller */,
      Value(uid),     Value(shell),
      Value(last),    Value(first),
      Value(middle),  Value(status),
      Value(mit_id),  Value(mit_year),
      Value(int64_t{0}) /* modtime */, Value("") /* modby */,
      Value("") /* modwith */, Value(fullname),
      Value("") /* nickname */, Value("") /* home_addr */,
      Value("") /* home_phone */, Value("") /* office_addr */,
      Value("") /* office_phone */, Value("") /* mit_dept */,
      Value("") /* mit_affil */, Value(int64_t{0}) /* fmodtime */,
      Value("") /* fmodby */, Value("") /* fmodwith */,
      Value("NONE") /* potype */, Value(int64_t{0}) /* pop_id */,
      Value(int64_t{0}) /* box_id */, Value(int64_t{0}) /* pmodtime */,
      Value("") /* pmodby */, Value("") /* pmodwith */,
  };
}

int32_t AddUser(QueryCall& call) {
  MoiraContext& mc = call.mc;
  std::string login = call.args[0];
  int64_t uid = 0;
  int64_t status = 0;
  if (int32_t code = RequireInt(call.args[1], &uid); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[6], &status); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireLegalChars(login); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("class", call.args[8])) {
    return MR_BAD_CLASS;
  }
  if (uid == kUniqueUid) {
    if (int32_t code = mc.AllocateId("uid", mc.users(), "uid", &uid); code != MR_SUCCESS) {
      return code;
    }
  }
  if (login == kUniqueLogin) {
    login = "#" + std::to_string(uid);
  }
  if (mc.UserByLogin(login).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  int64_t users_id = 0;
  if (int32_t code = mc.AllocateId("users_id", mc.users(), "users_id", &users_id);
      code != MR_SUCCESS) {
    return code;
  }
  Row row = NewUserRow(login, uid, call.args[2], call.args[3], call.args[4], call.args[5],
                       status, call.args[7], call.args[8]);
  row[mc.users()->ColumnIndex("users_id")] = Value(users_id);
  size_t row_index = mc.users()->Append(std::move(row));
  mc.Stamp(mc.users(), row_index, call.principal, call.client_name);
  mc.Stamp(mc.users(), row_index, call.principal, call.client_name, "f");
  mc.Stamp(mc.users(), row_index, call.principal, call.client_name, "p");
  return MR_SUCCESS;
}

int32_t RegisterUser(QueryCall& call) {
  MoiraContext& mc = call.mc;
  int64_t uid = 0;
  int64_t fstype = 0;
  if (int32_t code = RequireInt(call.args[0], &uid); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[2], &fstype); code != MR_SUCCESS) {
    return code;
  }
  const std::string& login = call.args[1];
  if (int32_t code = RequireLegalChars(login); code != MR_SUCCESS) {
    return code;
  }
  RowRef user = mc.UserByUid(uid);
  if (user.code != MR_SUCCESS) {
    return user.code == MR_USER ? MR_NO_MATCH : user.code;
  }
  Table* users = mc.users();
  if (MoiraContext::IntCell(users, user.row, "status") != kUserNotRegistered) {
    return MR_IN_USE;
  }
  if (mc.UserByLogin(login).code == MR_SUCCESS) {
    return MR_IN_USE;
  }
  if (mc.ListByName(login).code == MR_SUCCESS ||
      mc.FilesysByLabel(login).code == MR_SUCCESS) {
    return MR_IN_USE;
  }
  // Pick resources before mutating anything.
  int64_t po_mach_id = 0;
  size_t po_row = 0;
  if (int32_t code = LeastLoadedPop(mc, &po_mach_id, &po_row); code != MR_SUCCESS) {
    return code;
  }
  size_t phys_row = 0;
  if (int32_t code = LeastLoadedNfsPhys(mc, fstype, &phys_row); code != MR_SUCCESS) {
    return code;
  }
  int64_t def_quota = 0;
  if (int32_t code = mc.GetValue("def_quota", &def_quota); code != MR_SUCCESS) {
    return code;
  }
  int64_t users_id = MoiraContext::IntCell(users, user.row, "users_id");

  // 1. Login name and status 2 (half-registered).
  MoiraContext::SetCell(users, user.row, "login", Value(login));
  MoiraContext::SetCell(users, user.row, "status", Value(int64_t{kUserHalfRegistered}));
  mc.Stamp(users, user.row, call.principal, call.client_name);

  // 2. Pobox of type POP on the least loaded post office.
  MoiraContext::SetCell(users, user.row, "potype", Value("POP"));
  MoiraContext::SetCell(users, user.row, "pop_id", Value(po_mach_id));
  mc.Stamp(users, user.row, call.principal, call.client_name, "p");
  Table* sh = mc.serverhosts();
  MoiraContext::SetCell(sh, po_row, "value1",
                        Value(MoiraContext::IntCell(sh, po_row, "value1") + 1));

  // 3. Group list owned by the user, with a fresh GID, user as sole member.
  int64_t list_id = 0;
  if (int32_t code = mc.AllocateId("list_id", mc.list(), "list_id", &list_id);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t gid = 0;
  if (int32_t code = mc.AllocateId("gid", mc.list(), "gid", &gid); code != MR_SUCCESS) {
    return code;
  }
  size_t list_row = mc.list()->Append({
      Value(login), Value(list_id), Value(int64_t{1}) /* active */,
      Value(int64_t{0}) /* public */, Value(int64_t{0}) /* hidden */,
      Value(int64_t{0}) /* maillist */, Value(int64_t{1}) /* group */, Value(gid),
      Value("user group"), Value("USER"), Value(users_id), Value(int64_t{0}), Value(""),
      Value(""),
  });
  mc.Stamp(mc.list(), list_row, call.principal, call.client_name);
  mc.members()->Append({Value(list_id), Value("USER"), Value(users_id)});

  // 4. Home filesystem on the least loaded server supporting fstype.
  Table* phys = mc.nfsphys();
  int64_t filsys_id = 0;
  if (int32_t code = mc.AllocateId("filsys_id", mc.filesys(), "filsys_id", &filsys_id);
      code != MR_SUCCESS) {
    return code;
  }
  int64_t phys_id = MoiraContext::IntCell(phys, phys_row, "nfsphys_id");
  int64_t fs_mach_id = MoiraContext::IntCell(phys, phys_row, "mach_id");
  std::string server_dir = MoiraContext::StrCell(phys, phys_row, "dir") + "/" + login;
  size_t fs_row = mc.filesys()->Append({
      Value(login), Value(int64_t{0}) /* order */, Value(filsys_id), Value(phys_id),
      Value("NFS"), Value(fs_mach_id), Value(server_dir), Value("/mit/" + login), Value("w"),
      Value("user home directory"), Value(users_id), Value(list_id),
      Value(int64_t{1}) /* createflg */, Value("HOMEDIR"), Value(int64_t{0}), Value(""),
      Value(""),
  });
  mc.Stamp(mc.filesys(), fs_row, call.principal, call.client_name);

  // 5. Quota from def_quota; bump the partition allocation.
  size_t quota_row = mc.nfsquota()->Append({
      Value(users_id), Value(filsys_id), Value(phys_id), Value(def_quota),
      Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{0}),
      Value(""), Value(""),
  });
  mc.Stamp(mc.nfsquota(), quota_row, call.principal, call.client_name);
  MoiraContext::SetCell(phys, phys_row, "allocated",
                        Value(MoiraContext::IntCell(phys, phys_row, "allocated") + def_quota));
  return MR_SUCCESS;
}

int32_t UpdateUser(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  const std::string& newlogin = call.args[1];
  int64_t uid = 0;
  int64_t status = 0;
  if (int32_t code = RequireInt(call.args[2], &uid); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[7], &status); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireLegalChars(newlogin); code != MR_SUCCESS) {
    return code;
  }
  if (!mc.IsLegalType("class", call.args[9])) {
    return MR_BAD_CLASS;
  }
  if (newlogin != call.args[0] && mc.UserByLogin(newlogin).code == MR_SUCCESS) {
    return MR_NOT_UNIQUE;
  }
  Table* users = mc.users();
  MoiraContext::SetCell(users, user.row, "login", Value(newlogin));
  MoiraContext::SetCell(users, user.row, "uid", Value(uid));
  MoiraContext::SetCell(users, user.row, "shell", Value(call.args[3]));
  MoiraContext::SetCell(users, user.row, "last", Value(call.args[4]));
  MoiraContext::SetCell(users, user.row, "first", Value(call.args[5]));
  MoiraContext::SetCell(users, user.row, "middle", Value(call.args[6]));
  MoiraContext::SetCell(users, user.row, "status", Value(status));
  MoiraContext::SetCell(users, user.row, "mit_id", Value(call.args[8]));
  MoiraContext::SetCell(users, user.row, "mit_year", Value(call.args[9]));
  mc.Stamp(users, user.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateUserShell(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  MoiraContext::SetCell(mc.users(), user.row, "shell", Value(call.args[1]));
  mc.Stamp(mc.users(), user.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

int32_t UpdateUserStatus(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  int64_t status = 0;
  if (int32_t code = RequireInt(call.args[1], &status); code != MR_SUCCESS) {
    return code;
  }
  MoiraContext::SetCell(mc.users(), user.row, "status", Value(status));
  mc.Stamp(mc.users(), user.row, call.principal, call.client_name);
  return MR_SUCCESS;
}

// True if the user is referenced anywhere that blocks deletion: list
// membership, quotas, or ownership of an object (as an ACE).
bool UserIsReferenced(MoiraContext& mc, int64_t users_id) {
  // List membership (member_id is indexed, so this is a probe, not a sweep).
  if (From(mc.members())
          .WhereEq("member_type", Value("USER"))
          .WhereEq("member_id", Value(users_id))
          .Any()) {
    return true;
  }
  if (From(mc.nfsquota()).WhereEq("users_id", Value(users_id)).Any()) {
    return true;
  }
  // ACE references: lists, servers, filesys owner, zephyr, hostaccess.
  auto ace_ref = [&](Table* table, const char* type_col_name, const char* id_col_name) {
    return From(table)
        .WhereEq(type_col_name, Value("USER"))
        .WhereEq(id_col_name, Value(users_id))
        .Any();
  };
  if (ace_ref(mc.list(), "acl_type", "acl_id") || ace_ref(mc.servers(), "acl_type", "acl_id") ||
      ace_ref(mc.hostaccess(), "acl_type", "acl_id") ||
      ace_ref(mc.zephyr(), "xmt_type", "xmt_id") || ace_ref(mc.zephyr(), "sub_type", "sub_id") ||
      ace_ref(mc.zephyr(), "iws_type", "iws_id") || ace_ref(mc.zephyr(), "iui_type", "iui_id")) {
    return true;
  }
  return From(mc.filesys()).WhereEq("owner", Value(users_id)).Any();
}

int32_t DeleteUserRow(QueryCall& call, RowRef user) {
  MoiraContext& mc = call.mc;
  Table* users = mc.users();
  if (MoiraContext::IntCell(users, user.row, "status") != kUserNotRegistered) {
    return MR_IN_USE;
  }
  int64_t users_id = MoiraContext::IntCell(users, user.row, "users_id");
  if (UserIsReferenced(mc, users_id)) {
    return MR_IN_USE;
  }
  users->Delete(user.row);
  return MR_SUCCESS;
}

int32_t DeleteUser(QueryCall& call) {
  RowRef user = call.mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  return DeleteUserRow(call, user);
}

int32_t DeleteUserByUid(QueryCall& call) {
  int64_t uid = 0;
  if (int32_t code = RequireInt(call.args[0], &uid); code != MR_SUCCESS) {
    return code;
  }
  RowRef user = call.mc.UserByUid(uid);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  return DeleteUserRow(call, user);
}

// --- finger ---

int32_t GetFingerByLogin(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  const Table* users = mc.users();
  call.emit({MoiraContext::StrCell(users, user.row, "login"),
             MoiraContext::StrCell(users, user.row, "fullname"),
             MoiraContext::StrCell(users, user.row, "nickname"),
             MoiraContext::StrCell(users, user.row, "home_addr"),
             MoiraContext::StrCell(users, user.row, "home_phone"),
             MoiraContext::StrCell(users, user.row, "office_addr"),
             MoiraContext::StrCell(users, user.row, "office_phone"),
             MoiraContext::StrCell(users, user.row, "mit_dept"),
             MoiraContext::StrCell(users, user.row, "mit_affil"),
             IntStr(users, user.row, "fmodtime"),
             MoiraContext::StrCell(users, user.row, "fmodby"),
             MoiraContext::StrCell(users, user.row, "fmodwith")});
  return MR_SUCCESS;
}

int32_t UpdateFingerByLogin(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  Table* users = mc.users();
  const char* columns[] = {"fullname",     "nickname", "home_addr", "home_phone",
                           "office_addr",  "office_phone", "mit_dept", "mit_affil"};
  for (int i = 0; i < 8; ++i) {
    MoiraContext::SetCell(users, user.row, columns[i], Value(call.args[i + 1]));
  }
  mc.Stamp(users, user.row, call.principal, call.client_name, "f");
  return MR_SUCCESS;
}

// --- poboxes ---

int32_t GetPobox(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  const Table* users = mc.users();
  call.emit({MoiraContext::StrCell(users, user.row, "login"),
             MoiraContext::StrCell(users, user.row, "potype"), PoboxBox(mc, user.row),
             IntStr(users, user.row, "pmodtime"),
             MoiraContext::StrCell(users, user.row, "pmodby"),
             MoiraContext::StrCell(users, user.row, "pmodwith")});
  return MR_SUCCESS;
}

int32_t GetAllPoboxes(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const Table* users = mc.users();
  int potype_col = users->ColumnIndex("potype");
  From(users)
      .WhereNe("potype", Value("NONE"))
      .Emit([&](const std::vector<size_t>& rows) {
        call.emit({MoiraContext::StrCell(users, rows[0], "login"),
                   users->Cell(rows[0], potype_col).AsString(), PoboxBox(mc, rows[0])});
      });
  return MR_SUCCESS;
}

int32_t GetPoboxesOfType(QueryCall& call, const char* type) {
  MoiraContext& mc = call.mc;
  const Table* users = mc.users();
  From(users).WhereEq("potype", Value(type)).Emit([&](const std::vector<size_t>& rows) {
    call.emit({MoiraContext::StrCell(users, rows[0], "login"),
               MoiraContext::StrCell(users, rows[0], "potype"), PoboxBox(mc, rows[0])});
  });
  return MR_SUCCESS;
}

int32_t GetPoboxesPop(QueryCall& call) { return GetPoboxesOfType(call, "POP"); }
int32_t GetPoboxesSmtp(QueryCall& call) { return GetPoboxesOfType(call, "SMTP"); }

int32_t SetPobox(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  const std::string& type = call.args[1];
  if (!mc.IsLegalType("pobox", type)) {
    return MR_TYPE;
  }
  Table* users = mc.users();
  if (type == "POP") {
    RowRef mach = mc.MachineByName(call.args[2]);
    if (mach.code != MR_SUCCESS) {
      return mach.code;
    }
    MoiraContext::SetCell(users, user.row, "potype", Value("POP"));
    MoiraContext::SetCell(users, user.row, "pop_id",
                          Value(MoiraContext::IntCell(mc.machine(), mach.row, "mach_id")));
  } else if (type == "SMTP") {
    int64_t box_id = mc.InternString(call.args[2]);
    if (box_id < 0) {
      return MR_NO_ID;
    }
    MoiraContext::SetCell(users, user.row, "potype", Value("SMTP"));
    MoiraContext::SetCell(users, user.row, "box_id", Value(box_id));
  } else {
    MoiraContext::SetCell(users, user.row, "potype", Value("NONE"));
  }
  mc.Stamp(users, user.row, call.principal, call.client_name, "p");
  return MR_SUCCESS;
}

int32_t SetPoboxPop(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  Table* users = mc.users();
  if (MoiraContext::StrCell(users, user.row, "potype") == "POP") {
    return MR_SUCCESS;
  }
  // Restore the previous POP machine assignment if one exists.
  if (MoiraContext::IntCell(users, user.row, "pop_id") == 0) {
    return MR_MACHINE;
  }
  MoiraContext::SetCell(users, user.row, "potype", Value("POP"));
  mc.Stamp(users, user.row, call.principal, call.client_name, "p");
  return MR_SUCCESS;
}

int32_t DeletePobox(QueryCall& call) {
  MoiraContext& mc = call.mc;
  RowRef user = mc.UserByLogin(call.args[0]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  Table* users = mc.users();
  MoiraContext::SetCell(users, user.row, "potype", Value("NONE"));
  mc.Stamp(users, user.row, call.principal, call.client_name, "p");
  return MR_SUCCESS;
}

constexpr const char* kFullUserReturns =
    "login, uid, shell, last, first, mi, state, mitid, class, modtime, modby, modwith";

}  // namespace

void AppendUserQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"get_all_logins", "galo", QueryClass::kRetrieve, 0, true, "",
           "login, uid, shell, last, first, mi", nullptr, GetAllLogins},
          {"get_all_active_logins", "gaal", QueryClass::kRetrieve, 0, true, "",
           "login, uid, shell, last, first, mi", nullptr, GetAllActiveLogins},
          {"get_user_by_login", "gubl", QueryClass::kRetrieve, 1, false, "login",
           kFullUserReturns, SelfIsArg0Login, GetUserByLogin},
          {"get_user_by_uid", "gubu", QueryClass::kRetrieve, 1, false, "uid",
           kFullUserReturns,
           [](MoiraContext&, std::string_view, const std::vector<std::string>&) {
             return true;  // handler rejects rows that are not the caller
           },
           GetUserByUid},
          {"get_user_by_name", "gubn", QueryClass::kRetrieve, 2, false, "first, last",
           kFullUserReturns,
           [](MoiraContext&, std::string_view, const std::vector<std::string>&) {
             return true;
           },
           GetUserByName},
          {"get_user_by_class", "gubc", QueryClass::kRetrieve, 1, false, "class",
           kFullUserReturns, nullptr, GetUserByClass},
          {"get_user_by_mitid", "gubm", QueryClass::kRetrieve, 1, false, "crypt(id)",
           kFullUserReturns, nullptr, GetUserByMitId},
          {"add_user", "ausr", QueryClass::kAppend, 9, false,
           "login, uid, shell, last, first, mi, state, mitid, class", "", nullptr, AddUser},
          {"register_user", "rusr", QueryClass::kAppend, 3, false, "uid, login, fstype", "",
           nullptr, RegisterUser},
          {"update_user", "uusr", QueryClass::kUpdate, 10, false,
           "login, newlogin, uid, shell, last, first, mi, state, mitid, class", "", nullptr,
           UpdateUser},
          {"update_user_shell", "uush", QueryClass::kUpdate, 2, false, "login, shell", "",
           SelfIsArg0Login, UpdateUserShell},
          {"update_user_status", "uust", QueryClass::kUpdate, 2, false, "login, status", "",
           nullptr, UpdateUserStatus},
          {"delete_user", "dusr", QueryClass::kDelete, 1, false, "login", "", nullptr,
           DeleteUser},
          {"delete_user_by_uid", "dubu", QueryClass::kDelete, 1, false, "uid", "", nullptr,
           DeleteUserByUid},
          {"get_finger_by_login", "gfbl", QueryClass::kRetrieve, 1, true, "login",
           "login, fullname, nickname, home_addr, home_phone, office_addr, office_phone, "
           "department, affiliation, modtime, modby, modwith",
           nullptr, GetFingerByLogin},
          {"update_finger_by_login", "ufbl", QueryClass::kUpdate, 9, false,
           "login, fullname, nickname, home_addr, home_phone, office_addr, office_phone, "
           "department, affiliation",
           "", SelfIsArg0Login, UpdateFingerByLogin},
          {"get_pobox", "gpob", QueryClass::kRetrieve, 1, false, "login",
           "login, type, box, modtime, modby, modwith", SelfIsArg0Login, GetPobox},
          {"get_all_poboxes", "gapo", QueryClass::kRetrieve, 0, false, "",
           "login, type, box", nullptr, GetAllPoboxes},
          {"get_poboxes_pop", "gpop", QueryClass::kRetrieve, 0, false, "",
           "login, type, machine", nullptr, GetPoboxesPop},
          {"get_poboxes_smtp", "gpos", QueryClass::kRetrieve, 0, false, "",
           "login, type, box", nullptr, GetPoboxesSmtp},
          {"set_pobox", "spob", QueryClass::kUpdate, 3, false, "login, type, box", "",
           SelfIsArg0Login, SetPobox},
          {"set_pobox_pop", "spop", QueryClass::kUpdate, 1, false, "login", "",
           SelfIsArg0Login, SetPoboxPop},
          {"delete_pobox", "dpob", QueryClass::kDelete, 1, false, "login", "",
           SelfIsArg0Login, DeletePobox},
      });
}

}  // namespace moira
