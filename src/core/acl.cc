#include "src/core/acl.h"

#include "src/db/exec.h"

namespace moira {

bool IsUserInList(MoiraContext& mc, int64_t users_id, int64_t list_id, int depth) {
  if (depth <= 0) {
    return false;
  }
  Table* members = mc.members();
  int type_col = members->ColumnIndex("member_type");
  int id_col = members->ColumnIndex("member_id");
  for (size_t row : From(members).WhereEq("list_id", Value(list_id)).Rows()) {
    const std::string& type = members->Cell(row, type_col).AsString();
    int64_t member_id = members->Cell(row, id_col).AsInt();
    if (type == "USER" && member_id == users_id) {
      return true;
    }
    if (type == "LIST" && IsUserInList(mc, users_id, member_id, depth - 1)) {
      return true;
    }
  }
  return false;
}

bool UserMatchesAce(MoiraContext& mc, int64_t users_id, std::string_view ace_type,
                    int64_t ace_id) {
  if (users_id < 0) {
    return false;
  }
  if (ace_type == "USER") {
    return ace_id == users_id;
  }
  if (ace_type == "LIST") {
    return IsUserInList(mc, users_id, ace_id);
  }
  return false;
}

int64_t PrincipalUserId(MoiraContext& mc, std::string_view principal) {
  if (principal.empty()) {
    return -1;
  }
  RowRef ref = mc.UserByLogin(principal);
  if (ref.code != MR_SUCCESS) {
    return -1;
  }
  return MoiraContext::IntCell(mc.users(), ref.row, "users_id");
}

bool PrincipalOnCapability(MoiraContext& mc, std::string_view principal,
                           std::string_view capability) {
  int64_t users_id = PrincipalUserId(mc, principal);
  if (users_id < 0) {
    return false;
  }
  Table* capacls = mc.capacls();
  int list_col = capacls->ColumnIndex("list_id");
  for (size_t row : From(capacls).WhereEq("capability", Value(capability)).Rows()) {
    if (IsUserInList(mc, users_id, capacls->Cell(row, list_col).AsInt())) {
      return true;
    }
  }
  return false;
}

}  // namespace moira
