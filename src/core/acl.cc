#include "src/core/acl.h"

#include <algorithm>

#include "src/db/exec.h"

namespace moira {

bool IsUserInList(MoiraContext& mc, int64_t users_id, int64_t list_id) {
  // The user is in the list iff the list appears in the user's transitive
  // containing-lists closure (user in L directly, or in L' with L' under L).
  const std::vector<int64_t>& closure = mc.ContainingListClosure("USER", users_id);
  return std::binary_search(closure.begin(), closure.end(), list_id);
}

bool UserMatchesAce(MoiraContext& mc, int64_t users_id, std::string_view ace_type,
                    int64_t ace_id) {
  if (users_id < 0) {
    return false;
  }
  if (ace_type == "USER") {
    return ace_id == users_id;
  }
  if (ace_type == "LIST") {
    return IsUserInList(mc, users_id, ace_id);
  }
  return false;
}

int64_t PrincipalUserId(MoiraContext& mc, std::string_view principal) {
  if (principal.empty()) {
    return -1;
  }
  RowRef ref = mc.UserByLogin(principal);
  if (ref.code != MR_SUCCESS) {
    return -1;
  }
  return MoiraContext::IntCell(mc.users(), ref.row, "users_id");
}

bool PrincipalOnCapability(MoiraContext& mc, std::string_view principal,
                           std::string_view capability) {
  int64_t users_id = PrincipalUserId(mc, principal);
  if (users_id < 0) {
    return false;
  }
  Table* capacls = mc.capacls();
  int list_col = capacls->ColumnIndex("list_id");
  for (size_t row : From(capacls).WhereEq("capability", Value(capability)).Rows()) {
    if (IsUserInList(mc, users_id, capacls->Cell(row, list_col).AsInt())) {
      return true;
    }
  }
  return false;
}

}  // namespace moira
