// The predefined-query registry (paper section 7).
//
// All access to the database is through a limited set of predefined, named
// queries in four classes: retrieve, update, delete, and append.  Each query
// has a long name, a four-character short name (its CAPACLS tag), an argument
// signature, an access rule, and a handler.  The registry is the single
// dispatch point used by the Moira server, the DCM's direct "glue" library,
// and the applications.
#ifndef MOIRA_SRC_CORE_REGISTRY_H_
#define MOIRA_SRC_CORE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/context.h"

namespace moira {

enum class QueryClass { kRetrieve, kAppend, kUpdate, kDelete };

std::string_view QueryClassName(QueryClass qclass);

// One returned tuple: the fields, as strings, in the documented order.
using Tuple = std::vector<std::string>;
using TupleSink = std::function<void(Tuple)>;

// Everything a query handler sees for one call.
struct QueryCall {
  MoiraContext& mc;
  std::string_view principal;    // authenticated identity ("" if none)
  std::string_view client_name;  // application name, recorded in modwith
  const std::vector<std::string>& args;
  const TupleSink& emit;
  // True when the caller is "root" or on the query's CAPACLS list.  Several
  // queries behave differently for privileged callers (e.g. wildcards in
  // get_list_info, full retrieval in get_user_by_login).
  bool privileged = false;
};

using QueryHandler = int32_t (*)(QueryCall&);

// Per-query self-access rule: may this (non-privileged) principal run the
// query with these args?  E.g. a user may update their own shell.
using SelfAccessHook = bool (*)(MoiraContext&, std::string_view principal,
                                const std::vector<std::string>& args);

struct QueryDef {
  const char* name;       // long name, e.g. "get_user_by_login"
  const char* shortname;  // 4-character tag, e.g. "gubl"
  QueryClass qclass;
  int argc;               // exact argument count; -1 = variable
  bool world_ok;          // safe with no access control at all
  const char* argspec;    // human-readable, for _help
  const char* retspec;    // human-readable, for _help
  SelfAccessHook self_access;  // optional
  QueryHandler handler;
};

class QueryRegistry {
 public:
  // The process-wide registry of every predefined query.
  static const QueryRegistry& Instance();

  // Finds a query by long or short name; nullptr if unknown.
  const QueryDef* Find(std::string_view name) const;

  const std::vector<QueryDef>& All() const { return defs_; }

  // Appends one CAPACLS row per non-world query pointing at `acl_list`
  // ("usually the full name of a query" as capability, short name as tag).
  void SeedCapacls(MoiraContext& mc, std::string_view acl_list_name) const;

  // Access check only — the "Access" major request (paper section 5.3).
  int32_t CheckAccess(MoiraContext& mc, std::string_view principal,
                      std::string_view query, const std::vector<std::string>& args) const;

  // Checks access, validates arguments, and runs the query.  Retrieval
  // queries that match nothing return MR_NO_MATCH.
  int32_t Execute(MoiraContext& mc, std::string_view principal,
                  std::string_view client_name, std::string_view query,
                  const std::vector<std::string>& args, const TupleSink& emit) const;

 private:
  QueryRegistry();

  // Returns MR_SUCCESS and sets *privileged, or an error.
  int32_t Authorize(MoiraContext& mc, const QueryDef& def, std::string_view principal,
                    const std::vector<std::string>& args, bool* privileged) const;

  std::vector<QueryDef> defs_;
};

// Module registration hooks (each queries_*.cc contributes its queries).
void AppendUserQueries(std::vector<QueryDef>* defs);
void AppendMachineQueries(std::vector<QueryDef>* defs);
void AppendListQueries(std::vector<QueryDef>* defs);
void AppendServerQueries(std::vector<QueryDef>* defs);
void AppendFilesysQueries(std::vector<QueryDef>* defs);
void AppendMiscQueries(std::vector<QueryDef>* defs);
void AppendQuotaQueries(std::vector<QueryDef>* defs);

}  // namespace moira

#endif  // MOIRA_SRC_CORE_REGISTRY_H_
