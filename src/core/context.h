// Shared state and helpers for the Moira query layer.
//
// MoiraContext wraps the database and clock and provides the operations every
// predefined query needs: exact-one name resolution, id allocation from the
// values relation, string interning, alias type checking, and modtime
// stamping.  All query handlers (src/core/queries_*.cc) and the DCM
// generators run against this context.
#ifndef MOIRA_SRC_CORE_CONTEXT_H_
#define MOIRA_SRC_CORE_CONTEXT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/comerr/moira_errors.h"
#include "src/common/stat_counter.h"
#include "src/core/schema.h"
#include "src/db/database.h"

namespace moira {

// Result of resolving a name that must match exactly one row.
struct RowRef {
  int32_t code = MR_SUCCESS;  // MR_SUCCESS, or the query-specific error
  size_t row = 0;             // valid only when code == MR_SUCCESS
};

// Counters for the memoized list-closure cache (ContainingListClosure).
// Atomic because they are bumped under the closure mutex but read without it
// (access_path_stats aggregation while parallel readers run).
struct ListClosureStats {
  StatCounter hits = 0;           // lookups answered from a memoized closure
  StatCounter misses = 0;         // lookups that computed a fresh closure
  StatCounter invalidations = 0;  // wholesale flushes after a members write
};

class MoiraContext {
 public:
  explicit MoiraContext(Database* db) : db_(db) {}

  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  UnixTime Now() const { return db_->clock().Now(); }

  Table* users() { return db_->GetTable(kUsersTable); }
  Table* machine() { return db_->GetTable(kMachineTable); }
  Table* cluster() { return db_->GetTable(kClusterTable); }
  Table* mcmap() { return db_->GetTable(kMcmapTable); }
  Table* svc() { return db_->GetTable(kSvcTable); }
  Table* list() { return db_->GetTable(kListTable); }
  Table* members() { return db_->GetTable(kMembersTable); }
  Table* servers() { return db_->GetTable(kServersTable); }
  Table* serverhosts() { return db_->GetTable(kServerHostsTable); }
  Table* filesys() { return db_->GetTable(kFilesysTable); }
  Table* nfsphys() { return db_->GetTable(kNfsPhysTable); }
  Table* nfsquota() { return db_->GetTable(kNfsQuotaTable); }
  Table* quotausage() { return db_->GetTable(kQuotaUsageTable); }
  Table* quotarollup() { return db_->GetTable(kQuotaRollupTable); }
  Table* zephyr() { return db_->GetTable(kZephyrTable); }
  Table* hostaccess() { return db_->GetTable(kHostAccessTable); }
  Table* strings() { return db_->GetTable(kStringsTable); }
  Table* services() { return db_->GetTable(kServicesTable); }
  Table* printcap() { return db_->GetTable(kPrintcapTable); }
  Table* capacls() { return db_->GetTable(kCapAclsTable); }
  Table* alias() { return db_->GetTable(kAliasTable); }
  Table* values() { return db_->GetTable(kValuesTable); }

  // --- Exact-one resolution (queries require "must match exactly one") ---

  // Matches `pattern` (no wildcards honoured) against `column` of `table`;
  // returns `missing_code` if zero matches, MR_NOT_UNIQUE if several.
  RowRef ExactOne(Table* table, const char* column, const Value& key,
                  int32_t missing_code) const;

  RowRef UserByLogin(std::string_view login);
  RowRef UserByUid(int64_t uid);
  RowRef MachineByName(std::string_view name);  // canonicalizes to uppercase
  RowRef ClusterByName(std::string_view name);
  RowRef ListByName(std::string_view name);
  RowRef ListById(int64_t list_id);
  RowRef FilesysByLabel(std::string_view label);
  RowRef ServiceByName(std::string_view name);  // servers relation, uppercased

  // --- Id allocation via the values relation hints (paper section 6) ---

  // Allocates the next unused id of the named counter, checking uniqueness
  // against `table.column`.  Returns MR_NO_ID on exhaustion.
  int32_t AllocateId(const char* counter, Table* unique_in, const char* column,
                     int64_t* out);

  // Reads / writes a value from the values relation.  Missing: MR_NO_MATCH.
  int32_t GetValue(std::string_view name, int64_t* out) const;
  int32_t SetValue(std::string_view name, int64_t value);

  // --- Strings relation interning (paper section 6, STRINGS) ---

  // Returns the id for `s`, interning if necessary.
  int64_t InternString(std::string_view s);
  // Returns the id only if already interned; nullopt otherwise.
  std::optional<int64_t> LookupString(std::string_view s) const;
  // Returns the string for an id ("" if unknown).
  std::string StringById(int64_t string_id) const;

  // --- Alias type checking (paper sections 5.2.1 and 6, ALIAS) ---

  // True if (name, "TYPE", value) is present (value compared exactly).
  bool IsLegalType(std::string_view type_name, std::string_view value) const;

  // --- Transitive list membership (memoized closure cache) ---

  // Sorted list_ids of every list the (type, id) entity — type USER, LIST,
  // or STRING — belongs to directly or through sub-list containment, to a
  // fixed point (membership cycles are handled by the visited set, not a
  // depth cap).  Closures are memoized per entity and the whole cache is
  // keyed on the members-table write version, so any members mutation
  // lazily invalidates everything on the next lookup; the returned
  // reference is only valid until then.  Backs IsUserInList (src/core/acl.cc),
  // recursive get_lists_of_member, and RUSER/RLIST ACE expansion.
  //
  // Safe to call from concurrent read-only queries: lookups and cache fills
  // serialize on an internal mutex, and the invalidating version can only
  // advance on the serialized mutation path, so a returned reference stays
  // valid for the remainder of the read batch (std::map inserts do not move
  // other nodes).
  const std::vector<int64_t>& ContainingListClosure(std::string_view type, int64_t id);

  const ListClosureStats& closure_stats() const { return closure_stats_; }

  // --- ACE resolution ---

  // Validates an ace (type in USER/LIST/NONE, name resolvable) and returns
  // its id (users_id, list_id, or 0).  MR_ACE on failure.
  int32_t ResolveAce(std::string_view ace_type, std::string_view ace_name, int64_t* ace_id);

  // Renders an ace id back to its name ("NONE" for type NONE).
  std::string AceName(std::string_view ace_type, int64_t ace_id);

  // --- modtime stamping ---

  // Sets <prefix>modtime/<prefix>modby/<prefix>modwith on a row.  Prefix ""
  // is the main triple; "f" the finger triple; "p" the pobox triple.
  void Stamp(Table* table, size_t row, std::string_view who, std::string_view with,
             const char* prefix = "");

  // --- Cell convenience ---

  static int64_t IntCell(const Table* table, size_t row, const char* column);
  static const std::string& StrCell(const Table* table, size_t row, const char* column);
  static void SetCell(Table* table, size_t row, const char* column, Value v);
  // DCM-internal variant: does not count in TBLSTATS (see Table::UpdateNoStats).
  static void SetCellInternal(Table* table, size_t row, const char* column, Value v);

 private:
  // The members-table write version the cached closures were computed at:
  // the mutation counters (monotonic; every members write goes through
  // Append/Update/Delete, never the no-stats DCM path).
  int64_t MembersVersion() const;

  Database* db_;
  // Guards closures_ and closure_version_ against concurrent read-only
  // queries resolving ACLs in parallel (see DESIGN.md "Sharding &
  // concurrency model").
  std::mutex closure_mu_;
  std::map<std::pair<std::string, int64_t>, std::vector<int64_t>> closures_;
  int64_t closure_version_ = -1;
  ListClosureStats closure_stats_;
};

}  // namespace moira

#endif  // MOIRA_SRC_CORE_CONTEXT_H_
