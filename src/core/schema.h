// The Moira database schema: every relation of paper section 6.
//
// Table and column names follow the paper exactly.  Finger and pobox fields
// live in the users relation (as in the paper's USERS description); TBLSTATS
// is maintained by the engine and materialized on demand.
#ifndef MOIRA_SRC_CORE_SCHEMA_H_
#define MOIRA_SRC_CORE_SCHEMA_H_

#include "src/db/database.h"

namespace moira {

// Relation names.
inline constexpr char kUsersTable[] = "users";
inline constexpr char kMachineTable[] = "machine";
inline constexpr char kClusterTable[] = "cluster";
inline constexpr char kMcmapTable[] = "mcmap";
inline constexpr char kSvcTable[] = "svc";
inline constexpr char kListTable[] = "list";
inline constexpr char kMembersTable[] = "members";
inline constexpr char kServersTable[] = "servers";
inline constexpr char kServerHostsTable[] = "serverhosts";
inline constexpr char kFilesysTable[] = "filesys";
inline constexpr char kNfsPhysTable[] = "nfsphys";
inline constexpr char kNfsQuotaTable[] = "nfsquota";
inline constexpr char kQuotaUsageTable[] = "quotausage";
inline constexpr char kQuotaRollupTable[] = "quotarollup";
inline constexpr char kZephyrTable[] = "zephyr";
inline constexpr char kHostAccessTable[] = "hostaccess";
inline constexpr char kStringsTable[] = "strings";
inline constexpr char kServicesTable[] = "services";
inline constexpr char kPrintcapTable[] = "printcap";
inline constexpr char kCapAclsTable[] = "capacls";
inline constexpr char kAliasTable[] = "alias";
inline constexpr char kValuesTable[] = "values";

// User account statuses (paper section 6, USERS.status).
enum UserStatus : int {
  kUserNotRegistered = 0,   // not registered, but registerable
  kUserActive = 1,          // active account
  kUserHalfRegistered = 2,  // half-registered
  kUserDeleted = 3,         // marked for deletion
  kUserNotRegisterable = 4,
};

// NFSPHYS.status bit assignments (paper section 6).
enum NfsPhysStatus : int {
  kFsStudent = 1 << 0,
  kFsFaculty = 1 << 1,
  kFsStaff = 1 << 2,
  kFsMisc = 1 << 3,
};

// NFSQUOTA.qflags bits (quota engine, DESIGN.md "Quota engine").
enum QuotaFlags : int {
  kQuotaGraceExpired = 1 << 0,  // soft limit exceeded past the grace window
  kQuotaHardNoticed = 1 << 1,   // a hard-limit Zephyr notice is outstanding
};

// QUOTAROLLUP.kind values: which axis the aggregate row sums over.
inline constexpr char kRollupUser[] = "USER";
inline constexpr char kRollupFilesys[] = "FILESYS";

// Sentinels used by add_user / add_list (paper section 7, <moira.h>).
inline constexpr int64_t kUniqueUid = -1;
inline constexpr int64_t kUniqueGid = -1;
inline constexpr char kUniqueLogin[] = "#UNIQUE";

// Shard layout for the hot relations.  users and members are the two
// million-row tables (ROADMAP "millions of users"); each is hash-partitioned
// over the id column its dominant probes use — users over users_id (pobox,
// quota, and membership joins arrive by id), members over list_id (every
// membership retrieval and the DCM list expansions arrive by list).  1 means
// flat; results are byte-identical for any value (see table.h).
struct SchemaOptions {
  size_t users_shards = 4;
  size_t members_shards = 4;
};

// Creates every Moira relation (with indexes) in `db`.  `db` must be empty.
void CreateMoiraSchema(Database* db, const SchemaOptions& options = SchemaOptions());

// Seeds the alias type-checking entries, the values relation hints, the
// "dbadmin" bootstrap list, and capacls rows pointing every privileged query
// at dbadmin (paper sections 6 ALIAS/VALUES/CAPACLS).
void SeedMoiraDefaults(Database* db);

}  // namespace moira

#endif  // MOIRA_SRC_CORE_SCHEMA_H_
