#include "src/core/schema.h"

#include <cassert>

namespace moira {
namespace {

constexpr ColumnType kInt = ColumnType::kInt;
constexpr ColumnType kStr = ColumnType::kString;

void MakeTable(Database* db, const char* name, std::vector<ColumnDef> columns,
               std::vector<const char*> indexes,
               std::vector<const char*> folded_indexes = {},
               const char* partition_column = nullptr, size_t shards = 1) {
  TableSchema schema{name, std::move(columns)};
  Table* table = (partition_column != nullptr && shards > 1)
                     ? db->CreateShardedTable(std::move(schema), partition_column, shards)
                     : db->CreateTable(std::move(schema));
  assert(table != nullptr);
  for (const char* column : indexes) {
    table->CreateIndex(column);
  }
  for (const char* column : folded_indexes) {
    table->CreateFoldedIndex(column);
  }
}

}  // namespace

void CreateMoiraSchema(Database* db, const SchemaOptions& options) {
  // USERS: account, finger, and pobox information (paper section 6).
  MakeTable(db, kUsersTable,
            {
                {"login", kStr},      {"users_id", kInt},    {"uid", kInt},
                {"shell", kStr},      {"last", kStr},        {"first", kStr},
                {"middle", kStr},     {"status", kInt},      {"mit_id", kStr},
                {"mit_year", kStr},   {"modtime", kInt},     {"modby", kStr},
                {"modwith", kStr},    {"fullname", kStr},    {"nickname", kStr},
                {"home_addr", kStr},  {"home_phone", kStr},  {"office_addr", kStr},
                {"office_phone", kStr}, {"mit_dept", kStr},  {"mit_affil", kStr},
                {"fmodtime", kInt},   {"fmodby", kStr},      {"fmodwith", kStr},
                {"potype", kStr},     {"pop_id", kInt},      {"box_id", kInt},
                {"pmodtime", kInt},   {"pmodby", kStr},      {"pmodwith", kStr},
            },
            // status backs the active-user sweeps (`status >= 1`), which the
            // planner runs as an ordered-index range scan.
            {"login", "users_id", "uid", "mit_id", "status"},
            // Folded-case indexes back the case-insensitive name retrievals
            // (and prefix-prune their wildcard forms).
            {"login", "last"},
            // Hot relation: hash-partitioned over users_id (SchemaOptions).
            "users_id", options.users_shards);

  MakeTable(db, kMachineTable,
            {
                {"name", kStr},
                {"mach_id", kInt},
                {"type", kStr},
                {"modtime", kInt},
                {"modby", kStr},
                {"modwith", kStr},
            },
            {"name", "mach_id"});

  MakeTable(db, kClusterTable,
            {
                {"name", kStr},
                {"clu_id", kInt},
                {"desc", kStr},
                {"location", kStr},
                {"modtime", kInt},
                {"modby", kStr},
                {"modwith", kStr},
            },
            {"name", "clu_id"});

  MakeTable(db, kMcmapTable,
            {
                {"mach_id", kInt},
                {"clu_id", kInt},
            },
            {"mach_id", "clu_id"});

  MakeTable(db, kSvcTable,
            {
                {"clu_id", kInt},
                {"serv_label", kStr},
                {"serv_cluster", kStr},
            },
            {"clu_id"});

  MakeTable(db, kListTable,
            {
                {"name", kStr},    {"list_id", kInt},  {"active", kInt},
                {"public", kInt},  {"hidden", kInt},   {"maillist", kInt},
                {"grouplist", kInt}, {"gid", kInt},    {"desc", kStr},
                {"acl_type", kStr}, {"acl_id", kInt},  {"modtime", kInt},
                {"modby", kStr},   {"modwith", kStr},
            },
            {"name", "list_id"}, {"name"});

  MakeTable(db, kMembersTable,
            {
                {"list_id", kInt},
                {"member_type", kStr},
                {"member_id", kInt},
            },
            {"list_id", "member_id"}, {},
            // Hot relation: hash-partitioned over list_id (SchemaOptions).
            "list_id", options.members_shards);

  // last_gen_seq: the journal sequence covered by the service's last
  // successful generation pass — the low-water mark for incremental
  // (delta-based) regeneration (DESIGN.md "Incremental propagation").
  MakeTable(db, kServersTable,
            {
                {"name", kStr},       {"update_int", kInt}, {"target_file", kStr},
                {"script", kStr},     {"dfgen", kInt},      {"dfcheck", kInt},
                {"type", kStr},       {"enable", kInt},     {"inprogress", kInt},
                {"harderror", kInt},  {"errmsg", kStr},     {"acl_type", kStr},
                {"acl_id", kInt},     {"modtime", kInt},    {"modby", kStr},
                {"modwith", kStr},    {"last_gen_seq", kInt},
            },
            {"name"});

  // consec_soft / breaker / breaker_until / breaker_opens persist the DCM's
  // per-host circuit breaker (DESIGN.md resilience layer): consecutive soft
  // failures, breaker state (0 closed / 1 open / 2 half-open), the cool-down
  // expiry, and how many times the host has been quarantined.
  MakeTable(db, kServerHostsTable,
            {
                {"service", kStr},    {"mach_id", kInt},   {"enable", kInt},
                {"override", kInt},   {"success", kInt},   {"inprogress", kInt},
                {"hosterror", kInt},  {"hosterrmsg", kStr}, {"ltt", kInt},
                {"lts", kInt},        {"consec_soft", kInt}, {"breaker", kInt},
                {"breaker_until", kInt}, {"breaker_opens", kInt},
                {"value1", kInt},     {"value2", kInt},
                {"value3", kStr},     {"modtime", kInt},   {"modby", kStr},
                {"modwith", kStr},
            },
            {"service", "mach_id"});

  MakeTable(db, kFilesysTable,
            {
                {"label", kStr},      {"order_no", kInt},  {"filsys_id", kInt},
                {"phys_id", kInt},    {"type", kStr},      {"mach_id", kInt},
                {"name", kStr},       {"mount", kStr},     {"access", kStr},
                {"comments", kStr},   {"owner", kInt},     {"owners", kInt},
                {"createflg", kInt},  {"lockertype", kStr}, {"modtime", kInt},
                {"modby", kStr},      {"modwith", kStr},
            },
            {"label", "filsys_id", "mach_id"}, {"label"});

  MakeTable(db, kNfsPhysTable,
            {
                {"nfsphys_id", kInt}, {"mach_id", kInt},  {"dir", kStr},
                {"device", kStr},     {"status", kInt},   {"allocated", kInt},
                {"size", kInt},       {"modtime", kInt},  {"modby", kStr},
                {"modwith", kStr},
            },
            {"nfsphys_id", "mach_id"});

  // quota is the hard limit shipped to fileservers; soft is the advisory
  // limit backing the grace timer (0 means "same as quota"), sexceeded is the
  // clock time the soft limit was first exceeded (0 when under), and qflags
  // carries the QuotaFlags sweep bits (DESIGN.md "Quota engine").
  MakeTable(db, kNfsQuotaTable,
            {
                {"users_id", kInt},
                {"filsys_id", kInt},
                {"phys_id", kInt},
                {"quota", kInt},
                {"soft", kInt},
                {"sexceeded", kInt},
                {"qflags", kInt},
                {"modtime", kInt},
                {"modby", kStr},
                {"modwith", kStr},
            },
            {"users_id", "filsys_id", "phys_id"});

  // QUOTAUSAGE: live per-user/per-partition usage accounting fed by the
  // fileserver usage-report path.  reports counts applied delta reports.
  MakeTable(db, kQuotaUsageTable,
            {
                {"users_id", kInt},
                {"filsys_id", kInt},
                {"phys_id", kInt},
                {"usage", kInt},
                {"reports", kInt},
                {"modtime", kInt},
            },
            {"users_id", "filsys_id", "phys_id"});

  // QUOTAROLLUP: indexed aggregates over quotausage, maintained exactly at
  // ingest time — get_quota_status answers from these instead of scanning.
  MakeTable(db, kQuotaRollupTable,
            {
                {"kind", kStr},
                {"id", kInt},
                {"usage", kInt},
                {"reports", kInt},
                {"modtime", kInt},
            },
            {"id"});

  MakeTable(db, kZephyrTable,
            {
                {"class", kStr},     {"xmt_type", kStr}, {"xmt_id", kInt},
                {"sub_type", kStr},  {"sub_id", kInt},   {"iws_type", kStr},
                {"iws_id", kInt},    {"iui_type", kStr}, {"iui_id", kInt},
                {"modtime", kInt},   {"modby", kStr},    {"modwith", kStr},
            },
            {"class"});

  MakeTable(db, kHostAccessTable,
            {
                {"mach_id", kInt},
                {"acl_type", kStr},
                {"acl_id", kInt},
                {"modtime", kInt},
                {"modby", kStr},
                {"modwith", kStr},
            },
            {"mach_id"});

  MakeTable(db, kStringsTable,
            {
                {"string_id", kInt},
                {"string", kStr},
            },
            {"string_id", "string"});

  MakeTable(db, kServicesTable,
            {
                {"name", kStr},
                {"protocol", kStr},
                {"port", kInt},
                {"desc", kStr},
                {"modtime", kInt},
                {"modby", kStr},
                {"modwith", kStr},
            },
            {"name"});

  MakeTable(db, kPrintcapTable,
            {
                {"name", kStr},
                {"mach_id", kInt},
                {"dir", kStr},
                {"rp", kStr},
                {"comments", kStr},
                {"modtime", kInt},
                {"modby", kStr},
                {"modwith", kStr},
            },
            {"name"});

  MakeTable(db, kCapAclsTable,
            {
                {"capability", kStr},
                {"tag", kStr},
                {"list_id", kInt},
            },
            {"capability"});

  MakeTable(db, kAliasTable,
            {
                {"name", kStr},
                {"type", kStr},
                {"trans", kStr},
            },
            {"name"});

  MakeTable(db, kValuesTable,
            {
                {"name", kStr},
                {"value", kInt},
            },
            {"name"});
}

void SeedMoiraDefaults(Database* db) {
  Table* alias = db->GetTable(kAliasTable);
  auto add_alias = [&](const char* name, const char* type, const char* trans) {
    alias->Append({name, type, trans});
  };
  // Legal alias types themselves (paper section 6, ALIAS).
  for (const char* t : {"TYPE", "PRINTER", "SERVICE", "FILESYS", "TYPEDATA"}) {
    add_alias("aliastype", "TYPE", t);
  }
  // Type-checked field vocabularies.
  for (const char* c : {"1989", "1990", "1991", "1992", "G", "STAFF", "FACULTY", "OTHER"}) {
    add_alias("class", "TYPE", c);
  }
  for (const char* t : {"RT", "VAX"}) {
    add_alias("mach_type", "TYPE", t);
  }
  for (const char* t : {"UNIQUE", "REPLICAT"}) {
    add_alias("service-type", "TYPE", t);
  }
  for (const char* t : {"NFS", "RVD", "ERR"}) {
    add_alias("filesys", "TYPE", t);
  }
  for (const char* t : {"HOMEDIR", "PROJECT", "COURSE", "SYSTEM", "OTHER"}) {
    add_alias("lockertype", "TYPE", t);
  }
  for (const char* t : {"POP", "SMTP", "NONE"}) {
    add_alias("pobox", "TYPE", t);
  }
  for (const char* t : {"TCP", "UDP"}) {
    add_alias("protocol", "TYPE", t);
  }
  for (const char* t : {"USER", "LIST", "NONE"}) {
    add_alias("ace_type", "TYPE", t);
  }
  for (const char* t : {"USER", "LIST", "STRING"}) {
    add_alias("member", "TYPE", t);
  }
  for (const char* t : {"usrlib", "syslib", "zephyr", "lpr"}) {
    add_alias("slabel", "TYPE", t);
  }
  // Type translations (paper: "data stored with an SMTP pobox is of type
  // string").
  add_alias("POP", "TYPEDATA", "machine");
  add_alias("SMTP", "TYPEDATA", "string");
  add_alias("NONE", "TYPEDATA", "none");

  // VALUES: id allocation hints and state variables (paper section 6).
  Table* values = db->GetTable(kValuesTable);
  auto add_value = [&](const char* name, int64_t v) { values->Append({name, v}); };
  add_value("users_id", 100);
  add_value("uid", 6500);
  add_value("list_id", 100);
  add_value("gid", 10900);
  add_value("mach_id", 100);
  add_value("clu_id", 100);
  add_value("filsys_id", 100);
  add_value("nfsphys_id", 100);
  add_value("string_id", 100);
  add_value("def_quota", 300);
  add_value("dcm_enable", 1);
  // Soft-quota grace window in seconds (7 days, MooseFS-style default).
  add_value("quota_grace", 604800);

  // Bootstrap administrator list; capacls rows are appended per-query by the
  // registry when it is attached to a database (see QueryRegistry::Bind).
  Table* list = db->GetTable(kListTable);
  list->Append({
      "dbadmin", int64_t{1}, int64_t{1}, int64_t{0}, int64_t{1}, int64_t{0},
      int64_t{0}, int64_t{-1}, "Moira database administrators", "LIST", int64_t{1},
      int64_t{0}, "root", "setup",
  });
}

}  // namespace moira
