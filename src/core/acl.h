// Access control (paper section 5.5).
//
// The right to view or modify data is determined by access control lists
// residing with the data: each query name appears as a capability in the
// CAPACLS relation pointing at a list; ACEs on individual objects (lists,
// services, filesystems...) grant per-object rights.  List membership is
// resolved recursively through sub-lists.
#ifndef MOIRA_SRC_CORE_ACL_H_
#define MOIRA_SRC_CORE_ACL_H_

#include <cstdint>
#include <string_view>

#include "src/core/context.h"

namespace moira {

// True if the user is a direct or recursive member of the list.  Runs on the
// memoized list-closure cache (MoiraContext::ContainingListClosure), so
// repeated ACL checks against an unchanged members relation are a binary
// search rather than a membership walk; cycles are handled by the closure's
// visited set rather than a depth cap.
bool IsUserInList(MoiraContext& mc, int64_t users_id, int64_t list_id);

// True if the user satisfies an ACE of the given type/id.  Type NONE never
// matches (an empty ACE grants nobody).
bool UserMatchesAce(MoiraContext& mc, int64_t users_id, std::string_view ace_type,
                    int64_t ace_id);

// Resolves a principal name to its users_id; -1 if no such user.  The
// distinguished principal "root" is not a user row.
int64_t PrincipalUserId(MoiraContext& mc, std::string_view principal);

// True if the principal is on the CAPACLS list registered for `capability`.
bool PrincipalOnCapability(MoiraContext& mc, std::string_view principal,
                           std::string_view capability);

}  // namespace moira

#endif  // MOIRA_SRC_CORE_ACL_H_
