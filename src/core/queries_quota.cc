// Quota-engine queries (DESIGN.md "Quota engine"): live usage accounting on
// top of the static nfsquota limits.
//
// report_quota_usage ingests per-uid/per-partition usage deltas shipped back
// from the fileservers into quotausage, maintaining the quotarollup
// aggregates exactly (so get_quota_status answers from indexed probes, never
// scans — the EOS SpaceQuota shape).  set_quota_limits manages soft/hard
// limits; process_quota_sweep is the journalled MooseFS-style
// check_all_quotas pass: it flags grace-expired soft exceeders and emits one
// deduplicated hard-limit notice tuple per crossing (src/quota turns those
// into Zephyr sends).  All mutations run through the normal journalled query
// path, so replication, checkpoints, and incremental DCM see them for free.
#include <algorithm>
#include <string>
#include <vector>

#include "src/core/queries_common.h"

namespace moira {
namespace {

// Mirrors gen_nfs.cc: flattens a partition directory ("/u1") into the
// file-name stem ("u1") the fileservers key their reports by.
std::string QuotaPartitionStem(std::string_view dir) {
  std::string out;
  for (char c : dir) {
    if (c == '/') {
      if (!out.empty()) {
        out += '_';
      }
    } else {
      out += c;
    }
  }
  return out.empty() ? "root" : out;
}

int64_t GetValueOr(MoiraContext& mc, const std::string& name, int64_t fallback) {
  int64_t v = fallback;
  return mc.GetValue(name, &v) == MR_SUCCESS ? v : fallback;
}

// SetValue refuses to create; the quota counters are created on first touch.
void SetOrAddValue(MoiraContext& mc, const std::string& name, int64_t v) {
  if (mc.SetValue(name, v) != MR_SUCCESS) {
    mc.values()->Append({Value(name), Value(v)});
  }
}

void BumpCounter(MoiraContext& mc, const std::string& name, int64_t delta) {
  if (delta != 0) {
    SetOrAddValue(mc, name, GetValueOr(mc, name, 0) + delta);
  }
}

// Adjusts (creating on first touch) the rollup aggregate for (kind, id).
// Usage is clamped at zero: a rollup can never go negative even if repairs
// or cascaded deletes race with in-flight reports.
void BumpRollup(MoiraContext& mc, const char* kind, int64_t id, int64_t usage_delta,
                int64_t reports_delta) {
  if (usage_delta == 0 && reports_delta == 0) {
    return;
  }
  Table* rollup = mc.quotarollup();
  std::vector<size_t> rows =
      From(rollup).WhereEq("id", Value(id)).WhereEq("kind", Value(kind)).Rows();
  size_t row = rows.empty()
                   ? rollup->Append({Value(kind), Value(id), Value(int64_t{0}),
                                     Value(int64_t{0}), Value(int64_t{0})})
                   : rows[0];
  MoiraContext::SetCell(
      rollup, row, "usage",
      Value(std::max<int64_t>(0, MoiraContext::IntCell(rollup, row, "usage") + usage_delta)));
  MoiraContext::SetCell(
      rollup, row, "reports",
      Value(std::max<int64_t>(0,
                              MoiraContext::IntCell(rollup, row, "reports") + reports_delta)));
  MoiraContext::SetCell(rollup, row, "modtime", Value(mc.Now()));
}

// soft == 0 means "soft limit equals the hard quota" (schema.cc).
int64_t EffectiveSoft(const Table* quota, size_t row) {
  int64_t soft = MoiraContext::IntCell(quota, row, "soft");
  return soft > 0 ? soft : MoiraContext::IntCell(quota, row, "quota");
}

// Re-evaluates the soft-exceeded timestamp and sweep flags on a quota row
// after its usage or limits changed.  Crossing above soft stamps the grace
// clock; dropping to or below soft clears the stamp and both sweep bits
// (so the next hard crossing notices again).  Writes are guarded: an
// unchanged row stays untouched (nfsquota is an NFS-relevant table, and a
// spurious write would mark the service dirty every ingest pass).
//
// quota_grace_pending counts rows whose grace window is running but not yet
// flagged — the only sweep transition driven purely by time, so the sweep's
// idle-skip (src/quota/quota.cc) may only engage when it is zero.  The
// counter lives in the values relation and is maintained exclusively from
// journalled queries, so replicas agree on it.
void ReconcileSoftState(MoiraContext& mc, size_t qrow, int64_t used) {
  Table* quota = mc.nfsquota();
  int64_t sexceeded = MoiraContext::IntCell(quota, qrow, "sexceeded");
  int64_t qflags = MoiraContext::IntCell(quota, qrow, "qflags");
  if (used > EffectiveSoft(quota, qrow)) {
    if (sexceeded == 0) {
      MoiraContext::SetCell(quota, qrow, "sexceeded", Value(mc.Now()));
      BumpCounter(mc, "quota_grace_pending", 1);
    }
  } else {
    if (sexceeded != 0) {
      MoiraContext::SetCell(quota, qrow, "sexceeded", Value(int64_t{0}));
      if (!(qflags & kQuotaGraceExpired)) {
        BumpCounter(mc, "quota_grace_pending", -1);
      }
    }
    if (qflags != 0) {
      MoiraContext::SetCell(quota, qrow, "qflags", Value(int64_t{0}));
    }
  }
}

// report_quota_usage machine partition uid delta seq: applies one usage
// delta shipped back from a fileserver.  Reports are sequenced per machine;
// a stale or duplicate sequence returns MR_EXISTS without touching anything
// (at-least-once transport stays exactly-once in the accounting), and a
// rejected report is never journalled, so replicas replay only the applied
// ones.
int32_t ReportQuotaUsage(QueryCall& call) {
  MoiraContext& mc = call.mc;
  int64_t uid = 0;
  int64_t delta = 0;
  int64_t seq = 0;
  if (int32_t code = RequireInt(call.args[2], &uid); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[3], &delta); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[4], &seq); code != MR_SUCCESS) {
    return code;
  }
  RowRef mach = mc.MachineByName(call.args[0]);
  if (mach.code != MR_SUCCESS) {
    return mach.code;
  }
  const std::string& machine = MoiraContext::StrCell(mc.machine(), mach.row, "name");
  int64_t mach_id = MoiraContext::IntCell(mc.machine(), mach.row, "mach_id");
  const std::string seq_key = "quota_rseq_" + machine;
  if (seq <= GetValueOr(mc, seq_key, 0)) {
    return MR_EXISTS;
  }
  RowRef user = mc.UserByUid(uid);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
  // Resolve the report's partition stem against the machine's partitions
  // (indexed mach_id probe; a server has a handful of partitions).
  Table* phys = mc.nfsphys();
  int64_t phys_id = 0;
  for (size_t prow : From(phys).WhereEq("mach_id", Value(mach_id)).Rows()) {
    if (QuotaPartitionStem(MoiraContext::StrCell(phys, prow, "dir")) == call.args[1]) {
      phys_id = MoiraContext::IntCell(phys, prow, "nfsphys_id");
      break;
    }
  }
  if (phys_id == 0) {
    return MR_NFSPHYS;
  }
  Table* quota = mc.nfsquota();
  std::vector<size_t> qrows = From(quota)
                                  .WhereEq("users_id", Value(users_id))
                                  .WhereEq("phys_id", Value(phys_id))
                                  .Rows();
  if (qrows.empty()) {
    return MR_NO_QUOTA;
  }
  size_t qrow = qrows[0];
  int64_t filsys_id = MoiraContext::IntCell(quota, qrow, "filsys_id");

  // Upsert the live usage row; the rollups absorb the clamped delta.
  Table* usage = mc.quotausage();
  std::vector<size_t> urows = From(usage)
                                  .WhereEq("users_id", Value(users_id))
                                  .WhereEq("phys_id", Value(phys_id))
                                  .Rows();
  int64_t old_usage = 0;
  size_t urow;
  if (urows.empty()) {
    urow = usage->Append({Value(users_id), Value(filsys_id), Value(phys_id),
                          Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{0})});
  } else {
    urow = urows[0];
    old_usage = MoiraContext::IntCell(usage, urow, "usage");
  }
  int64_t new_usage = std::max<int64_t>(0, old_usage + delta);
  MoiraContext::SetCell(usage, urow, "usage", Value(new_usage));
  MoiraContext::SetCell(usage, urow, "reports",
                        Value(MoiraContext::IntCell(usage, urow, "reports") + 1));
  MoiraContext::SetCell(usage, urow, "modtime", Value(mc.Now()));
  BumpRollup(mc, kRollupUser, users_id, new_usage - old_usage, 1);
  BumpRollup(mc, kRollupFilesys, filsys_id, new_usage - old_usage, 1);
  ReconcileSoftState(mc, qrow, new_usage);
  SetOrAddValue(mc, seq_key, seq);
  return MR_SUCCESS;
}

// set_quota_limits filesystem login soft hard: updates both limits at once
// (soft 0 = "same as hard"), keeps the partition allocation in step with the
// hard limit, and re-evaluates the grace state against the live usage.
int32_t SetQuotaLimits(QueryCall& call) {
  MoiraContext& mc = call.mc;
  int64_t soft = 0;
  int64_t hard = 0;
  if (int32_t code = RequireInt(call.args[2], &soft); code != MR_SUCCESS) {
    return code;
  }
  if (int32_t code = RequireInt(call.args[3], &hard); code != MR_SUCCESS) {
    return code;
  }
  if (hard <= 0 || soft < 0 || soft > hard) {
    return MR_QUOTA;
  }
  RowRef fs = mc.FilesysByLabel(call.args[0]);
  if (fs.code != MR_SUCCESS) {
    return fs.code;
  }
  RowRef user = mc.UserByLogin(call.args[1]);
  if (user.code != MR_SUCCESS) {
    return user.code;
  }
  int64_t filsys_id = MoiraContext::IntCell(mc.filesys(), fs.row, "filsys_id");
  int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
  Table* quota = mc.nfsquota();
  std::vector<size_t> qrows = From(quota)
                                  .WhereEq("filsys_id", Value(filsys_id))
                                  .WhereEq("users_id", Value(users_id))
                                  .Rows();
  if (qrows.empty()) {
    return MR_NO_QUOTA;
  }
  size_t qrow = qrows[0];
  int64_t old_hard = MoiraContext::IntCell(quota, qrow, "quota");
  MoiraContext::SetCell(quota, qrow, "quota", Value(hard));
  MoiraContext::SetCell(quota, qrow, "soft", Value(soft));
  mc.Stamp(quota, qrow, call.principal, call.client_name);
  // Keep nfsphys.allocated tracking the hard limits (as update_nfs_quota).
  int64_t phys_id = MoiraContext::IntCell(quota, qrow, "phys_id");
  RowRef phys = mc.ExactOne(mc.nfsphys(), "nfsphys_id", Value(phys_id), MR_NFSPHYS);
  if (phys.code == MR_SUCCESS && hard != old_hard) {
    MoiraContext::SetCell(
        mc.nfsphys(), phys.row, "allocated",
        Value(MoiraContext::IntCell(mc.nfsphys(), phys.row, "allocated") + hard - old_hard));
  }
  int64_t used = 0;
  for (size_t urow : From(mc.quotausage())
                         .WhereEq("users_id", Value(users_id))
                         .WhereEq("phys_id", Value(phys_id))
                         .Rows()) {
    used = MoiraContext::IntCell(mc.quotausage(), urow, "usage");
    break;
  }
  ReconcileSoftState(mc, qrow, used);
  return MR_SUCCESS;
}

struct QuotaAggregates {
  int64_t usage = 0;
  int64_t reports = 0;
  int64_t hard = 0;
  int64_t soft = 0;
  int64_t entries = 0;
  int64_t soft_exceeded = 0;
  int64_t grace_flagged = 0;
  int64_t hard_noticed = 0;
};

void AccumulateRollups(MoiraContext& mc, const char* kind, std::vector<Value> ids,
                       QuotaAggregates* agg) {
  Table* rollup = mc.quotarollup();
  From(rollup)
      .WhereIn("id", std::move(ids))
      .WhereEq("kind", Value(kind))
      .Emit([&](const std::vector<size_t>& rows) {
        agg->usage += MoiraContext::IntCell(rollup, rows[0], "usage");
        agg->reports += MoiraContext::IntCell(rollup, rows[0], "reports");
      });
}

void AccumulateLimits(MoiraContext& mc, const std::vector<size_t>& qrows,
                      QuotaAggregates* agg) {
  const Table* quota = mc.nfsquota();
  for (size_t row : qrows) {
    agg->hard += MoiraContext::IntCell(quota, row, "quota");
    agg->soft += EffectiveSoft(quota, row);
    agg->entries += 1;
    if (MoiraContext::IntCell(quota, row, "sexceeded") != 0) {
      agg->soft_exceeded += 1;
    }
    int64_t flags = MoiraContext::IntCell(quota, row, "qflags");
    if (flags & kQuotaGraceExpired) {
      agg->grace_flagged += 1;
    }
    if (flags & kQuotaHardNoticed) {
      agg->hard_noticed += 1;
    }
  }
}

// get_quota_status kind name: one aggregate tuple for a USER, LIST (direct
// user members, expanded at query time so membership churn never leaves a
// stale group rollup), or FILESYS.  Usage comes from the quotarollup
// aggregates, limits from indexed nfsquota probes — never a scan.
int32_t GetQuotaStatus(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const std::string& kind = call.args[0];
  QuotaAggregates agg;
  if (kind == kRollupUser) {
    RowRef user = mc.UserByLogin(call.args[1]);
    if (user.code != MR_SUCCESS) {
      return user.code;
    }
    int64_t users_id = MoiraContext::IntCell(mc.users(), user.row, "users_id");
    AccumulateRollups(mc, kRollupUser, {Value(users_id)}, &agg);
    AccumulateLimits(mc, From(mc.nfsquota()).WhereEq("users_id", Value(users_id)).Rows(),
                     &agg);
  } else if (kind == "LIST") {
    RowRef list = mc.ListByName(call.args[1]);
    if (list.code != MR_SUCCESS) {
      return list.code;
    }
    int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
    Table* members = mc.members();
    std::vector<Value> ids;
    From(members)
        .WhereEq("list_id", Value(list_id))
        .WhereEq("member_type", Value("USER"))
        .Emit([&](const std::vector<size_t>& rows) {
          ids.push_back(Value(MoiraContext::IntCell(members, rows[0], "member_id")));
        });
    if (!ids.empty()) {
      AccumulateRollups(mc, kRollupUser, ids, &agg);
      AccumulateLimits(mc, From(mc.nfsquota()).WhereIn("users_id", std::move(ids)).Rows(),
                       &agg);
    }
  } else if (kind == kRollupFilesys) {
    RowRef fs = mc.FilesysByLabel(call.args[1]);
    if (fs.code != MR_SUCCESS) {
      return fs.code;
    }
    int64_t filsys_id = MoiraContext::IntCell(mc.filesys(), fs.row, "filsys_id");
    AccumulateRollups(mc, kRollupFilesys, {Value(filsys_id)}, &agg);
    AccumulateLimits(mc, From(mc.nfsquota()).WhereEq("filsys_id", Value(filsys_id)).Rows(),
                     &agg);
  } else {
    return MR_TYPE;
  }
  call.emit({kind, call.args[1], std::to_string(agg.usage), std::to_string(agg.reports),
             std::to_string(agg.hard), std::to_string(agg.soft),
             std::to_string(agg.entries), std::to_string(agg.soft_exceeded),
             std::to_string(agg.grace_flagged), std::to_string(agg.hard_noticed)});
  return MR_SUCCESS;
}

// get_quota_sweep_stats: the sweep's lifetime counters (values relation),
// for operators — privileged via CAPACLS like every non-world query.
int32_t GetQuotaSweepStats(QueryCall& call) {
  MoiraContext& mc = call.mc;
  static constexpr const char* kCounters[] = {
      "quota_sweep_runs",      "quota_sweep_rows",    "quota_sweep_flagged",
      "quota_sweep_notices",   "quota_sweep_deduped", "quota_sweep_cleared",
      "quota_sweep_last",
  };
  for (const char* name : kCounters) {
    call.emit({name, std::to_string(GetValueOr(mc, name, 0))});
  }
  return MR_SUCCESS;
}

// process_quota_sweep: the journalled check_all_quotas pass.  Walks the live
// usage rows, stamps/flags grace expiry, and emits one tuple per *new*
// hard-limit crossing (login, filesys, usage, quota) — the kQuotaHardNoticed
// bit dedups repeats until usage drops back below soft.  Replicas replay the
// journalled sweep with the clock pinned to the entry's timestamp
// (replica.cc), so the resulting flag state is byte-identical.
int32_t ProcessQuotaSweep(QueryCall& call) {
  MoiraContext& mc = call.mc;
  const int64_t now = mc.Now();
  const int64_t grace = GetValueOr(mc, "quota_grace", 604800);
  Table* usage = mc.quotausage();
  Table* quota = mc.nfsquota();
  int64_t visited = 0;
  int64_t flagged = 0;
  int64_t notices = 0;
  int64_t deduped = 0;
  int64_t cleared = 0;
  for (size_t urow : From(usage).Rows()) {
    ++visited;
    int64_t users_id = MoiraContext::IntCell(usage, urow, "users_id");
    int64_t phys_id = MoiraContext::IntCell(usage, urow, "phys_id");
    int64_t used = MoiraContext::IntCell(usage, urow, "usage");
    std::vector<size_t> qrows = From(quota)
                                    .WhereEq("users_id", Value(users_id))
                                    .WhereEq("phys_id", Value(phys_id))
                                    .Rows();
    if (qrows.empty()) {
      continue;  // dangling usage; dbck's quota pass repairs these
    }
    size_t qrow = qrows[0];
    int64_t hard = MoiraContext::IntCell(quota, qrow, "quota");
    int64_t eff_soft = EffectiveSoft(quota, qrow);
    int64_t sexceeded = MoiraContext::IntCell(quota, qrow, "sexceeded");
    int64_t qflags = MoiraContext::IntCell(quota, qrow, "qflags");
    if (used <= eff_soft) {
      // Ingest clears these on the way down; self-heal if a repair or
      // direct edit left them stale.
      if (sexceeded != 0 || qflags != 0) {
        if (sexceeded != 0) {
          MoiraContext::SetCell(quota, qrow, "sexceeded", Value(int64_t{0}));
          if (!(qflags & kQuotaGraceExpired)) {
            BumpCounter(mc, "quota_grace_pending", -1);
          }
        }
        if (qflags != 0) {
          MoiraContext::SetCell(quota, qrow, "qflags", Value(int64_t{0}));
        }
        ++cleared;
      }
      continue;
    }
    if (sexceeded == 0) {
      // Ingest normally stamps the crossing; self-heal and let the grace
      // window run from this sweep.
      MoiraContext::SetCell(quota, qrow, "sexceeded", Value(now));
      sexceeded = now;
      BumpCounter(mc, "quota_grace_pending", 1);
    }
    if (now - sexceeded >= grace && !(qflags & kQuotaGraceExpired)) {
      qflags |= kQuotaGraceExpired;
      MoiraContext::SetCell(quota, qrow, "qflags", Value(qflags));
      ++flagged;
      BumpCounter(mc, "quota_grace_pending", -1);
    }
    if (used > hard) {
      if (!(qflags & kQuotaHardNoticed)) {
        qflags |= kQuotaHardNoticed;
        MoiraContext::SetCell(quota, qrow, "qflags", Value(qflags));
        ++notices;
        RowRef user = mc.ExactOne(mc.users(), "users_id", Value(users_id), MR_USER);
        RowRef fs = mc.ExactOne(mc.filesys(), "filsys_id",
                                Value(MoiraContext::IntCell(quota, qrow, "filsys_id")),
                                MR_FILESYS);
        call.emit({user.code == MR_SUCCESS
                       ? MoiraContext::StrCell(mc.users(), user.row, "login")
                       : "???",
                   fs.code == MR_SUCCESS
                       ? MoiraContext::StrCell(mc.filesys(), fs.row, "label")
                       : "???",
                   std::to_string(used), std::to_string(hard)});
      } else {
        ++deduped;
      }
    }
  }
  BumpCounter(mc, "quota_sweep_runs", 1);
  BumpCounter(mc, "quota_sweep_rows", visited);
  BumpCounter(mc, "quota_sweep_flagged", flagged);
  BumpCounter(mc, "quota_sweep_notices", notices);
  BumpCounter(mc, "quota_sweep_deduped", deduped);
  BumpCounter(mc, "quota_sweep_cleared", cleared);
  SetOrAddValue(mc, "quota_sweep_last", now);
  return MR_SUCCESS;
}

}  // namespace

void RemoveQuotaUsage(MoiraContext& mc, int64_t users_id, int64_t phys_id) {
  Table* usage = mc.quotausage();
  for (size_t row : From(usage)
                        .WhereEq("users_id", Value(users_id))
                        .WhereEq("phys_id", Value(phys_id))
                        .Rows()) {
    int64_t used = MoiraContext::IntCell(usage, row, "usage");
    int64_t reports = MoiraContext::IntCell(usage, row, "reports");
    BumpRollup(mc, kRollupUser, users_id, -used, -reports);
    BumpRollup(mc, kRollupFilesys, MoiraContext::IntCell(usage, row, "filsys_id"), -used,
               -reports);
    usage->Delete(row);
  }
}

void AppendQuotaQueries(std::vector<QueryDef>* defs) {
  defs->insert(
      defs->end(),
      {
          {"report_quota_usage", "rqus", QueryClass::kUpdate, 5, false,
           "machine, partition, uid, delta, seq", "", nullptr, ReportQuotaUsage},
          {"set_quota_limits", "sqlm", QueryClass::kUpdate, 4, false,
           "filesystem, login, soft, hard", "", nullptr, SetQuotaLimits},
          {"get_quota_status", "gqst", QueryClass::kRetrieve, 2, false, "kind, name",
           "kind, name, usage, reports, quota, soft, entries, soft_exceeded, "
           "grace_flagged, hard_noticed",
           [](MoiraContext&, std::string_view principal,
              const std::vector<std::string>& args) {
             return args.size() == 2 && args[0] == "USER" && args[1] == principal;
           },
           GetQuotaStatus},
          {"get_quota_sweep_stats", "gqss", QueryClass::kRetrieve, 0, false, "",
           "name, value", nullptr, GetQuotaSweepStats},
          {"process_quota_sweep", "pqsw", QueryClass::kUpdate, 0, false, "",
           "login, filesys, usage, quota", nullptr, ProcessQuotaSweep},
      });
}

}  // namespace moira
