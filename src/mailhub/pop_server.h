// Post office (POP) substrate (paper sections 5.8.2 and 6): the machines
// that hold users' mailboxes.  POBOX.DB locates each user's box; the inc /
// movemail clients resolve it via Hesiod and fetch mail from the named
// server.  Completes the mail path: mailhub aliases -> login@PO.LOCAL ->
// the post office -> the workstation.
#ifndef MOIRA_SRC_MAILHUB_POP_SERVER_H_
#define MOIRA_SRC_MAILHUB_POP_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/hesiod/resolver.h"

namespace moira {

// One post office machine holding mailboxes keyed by login.
class PopServerSim {
 public:
  explicit PopServerSim(std::string machine_name) : name_(std::move(machine_name)) {}

  const std::string& name() const { return name_; }

  void Deposit(std::string_view login, std::string_view message);

  // Retrieves and removes all waiting mail for `login` (what inc does).
  std::vector<std::string> Retrieve(std::string_view login);

  size_t waiting(std::string_view login) const;
  size_t box_count() const { return boxes_.size(); }

 private:
  std::string name_;
  std::map<std::string, std::vector<std::string>, std::less<>> boxes_;
};

// A directory of post offices by canonical machine name.
class PopDirectory {
 public:
  void Register(PopServerSim* server) { servers_[server->name()] = server; }
  PopServerSim* Find(std::string_view name) const {
    auto it = servers_.find(name);
    return it != servers_.end() ? it->second : nullptr;
  }

  // Routes a final delivery address "login@<SHORT>.LOCAL" onto the matching
  // post office ("<SHORT>" is the machine's first hostname label).  Returns
  // false if no such post office is registered.
  bool DeliverLocal(std::string_view address, std::string_view message) const;

 private:
  std::map<std::string, PopServerSim*, std::less<>> servers_;
};

// The inc client: finds the user's post office via <login>.pobox in Hesiod
// ("POP <machine> <login>") and fetches their mail.  Returns MR_SUCCESS and
// fills `messages` (possibly empty), or MR_NO_POBOX / MR_MACHINE.
int32_t IncFetchMail(const HesiodResolver& resolver, const PopDirectory& pops,
                     std::string_view login, std::vector<std::string>* messages);

}  // namespace moira

#endif  // MOIRA_SRC_MAILHUB_POP_SERVER_H_
