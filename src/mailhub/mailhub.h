// Mail hub substrate (paper section 5.8.2): the consumer of the
// /usr/lib/aliases file Moira propagates.
//
// The paper notes the aliases file "is not automatically installed on the
// mailhub because the mail spool must be disabled during the switchover" —
// so the DCM stages it, and InstallStagedAliases() models the operator's
// switchover.  Routing resolves aliases transitively, as sendmail does:
// mailing-list names expand through sub-lists down to pobox targets
// (login@PO.LOCAL) and external addresses.
#ifndef MOIRA_SRC_MAILHUB_MAILHUB_H_
#define MOIRA_SRC_MAILHUB_MAILHUB_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/update/sim_host.h"

namespace moira {

class MailhubSim {
 public:
  explicit MailhubSim(SimHost* host) : host_(host) {}

  // The operator's switchover: disable the spool, move the staged file onto
  // /usr/lib/aliases, re-enable.  Returns the number of aliases loaded, or
  // -1 if no staged file exists.
  int InstallStagedAliases(
      const std::string& staged_path = "/usr/lib/moira.staged/aliases");

  size_t alias_count() const { return aliases_.size(); }

  // Resolves a recipient to final delivery addresses: alias entries expand
  // transitively (with cycle protection); anything without an alias entry is
  // final.  A bare name with no alias resolves to nothing (unknown user).
  std::vector<std::string> Route(std::string_view recipient) const;

  // Delivers a message to every final address; returns how many mailboxes
  // received it (0 = bounced).
  int Deliver(std::string_view recipient, std::string_view message);

  // Messages delivered to a final address.
  const std::vector<std::string>& Mailbox(std::string_view address) const;

 private:
  SimHost* host_;
  std::map<std::string, std::vector<std::string>, std::less<>> aliases_;
  std::map<std::string, std::vector<std::string>, std::less<>> mailboxes_;
};

}  // namespace moira

#endif  // MOIRA_SRC_MAILHUB_MAILHUB_H_
