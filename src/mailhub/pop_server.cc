#include "src/mailhub/pop_server.h"

#include "src/comerr/moira_errors.h"
#include "src/common/strutil.h"

namespace moira {

void PopServerSim::Deposit(std::string_view login, std::string_view message) {
  boxes_[std::string(login)].emplace_back(message);
}

std::vector<std::string> PopServerSim::Retrieve(std::string_view login) {
  auto it = boxes_.find(login);
  if (it == boxes_.end()) {
    return {};
  }
  std::vector<std::string> out = std::move(it->second);
  boxes_.erase(it);
  return out;
}

size_t PopServerSim::waiting(std::string_view login) const {
  auto it = boxes_.find(login);
  return it != boxes_.end() ? it->second.size() : 0;
}

bool PopDirectory::DeliverLocal(std::string_view address, std::string_view message) const {
  size_t at = address.find('@');
  if (at == std::string_view::npos) {
    return false;
  }
  std::string_view login = address.substr(0, at);
  std::string_view host = address.substr(at + 1);
  if (!host.ends_with(".LOCAL")) {
    return false;
  }
  std::string_view short_name = host.substr(0, host.size() - 6);
  // Match the short name against the registered machines' first labels.
  for (const auto& [machine, server] : servers_) {
    std::string_view label(machine);
    size_t dot = label.find('.');
    if (dot != std::string_view::npos) {
      label = label.substr(0, dot);
    }
    if (EqualsIgnoreCase(label, short_name)) {
      server->Deposit(login, message);
      return true;
    }
  }
  return false;
}

int32_t IncFetchMail(const HesiodResolver& resolver, const PopDirectory& pops,
                     std::string_view login, std::vector<std::string>* messages) {
  std::vector<std::string> answers;
  if (resolver.Resolve(login, "pobox", &answers) != HesiodRcode::kNoError ||
      answers.empty()) {
    return MR_NO_POBOX;
  }
  // "POP ATHENA-PO-2.MIT.EDU babette"
  std::vector<std::string> fields = Split(answers[0], ' ');
  if (fields.size() != 3 || fields[0] != "POP") {
    return MR_NO_POBOX;
  }
  PopServerSim* server = pops.Find(fields[1]);
  if (server == nullptr) {
    return MR_MACHINE;
  }
  *messages = server->Retrieve(fields[2]);
  return MR_SUCCESS;
}

}  // namespace moira
