#include "src/mailhub/mailhub.h"

#include <set>

#include "src/common/strutil.h"

namespace moira {

int MailhubSim::InstallStagedAliases(const std::string& staged_path) {
  const std::string* staged = host_->ReadFile(staged_path);
  if (staged == nullptr) {
    return -1;
  }
  // The switchover: the staged file becomes the live aliases file.
  host_->WriteFileDirect("/usr/lib/aliases", *staged);
  aliases_.clear();
  size_t pos = 0;
  const std::string& contents = *staged;
  while (pos <= contents.size()) {
    size_t eol = contents.find('\n', pos);
    std::string_view line = eol == std::string::npos
                                ? std::string_view(contents).substr(pos)
                                : std::string_view(contents).substr(pos, eol - pos);
    pos = eol == std::string::npos ? contents.size() + 1 : eol + 1;
    line = TrimWhitespace(line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;  // sendmail ignores malformed lines rather than failing
    }
    std::string name(TrimWhitespace(line.substr(0, colon)));
    std::vector<std::string> targets;
    for (const std::string& part : Split(std::string(line.substr(colon + 1)), ',')) {
      std::string_view target = TrimWhitespace(part);
      if (!target.empty()) {
        targets.emplace_back(target);
      }
    }
    aliases_[name] = std::move(targets);
  }
  return static_cast<int>(aliases_.size());
}

std::vector<std::string> MailhubSim::Route(std::string_view recipient) const {
  std::vector<std::string> finals;
  std::set<std::string> seen;
  std::vector<std::string> frontier{std::string(recipient)};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.back());
    frontier.pop_back();
    if (!seen.insert(current).second) {
      continue;  // alias cycle: each node expands once
    }
    auto it = aliases_.find(current);
    if (it != aliases_.end()) {
      for (const std::string& target : it->second) {
        frontier.push_back(target);
      }
      continue;
    }
    // No alias entry: final iff it routes somewhere concrete (an address
    // with a host part); a bare local name with no alias is unknown.
    if (current.find('@') != std::string::npos) {
      finals.push_back(std::move(current));
    }
  }
  return finals;
}

int MailhubSim::Deliver(std::string_view recipient, std::string_view message) {
  std::vector<std::string> targets = Route(recipient);
  for (const std::string& address : targets) {
    mailboxes_[address].emplace_back(message);
  }
  return static_cast<int>(targets.size());
}

const std::vector<std::string>& MailhubSim::Mailbox(std::string_view address) const {
  static const std::vector<std::string> kEmpty;
  auto it = mailboxes_.find(address);
  return it != mailboxes_.end() ? it->second : kEmpty;
}

}  // namespace moira
