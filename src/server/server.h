// The Moira server (paper section 5.4).
//
// A single-process server holding the one persistent database backend (the
// athenareg predecessor paid an Ingres-backend startup per client connection;
// Moira pays it once at daemon startup — bench_connection_startup measures
// the difference).  All remote communication goes through the wire protocol
// of section 5.3; access control and the per-connection access cache of
// section 5.5 live here.
#ifndef MOIRA_SRC_SERVER_SERVER_H_
#define MOIRA_SRC_SERVER_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/hash_table.h"
#include "src/common/stat_counter.h"
#include "src/common/worker_pool.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/protocol/wire.h"
#include "src/server/journal.h"

namespace moira {

struct ServerOptions {
  // Per-connection (principal, query, args) -> access result cache (paper
  // section 5.5 anticipates "some form of access caching ... for performance
  // reasons"); invalidated whenever the database changes.
  bool enable_access_cache = true;
  // Simulated per-request cost of spawning a DBMS backend per connection, in
  // synthetic work iterations; 0 for the persistent-backend design.  Used by
  // bench_connection_startup to model athenareg.
  int simulated_backend_spawn_cost = 0;
  // When set, OnMessageBatch executes runs of independent read-only queries
  // on this pool (see DESIGN.md "Sharding & concurrency model"); mutations
  // and special requests stay serialized on the transport thread.  Null keeps
  // every request on the sequential path.
  WorkerPool* read_pool = nullptr;
  // Data directory holding the changelog segments and `checkpoint.<seq>`
  // directories (DESIGN.md "Checkpoint & changelog lifecycle").  When set,
  // kReplSnapshot streams the latest on-disk checkpoint instead of dumping
  // the live tables, so replica bootstrap costs one file read rather than a
  // full-table scan under the write lock.  The server does NOT attach the
  // journal itself — the operator wires recovery (RecoverServerState) and the
  // checkpoint cron; this option only tells the snapshot path where to look.
  std::string data_dir;

  // --- Quorum-acknowledged writes (DESIGN.md "Replication layer") ----------
  // Acks needed (including the primary's own durable append) before a
  // mutation is acknowledged to the client.  0 = automatic majority,
  // ceil(cluster_size / 2); with no quorum peers installed the gate is a
  // no-op, so single-server deployments are unaffected.
  int write_quorum = 0;
  // Total voting members the majority is computed over (self + push peers +
  // any members currently unreachable, e.g. a deposed primary).  0 = push
  // peers + 1.  A promoted replica sets this so the old primary still counts
  // toward the denominator.
  int cluster_size = 0;
  // Bounded wait: push sweeps over unacked peers before giving up.  Each
  // sweep re-ships the window a peer is missing, so this also bounds the
  // catch-up work a slow peer can demand on the ack path.
  int quorum_attempts = 3;
  // Degraded-mode policy when quorum stays unreachable: false = refuse the
  // ack (client sees MR_QUORUM_TIMEOUT; the write is journalled locally and
  // may still commit — replaying its tag resolves the ambiguity), true =
  // acknowledge locally and fire the quorum alarm (availability over
  // durability; such writes can be lost to failover).
  bool quorum_ack_local = false;
  // Applied idempotency tags remembered for replay dedup (FIFO eviction);
  // 0 disables tag recording.
  size_t idempotency_window = 4096;
};

// One push target of the quorum gate: ships journal lines primary -> replica
// synchronously.  Implemented over the wire by the replication layer
// (src/repl); the server only sees this interface so it never depends on the
// client library.
class QuorumPeer {
 public:
  virtual ~QuorumPeer() = default;
  virtual const std::string& name() const = 0;
  // Ships epoch-stamped journal lines.  (prev_seq, prev_epoch) identify the
  // entry just before the window in the pusher's log (0 = start of history /
  // unknown), so the receiver can detect a diverged suffix instead of
  // silently keeping it.  On contact sets *applied_seq to the replica's
  // applied position and *peer_epoch to its epoch floor, returning MR_SUCCESS
  // (applied), MR_REPL_BEHIND (window does not extend the replica's prefix),
  // or MR_REPL_EPOCH (this primary is fenced).  Transport failures return
  // MR_NOT_CONNECTED/MR_ABORTED.
  virtual int32_t Push(uint64_t epoch, uint64_t prev_seq, uint64_t prev_epoch,
                       const std::vector<std::string>& lines,
                       uint64_t* applied_seq, uint64_t* peer_epoch) = 0;
};

class MoiraServer final : public MessageHandler {
 public:
  MoiraServer(MoiraContext* mc, KerberosRealm* realm, ServerOptions options = {});

  // MessageHandler:
  std::string OnMessage(uint64_t conn_id, std::string_view payload) override;
  // Partitions the round into maximal runs of registry-resolvable retrieve
  // queries, executed concurrently on options_.read_pool under a shared lock,
  // with everything else (mutations, auth, replication, server-state queries)
  // acting as a barrier executed serially under an exclusive lock.  Without a
  // pool this is exactly the sequential OnMessage loop.
  void OnMessageBatch(std::vector<BatchItem>* batch) override;
  void OnConnect(uint64_t conn_id, std::string peer) override;
  void OnDisconnect(uint64_t conn_id) override;

  // Hook invoked by a successful Trigger_DCM request.
  void set_dcm_trigger(std::function<void()> trigger) { dcm_trigger_ = std::move(trigger); }

  Journal& journal() { return journal_; }

  // Installs the quorum push targets (non-owning).  While any peers are set,
  // every mutation is acknowledged only after ServerOptions::write_quorum
  // members (counting this server) have durably applied it.
  void SetQuorumPeers(std::vector<QuorumPeer*> peers);

  // Called when quorum is unreachable and the degraded policy acks locally
  // (the "alarm" of ack-local-with-alarm).
  void set_quorum_alarm(std::function<void(const std::string&)> alarm) {
    quorum_alarm_ = std::move(alarm);
  }

  // A fenced primary has observed a newer epoch (a successor was elected);
  // it refuses every further mutation and quorum push with MR_REPL_EPOCH.
  bool fenced() const { return fenced_; }
  void Fence(uint64_t newer_epoch);
  // Re-arms a fenced server when its owning ReplicaServer is promoted again
  // at a newer epoch (the only legitimate path back to writability).
  void UnfenceAt(uint64_t epoch) {
    journal_.set_epoch(epoch);
    fenced_ = false;
  }

  // Access check on behalf of an embedding ReplicaServer, which intercepts
  // repl wire requests before they reach this server but shares its
  // connection/authentication state.  MR_INTERNAL for an unknown connection.
  int32_t CheckConnPrivilege(uint64_t conn_id, const std::string& query);

  // Records an applied idempotency tag -> seq (FIFO-bounded by
  // ServerOptions::idempotency_window).  Also called by ReplicaServer while
  // replaying journal entries, so replayed-tag dedup survives a failover.
  void RecordAppliedTag(const std::string& tag, uint64_t seq);

  // Invalidates per-connection access caches.  Called by the replication
  // layer after applying journal entries directly through the query registry
  // (which bypasses HandleQuery and so would otherwise leave cached access
  // decisions stale).
  void InvalidateAccessCaches() { ++mutation_epoch_; }

  // One replica as seen by the primary, fed by its kReplFetch/kReplSnapshot
  // requests and surfaced through the privileged get_replica_status query.
  struct ReplicaInfo {
    uint64_t applied_seq = 0;  // last seq the replica reported applied
    UnixTime last_contact = 0;
    uint64_t fetches = 0;
    uint64_t snapshots = 0;
    uint64_t pushes = 0;  // quorum pushes acknowledged by this replica
  };
  const std::map<std::string, ReplicaInfo>& replicas() const { return replicas_; }

  struct Stats {
    // requests/queries are bumped from pool workers during parallel read
    // dispatch, hence atomic; the remaining counters are only touched on the
    // serialized path.
    StatCounter requests = 0;
    StatCounter queries = 0;
    uint64_t access_checks = 0;
    uint64_t access_cache_hits = 0;
    uint64_t auth_successes = 0;
    uint64_t auth_failures = 0;
    // Parallel read dispatch: groups handed to the pool, and the read-only
    // queries they contained.
    uint64_t parallel_read_batches = 0;
    uint64_t parallel_read_queries = 0;
  };
  const Stats& stats() const { return stats_; }

  struct QuorumStats {
    uint64_t quorum_writes = 0;    // mutations that ran the quorum gate
    uint64_t quorum_acks = 0;      // ... that reached quorum
    uint64_t push_rounds = 0;      // individual peer pushes attempted
    uint64_t push_failures = 0;    // pushes that failed or fell short
    uint64_t quorum_timeouts = 0;  // gate gave up (refuse policy)
    uint64_t degraded_acks = 0;    // gate gave up but acked locally (alarm)
    uint64_t fence_refusals = 0;   // mutations/pushes refused while fenced
    uint64_t tag_hits = 0;         // tagged replays answered from the tag map
  };
  const QuorumStats& quorum_stats() const { return quorum_stats_; }

  // Access-path counters summed over every table in the attached database:
  // how the executor actually answered this server's queries (see
  // TableStats).
  struct AccessPathStats {
    uint64_t index_hits = 0;
    uint64_t prefix_scans = 0;
    uint64_t range_scans = 0;
    uint64_t full_scans = 0;
    uint64_t rows_examined = 0;
    uint64_t rows_emitted = 0;
    uint64_t join_reorders = 0;
    uint64_t probe_cache_hits = 0;
    // List-closure cache (MoiraContext) counters, not per-table.
    uint64_t closure_cache_hits = 0;
    uint64_t closure_cache_misses = 0;
  };
  AccessPathStats access_path_stats() const;

  size_t connected_clients() const { return connections_.size(); }

 private:
  struct ConnState {
    std::string principal;      // empty until authenticated
    std::string client_name;    // program acting on behalf of the user
    std::string peer;
    UnixTime connect_time = 0;
    uint64_t client_number = 0;
    uint64_t cache_epoch = 0;
    MrHashTable<int32_t> access_cache;
  };

  // True if the payload is a well-formed kQuery request for a registry
  // retrieve query: safe to execute concurrently with other such requests.
  static bool IsParallelSafeRead(std::string_view payload);

  std::string HandleRequest(ConnState& conn, const MrRequest& request);
  std::string HandleQuery(ConnState& conn, const MrRequest& request,
                          const std::string& tag = std::string());
  std::string HandleQueryTagged(ConnState& conn, const MrRequest& request);
  std::string HandleAccess(ConnState& conn, const MrRequest& request);
  std::string HandleAuth(ConnState& conn, const MrRequest& request);
  std::string HandleListUsers(const MrRequest& request);
  std::string HandleReplicaStatus(ConnState& conn);
  std::string HandleReplFetch(ConnState& conn, const MrRequest& request);
  std::string HandleReplSnapshot(ConnState& conn, const MrRequest& request);
  std::string HandleReplPush(ConnState& conn, const MrRequest& request);
  std::string HandleReplHello();
  int32_t CachedAccessCheck(ConnState& conn, const std::string& query,
                            const std::vector<std::string>& args);
  // Runs the quorum gate for the journalled write at target_seq: pushes each
  // unacked peer's missing window until write_quorum members hold it or
  // quorum_attempts sweeps are exhausted.  Returns MR_SUCCESS,
  // MR_QUORUM_TIMEOUT, or MR_REPL_EPOCH (a peer fenced us).
  int32_t QuorumGate(uint64_t target_seq);

  MoiraContext* mc_;
  ServiceVerifier verifier_;
  ServerOptions options_;
  Journal journal_;
  std::function<void()> dcm_trigger_;
  std::map<uint64_t, ConnState> connections_;
  std::map<std::string, ReplicaInfo> replicas_;
  uint64_t next_client_number_ = 1;
  uint64_t mutation_epoch_ = 1;  // bumped on every successful mutation
  // Reader/writer gate for batch dispatch: pool workers hold it shared while
  // executing read-only queries; the serialized path (mutations, auth,
  // replication) holds it exclusive.  Group barriers already prevent overlap,
  // so this is uncontended in practice, but it makes the invariant checkable
  // (TSan) rather than implicit.
  std::shared_mutex db_mu_;
  Stats stats_;

  // Quorum replication state (serialized path only).
  std::vector<QuorumPeer*> quorum_peers_;
  std::map<std::string, uint64_t> peer_acked_;  // peer name -> acked seq
  bool fenced_ = false;
  std::function<void(const std::string&)> quorum_alarm_;
  QuorumStats quorum_stats_;
  std::map<std::string, uint64_t> applied_tags_;  // idempotency tag -> seq
  std::deque<std::string> tag_order_;             // FIFO eviction order
};

}  // namespace moira

#endif  // MOIRA_SRC_SERVER_SERVER_H_
