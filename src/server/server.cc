#include "src/server/server.h"

#include "src/comerr/moira_errors.h"

namespace moira {
namespace {

std::string SingleReply(int32_t code) {
  return EncodeReply(MrReply{kMrProtocolVersion, code, {}});
}

// Burns deterministic work to model the cost athenareg paid forking an
// Ingres backend for every client connection.
void SimulateBackendSpawn(int iterations) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < iterations; ++i) {
    sink = sink * 6364136223846793005ull + 1442695040888963407ull;
  }
}

}  // namespace

MoiraServer::MoiraServer(MoiraContext* mc, KerberosRealm* realm, ServerOptions options)
    : mc_(mc),
      verifier_(kMoiraServiceName, realm->RegisterService(kMoiraServiceName),
                &mc->db().clock()),
      options_(options) {
  RegisterMoiraErrorTable();
}

void MoiraServer::OnConnect(uint64_t conn_id, std::string peer) {
  ConnState conn;
  conn.peer = std::move(peer);
  conn.connect_time = mc_->Now();
  conn.client_number = next_client_number_++;
  connections_.emplace(conn_id, std::move(conn));
  if (options_.simulated_backend_spawn_cost > 0) {
    SimulateBackendSpawn(options_.simulated_backend_spawn_cost);
  }
}

void MoiraServer::OnDisconnect(uint64_t conn_id) { connections_.erase(conn_id); }

MoiraServer::AccessPathStats MoiraServer::access_path_stats() const {
  AccessPathStats out;
  const Database& db = mc_->db();
  for (const std::string& name : db.TableNames()) {
    const TableStats& stats = db.GetTable(name)->stats();
    out.index_hits += stats.index_hits;
    out.prefix_scans += stats.prefix_scans;
    out.range_scans += stats.range_scans;
    out.full_scans += stats.full_scans;
    out.rows_examined += stats.rows_examined;
    out.rows_emitted += stats.rows_emitted;
    out.join_reorders += stats.join_reorders;
    out.probe_cache_hits += stats.probe_cache_hits;
  }
  const ListClosureStats& closure = mc_->closure_stats();
  out.closure_cache_hits += closure.hits;
  out.closure_cache_misses += closure.misses;
  return out;
}

std::string MoiraServer::OnMessage(uint64_t conn_id, std::string_view payload) {
  ++stats_.requests;
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    // Transport delivered a message for an unknown connection.
    return SingleReply(MR_INTERNAL);
  }
  std::optional<MrRequest> request = DecodeRequest(payload);
  if (!request.has_value()) {
    return SingleReply(MR_ABORTED);
  }
  // Version skew is reported cleanly (paper section 5.3).
  if (request->version != kMrProtocolVersion) {
    return SingleReply(request->version > kMrProtocolVersion ? MR_VERSION_HIGH
                                                             : MR_VERSION_LOW);
  }
  return HandleRequest(it->second, *request);
}

std::string MoiraServer::HandleRequest(ConnState& conn, const MrRequest& request) {
  switch (request.major) {
    case MajorRequest::kNoop:
      return SingleReply(MR_SUCCESS);
    case MajorRequest::kAuthenticate:
      return HandleAuth(conn, request);
    case MajorRequest::kQuery:
      return HandleQuery(conn, request);
    case MajorRequest::kAccess:
      return HandleAccess(conn, request);
    case MajorRequest::kTriggerDcm: {
      int32_t code = CachedAccessCheck(conn, "trigger_dcm", {});
      if (code == MR_SUCCESS && dcm_trigger_) {
        dcm_trigger_();
      }
      return SingleReply(code);
    }
  }
  return SingleReply(MR_UNKNOWN_PROC);
}

std::string MoiraServer::HandleAuth(ConnState& conn, const MrRequest& request) {
  if (request.args.empty() || request.args.size() > 2) {
    return SingleReply(MR_ARGS);
  }
  VerifiedIdentity identity;
  int32_t code = verifier_.Verify(request.args[0], &identity);
  if (code != MR_SUCCESS) {
    ++stats_.auth_failures;
    return SingleReply(code);
  }
  ++stats_.auth_successes;
  conn.principal = identity.principal;
  if (request.args.size() == 2) {
    conn.client_name = request.args[1];
  }
  // Identity changed: cached access decisions no longer apply.
  conn.access_cache.Clear();
  return SingleReply(MR_SUCCESS);
}

std::string MoiraServer::HandleListUsers(const MrRequest& request) {
  (void)request;
  std::string out;
  for (const auto& [conn_id, conn] : connections_) {
    MrReply tuple{kMrProtocolVersion, MR_MORE_DATA,
                  {conn.principal.empty() ? "(unauthenticated)" : conn.principal, conn.peer,
                   std::to_string(conn.connect_time), std::to_string(conn.client_number)}};
    out += EncodeReply(tuple);
  }
  out += EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS, {}});
  return out;
}

std::string MoiraServer::HandleQuery(ConnState& conn, const MrRequest& request) {
  if (request.args.empty()) {
    return SingleReply(MR_ARGS);
  }
  ++stats_.queries;
  const std::string& name = request.args[0];
  // _list_users is answered from server connection state, not the database
  // (paper section 7.0.8).
  if (name == "_list_users" || name == "lusr") {
    return HandleListUsers(request);
  }
  std::vector<std::string> args(request.args.begin() + 1, request.args.end());
  std::string out;
  TupleSink emit = [&out](Tuple tuple) {
    out += EncodeReply(MrReply{kMrProtocolVersion, MR_MORE_DATA, std::move(tuple)});
  };
  const QueryRegistry& registry = QueryRegistry::Instance();
  int32_t code = registry.Execute(*mc_, conn.principal, conn.client_name, name, args, emit);
  const QueryDef* def = registry.Find(name);
  if (code == MR_SUCCESS && def != nullptr && def->qclass != QueryClass::kRetrieve) {
    // Successful change: journal it and invalidate caches.
    journal_.Append(JournalEntry{mc_->Now(), conn.principal, std::string(def->name), args});
    ++mutation_epoch_;
  }
  out += EncodeReply(MrReply{kMrProtocolVersion, code, {}});
  return out;
}

int32_t MoiraServer::CachedAccessCheck(ConnState& conn, const std::string& query,
                                       const std::vector<std::string>& args) {
  ++stats_.access_checks;
  std::string key;
  if (options_.enable_access_cache) {
    key = conn.principal;
    key += '\0';
    key += query;
    for (const std::string& arg : args) {
      key += '\0';
      key += arg;
    }
    if (conn.cache_epoch == mutation_epoch_) {
      if (const int32_t* cached = conn.access_cache.Fetch(key)) {
        ++stats_.access_cache_hits;
        return *cached;
      }
    } else {
      conn.access_cache.Clear();
      conn.cache_epoch = mutation_epoch_;
    }
  }
  int32_t code = QueryRegistry::Instance().CheckAccess(*mc_, conn.principal, query, args);
  if (options_.enable_access_cache) {
    conn.access_cache.Store(key, code);
  }
  return code;
}

std::string MoiraServer::HandleAccess(ConnState& conn, const MrRequest& request) {
  if (request.args.empty()) {
    return SingleReply(MR_ARGS);
  }
  std::vector<std::string> args(request.args.begin() + 1, request.args.end());
  return SingleReply(CachedAccessCheck(conn, request.args[0], args));
}

}  // namespace moira
