#include "src/server/server.h"

#include <filesystem>
#include <fstream>
#include <mutex>

#include "src/comerr/moira_errors.h"
#include "src/common/strutil.h"

namespace moira {
namespace {

std::string SingleReply(int32_t code) {
  return EncodeReply(MrReply{kMrProtocolVersion, code, {}});
}

// One snapshot row, serialized exactly like a backup line (minus the trailing
// newline, which the wire tuple does not need).
std::string SnapshotRowField(const Row& row) {
  std::string line;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i != 0) {
      line += ':';
    }
    line += JournalEscape(row[i].ToString());
  }
  return line;
}

// Burns deterministic work to model the cost athenareg paid forking an
// Ingres backend for every client connection.
void SimulateBackendSpawn(int iterations) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < iterations; ++i) {
    sink = sink * 6364136223846793005ull + 1442695040888963407ull;
  }
}

}  // namespace

MoiraServer::MoiraServer(MoiraContext* mc, KerberosRealm* realm, ServerOptions options)
    : mc_(mc),
      verifier_(kMoiraServiceName, realm->RegisterService(kMoiraServiceName),
                &mc->db().clock()),
      options_(options) {
  RegisterMoiraErrorTable();
}

void MoiraServer::OnConnect(uint64_t conn_id, std::string peer) {
  ConnState conn;
  conn.peer = std::move(peer);
  conn.connect_time = mc_->Now();
  conn.client_number = next_client_number_++;
  connections_.emplace(conn_id, std::move(conn));
  if (options_.simulated_backend_spawn_cost > 0) {
    SimulateBackendSpawn(options_.simulated_backend_spawn_cost);
  }
}

void MoiraServer::OnDisconnect(uint64_t conn_id) { connections_.erase(conn_id); }

MoiraServer::AccessPathStats MoiraServer::access_path_stats() const {
  AccessPathStats out;
  const Database& db = mc_->db();
  for (const std::string& name : db.TableNames()) {
    const TableStats& stats = db.GetTable(name)->stats();
    out.index_hits += stats.index_hits;
    out.prefix_scans += stats.prefix_scans;
    out.range_scans += stats.range_scans;
    out.full_scans += stats.full_scans;
    out.rows_examined += stats.rows_examined;
    out.rows_emitted += stats.rows_emitted;
    out.join_reorders += stats.join_reorders;
    out.probe_cache_hits += stats.probe_cache_hits;
  }
  const ListClosureStats& closure = mc_->closure_stats();
  out.closure_cache_hits += closure.hits;
  out.closure_cache_misses += closure.misses;
  return out;
}

bool MoiraServer::IsParallelSafeRead(std::string_view payload) {
  std::optional<MrRequest> request = DecodeRequest(payload);
  if (!request.has_value() || request->version != kMrProtocolVersion ||
      request->major != MajorRequest::kQuery || request->args.empty()) {
    return false;
  }
  const std::string& name = request->args[0];
  // These are answered from mutable server state (connection directory,
  // replica directory), not the database.
  if (name == "_list_users" || name == "lusr" || name == "get_replica_status" ||
      name == "grst") {
    return false;
  }
  const QueryDef* def = QueryRegistry::Instance().Find(name);
  return def != nullptr && def->qclass == QueryClass::kRetrieve;
}

void MoiraServer::OnMessageBatch(std::vector<BatchItem>* batch) {
  WorkerPool* pool = options_.read_pool;
  size_t i = 0;
  while (i < batch->size()) {
    BatchItem& item = (*batch)[i];
    if (pool == nullptr || !IsParallelSafeRead(item.payload)) {
      // Barrier: mutations, auth, replication, and malformed requests run
      // one at a time on the calling thread, exclusively.
      std::lock_guard<std::shared_mutex> lock(db_mu_);
      item.reply = OnMessage(item.conn_id, item.payload);
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < batch->size() && IsParallelSafeRead((*batch)[j].payload)) {
      ++j;
    }
    if (j - i == 1) {
      std::shared_lock<std::shared_mutex> lock(db_mu_);
      item.reply = OnMessage(item.conn_id, item.payload);
    } else {
      ++stats_.parallel_read_batches;
      stats_.parallel_read_queries += j - i;
      pool->ParallelFor(j - i, [&](size_t k) {
        BatchItem& read = (*batch)[i + k];
        std::shared_lock<std::shared_mutex> lock(db_mu_);
        read.reply = OnMessage(read.conn_id, read.payload);
      });
    }
    i = j;
  }
}

std::string MoiraServer::OnMessage(uint64_t conn_id, std::string_view payload) {
  ++stats_.requests;
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    // Transport delivered a message for an unknown connection.
    return SingleReply(MR_INTERNAL);
  }
  std::optional<MrRequest> request = DecodeRequest(payload);
  if (!request.has_value()) {
    return SingleReply(MR_ABORTED);
  }
  // Version skew is reported cleanly (paper section 5.3).
  if (request->version != kMrProtocolVersion) {
    return SingleReply(request->version > kMrProtocolVersion ? MR_VERSION_HIGH
                                                             : MR_VERSION_LOW);
  }
  return HandleRequest(it->second, *request);
}

std::string MoiraServer::HandleRequest(ConnState& conn, const MrRequest& request) {
  switch (request.major) {
    case MajorRequest::kNoop:
      return SingleReply(MR_SUCCESS);
    case MajorRequest::kAuthenticate:
      return HandleAuth(conn, request);
    case MajorRequest::kQuery:
      return HandleQuery(conn, request);
    case MajorRequest::kAccess:
      return HandleAccess(conn, request);
    case MajorRequest::kTriggerDcm: {
      int32_t code = CachedAccessCheck(conn, "trigger_dcm", {});
      if (code == MR_SUCCESS && dcm_trigger_) {
        dcm_trigger_();
      }
      return SingleReply(code);
    }
    case MajorRequest::kReplFetch:
      return HandleReplFetch(conn, request);
    case MajorRequest::kReplSnapshot:
      return HandleReplSnapshot(conn, request);
    case MajorRequest::kReplPush:
      return HandleReplPush(conn, request);
    case MajorRequest::kReplHello:
      return HandleReplHello();
    case MajorRequest::kReplVote: {
      // A primary never grants votes; its liveness is the reply.  The refusal
      // carries our epoch so a candidate can pick a higher one next time.
      MrReply reply{kMrProtocolVersion, MR_SUCCESS,
                    {"0", std::to_string(journal_.epoch())}};
      return EncodeReply(reply);
    }
    case MajorRequest::kQueryTagged:
      return HandleQueryTagged(conn, request);
    case MajorRequest::kQueryAtSeq: {
      // The primary is authoritative: every sequence number it ever issued is
      // already applied here, so the token is trivially satisfied — strip it
      // and serve the query.  (ReplicaServer intercepts this major request
      // and enforces the token against its own applied_seq.)
      if (request.args.size() < 2 || !ParseInt(request.args[0]).has_value()) {
        return SingleReply(MR_ARGS);
      }
      MrRequest inner{request.version, MajorRequest::kQuery,
                      {request.args.begin() + 1, request.args.end()}};
      return HandleQuery(conn, inner);
    }
  }
  return SingleReply(MR_UNKNOWN_PROC);
}

std::string MoiraServer::HandleAuth(ConnState& conn, const MrRequest& request) {
  if (request.args.empty() || request.args.size() > 2) {
    return SingleReply(MR_ARGS);
  }
  VerifiedIdentity identity;
  int32_t code = verifier_.Verify(request.args[0], &identity);
  if (code != MR_SUCCESS) {
    ++stats_.auth_failures;
    return SingleReply(code);
  }
  ++stats_.auth_successes;
  conn.principal = identity.principal;
  if (request.args.size() == 2) {
    conn.client_name = request.args[1];
  }
  // Identity changed: cached access decisions no longer apply.
  conn.access_cache.Clear();
  return SingleReply(MR_SUCCESS);
}

std::string MoiraServer::HandleListUsers(const MrRequest& request) {
  (void)request;
  std::string out;
  for (const auto& [conn_id, conn] : connections_) {
    MrReply tuple{kMrProtocolVersion, MR_MORE_DATA,
                  {conn.principal.empty() ? "(unauthenticated)" : conn.principal, conn.peer,
                   std::to_string(conn.connect_time), std::to_string(conn.client_number)}};
    out += EncodeReply(tuple);
  }
  out += EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS, {}});
  return out;
}

std::string MoiraServer::HandleQuery(ConnState& conn, const MrRequest& request,
                                     const std::string& tag) {
  if (request.args.empty()) {
    return SingleReply(MR_ARGS);
  }
  ++stats_.queries;
  const std::string& name = request.args[0];
  // _list_users is answered from server connection state, not the database
  // (paper section 7.0.8).
  if (name == "_list_users" || name == "lusr") {
    return HandleListUsers(request);
  }
  // get_replica_status is likewise answered from server state: the replica
  // directory fed by kReplFetch/kReplSnapshot requests.
  if (name == "get_replica_status" || name == "grst") {
    return HandleReplicaStatus(conn);
  }
  const QueryRegistry& registry = QueryRegistry::Instance();
  const QueryDef* def = registry.Find(name);
  const bool is_mutation = def != nullptr && def->qclass != QueryClass::kRetrieve;
  if (is_mutation && fenced_) {
    // A newer primary was elected; accepting this change would fork history.
    ++quorum_stats_.fence_refusals;
    return SingleReply(MR_REPL_EPOCH);
  }
  std::vector<std::string> args(request.args.begin() + 1, request.args.end());
  std::string out;
  TupleSink emit = [&out](Tuple tuple) {
    out += EncodeReply(MrReply{kMrProtocolVersion, MR_MORE_DATA, std::move(tuple)});
  };
  int32_t code = registry.Execute(*mc_, conn.principal, conn.client_name, name, args, emit);
  std::vector<std::string> final_fields;
  if (code == MR_SUCCESS && is_mutation) {
    // Successful change: journal it (with the assigned sequence number
    // reported back so routing clients can carry a read-your-writes token)
    // and invalidate caches.  The entry is durable locally before the quorum
    // gate runs, so MR_QUORUM_TIMEOUT means "outcome unknown", never "lost".
    JournalEntry entry{0, mc_->Now(), conn.principal, conn.client_name,
                       std::string(def->name), args};
    entry.tag = tag;
    uint64_t seq = journal_.Append(std::move(entry));
    final_fields.push_back(std::to_string(seq));
    ++mutation_epoch_;
    RecordAppliedTag(tag, seq);
    code = QuorumGate(seq);
  }
  out += EncodeReply(MrReply{kMrProtocolVersion, code, std::move(final_fields)});
  return out;
}

std::string MoiraServer::HandleQueryTagged(ConnState& conn, const MrRequest& request) {
  if (request.args.size() < 2) {
    return SingleReply(MR_ARGS);
  }
  const std::string& tag = request.args[0];
  if (!tag.empty()) {
    if (auto it = applied_tags_.find(tag); it != applied_tags_.end()) {
      // Replay of an already-applied mutation (a retry after an ambiguous
      // outcome, possibly against a newly promoted primary): acknowledge the
      // original seq instead of re-executing — but only once quorum holds it,
      // so a replay cannot launder an under-replicated write into an ack.
      ++quorum_stats_.tag_hits;
      int32_t code = fenced_ ? MR_REPL_EPOCH : QuorumGate(it->second);
      return EncodeReply(MrReply{kMrProtocolVersion, code,
                                 {std::to_string(it->second)}});
    }
  }
  MrRequest inner{request.version, MajorRequest::kQuery,
                  {request.args.begin() + 1, request.args.end()}};
  return HandleQuery(conn, inner, tag);
}

std::string MoiraServer::HandleReplicaStatus(ConnState& conn) {
  if (int32_t code = CachedAccessCheck(conn, "get_replica_status", {});
      code != MR_SUCCESS) {
    return SingleReply(code);
  }
  const uint64_t primary_seq = journal_.last_seq();
  std::string out;
  for (const auto& [name, info] : replicas_) {
    uint64_t lag = primary_seq > info.applied_seq ? primary_seq - info.applied_seq : 0;
    MrReply tuple{kMrProtocolVersion, MR_MORE_DATA,
                  {name, std::to_string(info.applied_seq), std::to_string(primary_seq),
                   std::to_string(lag), std::to_string(info.last_contact),
                   std::to_string(journal_.epoch())}};
    out += EncodeReply(tuple);
  }
  out += EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS, {}});
  return out;
}

std::string MoiraServer::HandleReplFetch(ConnState& conn, const MrRequest& request) {
  // Streaming the journal reveals every change in the database; gate it on
  // the same capability as the replica-status query.
  if (int32_t code = CachedAccessCheck(conn, "get_replica_status", {});
      code != MR_SUCCESS) {
    return SingleReply(code);
  }
  if (request.args.size() != 3 && request.args.size() != 4) {
    return SingleReply(MR_ARGS);
  }
  std::optional<int64_t> from_seq = ParseInt(request.args[1]);
  std::optional<int64_t> max_entries = ParseInt(request.args[2]);
  if (!from_seq.has_value() || *from_seq < 1 || !max_entries.has_value() ||
      *max_entries < 1) {
    return SingleReply(MR_ARGS);
  }
  // The optional 4th argument is the replica's epoch floor: a replica that
  // has seen a newer primary fences this one on contact.
  if (request.args.size() == 4) {
    std::optional<int64_t> replica_epoch = ParseInt(request.args[3]);
    if (!replica_epoch.has_value() || *replica_epoch < 0) {
      return SingleReply(MR_ARGS);
    }
    if (static_cast<uint64_t>(*replica_epoch) > journal_.epoch()) {
      Fence(static_cast<uint64_t>(*replica_epoch));
    }
  }
  if (fenced_) {
    ++quorum_stats_.fence_refusals;
    return SingleReply(MR_REPL_EPOCH);
  }
  ReplicaInfo& info = replicas_[request.args[0]];
  info.applied_seq = static_cast<uint64_t>(*from_seq) - 1;
  info.last_contact = mc_->Now();
  ++info.fetches;
  if (static_cast<uint64_t>(*from_seq) <= journal_.base_seq()) {
    // The requested range predates the retained log (pruned after a backup);
    // the replica must fall back to a snapshot transfer.
    return SingleReply(MR_REPL_TRUNCATED);
  }
  std::string out;
  for (const JournalEntry& entry : journal_.EntriesFromSeq(
           static_cast<uint64_t>(*from_seq), static_cast<size_t>(*max_entries))) {
    out += EncodeReply(MrReply{kMrProtocolVersion, MR_MORE_DATA, {entry.ToLine()}});
  }
  // prev_epoch: epoch of our entry just before the requested range, so the
  // replica can verify its applied prefix is a prefix of this log (0 =
  // start of history or truncated away — the replica skips the check).
  uint64_t prev_epoch = 0;
  if (*from_seq > 1) {
    std::vector<JournalEntry> prev =
        journal_.EntriesFromSeq(static_cast<uint64_t>(*from_seq) - 1, 1);
    if (!prev.empty() && prev[0].seq == static_cast<uint64_t>(*from_seq) - 1) {
      prev_epoch = prev[0].epoch;
    }
  }
  out += EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS,
                             {std::to_string(journal_.last_seq()),
                              std::to_string(mc_->Now()),
                              std::to_string(journal_.epoch()),
                              std::to_string(prev_epoch)}});
  return out;
}

std::string MoiraServer::HandleReplSnapshot(ConnState& conn, const MrRequest& request) {
  if (int32_t code = CachedAccessCheck(conn, "get_replica_status", {});
      code != MR_SUCCESS) {
    return SingleReply(code);
  }
  if (request.args.size() != 1) {
    return SingleReply(MR_ARGS);
  }
  if (fenced_) {
    // A deposed primary must not seed replicas: its tables may hold a dead
    // reign's unreplicated suffix.
    ++quorum_stats_.fence_refusals;
    return SingleReply(MR_REPL_EPOCH);
  }
  ReplicaInfo& info = replicas_[request.args[0]];
  info.last_contact = mc_->Now();
  ++info.snapshots;
  const Database& db = mc_->db();
  // Checkpoint+tail bootstrap: with a data directory configured, stream the
  // newest on-disk checkpoint (its table files are exactly the snapshot wire
  // format) cut at its stamped seq; the replica replays the journal tail from
  // there.  The checkpoint must not predate the retained log, or the replica's
  // follow-up fetch would come back MR_REPL_TRUNCATED and loop forever —
  // fall back to a live dump in that (operator-error) case, and when no
  // checkpoint exists yet.
  if (!options_.data_dir.empty()) {
    std::vector<CheckpointRef> checkpoints = ListCheckpoints(options_.data_dir);
    if (!checkpoints.empty() && checkpoints.back().seq >= journal_.base_seq()) {
      const CheckpointRef& checkpoint = checkpoints.back();
      std::string out;
      bool ok = true;
      for (const std::string& table_name : db.TableNames()) {
        std::ifstream in(std::filesystem::path(checkpoint.path) / table_name,
                         std::ios::binary);
        if (!in) {
          continue;  // a missing file is an empty relation, as in Restore
        }
        std::string line;
        while (std::getline(in, line)) {
          if (line.empty()) {
            continue;
          }
          out += EncodeReply(MrReply{kMrProtocolVersion, MR_MORE_DATA, {table_name, line}});
        }
        if (in.bad()) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out += EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS,
                                   {std::to_string(checkpoint.seq),
                                    std::to_string(mc_->Now()),
                                    std::to_string(journal_.epoch())}});
        return out;
      }
    }
  }
  // The live snapshot is cut at the current last_seq: every journalled change
  // is already in the tables being streamed, so the receiving replica resumes
  // fetching from snapshot_seq + 1.
  const uint64_t snapshot_seq = journal_.last_seq();
  std::string out;
  for (const std::string& table_name : db.TableNames()) {
    db.GetTable(table_name)->Scan([&](size_t, const Row& row) {
      out += EncodeReply(MrReply{kMrProtocolVersion, MR_MORE_DATA,
                                 {table_name, SnapshotRowField(row)}});
      return true;
    });
  }
  out += EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS,
                             {std::to_string(snapshot_seq), std::to_string(mc_->Now()),
                              std::to_string(journal_.epoch())}});
  return out;
}

std::string MoiraServer::HandleReplPush(ConnState& conn, const MrRequest& request) {
  // A MoiraServer is always a primary: any push arriving here is from another
  // node that believes itself primary.  Refuse it — and when the pusher's
  // epoch is newer, it won an election we missed, so fence ourselves.
  if (int32_t code = CachedAccessCheck(conn, "get_replica_status", {});
      code != MR_SUCCESS) {
    return SingleReply(code);
  }
  if (request.args.empty()) {
    return SingleReply(MR_ARGS);
  }
  std::optional<int64_t> push_epoch = ParseInt(request.args[0]);
  if (!push_epoch.has_value() || *push_epoch < 1) {
    return SingleReply(MR_ARGS);
  }
  if (static_cast<uint64_t>(*push_epoch) > journal_.epoch()) {
    Fence(static_cast<uint64_t>(*push_epoch));
  }
  ++quorum_stats_.fence_refusals;
  return EncodeReply(MrReply{kMrProtocolVersion, MR_REPL_EPOCH,
                             {std::to_string(journal_.last_seq()),
                              std::to_string(journal_.epoch())}});
}

std::string MoiraServer::HandleReplHello() {
  // Unauthenticated liveness/role probe: reveals only the applied position,
  // epoch, and whether this node accepts writes — what any failed connection
  // attempt would reveal over time anyway.  Heartbeats and primary discovery
  // must work before a client can authenticate against a candidate.
  return EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS,
                             {std::to_string(journal_.last_seq()),
                              std::to_string(journal_.epoch()),
                              fenced_ ? "0" : "1",
                              std::to_string(journal_.epoch())}});
}

void MoiraServer::SetQuorumPeers(std::vector<QuorumPeer*> peers) {
  quorum_peers_ = std::move(peers);
  // Positions recorded under an earlier reign may be stale in either
  // direction; the first push round re-learns them from the replies.
  peer_acked_.clear();
}

int32_t MoiraServer::CheckConnPrivilege(uint64_t conn_id, const std::string& query) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return MR_INTERNAL;
  }
  return CachedAccessCheck(it->second, query, {});
}

void MoiraServer::Fence(uint64_t newer_epoch) {
  if (!fenced_) {
    fenced_ = true;
    if (quorum_alarm_) {
      quorum_alarm_("fenced: epoch " + std::to_string(newer_epoch) +
                    " supersedes " + std::to_string(journal_.epoch()));
    }
  }
}

void MoiraServer::RecordAppliedTag(const std::string& tag, uint64_t seq) {
  if (tag.empty() || options_.idempotency_window == 0) {
    return;
  }
  auto [it, inserted] = applied_tags_.emplace(tag, seq);
  if (!inserted) {
    return;  // first application wins; replays keep acking the original seq
  }
  tag_order_.push_back(tag);
  while (tag_order_.size() > options_.idempotency_window) {
    applied_tags_.erase(tag_order_.front());
    tag_order_.pop_front();
  }
}

int32_t MoiraServer::QuorumGate(uint64_t target_seq) {
  if (quorum_peers_.empty()) {
    return MR_SUCCESS;  // single-server deployment: local durability is the ack
  }
  ++quorum_stats_.quorum_writes;
  const int cluster = options_.cluster_size > 0
                          ? options_.cluster_size
                          : static_cast<int>(quorum_peers_.size()) + 1;
  const int needed =
      options_.write_quorum > 0 ? options_.write_quorum : (cluster + 1) / 2;
  const uint64_t epoch = journal_.epoch();
  const int attempts = options_.quorum_attempts > 0 ? options_.quorum_attempts : 1;
  for (int sweep = 0; sweep < attempts; ++sweep) {
    int acks = 1;  // self: Journal::Append flushed before we got here
    for (QuorumPeer* peer : quorum_peers_) {
      uint64_t& acked = peer_acked_[peer->name()];
      if (acked >= target_seq) {
        ++acks;
        continue;
      }
      if (acked < journal_.base_seq()) {
        // The peer's last known position predates the retained log.  That is
        // routine right after a promotion rebased the journal (positions
        // reset to zero), so probe with an empty window anchored at the base
        // to learn where the peer really is; only a peer genuinely below the
        // base is left to the pull path's snapshot.
        uint64_t probed = 0;
        uint64_t probe_epoch = 0;
        ++quorum_stats_.push_rounds;
        int32_t probe = peer->Push(epoch, journal_.base_seq(), 0, {}, &probed,
                                   &probe_epoch);
        if (probe == MR_REPL_EPOCH) {
          Fence(probe_epoch);
          ++quorum_stats_.fence_refusals;
          return MR_REPL_EPOCH;
        }
        if ((probe != MR_SUCCESS && probe != MR_REPL_BEHIND) ||
            probed < journal_.base_seq()) {
          ++quorum_stats_.push_failures;
          continue;
        }
        acked = probed;
        ReplicaInfo& info = replicas_[peer->name()];
        if (acked > info.applied_seq) {
          info.applied_seq = acked;
        }
        info.last_contact = mc_->Now();
        if (acked >= target_seq) {
          ++acks;
          continue;
        }
      }
      std::vector<std::string> lines;
      for (const JournalEntry& entry : journal_.EntriesFromSeq(acked + 1)) {
        if (entry.seq > target_seq) {
          break;
        }
        lines.push_back(entry.ToLine());
      }
      // The predecessor of the window lets the peer verify its applied prefix
      // really is a prefix of ours (prev_epoch 0 = start of history or
      // truncated away — epoch check skipped).
      uint64_t prev_epoch = 0;
      if (acked > 0) {
        std::vector<JournalEntry> prev = journal_.EntriesFromSeq(acked, 1);
        if (!prev.empty() && prev[0].seq == acked) {
          prev_epoch = prev[0].epoch;
        }
      }
      uint64_t applied = 0;
      uint64_t peer_epoch = 0;
      ++quorum_stats_.push_rounds;
      int32_t code = peer->Push(epoch, acked, prev_epoch, lines, &applied, &peer_epoch);
      if (code == MR_REPL_EPOCH) {
        // The peer has seen a newer primary: we lost an election we did not
        // witness.  Never ack this write — a quorum assembled now could
        // contradict the new primary's history.
        Fence(peer_epoch);
        ++quorum_stats_.fence_refusals;
        return MR_REPL_EPOCH;
      }
      if (code == MR_SUCCESS || code == MR_REPL_BEHIND) {
        if (code == MR_REPL_BEHIND) {
          // The replica's applied prefix is authoritative — it can move
          // backward when a crashed replica restarts empty.
          acked = applied;
        } else if (applied > acked) {
          acked = applied;
        }
        ReplicaInfo& info = replicas_[peer->name()];
        if (acked > info.applied_seq) {
          info.applied_seq = acked;
        }
        info.last_contact = mc_->Now();
        ++info.pushes;
        if (acked >= target_seq) {
          ++acks;
          continue;
        }
      }
      ++quorum_stats_.push_failures;
    }
    if (acks >= needed) {
      ++quorum_stats_.quorum_acks;
      return MR_SUCCESS;
    }
  }
  if (options_.quorum_ack_local) {
    ++quorum_stats_.degraded_acks;
    if (quorum_alarm_) {
      quorum_alarm_("quorum unreachable; acked seq " + std::to_string(target_seq) +
                    " locally");
    }
    return MR_SUCCESS;
  }
  ++quorum_stats_.quorum_timeouts;
  return MR_QUORUM_TIMEOUT;
}

int32_t MoiraServer::CachedAccessCheck(ConnState& conn, const std::string& query,
                                       const std::vector<std::string>& args) {
  ++stats_.access_checks;
  std::string key;
  if (options_.enable_access_cache) {
    key = conn.principal;
    key += '\0';
    key += query;
    for (const std::string& arg : args) {
      key += '\0';
      key += arg;
    }
    if (conn.cache_epoch == mutation_epoch_) {
      if (const int32_t* cached = conn.access_cache.Fetch(key)) {
        ++stats_.access_cache_hits;
        return *cached;
      }
    } else {
      conn.access_cache.Clear();
      conn.cache_epoch = mutation_epoch_;
    }
  }
  int32_t code = QueryRegistry::Instance().CheckAccess(*mc_, conn.principal, query, args);
  if (options_.enable_access_cache) {
    conn.access_cache.Store(key, code);
  }
  return code;
}

std::string MoiraServer::HandleAccess(ConnState& conn, const MrRequest& request) {
  if (request.args.empty()) {
    return SingleReply(MR_ARGS);
  }
  std::vector<std::string> args(request.args.begin() + 1, request.args.end());
  return SingleReply(CachedAccessCheck(conn, request.args[0], args));
}

}  // namespace moira
