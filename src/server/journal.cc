#include "src/server/journal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/strutil.h"

namespace moira {

namespace fs = std::filesystem;

namespace {

constexpr char kLiveName[] = "journal";
constexpr char kSegmentPrefix[] = "journal.";

bool IsOctalDigit(char c) { return c >= '0' && c <= '7'; }

// Parses "journal.<first>-<last>" into a segment record; nullopt for the
// live file or any other name.
std::optional<JournalSegment> ParseSegmentName(const fs::path& path) {
  const std::string name = path.filename().string();
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  if (name.size() <= prefix_len || name.compare(0, prefix_len, kSegmentPrefix) != 0) {
    return std::nullopt;
  }
  const size_t dash = name.find('-', prefix_len);
  if (dash == std::string::npos) {
    return std::nullopt;
  }
  std::optional<int64_t> first = ParseInt(name.substr(prefix_len, dash - prefix_len));
  std::optional<int64_t> last = ParseInt(name.substr(dash + 1));
  if (!first.has_value() || !last.has_value() || *first < 1 || *last < *first) {
    return std::nullopt;
  }
  JournalSegment segment;
  segment.first_seq = static_cast<uint64_t>(*first);
  segment.last_seq = static_cast<uint64_t>(*last);
  segment.path = path.string();
  return segment;
}

// Sealed segments under dir, ascending by first_seq.
std::vector<JournalSegment> ScanSegments(const std::string& dir) {
  std::vector<JournalSegment> segments;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (std::optional<JournalSegment> segment = ParseSegmentName(entry.path())) {
      segments.push_back(std::move(*segment));
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const JournalSegment& a, const JournalSegment& b) {
              return a.first_seq < b.first_seq;
            });
  return segments;
}

}  // namespace

std::string JournalEscape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    auto uc = static_cast<unsigned char>(c);
    if (c == ':') {
      out += "\\:";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (uc < 0x20 || uc >= 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\%03o", uc);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string JournalUnescape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (i + 1 < field.size() && (field[i + 1] == ':' || field[i + 1] == '\\')) {
      out += field[i + 1];
      ++i;
      continue;
    }
    if (i + 3 < field.size() && IsOctalDigit(field[i + 1]) && IsOctalDigit(field[i + 2]) &&
        IsOctalDigit(field[i + 3])) {
      int v = (field[i + 1] - '0') * 64 + (field[i + 2] - '0') * 8 + (field[i + 3] - '0');
      out += static_cast<char>(v);
      i += 3;
      continue;
    }
    // Not a sequence JournalEscape emits (short or non-octal \nnn, a lone
    // trailing backslash): keep the backslash literally instead of decoding
    // garbage or dropping it asymmetrically.
    out += '\\';
  }
  return out;
}

std::vector<std::string> SplitEscaped(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current += line[i];
      current += line[i + 1];
      ++i;
    } else if (line[i] == ':') {
      fields.push_back(JournalUnescape(current));
      current.clear();
    } else {
      current += line[i];
    }
  }
  fields.push_back(JournalUnescape(current));
  return fields;
}

std::string JournalEntry::ToLine() const {
  std::string line = std::to_string(seq);
  line += ':';
  line += std::to_string(epoch);
  line += ':';
  line += std::to_string(when);
  line += ':';
  line += JournalEscape(principal);
  line += ':';
  line += JournalEscape(client);
  line += ':';
  line += JournalEscape(tag);
  line += ':';
  line += JournalEscape(query);
  for (const std::string& arg : args) {
    line += ':';
    line += JournalEscape(arg);
  }
  line += '\n';
  return line;
}

std::optional<JournalEntry> JournalEntry::FromLine(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::vector<std::string> fields = SplitEscaped(line);
  if (fields.size() < 7) {
    return std::nullopt;
  }
  std::optional<int64_t> seq = ParseInt(fields[0]);
  std::optional<int64_t> epoch = ParseInt(fields[1]);
  std::optional<int64_t> when = ParseInt(fields[2]);
  if (!seq.has_value() || *seq < 0 || !epoch.has_value() || *epoch < 0 ||
      !when.has_value()) {
    return std::nullopt;
  }
  JournalEntry entry;
  entry.seq = static_cast<uint64_t>(*seq);
  entry.epoch = static_cast<uint64_t>(*epoch);
  entry.when = *when;
  entry.principal = fields[3];
  entry.client = fields[4];
  entry.tag = fields[5];
  entry.query = fields[6];
  entry.args.assign(fields.begin() + 7, fields.end());
  return entry;
}

void Journal::SetFile(std::string path) {
  dir_.clear();
  segments_.clear();
  live_first_seq_ = live_last_seq_ = 0;
  live_count_ = 0;
  file_path_ = std::move(path);
  file_.close();
  file_.clear();
  if (!file_path_.empty()) {
    file_.open(file_path_, std::ios::app | std::ios::binary);
  }
}

std::string Journal::LivePath() const { return (fs::path(dir_) / kLiveName).string(); }

void Journal::OpenLive() {
  file_path_ = LivePath();
  file_.close();
  file_.clear();
  file_.open(file_path_, std::ios::app | std::ios::binary);
}

int Journal::LoadOneFile(const std::string& path, uint64_t after_seq, bool track_live) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return -1;
  }
  int kept = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::optional<JournalEntry> entry = JournalEntry::FromLine(line);
    if (!entry.has_value()) {
      // A torn write (crash mid-append or mid-rotation) leaves a short final
      // line; count it rather than silently dropping it so operators can see
      // data loss.
      ++corrupt_lines_skipped_;
      continue;
    }
    if (track_live) {
      if (live_first_seq_ == 0) {
        live_first_seq_ = entry->seq;
      }
      live_last_seq_ = entry->seq;
      ++live_count_;
    }
    if (entry->seq > last_seq_) {
      last_seq_ = entry->seq;
    }
    if (entry->epoch > epoch_) {
      epoch_ = entry->epoch;
    }
    if (entry->seq > after_seq) {
      entries_.push_back(std::move(*entry));
      ++kept;
    }
  }
  return kept;
}

int Journal::AttachDirectory(const std::string& dir, uint64_t after_seq) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return -1;
  }
  dir_ = dir;
  segments_ = ScanSegments(dir);
  live_first_seq_ = live_last_seq_ = 0;
  live_count_ = 0;
  // A checkpoint at after_seq proves entries 1..after_seq once existed, even
  // if every changelog file is gone.
  if (after_seq > last_seq_) {
    last_seq_ = after_seq;
  }
  if (after_seq > base_seq_) {
    base_seq_ = after_seq;
  }
  int loaded = 0;
  for (const JournalSegment& segment : segments_) {
    if (segment.last_seq <= after_seq) {
      continue;  // fully covered by the checkpoint; retired at next truncate
    }
    int kept = LoadOneFile(segment.path, after_seq, /*track_live=*/false);
    if (kept > 0) {
      loaded += kept;
    }
  }
  // The live file may be absent (fresh directory, or a crash between the
  // rotation rename and the reopen); Append recreates it.
  if (fs::exists(LivePath(), ec)) {
    int kept = LoadOneFile(LivePath(), after_seq, /*track_live=*/true);
    if (kept > 0) {
      loaded += kept;
    }
  }
  // Retained entries run (base_seq_, last_seq_]; when disk starts later than
  // the checkpoint (segments retired after the checkpoint was cut), the cut
  // is wherever the first retained entry begins.
  if (!entries_.empty() && entries_.front().seq - 1 > base_seq_) {
    base_seq_ = entries_.front().seq - 1;
  }
  OpenLive();
  return loaded;
}

bool Journal::Rotate() {
  if (dir_.empty() || live_first_seq_ == 0) {
    return false;
  }
  file_.close();
  file_.clear();
  JournalSegment segment;
  segment.first_seq = live_first_seq_;
  segment.last_seq = live_last_seq_;
  segment.path =
      (fs::path(dir_) / (std::string(kSegmentPrefix) + std::to_string(live_first_seq_) +
                         "-" + std::to_string(live_last_seq_)))
          .string();
  std::error_code ec;
  fs::rename(LivePath(), segment.path, ec);
  if (ec) {
    OpenLive();
    return false;
  }
  segments_.push_back(std::move(segment));
  live_first_seq_ = live_last_seq_ = 0;
  live_count_ = 0;
  OpenLive();
  return true;
}

std::optional<std::vector<JournalEntry>> Journal::ReadRange(const std::string& dir,
                                                            uint64_t after_seq,
                                                            uint64_t through_seq) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return std::nullopt;
  }
  std::vector<std::string> files;
  for (const JournalSegment& segment : ScanSegments(dir)) {
    if (segment.last_seq > after_seq && segment.first_seq <= through_seq) {
      files.push_back(segment.path);
    }
  }
  if (fs::exists(fs::path(dir) / kLiveName, ec)) {
    files.push_back((fs::path(dir) / kLiveName).string());
  }
  std::vector<JournalEntry> out;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return std::nullopt;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      std::optional<JournalEntry> entry = JournalEntry::FromLine(line);
      if (entry.has_value() && entry->seq > after_seq && entry->seq <= through_seq) {
        out.push_back(std::move(*entry));
      }
    }
  }
  return out;
}

uint64_t Journal::Append(JournalEntry entry) {
  if (!dir_.empty() && rotate_threshold_ > 0 && live_count_ >= rotate_threshold_) {
    Rotate();
  }
  if (entry.seq == 0) {
    entry.seq = last_seq_ + 1;
  }
  if (entry.seq > last_seq_) {
    last_seq_ = entry.seq;
  }
  // Stamp the current epoch; an entry reloaded from a newer epoch advances
  // the journal's fencing position instead.
  if (entry.epoch == 0) {
    entry.epoch = epoch_;
  } else if (entry.epoch > epoch_) {
    epoch_ = entry.epoch;
  }
  if (file_.is_open()) {
    // Written and flushed before the append is acknowledged: a replica that
    // saw this sequence number can always re-fetch it after a primary
    // restart.
    file_ << entry.ToLine();
    file_.flush();
    if (!dir_.empty()) {
      if (live_first_seq_ == 0) {
        live_first_seq_ = entry.seq;
      }
      live_last_seq_ = entry.seq;
      ++live_count_;
    }
  }
  uint64_t seq = entry.seq;
  entries_.push_back(std::move(entry));
  return seq;
}

std::vector<JournalEntry> Journal::EntriesSince(UnixTime since) const {
  std::vector<JournalEntry> out;
  for (const JournalEntry& entry : entries_) {
    if (entry.when > since) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<JournalEntry> Journal::EntriesFromSeq(uint64_t from_seq, size_t max) const {
  std::vector<JournalEntry> out;
  for (const JournalEntry& entry : entries_) {
    if (entry.seq >= from_seq) {
      out.push_back(entry);
      if (out.size() >= max) {
        break;
      }
    }
  }
  return out;
}

uint64_t Journal::first_seq() const {
  return entries_.empty() ? base_seq_ + 1 : entries_.front().seq;
}

size_t Journal::TruncateThrough(uint64_t through) {
  if (!dir_.empty()) {
    // Disk-backed truncation at segment granularity: seal the live file when
    // the cut covers all of it, delete fully-covered sealed segments, and
    // prune memory only to the highest retired boundary so the on-disk bytes
    // always equal the retained entries.
    if (live_first_seq_ != 0 && through >= live_last_seq_) {
      Rotate();
    }
    uint64_t effective = base_seq_;
    auto it = segments_.begin();
    while (it != segments_.end() && it->last_seq <= through) {
      std::error_code ec;
      fs::remove(it->path, ec);
      effective = std::max(effective, it->last_seq);
      it = segments_.erase(it);
    }
    auto keep_from = entries_.begin();
    while (keep_from != entries_.end() && keep_from->seq <= effective) {
      ++keep_from;
    }
    size_t dropped = static_cast<size_t>(keep_from - entries_.begin());
    entries_.erase(entries_.begin(), keep_from);
    if (effective > base_seq_) {
      base_seq_ = effective;
    }
    return dropped;
  }
  size_t dropped = 0;
  while (!entries_.empty() && entries_.front().seq <= through) {
    ++dropped;
    if (entries_.front().seq > base_seq_) {
      base_seq_ = entries_.front().seq;
    }
    entries_.erase(entries_.begin());
  }
  if (through > base_seq_ && through <= last_seq_) {
    base_seq_ = through;
  }
  return dropped;
}

void Journal::ResetSequence(uint64_t next_seq) {
  if (next_seq > 0 && next_seq - 1 > last_seq_) {
    last_seq_ = next_seq - 1;
  }
  if (base_seq_ < last_seq_ && entries_.empty()) {
    base_seq_ = last_seq_;
  }
}

void Journal::RebaseTo(uint64_t next_seq) {
  if (!dir_.empty()) {
    return;  // directory-mode journals are never rebased
  }
  entries_.clear();
  last_seq_ = next_seq > 0 ? next_seq - 1 : 0;
  base_seq_ = last_seq_;
}

void Journal::Clear() {
  entries_.clear();
  base_seq_ = last_seq_;
  if (!dir_.empty()) {
    for (const JournalSegment& segment : segments_) {
      std::error_code ec;
      fs::remove(segment.path, ec);
    }
    segments_.clear();
    file_.close();
    file_.clear();
    // Truncate the live file so restart cannot resurrect cleared entries.
    file_.open(file_path_, std::ios::trunc | std::ios::binary);
    file_.close();
    file_.clear();
    file_.open(file_path_, std::ios::app | std::ios::binary);
    live_first_seq_ = live_last_seq_ = 0;
    live_count_ = 0;
  }
}

int Journal::LoadFile(const std::string& path) {
  const bool was_empty = entries_.empty();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return -1;
  }
  int count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (std::optional<JournalEntry> entry = JournalEntry::FromLine(line)) {
      if (entry->seq > last_seq_) {
        last_seq_ = entry->seq;
      }
      if (entry->epoch > epoch_) {
        epoch_ = entry->epoch;
      }
      entries_.push_back(std::move(*entry));
      ++count;
    } else {
      // A torn write (crash mid-append) leaves a short final line; count it
      // rather than silently dropping it so operators can see data loss.
      ++corrupt_lines_skipped_;
    }
  }
  // A file that starts past seq 1 was truncated/rotated before it was
  // written; restore base_seq_ so a restarted primary refuses to stream the
  // missing prefix (MR_REPL_TRUNCATED) instead of sending a gapped range.
  if (was_empty && !entries_.empty() && entries_.front().seq - 1 > base_seq_) {
    base_seq_ = entries_.front().seq - 1;
  }
  return count;
}

// --- Checkpoint directory naming --------------------------------------------

namespace {
constexpr char kCheckpointPrefix[] = "checkpoint.";
}  // namespace

std::string CheckpointDirName(uint64_t seq) {
  return std::string(kCheckpointPrefix) + std::to_string(seq);
}

std::vector<CheckpointRef> ListCheckpoints(const std::string& root) {
  std::vector<CheckpointRef> out;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    const size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
    if (name.size() <= prefix_len || name.compare(0, prefix_len, kCheckpointPrefix) != 0) {
      continue;
    }
    std::optional<int64_t> seq = ParseInt(name.substr(prefix_len));
    if (!seq.has_value() || *seq < 0) {
      continue;  // checkpoint.tmp and other non-numeric names
    }
    // The SEQ stamp is written last before the rename; a directory without a
    // matching stamp is a crashed or tampered write.
    std::ifstream stamp(entry.path() / kCheckpointStampName);
    std::string stamped;
    if (!stamp || !std::getline(stamp, stamped) ||
        ParseInt(stamped) != std::optional<int64_t>(*seq)) {
      continue;
    }
    out.push_back(CheckpointRef{static_cast<uint64_t>(*seq), entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointRef& a, const CheckpointRef& b) { return a.seq < b.seq; });
  return out;
}

}  // namespace moira
