#include "src/server/journal.h"

#include <cstdio>
#include <fstream>

#include "src/common/strutil.h"

namespace moira {

std::string JournalEscape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    auto uc = static_cast<unsigned char>(c);
    if (c == ':') {
      out += "\\:";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (uc < 0x20 || uc >= 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\%03o", uc);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string JournalUnescape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (i + 1 >= field.size()) {
      break;
    }
    char next = field[i + 1];
    if (next == ':' || next == '\\') {
      out += next;
      ++i;
    } else if (next >= '0' && next <= '7' && i + 3 < field.size()) {
      int v = (field[i + 1] - '0') * 64 + (field[i + 2] - '0') * 8 + (field[i + 3] - '0');
      out += static_cast<char>(v);
      i += 3;
    } else {
      out += next;
      ++i;
    }
  }
  return out;
}

std::vector<std::string> SplitEscaped(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current += line[i];
      current += line[i + 1];
      ++i;
    } else if (line[i] == ':') {
      fields.push_back(JournalUnescape(current));
      current.clear();
    } else {
      current += line[i];
    }
  }
  fields.push_back(JournalUnescape(current));
  return fields;
}

std::string JournalEntry::ToLine() const {
  std::string line = std::to_string(seq);
  line += ':';
  line += std::to_string(when);
  line += ':';
  line += JournalEscape(principal);
  line += ':';
  line += JournalEscape(client);
  line += ':';
  line += JournalEscape(query);
  for (const std::string& arg : args) {
    line += ':';
    line += JournalEscape(arg);
  }
  line += '\n';
  return line;
}

std::optional<JournalEntry> JournalEntry::FromLine(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::vector<std::string> fields = SplitEscaped(line);
  if (fields.size() < 5) {
    return std::nullopt;
  }
  std::optional<int64_t> seq = ParseInt(fields[0]);
  std::optional<int64_t> when = ParseInt(fields[1]);
  if (!seq.has_value() || *seq < 0 || !when.has_value()) {
    return std::nullopt;
  }
  JournalEntry entry;
  entry.seq = static_cast<uint64_t>(*seq);
  entry.when = *when;
  entry.principal = fields[2];
  entry.client = fields[3];
  entry.query = fields[4];
  entry.args.assign(fields.begin() + 5, fields.end());
  return entry;
}

void Journal::SetFile(std::string path) {
  file_path_ = std::move(path);
  file_.close();
  file_.clear();
  if (!file_path_.empty()) {
    file_.open(file_path_, std::ios::app | std::ios::binary);
  }
}

uint64_t Journal::Append(JournalEntry entry) {
  if (entry.seq == 0) {
    entry.seq = last_seq_ + 1;
  }
  if (entry.seq > last_seq_) {
    last_seq_ = entry.seq;
  }
  if (file_.is_open()) {
    // Written and flushed before the append is acknowledged: a replica that
    // saw this sequence number can always re-fetch it after a primary
    // restart.
    file_ << entry.ToLine();
    file_.flush();
  }
  uint64_t seq = entry.seq;
  entries_.push_back(std::move(entry));
  return seq;
}

std::vector<JournalEntry> Journal::EntriesSince(UnixTime since) const {
  std::vector<JournalEntry> out;
  for (const JournalEntry& entry : entries_) {
    if (entry.when > since) {
      out.push_back(entry);
    }
  }
  return out;
}

std::vector<JournalEntry> Journal::EntriesFromSeq(uint64_t from_seq, size_t max) const {
  std::vector<JournalEntry> out;
  for (const JournalEntry& entry : entries_) {
    if (entry.seq >= from_seq) {
      out.push_back(entry);
      if (out.size() >= max) {
        break;
      }
    }
  }
  return out;
}

uint64_t Journal::first_seq() const {
  return entries_.empty() ? base_seq_ + 1 : entries_.front().seq;
}

size_t Journal::TruncateThrough(uint64_t through) {
  size_t dropped = 0;
  while (!entries_.empty() && entries_.front().seq <= through) {
    ++dropped;
    if (entries_.front().seq > base_seq_) {
      base_seq_ = entries_.front().seq;
    }
    entries_.erase(entries_.begin());
  }
  if (through > base_seq_ && through <= last_seq_) {
    base_seq_ = through;
  }
  return dropped;
}

void Journal::ResetSequence(uint64_t next_seq) {
  if (next_seq > 0 && next_seq - 1 > last_seq_) {
    last_seq_ = next_seq - 1;
  }
  if (base_seq_ < last_seq_ && entries_.empty()) {
    base_seq_ = last_seq_;
  }
}

int Journal::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return -1;
  }
  int count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (std::optional<JournalEntry> entry = JournalEntry::FromLine(line)) {
      if (entry->seq > last_seq_) {
        last_seq_ = entry->seq;
      }
      entries_.push_back(std::move(*entry));
      ++count;
    } else {
      // A torn write (crash mid-append) leaves a short final line; count it
      // rather than silently dropping it so operators can see data loss.
      ++corrupt_lines_skipped_;
    }
  }
  return count;
}

}  // namespace moira
