#include "src/server/journal.h"

#include <cstdio>
#include <fstream>

#include "src/common/strutil.h"

namespace moira {

std::string JournalEscape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    auto uc = static_cast<unsigned char>(c);
    if (c == ':') {
      out += "\\:";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (uc < 0x20 || uc >= 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\%03o", uc);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string JournalUnescape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (i + 1 >= field.size()) {
      break;
    }
    char next = field[i + 1];
    if (next == ':' || next == '\\') {
      out += next;
      ++i;
    } else if (next >= '0' && next <= '7' && i + 3 < field.size()) {
      int v = (field[i + 1] - '0') * 64 + (field[i + 2] - '0') * 8 + (field[i + 3] - '0');
      out += static_cast<char>(v);
      i += 3;
    } else {
      out += next;
      ++i;
    }
  }
  return out;
}

std::vector<std::string> SplitEscaped(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current += line[i];
      current += line[i + 1];
      ++i;
    } else if (line[i] == ':') {
      fields.push_back(JournalUnescape(current));
      current.clear();
    } else {
      current += line[i];
    }
  }
  fields.push_back(JournalUnescape(current));
  return fields;
}

std::string JournalEntry::ToLine() const {
  std::string line = std::to_string(when);
  line += ':';
  line += JournalEscape(principal);
  line += ':';
  line += JournalEscape(query);
  for (const std::string& arg : args) {
    line += ':';
    line += JournalEscape(arg);
  }
  line += '\n';
  return line;
}

std::optional<JournalEntry> JournalEntry::FromLine(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::vector<std::string> fields = SplitEscaped(line);
  if (fields.size() < 3) {
    return std::nullopt;
  }
  std::optional<int64_t> when = ParseInt(fields[0]);
  if (!when.has_value()) {
    return std::nullopt;
  }
  JournalEntry entry;
  entry.when = *when;
  entry.principal = fields[1];
  entry.query = fields[2];
  entry.args.assign(fields.begin() + 3, fields.end());
  return entry;
}

void Journal::Append(JournalEntry entry) {
  if (!file_path_.empty()) {
    std::ofstream out(file_path_, std::ios::app | std::ios::binary);
    if (out) {
      out << entry.ToLine();
    }
  }
  entries_.push_back(std::move(entry));
}

std::vector<JournalEntry> Journal::EntriesSince(UnixTime since) const {
  std::vector<JournalEntry> out;
  for (const JournalEntry& entry : entries_) {
    if (entry.when > since) {
      out.push_back(entry);
    }
  }
  return out;
}

int Journal::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return -1;
  }
  int count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (std::optional<JournalEntry> entry = JournalEntry::FromLine(line)) {
      entries_.push_back(std::move(*entry));
      ++count;
    }
  }
  return count;
}

}  // namespace moira
