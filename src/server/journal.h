// The Moira server journal (paper section 5.2.2): "the journal file kept by
// the Moira server daemon contains a listing of all successful changes to the
// database", improving on the nightly backup by bounding transaction loss.
//
// Entries are kept in memory and optionally appended to a journal file, one
// escaped line per change; mrrestore can replay entries newer than a backup.
//
// The journal doubles as the replication log (src/repl): every committed
// entry carries a monotone sequence number assigned at append time, replicas
// resume streaming from `applied_seq + 1`, and TruncateThrough lets the
// primary drop already-backed-up prefixes (a replica asking for a truncated
// range falls back to a snapshot transfer).
#ifndef MOIRA_SRC_SERVER_JOURNAL_H_
#define MOIRA_SRC_SERVER_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"

namespace moira {

struct JournalEntry {
  // Monotone sequence number; 0 means "not yet assigned" (Journal::Append
  // assigns the next one).
  uint64_t seq = 0;
  UnixTime when = 0;
  std::string principal;
  // Application name the change was made with (recorded in modwith).  Kept in
  // the journal so replicas replay with the original identity and produce
  // byte-identical modby/modwith stamps.
  std::string client;
  std::string query;
  std::vector<std::string> args;

  // Line format: seq:time:principal:client:query:arg... with ':' and '\'
  // escaped, ending in a newline.  Identical escaping to the backup files
  // (section 5.2.2).
  std::string ToLine() const;
  static std::optional<JournalEntry> FromLine(std::string_view line);
};

class Journal {
 public:
  Journal() = default;

  // If set, every entry is also appended to this file.  The stream is kept
  // open and flushed after every append (see Append).
  void SetFile(std::string path);

  // Records one entry.  Assigns the next sequence number when entry.seq is 0
  // (entries carrying a seq — e.g. reloaded from disk — keep it and advance
  // the counter past it).  When a journal file is attached the line is
  // written and flushed before this returns, so an entry is durable before it
  // is acknowledged to the client or streamed to a replica.  Returns the
  // entry's sequence number.
  uint64_t Append(JournalEntry entry);

  const std::vector<JournalEntry>& entries() const { return entries_; }

  // Entries recorded strictly after `since`.
  std::vector<JournalEntry> EntriesSince(UnixTime since) const;

  // Up to `max` retained entries with seq >= from_seq, in order.
  std::vector<JournalEntry> EntriesFromSeq(uint64_t from_seq,
                                           size_t max = SIZE_MAX) const;

  // Sequence number of the oldest retained entry; with nothing retained,
  // base_seq() + 1 (the seq the next retained entry would get).
  uint64_t first_seq() const;
  // Sequence number of the newest entry ever appended (0 if none).
  uint64_t last_seq() const { return last_seq_; }
  // Highest truncated sequence number: entries 1..base_seq() are gone.
  uint64_t base_seq() const { return base_seq_; }

  // Drops retained entries with seq <= through (journal pruning after a
  // backup); replicas behind `through` must fall back to a snapshot.
  // Returns the number of entries dropped.
  size_t TruncateThrough(uint64_t through);

  // Failover promotion: continue numbering from `next_seq` so the promoted
  // replica's first post-failover entry extends the old primary's sequence.
  void ResetSequence(uint64_t next_seq);

  void Clear() {
    entries_.clear();
    base_seq_ = last_seq_;
  }

  // Loads entries from a journal file (does not clear existing ones).
  // Returns the number of entries read, or -1 if the file cannot be opened.
  // Unparsable lines — e.g. a torn final line from a crash mid-append — are
  // skipped and counted in corrupt_lines_skipped().
  int LoadFile(const std::string& path);
  int corrupt_lines_skipped() const { return corrupt_lines_skipped_; }

 private:
  std::vector<JournalEntry> entries_;
  std::string file_path_;
  std::ofstream file_;
  uint64_t last_seq_ = 0;
  uint64_t base_seq_ = 0;  // entries 1..base_seq_ have been truncated
  int corrupt_lines_skipped_ = 0;
};

// Escapes one field: ':' -> "\:", '\' -> "\\", non-printing -> \nnn octal.
std::string JournalEscape(std::string_view field);
// Inverse of JournalEscape.
std::string JournalUnescape(std::string_view field);
// Splits a line on unescaped colons.
std::vector<std::string> SplitEscaped(std::string_view line);

}  // namespace moira

#endif  // MOIRA_SRC_SERVER_JOURNAL_H_
