// The Moira server journal (paper section 5.2.2): "the journal file kept by
// the Moira server daemon contains a listing of all successful changes to the
// database", improving on the nightly backup by bounding transaction loss.
//
// Entries are kept in memory and optionally appended to a journal file, one
// escaped line per change; mrrestore can replay entries newer than a backup.
#ifndef MOIRA_SRC_SERVER_JOURNAL_H_
#define MOIRA_SRC_SERVER_JOURNAL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"

namespace moira {

struct JournalEntry {
  UnixTime when = 0;
  std::string principal;
  std::string query;
  std::vector<std::string> args;

  // Line format: time:principal:query:arg... with ':' and '\' escaped, ending
  // in a newline.  Identical escaping to the backup files (section 5.2.2).
  std::string ToLine() const;
  static std::optional<JournalEntry> FromLine(std::string_view line);
};

class Journal {
 public:
  Journal() = default;

  // If set, every entry is also appended to this file.
  void SetFile(std::string path) { file_path_ = std::move(path); }

  void Append(JournalEntry entry);

  const std::vector<JournalEntry>& entries() const { return entries_; }

  // Entries recorded strictly after `since`.
  std::vector<JournalEntry> EntriesSince(UnixTime since) const;

  void Clear() { entries_.clear(); }

  // Loads entries from a journal file (does not clear existing ones).
  // Returns the number of entries read, or -1 if the file cannot be opened.
  int LoadFile(const std::string& path);

 private:
  std::vector<JournalEntry> entries_;
  std::string file_path_;
};

// Escapes one field: ':' -> "\:", '\' -> "\\", non-printing -> \nnn octal.
std::string JournalEscape(std::string_view field);
// Inverse of JournalEscape.
std::string JournalUnescape(std::string_view field);
// Splits a line on unescaped colons.
std::vector<std::string> SplitEscaped(std::string_view line);

}  // namespace moira

#endif  // MOIRA_SRC_SERVER_JOURNAL_H_
