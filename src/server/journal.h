// The Moira server journal (paper section 5.2.2): "the journal file kept by
// the Moira server daemon contains a listing of all successful changes to the
// database", improving on the nightly backup by bounding transaction loss.
//
// Entries are kept in memory and optionally appended to a journal file, one
// escaped line per change; mrrestore can replay entries newer than a backup.
//
// The journal doubles as the replication log (src/repl): every committed
// entry carries a monotone sequence number assigned at append time, replicas
// resume streaming from `applied_seq + 1`, and TruncateThrough lets the
// primary drop already-backed-up prefixes (a replica asking for a truncated
// range falls back to a snapshot transfer).
//
// On disk the journal follows the MooseFS master's metadata discipline
// (DESIGN.md "Checkpoint & changelog lifecycle"): a data directory holds the
// live changelog file `journal` plus sealed, numbered segments
// `journal.<first_seq>-<last_seq>` produced by Rotate().  TruncateThrough
// retires whole sealed segments from disk, so the retained on-disk bytes
// always equal the retained in-memory entries, and AttachDirectory recovers
// the tail (and base_seq_/last_seq_) after a restart.  Periodic checkpoints
// of the full database are written next to the segments by the backup layer
// (src/backup/checkpoint.h) as `checkpoint.<seq>` directories; the naming
// helpers live here so the server can stream a checkpoint for replica
// bootstrap without depending on the backup library.
#ifndef MOIRA_SRC_SERVER_JOURNAL_H_
#define MOIRA_SRC_SERVER_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"

namespace moira {

struct JournalEntry {
  // Monotone sequence number; 0 means "not yet assigned" (Journal::Append
  // assigns the next one).
  uint64_t seq = 0;
  UnixTime when = 0;
  std::string principal;
  // Application name the change was made with (recorded in modwith).  Kept in
  // the journal so replicas replay with the original identity and produce
  // byte-identical modby/modwith stamps.
  std::string client;
  std::string query;
  std::vector<std::string> args;
  // Replication epoch the entry was written under; 0 means "not yet
  // stamped" (Journal::Append stamps the journal's current epoch).  Carried
  // in the line format so replicas can refuse entries from a fenced primary.
  // Kept at the end of the struct (with `tag`) so existing aggregate
  // initializers stay valid.
  uint64_t epoch = 0;
  // Client-supplied idempotency tag ("" = untagged).  Replicas record applied
  // tags so a replayed mutation is acknowledged with its original seq instead
  // of re-executing — even after a failover.
  std::string tag;

  // Line format: seq:epoch:time:principal:client:tag:query:arg... with ':'
  // and '\' escaped, ending in a newline.  Identical escaping to the backup
  // files (section 5.2.2).
  std::string ToLine() const;
  static std::optional<JournalEntry> FromLine(std::string_view line);
};

// One sealed changelog segment: <dir>/journal.<first_seq>-<last_seq>,
// covering exactly that inclusive sequence range.
struct JournalSegment {
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  std::string path;
};

class Journal {
 public:
  Journal() = default;

  // If set, every entry is also appended to this file.  The stream is kept
  // open and flushed after every append (see Append).  Legacy single-file
  // mode: rotation and on-disk truncation need a directory (below).
  void SetFile(std::string path);

  // Attaches the journal to a data directory and recovers it from what is on
  // disk: sealed segments and the live file are scanned in order, every entry
  // with seq > after_seq is loaded into memory (entries at or below
  // after_seq are covered by a checkpoint), base_seq_/last_seq_ are restored
  // (base_seq_ = after_seq, or the first retained seq - 1 when older entries
  // were already retired), and the live file is opened for appending.  The
  // directory is created if missing, so a fresh primary and a restarted one
  // use the same call.  Returns the number of entries loaded, or -1 if the
  // directory cannot be created or read.
  int AttachDirectory(const std::string& dir, uint64_t after_seq = 0);

  // Directory-mode root ("" when unattached or in single-file mode).
  const std::string& directory() const { return dir_; }

  // Seals the live file into journal.<first>-<last> and reopens an empty
  // live file.  Returns false (and does nothing) when not in directory mode
  // or the live file holds no entries.
  bool Rotate();

  // Auto-rotation: in directory mode, Append seals the live file once it
  // holds this many entries (0 disables, the default).
  void set_rotate_threshold(size_t n) { rotate_threshold_ = n; }

  // Sealed segments currently on disk, ascending by first_seq.
  const std::vector<JournalSegment>& segments() const { return segments_; }

  // Offline scan of a journal directory: every entry on disk with
  // after_seq < seq <= through_seq, in order (sealed segments, then the live
  // file).  Corrupt lines are skipped.  Returns nullopt if the directory
  // cannot be read.  Used by mrrestore-style point-in-time replay and by
  // tests asserting disk contents.
  static std::optional<std::vector<JournalEntry>> ReadRange(
      const std::string& dir, uint64_t after_seq = 0,
      uint64_t through_seq = UINT64_MAX);

  // Records one entry.  Assigns the next sequence number when entry.seq is 0
  // (entries carrying a seq — e.g. reloaded from disk — keep it and advance
  // the counter past it).  When a journal file is attached the line is
  // written and flushed before this returns, so an entry is durable before it
  // is acknowledged to the client or streamed to a replica.  Returns the
  // entry's sequence number.
  uint64_t Append(JournalEntry entry);

  const std::vector<JournalEntry>& entries() const { return entries_; }

  // Entries recorded strictly after `since`.
  std::vector<JournalEntry> EntriesSince(UnixTime since) const;

  // Up to `max` retained entries with seq >= from_seq, in order.
  std::vector<JournalEntry> EntriesFromSeq(uint64_t from_seq,
                                           size_t max = SIZE_MAX) const;

  // Sequence number of the oldest retained entry; with nothing retained,
  // base_seq() + 1 (the seq the next retained entry would get).
  uint64_t first_seq() const;
  // Sequence number of the newest entry ever appended (0 if none).
  uint64_t last_seq() const { return last_seq_; }
  // Highest truncated sequence number: entries 1..base_seq() are gone.
  uint64_t base_seq() const { return base_seq_; }

  // Drops retained entries with seq <= through (journal pruning after a
  // checkpoint); replicas behind the cut must fall back to a snapshot.
  // In directory mode the truncation is at segment granularity: sealed
  // segments whose whole range is <= through are deleted from disk (the live
  // file is sealed first when `through` covers it entirely), a segment
  // straddling `through` is kept in full both on disk and in memory, and
  // base_seq advances only to the highest retired segment boundary — so the
  // on-disk bytes always equal the retained entries.  Returns the number of
  // entries dropped from memory.
  size_t TruncateThrough(uint64_t through);

  // Failover promotion: continue numbering from `next_seq` so the promoted
  // replica's first post-failover entry extends the old primary's sequence.
  void ResetSequence(uint64_t next_seq);

  // Hard reset for a demoted-and-re-promoted embedded journal: drops every
  // retained entry and restarts numbering at `next_seq`, treating entries
  // 1..next_seq-1 as cluster history this server does not hold (base_seq
  // moves to next_seq - 1).  Unlike ResetSequence this also moves the
  // counter BACKWARD, discarding a dead reign's unreplicated suffix.  Only
  // supported for memory-only journals (replica-embedded); directory mode is
  // not rebased.
  void RebaseTo(uint64_t next_seq);

  // Replication epoch stamped onto appended entries.  Starts at 1; a
  // promoted replica installs its election epoch with set_epoch, and loading
  // entries from disk restores the highest epoch seen (so a restarted
  // primary keeps its fencing position).
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { if (epoch > epoch_) epoch_ = epoch; }

  // Drops every retained entry (base_seq catches up to last_seq).  In
  // directory mode the sealed segments are deleted and the live file is
  // emptied, so disk matches memory.
  void Clear();

  // Loads entries from a journal file (does not clear existing ones).
  // Returns the number of entries read, or -1 if the file cannot be opened.
  // Unparsable lines — e.g. a torn final line from a crash mid-append — are
  // skipped and counted in corrupt_lines_skipped().  When the journal was
  // empty and the file starts past seq 1 (a truncated/rotated journal),
  // base_seq_ is restored to first_seq - 1 so a restarted primary reports
  // MR_REPL_TRUNCATED instead of streaming a gapped range.
  int LoadFile(const std::string& path);
  int corrupt_lines_skipped() const { return corrupt_lines_skipped_; }

 private:
  std::string LivePath() const;
  // Opens the live file for appending (creating it if needed).
  void OpenLive();
  // Loads one on-disk file, keeping entries with seq > after_seq; returns
  // entries kept, or -1 if the file cannot be opened.  `track_live` also
  // records the file's first/last seq and line count as the live-file state.
  int LoadOneFile(const std::string& path, uint64_t after_seq, bool track_live);

  std::vector<JournalEntry> entries_;
  std::string file_path_;
  std::ofstream file_;
  uint64_t last_seq_ = 0;
  uint64_t base_seq_ = 0;  // entries 1..base_seq_ have been truncated
  uint64_t epoch_ = 1;     // current replication epoch (monotone)
  int corrupt_lines_skipped_ = 0;

  // Directory mode (empty dir_ = legacy single-file or memory-only mode).
  std::string dir_;
  std::vector<JournalSegment> segments_;
  uint64_t live_first_seq_ = 0;  // 0 = live file holds no entries
  uint64_t live_last_seq_ = 0;
  size_t live_count_ = 0;
  size_t rotate_threshold_ = 0;
};

// Escapes one field: ':' -> "\:", '\' -> "\\", non-printing -> \nnn octal.
std::string JournalEscape(std::string_view field);
// Inverse of JournalEscape.  A backslash sequence JournalEscape never emits
// (fewer than three octal digits, a non-octal digit in the triple, a lone
// trailing backslash) is copied literally rather than decoded as garbage.
std::string JournalUnescape(std::string_view field);
// Splits a line on unescaped colons.
std::vector<std::string> SplitEscaped(std::string_view line);

// --- Checkpoint directory naming --------------------------------------------
// Checkpoints live next to the changelog segments as `checkpoint.<seq>`
// directories of backup-format table files plus a SEQ stamp file written
// last; the writer (src/backup/checkpoint.h) builds them under
// `checkpoint.tmp` and renames, so a directory without a matching stamp is a
// crashed write and is ignored here.  The naming lives in moira_server so
// the wire server can stream a checkpoint for replica bootstrap without a
// dependency cycle onto the backup library.

inline constexpr char kCheckpointTempName[] = "checkpoint.tmp";
inline constexpr char kCheckpointStampName[] = "SEQ";

struct CheckpointRef {
  uint64_t seq = 0;
  std::string path;
};

// "checkpoint.<seq>" (the directory's basename).
std::string CheckpointDirName(uint64_t seq);

// Complete checkpoints under root, ascending by seq.  checkpoint.tmp,
// malformed names, and directories whose SEQ stamp is missing or disagrees
// with the name are skipped.  An unreadable/missing root lists as empty.
std::vector<CheckpointRef> ListCheckpoints(const std::string& root);

}  // namespace moira

#endif  // MOIRA_SRC_SERVER_JOURNAL_H_
