// Synthetic Athena site generator (DESIGN.md substitution for the registrar's
// tape and the production MIT population).
//
// Builds a deterministic database matching the paper's scale assumptions
// (section 5.1): ~10,000 users designed-for, one Hesiod server, 20 NFS locker
// servers, one mail hub, Zephyr servers, post offices, clusters,
// workstations, printers, network services, and mailing/group lists.  The
// same seed always produces the same site, so benches are reproducible.
#ifndef MOIRA_SRC_SIM_POPULATION_H_
#define MOIRA_SRC_SIM_POPULATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/context.h"
#include "src/krb/kerberos.h"
#include "src/update/sim_host.h"

namespace moira {

struct SiteSpec {
  // Population (paper: "designed optimally for 10,000 active users"; the
  // File Organization table sizes correspond to ~7,500 active accounts).
  int total_users = 10000;
  int active_permille = 750;    // users with status 1, per 1000
  int registerable_permille = 200;  // status 0, on the registrar's tape
  // Infrastructure (paper section 5.1.F).
  int nfs_servers = 20;
  int partitions_per_server = 1;
  int pop_servers = 2;
  int pop_capacity = 8000;
  int zephyr_servers = 3;
  int zephyr_classes = 6;
  // Site furniture, calibrated so generated file sizes land near the
  // paper's File Organization table (section 5.1.G).
  int workstations = 120;
  int clusters = 12;
  int maillists = 600;
  int maillist_avg_members = 15;
  int project_groups = 150;
  int printers = 25;
  int network_services = 120;
  bool per_user_groups = true;
  bool register_kerberos_principals = false;  // adds a principal per active user
  uint64_t seed = 1988;
};

// A smaller site for unit tests: ~60 users, 3 NFS servers.
SiteSpec TestSiteSpec();

class SiteBuilder {
 public:
  SiteBuilder(MoiraContext* mc, KerberosRealm* realm) : mc_(mc), realm_(realm) {}

  // Populates the (schema'd, seeded) database.  Returns the number of users
  // created.
  int Build(const SiteSpec& spec);

  // Machine names created for each role.
  const std::vector<std::string>& nfs_server_names() const { return nfs_servers_; }
  const std::vector<std::string>& pop_server_names() const { return pop_servers_; }
  const std::string& hesiod_server_name() const { return hesiod_server_; }
  const std::string& mailhub_name() const { return mailhub_; }
  const std::vector<std::string>& zephyr_server_names() const { return zephyr_servers_; }
  const std::vector<std::string>& active_logins() const { return active_logins_; }
  const std::string& admin_login() const { return admin_login_; }

 private:
  MoiraContext* mc_;
  KerberosRealm* realm_;
  std::vector<std::string> nfs_servers_;
  std::vector<std::string> pop_servers_;
  std::vector<std::string> zephyr_servers_;
  std::string hesiod_server_;
  std::string mailhub_;
  std::vector<std::string> active_logins_;
  std::string admin_login_;
};

// Creates one SimHost per serverhost machine in the database and registers
// them in `directory`.  Hosts are owned by the returned vector.
std::vector<std::unique_ptr<SimHost>> CreateSimHosts(MoiraContext& mc,
                                                     KerberosRealm* realm,
                                                     HostDirectory* directory);

}  // namespace moira

#endif  // MOIRA_SRC_SIM_POPULATION_H_
