#include "src/sim/population.h"

#include <set>

#include "src/common/random.h"
#include "src/common/strutil.h"
#include "src/core/registry.h"
#include "src/krb/crypt.h"

namespace moira {
namespace {

constexpr const char* kFirstNames[] = {
    "Harmon", "Angela", "Gerhard", "Martin",  "Peter",  "Janet",  "Carol",  "Douglas",
    "Elena",  "Frank",  "Grace",   "Henry",   "Irene",  "Jacob",  "Karen",  "Louis",
    "Maria",  "Nathan", "Olivia",  "Patrick", "Quincy", "Rachel", "Samuel", "Teresa",
    "Ulric",  "Vera",   "Walter",  "Xenia",   "Yusuf",  "Zelda",  "Alan",   "Beth",
    "Carl",   "Dora",   "Evan",    "Fay",     "Glen",   "Hope",   "Ivan",   "June",
};

constexpr const char* kLastNames[] = {
    "Fowler",   "Barba",     "Messmer",  "Zimmermann", "Delaney",  "Talford",  "Welsh",
    "Stein",    "Abbott",    "Becker",   "Crowley",    "Dempsey",  "Ellison",  "Fitzroy",
    "Garver",   "Holbrook",  "Ivers",    "Jansson",    "Keller",   "Lindqvist", "Maddox",
    "Norwood",  "Oberlin",   "Paquette", "Quimby",     "Radcliffe", "Sampson", "Thackery",
    "Underhill", "Vasquez",  "Whitford", "Xanthos",    "Yarrow",   "Zielinski", "Ames",
    "Boone",    "Carver",    "Dunne",    "Eads",       "Finch",    "Gold",     "Hale",
    "Innes",    "Judd",      "Kemp",     "Lowe",       "Mott",     "Nash",     "Orr",
    "Pike",     "Quist",     "Reed",     "Shaw",       "Tate",     "Uhl",      "Vane",
    "West",     "York",      "Zink",     "Bligh",
};

constexpr const char* kShells[] = {"/bin/csh", "/bin/sh", "/bin/athena/tcsh"};
constexpr const char* kClasses[] = {"1989", "1990", "1991", "1992",
                                    "G",    "STAFF", "FACULTY", "OTHER"};
constexpr const char* kProtocols[] = {"TCP", "UDP"};

// Unique-login construction: initial + lowercased last name, truncated to 7
// characters, with a numeric suffix on collision.
std::string MakeLogin(std::string_view first, std::string_view last,
                      std::set<std::string>* taken) {
  std::string base;
  base += static_cast<char>(std::tolower(static_cast<unsigned char>(first[0])));
  for (char c : last.substr(0, 7)) {
    base += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  std::string login = base;
  for (int suffix = 2; !taken->insert(login).second; ++suffix) {
    login = base + std::to_string(suffix);
  }
  return login;
}

// Sequential id counters mirroring the values-relation hints; flushed back
// into the values table when Build finishes.
struct Counters {
  int64_t users_id;
  int64_t uid;
  int64_t list_id;
  int64_t gid;
  int64_t mach_id;
  int64_t clu_id;
  int64_t filsys_id;
  int64_t nfsphys_id;
};

}  // namespace

SiteSpec TestSiteSpec() {
  SiteSpec spec;
  spec.total_users = 60;
  spec.nfs_servers = 3;
  spec.workstations = 12;
  spec.clusters = 3;
  spec.maillists = 8;
  spec.maillist_avg_members = 4;
  spec.project_groups = 5;
  spec.printers = 3;
  spec.network_services = 6;
  return spec;
}

int SiteBuilder::Build(const SiteSpec& spec) {
  MoiraContext& mc = *mc_;
  SplitMix64 rng(spec.seed);
  Counters id{};
  mc.GetValue("users_id", &id.users_id);
  mc.GetValue("uid", &id.uid);
  mc.GetValue("list_id", &id.list_id);
  mc.GetValue("gid", &id.gid);
  mc.GetValue("mach_id", &id.mach_id);
  mc.GetValue("clu_id", &id.clu_id);
  mc.GetValue("filsys_id", &id.filsys_id);
  mc.GetValue("nfsphys_id", &id.nfsphys_id);

  const Value zero{int64_t{0}};
  const Value setup{"site-setup"};
  const Value root{"root"};
  const UnixTime now = mc.Now();

  auto add_machine = [&](const std::string& name, const char* type) {
    int64_t mach_id = id.mach_id++;
    mc.machine()->Append({Value(name), Value(mach_id), Value(type), Value(now), root, setup});
    return mach_id;
  };

  // --- infrastructure machines (paper section 5.1.F) ---
  hesiod_server_ = "SUOMI.MIT.EDU";
  int64_t hesiod_mach = add_machine(hesiod_server_, "VAX");
  mailhub_ = "ATHENA.MIT.EDU";
  int64_t mail_mach = add_machine(mailhub_, "VAX");
  std::vector<int64_t> pop_machs;
  for (int i = 1; i <= spec.pop_servers; ++i) {
    pop_servers_.push_back("ATHENA-PO-" + std::to_string(i) + ".MIT.EDU");
    pop_machs.push_back(add_machine(pop_servers_.back(), "VAX"));
  }
  std::vector<int64_t> nfs_machs;
  for (int i = 1; i <= spec.nfs_servers; ++i) {
    nfs_servers_.push_back("NFS-" + std::to_string(i) + ".MIT.EDU");
    nfs_machs.push_back(add_machine(nfs_servers_.back(), "VAX"));
  }
  std::vector<int64_t> zephyr_machs;
  for (int i = 1; i <= spec.zephyr_servers; ++i) {
    zephyr_servers_.push_back("ZEPHYR-" + std::to_string(i) + ".MIT.EDU");
    zephyr_machs.push_back(add_machine(zephyr_servers_.back(), "RT"));
  }
  std::vector<int64_t> workstation_machs;
  std::vector<std::string> workstation_names;
  for (int i = 1; i <= spec.workstations; ++i) {
    workstation_names.push_back("W" + std::to_string(i) + ".MIT.EDU");
    workstation_machs.push_back(
        add_machine(workstation_names.back(), i % 2 == 0 ? "RT" : "VAX"));
  }

  // --- clusters, service cluster data, machine assignments ---
  std::vector<int64_t> cluster_ids;
  for (int i = 1; i <= spec.clusters; ++i) {
    int64_t clu_id = id.clu_id++;
    cluster_ids.push_back(clu_id);
    std::string name = "bldg" + std::to_string(i);
    mc.cluster()->Append({Value(name), Value(clu_id), Value("cluster " + name),
                          Value("Building " + std::to_string(i)), Value(now), root, setup});
    mc.svc()->Append({Value(clu_id), Value("zephyr"),
                      Value(zephyr_servers_[i % zephyr_servers_.size()])});
    mc.svc()->Append({Value(clu_id), Value("usrlib"), Value(name + "-usrlib")});
    mc.svc()->Append({Value(clu_id), Value("lpr"), Value("printer-" + std::to_string(
                                                       1 + i % std::max(spec.printers, 1)))});
  }
  for (size_t i = 0; i < workstation_machs.size(); ++i) {
    mc.mcmap()->Append({Value(workstation_machs[i]),
                        Value(cluster_ids[i % cluster_ids.size()])});
    if (i % 10 == 9 && cluster_ids.size() > 1) {
      // Every tenth workstation sits in two clusters, exercising the
      // pseudo-cluster path of the hesiod generator.
      mc.mcmap()->Append({Value(workstation_machs[i]),
                          Value(cluster_ids[(i + 1) % cluster_ids.size()])});
    }
  }

  // --- NFS physical partitions ---
  struct PhysSlot {
    int64_t phys_id;
    int64_t mach_id;
    std::string dir;
    int64_t allocated = 0;
    size_t row = 0;
  };
  std::vector<PhysSlot> partitions;
  constexpr int kStatusCycle[4] = {kFsStudent, kFsStudent | kFsMisc,
                                   kFsFaculty | kFsStaff, kFsStudent | kFsStaff};
  for (int s = 0; s < spec.nfs_servers; ++s) {
    for (int p = 0; p < spec.partitions_per_server; ++p) {
      PhysSlot slot;
      slot.phys_id = id.nfsphys_id++;
      slot.mach_id = nfs_machs[s];
      slot.dir = "/u" + std::to_string(p + 1);
      slot.row = mc.nfsphys()->Append(
          {Value(slot.phys_id), Value(slot.mach_id), Value(slot.dir),
           Value("ra0" + std::to_string(p)), Value(int64_t{kStatusCycle[s % 4] | kFsStudent}),
           Value(int64_t{0}), Value(int64_t{400000}), Value(now), root, setup});
      partitions.push_back(std::move(slot));
    }
  }

  // --- users ---
  int64_t def_quota = 300;
  mc.GetValue("def_quota", &def_quota);
  std::set<std::string> taken_logins;
  std::vector<int64_t> active_user_ids;
  std::vector<int64_t> pop_counts(pop_machs.size(), 0);
  Table* users = mc.users();
  size_t partition_cursor = 0;
  for (int i = 0; i < spec.total_users; ++i) {
    const char* first = kFirstNames[rng.Below(std::size(kFirstNames))];
    const char* last = kLastNames[rng.Below(std::size(kLastNames))];
    std::string middle(1, static_cast<char>('A' + rng.Below(26)));
    std::string id_number = std::to_string(910000000 + i);
    std::string mit_id = HashMitId(id_number, first, last);
    int64_t uid = id.uid++;
    int64_t users_id = id.users_id++;
    int64_t roll = static_cast<int64_t>(rng.Below(1000));
    int64_t status;
    if (roll < spec.active_permille) {
      status = kUserActive;
    } else if (roll < spec.active_permille + spec.registerable_permille) {
      status = kUserNotRegistered;
    } else {
      status = static_cast<int64_t>(2 + rng.Below(3));  // 2, 3, or 4
    }
    bool has_login = status == kUserActive || status == kUserHalfRegistered;
    std::string login =
        has_login ? MakeLogin(first, last, &taken_logins) : "#" + std::to_string(uid);
    std::string fullname = std::string(first) + " " + middle + " " + last;
    bool active = status == kUserActive;
    int64_t pop_index = active ? static_cast<int64_t>(rng.Below(pop_machs.size())) : 0;
    users->Append({
        Value(login), Value(users_id), Value(uid),
        Value(kShells[rng.Below(std::size(kShells))]), Value(last), Value(first),
        Value(middle), Value(status), Value(mit_id),
        Value(kClasses[rng.Below(std::size(kClasses))]), Value(now), root, setup,
        Value(fullname), Value(""), Value(""), Value(""), Value(""), Value(""), Value(""),
        Value(""), Value(now), root, setup,
        Value(active ? "POP" : "NONE"), Value(active ? pop_machs[pop_index] : 0), zero,
        Value(now), root, setup,
    });
    if (!active) {
      continue;
    }
    ++pop_counts[pop_index];
    active_logins_.push_back(login);
    active_user_ids.push_back(users_id);
    if (spec.per_user_groups) {
      int64_t list_id = id.list_id++;
      int64_t gid = id.gid++;
      mc.list()->Append({Value(login), Value(list_id), Value(int64_t{1}), zero, zero, zero,
                         Value(int64_t{1}), Value(gid), Value("user group"), Value("USER"),
                         Value(users_id), Value(now), root, setup});
      mc.members()->Append({Value(list_id), Value("USER"), Value(users_id)});
    } else {
      id.list_id++;  // keep id allocation stable across configurations
    }
    // Home filesystem + quota on the next partition (round robin).
    PhysSlot& slot = partitions[partition_cursor];
    partition_cursor = (partition_cursor + 1) % partitions.size();
    int64_t filsys_id = id.filsys_id++;
    mc.filesys()->Append({Value(login), zero, Value(filsys_id), Value(slot.phys_id),
                          Value("NFS"), Value(slot.mach_id), Value(slot.dir + "/" + login),
                          Value("/mit/" + login), Value("w"), Value(""), Value(users_id),
                          Value(spec.per_user_groups ? id.list_id - 1 : 0),
                          Value(int64_t{1}), Value("HOMEDIR"), Value(now), root, setup});
    mc.nfsquota()->Append({Value(users_id), Value(filsys_id), Value(slot.phys_id),
                           Value(def_quota), Value(int64_t{0}), Value(int64_t{0}),
                           Value(int64_t{0}), Value(now), root, setup});
    slot.allocated += def_quota;
    if (spec.register_kerberos_principals) {
      realm_->AddPrincipal(login, "pw:" + login);
    }
  }
  for (PhysSlot& slot : partitions) {
    MoiraContext::SetCell(mc.nfsphys(), slot.row, "allocated", Value(slot.allocated));
  }

  // --- administrator: a member of dbadmin, which holds every capability ---
  {
    int64_t users_id = id.users_id++;
    int64_t uid = id.uid++;
    admin_login_ = "opsmgr";
    taken_logins.insert(admin_login_);
    users->Append({Value(admin_login_), Value(users_id), Value(uid), Value("/bin/csh"),
                   Value("Operations"), Value("Moira"), Value("X"),
                   Value(int64_t{kUserActive}), Value(HashMitId("900000000", "Moira",
                                                                "Operations")),
                   Value("STAFF"), Value(now), root, setup, Value("Moira X Operations"),
                   Value(""), Value(""), Value(""), Value(""), Value(""), Value(""),
                   Value(""), Value(now), root, setup, Value("NONE"), zero, zero,
                   Value(now), root, setup});
    RowRef dbadmin = mc.ListByName("dbadmin");
    if (dbadmin.code == MR_SUCCESS) {
      mc.members()->Append(
          {Value(MoiraContext::IntCell(mc.list(), dbadmin.row, "list_id")), Value("USER"),
           Value(users_id)});
    }
    realm_->AddPrincipal(admin_login_, "pw:opsmgr");
    QueryRegistry::Instance().SeedCapacls(mc, "dbadmin");
  }

  // --- mailing lists and project groups ---
  std::vector<int64_t> maillist_ids;
  for (int i = 1; i <= spec.maillists; ++i) {
    int64_t list_id = id.list_id++;
    std::string name = "ml-" + std::to_string(i);
    int64_t owner = active_user_ids.empty()
                        ? 0
                        : active_user_ids[rng.Below(active_user_ids.size())];
    mc.list()->Append({Value(name), Value(list_id), Value(int64_t{1}),
                       Value(int64_t{i % 3 == 0}), Value(int64_t{i % 17 == 0}),
                       Value(int64_t{1}), zero, Value(int64_t{-1}),
                       Value("mailing list " + name), Value("USER"), Value(owner),
                       Value(now), root, setup});
    int member_count =
        1 + static_cast<int>(rng.Below(static_cast<uint64_t>(2 * spec.maillist_avg_members)));
    for (int m = 0; m < member_count && !active_user_ids.empty(); ++m) {
      mc.members()->Append({Value(list_id), Value("USER"),
                            Value(active_user_ids[rng.Below(active_user_ids.size())])});
    }
    if (!maillist_ids.empty() && rng.Chance(1, 10)) {
      mc.members()->Append({Value(list_id), Value("LIST"),
                            Value(maillist_ids[rng.Below(maillist_ids.size())])});
    }
    if (rng.Chance(1, 20)) {
      int64_t string_id = mc.InternString("ext" + std::to_string(i) + "@other.edu");
      mc.members()->Append({Value(list_id), Value("STRING"), Value(string_id)});
    }
    maillist_ids.push_back(list_id);
  }
  std::vector<int64_t> group_ids;
  for (int i = 1; i <= spec.project_groups; ++i) {
    int64_t list_id = id.list_id++;
    int64_t gid = id.gid++;
    std::string name = "prj-" + std::to_string(i);
    int64_t owner = active_user_ids.empty()
                        ? 0
                        : active_user_ids[rng.Below(active_user_ids.size())];
    mc.list()->Append({Value(name), Value(list_id), Value(int64_t{1}), zero, zero, zero,
                       Value(int64_t{1}), Value(gid), Value("project group " + name),
                       Value("USER"), Value(owner), Value(now), root, setup});
    int member_count = 2 + static_cast<int>(rng.Below(10));
    for (int m = 0; m < member_count && !active_user_ids.empty(); ++m) {
      mc.members()->Append({Value(list_id), Value("USER"),
                            Value(active_user_ids[rng.Below(active_user_ids.size())])});
    }
    group_ids.push_back(list_id);
  }

  // --- printers ---
  for (int i = 1; i <= spec.printers; ++i) {
    std::string name = "printer-" + std::to_string(i);
    int64_t spool_mach = workstation_machs.empty()
                             ? hesiod_mach
                             : workstation_machs[i % workstation_machs.size()];
    mc.printcap()->Append({Value(name), Value(spool_mach),
                           Value("/usr/spool/printer/" + name), Value(name), Value(""),
                           Value(now), root, setup});
  }

  // --- network services ---
  for (int i = 1; i <= spec.network_services; ++i) {
    mc.services()->Append({Value("svc" + std::to_string(i)), Value(kProtocols[i % 2]),
                           Value(int64_t{5000 + i}), Value("synthetic service"),
                           Value(now), root, setup});
  }

  // --- zephyr classes ---
  for (int i = 1; i <= spec.zephyr_classes; ++i) {
    std::string klass = "zclass-" + std::to_string(i);
    std::string xmt_type = "NONE";
    int64_t xmt_id = 0;
    if (i % 3 == 1 && !group_ids.empty()) {
      xmt_type = "LIST";
      xmt_id = group_ids[i % group_ids.size()];
    } else if (i % 3 == 2 && !active_user_ids.empty()) {
      xmt_type = "USER";
      xmt_id = active_user_ids[i % active_user_ids.size()];
    }
    mc.zephyr()->Append({Value(klass), Value(xmt_type), Value(xmt_id), Value("NONE"), zero,
                         Value("NONE"), zero, Value("NONE"), zero, Value(now), root, setup});
  }

  // --- the DCM service and serverhost tables (paper sections 5.7/5.8) ---
  auto add_service = [&](const char* name, int64_t interval_minutes, const char* target,
                         const char* script, const char* type) {
    mc.servers()->Append({Value(name), Value(interval_minutes), Value(target), Value(script),
                          zero, zero, Value(type), Value(int64_t{1}), zero, zero, Value(""),
                          Value("NONE"), zero, Value(now), root, setup, zero});
  };
  auto add_serverhost = [&](const char* service, int64_t mach_id, int64_t value1,
                            int64_t value2, const std::string& value3) {
    mc.serverhosts()->Append({Value(service), Value(mach_id), Value(int64_t{1}), zero, zero,
                              zero, zero, Value(""), zero, zero, zero, zero, zero, zero,
                              Value(value1), Value(value2), Value(value3), Value(now), root,
                              setup});
  };
  add_service("HESIOD", 6 * 60, "/tmp/hesiod.out", "hesiod.sh", "REPLICAT");
  add_serverhost("HESIOD", hesiod_mach, 0, 0, "");
  add_service("NFS", 12 * 60, "/tmp/nfs.out", "nfs.sh", "UNIQUE");
  for (int64_t mach : nfs_machs) {
    add_serverhost("NFS", mach, 0, 0, "");
  }
  add_service("SMTP", 24 * 60, "/tmp/mail.out", "mail.sh", "UNIQUE");
  add_serverhost("SMTP", mail_mach, 0, 0, "");
  add_service("ZEPHYR", 24 * 60, "/tmp/zephyr.out", "zephyr.sh", "REPLICAT");
  for (int64_t mach : zephyr_machs) {
    add_serverhost("ZEPHYR", mach, 0, 0, "");
  }
  // POP is bookkeeping only (pobox placement), never updated by the DCM.
  add_service("POP", 0, "", "", "UNIQUE");
  for (size_t i = 0; i < pop_machs.size(); ++i) {
    add_serverhost("POP", pop_machs[i], pop_counts[i], spec.pop_capacity, "");
  }

  // Flush the id counters back to the values relation.
  mc.SetValue("users_id", id.users_id);
  mc.SetValue("uid", id.uid);
  mc.SetValue("list_id", id.list_id);
  mc.SetValue("gid", id.gid);
  mc.SetValue("mach_id", id.mach_id);
  mc.SetValue("clu_id", id.clu_id);
  mc.SetValue("filsys_id", id.filsys_id);
  mc.SetValue("nfsphys_id", id.nfsphys_id);
  return spec.total_users;
}

std::vector<std::unique_ptr<SimHost>> CreateSimHosts(MoiraContext& mc, KerberosRealm* realm,
                                                     HostDirectory* directory) {
  std::vector<std::unique_ptr<SimHost>> hosts;
  std::set<std::string> seen;
  Table* sh = mc.serverhosts();
  sh->Scan([&](size_t row, const Row&) {
    int64_t mach_id = MoiraContext::IntCell(sh, row, "mach_id");
    RowRef mach = mc.ExactOne(mc.machine(), "mach_id", Value(mach_id), MR_MACHINE);
    if (mach.code != MR_SUCCESS) {
      return true;
    }
    const std::string& name = MoiraContext::StrCell(mc.machine(), mach.row, "name");
    if (seen.insert(name).second) {
      hosts.push_back(std::make_unique<SimHost>(name, realm, &mc.db().clock()));
      directory->Register(hosts.back().get());
    }
    return true;
  });
  return hosts;
}

}  // namespace moira
