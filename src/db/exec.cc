#include "src/db/exec.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "src/common/strutil.h"
#include "src/common/worker_pool.h"

namespace moira {
namespace {

// Literal prefix of a wildcard pattern: the characters before the first
// metacharacter.  "mit-*" -> "mit-"; "*x" -> ""; "abc" -> "abc".
std::string_view LiteralPrefix(std::string_view pattern) {
  size_t pos = pattern.find_first_of("*?");
  return pos == std::string_view::npos ? pattern : pattern.substr(0, pos);
}

// Smallest string greater than every string with prefix `prefix`, or "" when
// no such bound exists (prefix is all 0xff): the range is [prefix, upper).
std::string PrefixUpperBound(std::string_view prefix) {
  std::string upper(prefix);
  while (!upper.empty()) {
    unsigned char last = static_cast<unsigned char>(upper.back());
    if (last < 0xff) {
      upper.back() = static_cast<char>(last + 1);
      return upper;
    }
    upper.pop_back();
  }
  return upper;
}

bool IsStringColumn(const Table& table, int column) {
  const auto& cols = table.schema().columns;
  return column >= 0 && static_cast<size_t>(column) < cols.size() &&
         cols[column].type == ColumnType::kString;
}

bool IsRangeOp(Condition::Op op) {
  return op == Condition::Op::kLt || op == Condition::Op::kLe ||
         op == Condition::Op::kGt || op == Condition::Op::kGe ||
         op == Condition::Op::kBetween;
}

// Tightens `bound` with a new candidate endpoint; `is_lower` picks the
// direction.  A lower bound tightens upward, an upper bound downward; on
// equal keys the exclusive endpoint is the tighter one.
void Tighten(AccessPath::Bound* bound, const Value& key, bool inclusive, bool is_lower) {
  if (!bound->present) {
    *bound = AccessPath::Bound{true, inclusive, key};
    return;
  }
  bool tighter = is_lower ? bound->key < key : key < bound->key;
  if (tighter) {
    // A strictly tighter key replaces the old endpoint entirely; the old
    // bound's inclusivity is irrelevant once its key no longer binds.
    *bound = AccessPath::Bound{true, inclusive, key};
  } else if (!(key < bound->key) && !(bound->key < key)) {
    // Equal keys: exclusive wins (x > 5 AND x >= 5 is x > 5).
    bound->inclusive = bound->inclusive && inclusive;
  }
}

// Column positions a Selector resolved by name must exist: a silently
// dropped predicate or join key would return rows the caller asked to
// exclude, so this aborts in every build mode (not just with asserts on).
int MustResolveColumn(const Table* table, std::string_view column, const char* what) {
  int col = table->ColumnIndex(column);
  if (col < 0) {
    std::fprintf(stderr, "moira: Selector::%s: no column '%.*s' in table '%s'\n", what,
                 static_cast<int>(column.size()), column.data(), table->name().c_str());
    std::abort();
  }
  return col;
}

}  // namespace

Value FoldCaseKey(const Value& v) {
  return v.is_string() ? Value(ToLowerCopy(v.AsString())) : v;
}

double EstimateMatchRows(const Table& table, const std::vector<Condition>& conditions) {
  const double live = static_cast<double>(table.LiveCount());
  const AccessPath path = PlanAccess(table, conditions);
  switch (path.kind) {
    case AccessPath::Kind::kIndexEq: {
      const IndexDesc desc = table.IndexDescs()[path.index_pos];
      return desc.distinct_keys > 0
                 ? static_cast<double>(desc.entries) / static_cast<double>(desc.distinct_keys)
                 : 0.0;
    }
    case AccessPath::Kind::kIndexIn: {
      const IndexDesc desc = table.IndexDescs()[path.index_pos];
      const double per_key =
          desc.distinct_keys > 0
              ? static_cast<double>(desc.entries) / static_cast<double>(desc.distinct_keys)
              : 0.0;
      return std::min(live, per_key * static_cast<double>(path.in_keys.size()));
    }
    case AccessPath::Kind::kIndexRange:
      return path.range_lower.present && path.range_upper.present ? live / 4.0 : live / 2.0;
    case AccessPath::Kind::kIndexPrefix:
      return live / 4.0;
    case AccessPath::Kind::kFullScan:
      // Residual predicates discard some rows; how many is unknowable for
      // opaque conditions, so charge a flat factor that still ranks a
      // filtered scan below an unfiltered one.
      return conditions.empty() ? live : live / 2.0;
  }
  return live;
}

AccessPath PlanAccess(const Table& table, const std::vector<Condition>& conditions) {
  const std::vector<IndexDesc> indexes = table.IndexDescs();
  AccessPath path;

  // 1. Equality probes, most selective index first.  An exact index answers
  // kEq outright; a folded index answers kEqNoCase outright and kEq as a
  // superset needing a residual check.  Rank candidates by cardinality
  // (more distinct keys => fewer expected rows per key), preferring a
  // residual-free probe on ties.
  size_t best_keys = 0;
  bool best_skip = false;
  for (size_t c = 0; c < conditions.size(); ++c) {
    const Condition& cond = conditions[c];
    if (cond.op != Condition::Op::kEq && cond.op != Condition::Op::kEqNoCase) {
      continue;
    }
    for (size_t i = 0; i < indexes.size(); ++i) {
      if (indexes[i].column != cond.column) {
        continue;
      }
      bool skip;
      if (cond.op == Condition::Op::kEq) {
        skip = !indexes[i].folded;  // folded probe is a superset of exact
      } else if (indexes[i].folded) {
        skip = true;  // folded keys equal iff strings equal ignoring case
      } else {
        continue;  // exact index cannot answer kEqNoCase
      }
      if (path.kind == AccessPath::Kind::kIndexEq &&
          (indexes[i].distinct_keys < best_keys ||
           (indexes[i].distinct_keys == best_keys && (best_skip || !skip)))) {
        continue;
      }
      path.kind = AccessPath::Kind::kIndexEq;
      path.index_pos = i;
      path.cond_pos = c;
      path.skip_cond = skip;
      path.eq_key = indexes[i].folded ? FoldCaseKey(cond.operand) : cond.operand;
      best_keys = indexes[i].distinct_keys;
      best_skip = skip;
    }
  }
  if (path.kind == AccessPath::Kind::kIndexEq) {
    return path;
  }

  // 1b. Membership sets.  A kIn over an exact index runs as a union of
  // equality probes — one small probe per key — which beats any scan as long
  // as the set is a sliver of the table.  The probes answer the condition
  // exactly, so it runs no residual.  Rank by cardinality like step 1.
  size_t best_in_keys = 0;
  for (size_t c = 0; c < conditions.size(); ++c) {
    const Condition& cond = conditions[c];
    if (cond.op != Condition::Op::kIn) {
      continue;
    }
    for (size_t i = 0; i < indexes.size(); ++i) {
      if (indexes[i].column != cond.column || indexes[i].folded) {
        continue;  // folded keys would need per-key folding + residual; skip
      }
      if (path.kind == AccessPath::Kind::kIndexIn &&
          indexes[i].distinct_keys <= best_in_keys) {
        continue;
      }
      path.kind = AccessPath::Kind::kIndexIn;
      path.index_pos = i;
      path.cond_pos = c;
      path.skip_cond = true;
      path.in_keys = cond.operand_set;  // sorted + deduped (Condition contract)
      best_in_keys = indexes[i].distinct_keys;
    }
  }
  if (path.kind == AccessPath::Kind::kIndexIn) {
    return path;
  }

  // 2. Ordered-range scans.  All range conditions on one indexed column are
  // a single interval (the conjunction of intervals is their intersection),
  // so intersect them into the tightest [lower, upper] window and scan that
  // slice of the index.  The window expresses the absorbed conditions
  // exactly — index keys are the unfolded cell values — so they run no
  // residual check.  Folded indexes are skipped for string columns (their
  // keys are lowercased, which breaks the ordering the operands assume).
  size_t best_range_keys = 0;
  bool best_two_sided = false;
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (indexes[i].folded && IsStringColumn(table, indexes[i].column)) {
      continue;
    }
    AccessPath::Bound lower;
    AccessPath::Bound upper;
    std::vector<size_t> absorbed;
    for (size_t c = 0; c < conditions.size(); ++c) {
      const Condition& cond = conditions[c];
      if (cond.column != indexes[i].column || !IsRangeOp(cond.op)) {
        continue;
      }
      switch (cond.op) {
        case Condition::Op::kLt:
          Tighten(&upper, cond.operand, /*inclusive=*/false, /*is_lower=*/false);
          break;
        case Condition::Op::kLe:
          Tighten(&upper, cond.operand, /*inclusive=*/true, /*is_lower=*/false);
          break;
        case Condition::Op::kGt:
          Tighten(&lower, cond.operand, /*inclusive=*/false, /*is_lower=*/true);
          break;
        case Condition::Op::kGe:
          Tighten(&lower, cond.operand, /*inclusive=*/true, /*is_lower=*/true);
          break;
        case Condition::Op::kBetween:
          Tighten(&lower, cond.operand, /*inclusive=*/true, /*is_lower=*/true);
          Tighten(&upper, cond.operand2, /*inclusive=*/true, /*is_lower=*/false);
          break;
        default:
          break;
      }
      absorbed.push_back(c);
    }
    if (absorbed.empty()) {
      continue;
    }
    bool two_sided = lower.present && upper.present;
    if (path.kind == AccessPath::Kind::kIndexRange &&
        (best_two_sided > two_sided ||
         (best_two_sided == two_sided && indexes[i].distinct_keys <= best_range_keys))) {
      continue;
    }
    path.kind = AccessPath::Kind::kIndexRange;
    path.index_pos = i;
    path.range_lower = std::move(lower);
    path.range_upper = std::move(upper);
    path.range_conds = std::move(absorbed);
    best_range_keys = indexes[i].distinct_keys;
    best_two_sided = two_sided;
  }
  if (path.kind == AccessPath::Kind::kIndexRange) {
    return path;
  }

  // 3. Literal-prefix pruning for wildcard patterns over an ordered index on
  // a string column.  A kWild range needs the index keys unfolded; a
  // kWildNoCase range needs them folded; a folded index can also prune a
  // kWild pattern (superset range).  Prefer the longest prefix.
  size_t best_prefix = 0;
  for (size_t c = 0; c < conditions.size(); ++c) {
    const Condition& cond = conditions[c];
    if (cond.op != Condition::Op::kWild && cond.op != Condition::Op::kWildNoCase) {
      continue;
    }
    if (!cond.operand.is_string() || !IsStringColumn(table, cond.column)) {
      continue;
    }
    std::string_view prefix = LiteralPrefix(cond.operand.AsString());
    if (prefix.empty() || prefix.size() <= best_prefix) {
      continue;
    }
    for (size_t i = 0; i < indexes.size(); ++i) {
      if (indexes[i].column != cond.column) {
        continue;
      }
      if (cond.op == Condition::Op::kWildNoCase && !indexes[i].folded) {
        continue;  // unfolded keys are not ordered case-insensitively
      }
      path.kind = AccessPath::Kind::kIndexPrefix;
      path.index_pos = i;
      path.cond_pos = c;
      path.skip_cond = false;  // the range only prunes; the pattern still runs
      path.lower = indexes[i].folded ? ToLowerCopy(prefix) : std::string(prefix);
      path.upper = PrefixUpperBound(path.lower);
      best_prefix = prefix.size();
      break;
    }
  }
  return path;
}

// --- Selector ---

Selector::Selector(const Table* table) {
  assert(table != nullptr);
  Stage stage;
  stage.table = table;
  stages_.push_back(std::move(stage));
}

Selector& Selector::Where(Condition cond) {
  stages_.back().conds.push_back(std::move(cond));
  return *this;
}

Selector& Selector::Where(std::string_view column, Condition::Op op, Value operand) {
  if (op == Condition::Op::kBetween) {
    // This overload has no second operand; letting kBetween through would
    // quietly build the window [operand, 0].
    std::fprintf(stderr, "moira: Selector::Where: kBetween needs two operands; use WhereBetween\n");
    std::abort();
  }
  int col = MustResolveColumn(stages_.back().table, column, "Where");
  return Where(Condition{col, op, std::move(operand), Value()});
}

Selector& Selector::WhereEq(std::string_view column, Value operand) {
  return Where(column, Condition::Op::kEq, std::move(operand));
}

Selector& Selector::WhereLt(std::string_view column, Value operand) {
  return Where(column, Condition::Op::kLt, std::move(operand));
}

Selector& Selector::WhereLe(std::string_view column, Value operand) {
  return Where(column, Condition::Op::kLe, std::move(operand));
}

Selector& Selector::WhereGt(std::string_view column, Value operand) {
  return Where(column, Condition::Op::kGt, std::move(operand));
}

Selector& Selector::WhereGe(std::string_view column, Value operand) {
  return Where(column, Condition::Op::kGe, std::move(operand));
}

Selector& Selector::WhereBetween(std::string_view column, Value lower, Value upper) {
  int col = MustResolveColumn(stages_.back().table, column, "WhereBetween");
  return Where(Condition{col, Condition::Op::kBetween, std::move(lower), std::move(upper)});
}

Selector& Selector::WhereWild(std::string_view column, std::string_view pattern,
                              bool case_insensitive) {
  Condition::Op op;
  if (HasWildcard(pattern)) {
    op = case_insensitive ? Condition::Op::kWildNoCase : Condition::Op::kWild;
  } else {
    op = case_insensitive ? Condition::Op::kEqNoCase : Condition::Op::kEq;
  }
  return Where(column, op, Value(pattern));
}

Selector& Selector::WhereNe(std::string_view column, Value operand) {
  return Where(column, Condition::Op::kNe, std::move(operand));
}

Selector& Selector::WhereAnyBits(std::string_view column, int64_t mask) {
  return Where(column, Condition::Op::kAnyBits, Value(mask));
}

Selector& Selector::WhereIn(std::string_view column, std::vector<Value> set) {
  int col = MustResolveColumn(stages_.back().table, column, "WhereIn");
  // Sorted + deduplicated is the Condition::kIn contract: evaluation
  // binary-searches the set, and the planner turns it into one index probe
  // per distinct key.
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  Condition cond;
  cond.column = col;
  cond.op = Condition::Op::kIn;
  cond.operand_set = std::move(set);
  return Where(std::move(cond));
}

Selector& Selector::Filter(std::function<bool(const Table&, size_t)> pred) {
  stages_.back().filters.push_back(std::move(pred));
  return *this;
}

Selector& Selector::Join(const Table* other, std::string_view left_col,
                         std::string_view right_col) {
  assert(other != nullptr);
  Stage stage;
  stage.table = other;
  stage.left_col = MustResolveColumn(stages_.back().table, left_col, "Join");
  stage.right_col = MustResolveColumn(other, right_col, "Join");
  stages_.push_back(std::move(stage));
  return *this;
}

Selector& Selector::ForceNaiveJoin() {
  naive_join_ = true;
  return *this;
}

std::vector<size_t> Selector::PlannedJoinOrder() const {
  const size_t n = stages_.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  if (naive_join_ || n < 2) {
    return order;
  }
  std::vector<double> est(n);
  for (size_t i = 0; i < n; ++i) {
    est[i] = EstimateMatchRows(*stages_[i].table, stages_[i].conds);
  }
  // Start from the most selective stage (ties keep the leftmost, so an
  // unambiguous pipeline stays in declared order), then walk the join chain
  // outward, always extending toward the cheaper unbound neighbour.
  size_t start = 0;
  for (size_t i = 1; i < n; ++i) {
    if (est[i] < est[start]) {
      start = i;
    }
  }
  order.clear();
  order.push_back(start);
  size_t lo = start;
  size_t hi = start;
  while (order.size() < n) {
    const bool has_lo = lo > 0;
    const bool has_hi = hi + 1 < n;
    size_t next;
    if (has_lo && has_hi) {
      next = est[lo - 1] <= est[hi + 1] ? lo - 1 : hi + 1;
    } else {
      next = has_lo ? lo - 1 : hi + 1;
    }
    (next < lo ? lo : hi) = next;
    order.push_back(next);
  }
  return order;
}

// Cost-based multi-stage execution: bind stages in planner order, carrying a
// flat tuple buffer (ntuples x nstages row indices); each new stage groups
// the live tuples by join key, probes once per distinct key, and expands the
// buffer with the matches.  Tuples are emitted in the order the naive
// left-to-right nested loop would have produced (lexicographic by per-stage
// row index — every Match reports storage order), so callers cannot observe
// which plan ran.
bool Selector::ExecuteJoin(
    const std::function<bool(const std::vector<size_t>&)>& visit) const {
  const size_t n = stages_.size();
  const std::vector<size_t> order = PlannedJoinOrder();
  if (order[0] != 0) {
    stages_[0].table->NoteJoinReorder();
  }

  std::vector<size_t> tuples;  // flat: tuples[t * n + i] = stage i's row in tuple t
  {
    const Stage& first = stages_[order[0]];
    for (size_t row : first.table->Match(first.conds)) {
      if (!PassesFilters(first, row)) {
        continue;
      }
      tuples.resize(tuples.size() + n, 0);
      tuples[tuples.size() - n + order[0]] = row;
    }
  }

  std::vector<bool> bound(n, false);
  bound[order[0]] = true;
  std::vector<size_t> next_tuples;
  std::vector<size_t> tuple_order;
  for (size_t k = 1; k < n && !tuples.empty(); ++k) {
    const size_t t = order[k];
    // The already-bound neighbour supplies the join key.  Binding t after
    // t-1 is the declared (forward) direction; binding it after t+1 runs the
    // same equality edge in reverse.
    size_t outer;
    int outer_col;
    int inner_col;
    if (t > 0 && bound[t - 1]) {
      outer = t - 1;
      outer_col = stages_[t].left_col;
      inner_col = stages_[t].right_col;
    } else {
      outer = t + 1;
      outer_col = stages_[t + 1].right_col;
      inner_col = stages_[t + 1].left_col;
    }
    bound[t] = true;
    const Stage& stage = stages_[t];
    const Table* outer_table = stages_[outer].table;

    // Stage-invariant hoisting: the condition list (with one slot reserved
    // for the join key) and the access plan are built once per stage; each
    // distinct key only overwrites the operand (and the plan's probe key).
    std::vector<Condition> conds = stage.conds;
    conds.push_back(Condition{inner_col, Condition::Op::kEq, Value(), Value()});
    const size_t key_slot = conds.size() - 1;

    const size_t ntuples = tuples.size() / n;
    auto key_of = [&](size_t ti) -> const Value& {
      return outer_table->Cell(tuples[ti * n + outer], outer_col);
    };
    // Sort/group the outer tuples by join key so duplicates probe once.
    tuple_order.resize(ntuples);
    std::iota(tuple_order.begin(), tuple_order.end(), size_t{0});
    std::sort(tuple_order.begin(), tuple_order.end(),
              [&](size_t a, size_t b) { return key_of(a) < key_of(b); });

    // Group the sorted tuples by distinct key: one probe per group, with the
    // duplicates inside a group served from that probe's result (counted as
    // probe_cache_hits, the batched distinct-key cache).
    struct KeyGroup {
      size_t begin = 0;  // range [begin, end) in tuple_order
      size_t end = 0;
    };
    std::vector<KeyGroup> groups;
    for (size_t i = 0; i < ntuples;) {
      const Value& key = key_of(tuple_order[i]);
      size_t j = i + 1;
      while (j < ntuples) {
        const Value& next = key_of(tuple_order[j]);
        if (key < next || next < key) {
          break;
        }
        ++j;
      }
      groups.push_back(KeyGroup{i, j});
      i = j;
    }

    // Plan the stage once against the first group's key; every other group
    // reuses the plan with the probe key patched.  PlanAccess ranks
    // candidates by index statistics and ops alone, never by operand value,
    // so the plan is reusable across keys.
    AccessPath plan;
    bool plan_probes_key = false;
    bool plan_key_folded = false;
    if (!groups.empty()) {
      conds[key_slot].operand = key_of(tuple_order[0]);
      plan = PlanAccess(*stage.table, conds);
      plan_probes_key =
          plan.kind == AccessPath::Kind::kIndexEq && plan.cond_pos == key_slot;
      if (plan_probes_key) {
        plan_key_folded = stage.table->IndexDescs()[plan.index_pos].folded;
      }
    }

    std::vector<std::vector<size_t>> group_matches(groups.size());
    auto probe_group = [&](size_t g) {
      const Value& key = key_of(tuple_order[groups[g].begin]);
      std::vector<Condition> local_conds = conds;
      local_conds[key_slot].operand = key;
      AccessPath local_plan = plan;
      if (plan_probes_key) {
        local_plan.eq_key = plan_key_folded ? FoldCaseKey(key) : key;
      }
      for (size_t row : stage.table->Match(local_conds, local_plan)) {
        if (PassesFilters(stage, row)) {
          group_matches[g].push_back(row);
        }
      }
    };
    // Distinct-key probes are independent of each other, so a stage with
    // enough groups runs them on the table's worker pool (each task writes
    // only its own group_matches slot; Match only bumps atomic counters).
    // Opaque Filter lambdas are the exception — they may touch shared caller
    // state — so a filtered stage stays serial.
    WorkerPool* pool = stage.table->worker_pool();
    constexpr size_t kParallelProbeMinGroups = 8;
    if (pool != nullptr && stage.filters.empty() &&
        groups.size() >= kParallelProbeMinGroups) {
      pool->ParallelFor(groups.size(), probe_group);
    } else {
      for (size_t g = 0; g < groups.size(); ++g) {
        probe_group(g);
      }
    }

    next_tuples.clear();
    for (size_t g = 0; g < groups.size(); ++g) {
      const KeyGroup& group = groups[g];
      if (group.end - group.begin > 1) {
        stage.table->NoteProbeCacheHits(
            static_cast<int64_t>(group.end - group.begin - 1));
      }
      for (size_t gi = group.begin; gi < group.end; ++gi) {
        const size_t ti = tuple_order[gi];
        for (size_t row : group_matches[g]) {
          next_tuples.insert(next_tuples.end(), tuples.begin() + ti * n,
                             tuples.begin() + (ti + 1) * n);
          next_tuples[next_tuples.size() - n + t] = row;
        }
      }
    }
    tuples.swap(next_tuples);
  }

  const size_t ntuples = tuples.size() / n;
  std::vector<size_t> emit_order(ntuples);
  std::iota(emit_order.begin(), emit_order.end(), size_t{0});
  std::sort(emit_order.begin(), emit_order.end(), [&](size_t a, size_t b) {
    return std::lexicographical_compare(tuples.begin() + a * n, tuples.begin() + (a + 1) * n,
                                        tuples.begin() + b * n, tuples.begin() + (b + 1) * n);
  });
  std::vector<size_t> rows(n);
  for (size_t ti : emit_order) {
    std::copy(tuples.begin() + ti * n, tuples.begin() + (ti + 1) * n, rows.begin());
    if (!visit(rows)) {
      return false;
    }
  }
  return true;
}

bool Selector::PassesFilters(const Stage& stage, size_t row) const {
  for (const auto& pred : stage.filters) {
    if (!pred(*stage.table, row)) {
      return false;
    }
  }
  return true;
}

bool Selector::RunStage(size_t stage_pos, std::vector<size_t>* rows,
                        const std::function<bool(const std::vector<size_t>&)>& visit) const {
  const Stage& stage = stages_[stage_pos];
  std::vector<Condition> conds = stage.conds;
  if (stage_pos > 0) {
    const Stage& prev_stage = stages_[stage_pos - 1];
    const Value& key = prev_stage.table->Cell((*rows)[stage_pos - 1], stage.left_col);
    conds.push_back(Condition{stage.right_col, Condition::Op::kEq, key, Value()});
  }
  for (size_t row : stage.table->Match(conds)) {
    if (!PassesFilters(stage, row)) {
      continue;
    }
    (*rows)[stage_pos] = row;
    if (stage_pos + 1 < stages_.size()) {
      if (!RunStage(stage_pos + 1, rows, visit)) {
        return false;
      }
    } else if (!visit(*rows)) {
      return false;
    }
  }
  return true;
}

void Selector::ForEach(const std::function<bool(const std::vector<size_t>&)>& visit) const {
  // Single-stage pipelines keep the lazy per-row loop (Any/One on one table
  // must not materialize); joins go through the cost-based executor unless
  // the caller pinned the naive order.
  if (stages_.size() == 1 || naive_join_) {
    std::vector<size_t> rows(stages_.size(), 0);
    RunStage(0, &rows, visit);
    return;
  }
  ExecuteJoin(visit);
}

void Selector::Emit(const std::function<void(const std::vector<size_t>&)>& visit) const {
  ForEach([&](const std::vector<size_t>& rows) {
    visit(rows);
    return true;
  });
}

std::vector<size_t> Selector::Rows() const {
  std::vector<size_t> out;
  ForEach([&](const std::vector<size_t>& rows) {
    out.push_back(rows[0]);
    return true;
  });
  if (stages_.size() == 1) {
    // Single stage: Match's merge point already guarantees ascending, unique
    // storage order (every access path and shard fan-out merges there), so
    // re-sorting would only hide a breach of that contract.  Assert instead.
    assert(std::is_sorted(out.begin(), out.end()));
    assert(std::adjacent_find(out.begin(), out.end()) == out.end());
    return out;
  }
  // Joined pipelines may revisit base rows in any pattern (a reordered join
  // does not emit base rows adjacently), so sort + dedup to storage order.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<size_t> Selector::One() const {
  std::optional<size_t> found;
  bool unique = true;
  ForEach([&](const std::vector<size_t>& rows) {
    if (found.has_value() && *found != rows[0]) {
      unique = false;
      return false;
    }
    found = rows[0];
    return true;
  });
  return unique ? found : std::nullopt;
}

size_t Selector::Count() const {
  size_t n = 0;
  ForEach([&](const std::vector<size_t>&) {
    ++n;
    return true;
  });
  return n;
}

bool Selector::Any() const {
  bool any = false;
  ForEach([&](const std::vector<size_t>&) {
    any = true;
    return false;
  });
  return any;
}

Selector From(const Table* table) { return Selector(table); }
Selector From(const Table& table) { return Selector(&table); }

}  // namespace moira
