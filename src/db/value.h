// Typed cell values for the Moira database engine.
//
// The Moira schema (paper section 6) uses exactly two column types: integers
// (ids, uids, flags, unix-format times) and strings (names, descriptions).
#ifndef MOIRA_SRC_DB_VALUE_H_
#define MOIRA_SRC_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace moira {

enum class ColumnType { kInt, kString };

class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t i) : v_(i) {}                       // NOLINT(google-explicit-constructor)
  Value(int i) : v_(static_cast<int64_t>(i)) {}     // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT(google-explicit-constructor)
  Value(std::string_view s) : v_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT(google-explicit-constructor)

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  ColumnType type() const { return is_int() ? ColumnType::kInt : ColumnType::kString; }

  int64_t AsInt() const { return is_int() ? std::get<int64_t>(v_) : 0; }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return is_string() ? std::get<std::string>(v_) : kEmpty;
  }

  // Renders the value as the string used in wire tuples and generated files.
  std::string ToString() const {
    return is_int() ? std::to_string(std::get<int64_t>(v_)) : std::get<std::string>(v_);
  }

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) { return a.v_ < b.v_; }

 private:
  std::variant<int64_t, std::string> v_;
};

}  // namespace moira

#endif  // MOIRA_SRC_DB_VALUE_H_
