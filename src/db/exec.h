// Query-execution layer of the Moira database engine.
//
// Two pieces live here:
//
//  * The access-path planner.  Given a condition list, PlanAccess picks the
//    cheapest way to satisfy it against a table using live statistics: the
//    most selective equality index (estimated via index cardinality), a
//    folded-case index for case-insensitive equality, an ordered-index range
//    scan for kLt/kLe/kGt/kGe/kBetween predicates, a literal-prefix range
//    over an ordered index for wildcard patterns, or — only as a last
//    resort — a full scan.  Table::Match executes the chosen plan and keeps
//    per-table counters (TableStats) of which paths ran and how many rows
//    they examined vs. emitted.
//
//  * Selector, a small fluent query API that encapsulates the
//    scan/filter/join/emit idiom the query handlers and DCM generators
//    previously hand-rolled:
//
//      From(mc.serverhosts())
//          .Where(service_col, Condition::Op::kEq, Value("NFS"))
//          .Join(mc.machine(), "mach_id", "mach_id")
//          .Emit([&](const std::vector<size_t>& rows) { ... });
//
//    Every stage goes through the planner, so a Selector pipeline is
//    index-backed wherever an index exists.
#ifndef MOIRA_SRC_DB_EXEC_H_
#define MOIRA_SRC_DB_EXEC_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/table.h"

namespace moira {

// The plan for one Table::Match call.
struct AccessPath {
  enum class Kind {
    kFullScan,     // visit every live row
    kIndexEq,      // equality probe of one index
    kIndexPrefix,  // range scan of one index over a literal prefix
    kIndexRange,   // range scan of one index over an ordered-predicate window
    kIndexIn,      // union of equality probes for a kIn membership set
  };
  // One end of a kIndexRange window.  An absent bound scans to that end of
  // the index.
  struct Bound {
    bool present = false;
    bool inclusive = false;
    Value key;
  };
  Kind kind = Kind::kFullScan;
  size_t index_pos = 0;    // position in Table::IndexDescs()
  size_t cond_pos = 0;     // the condition the index serves
  bool skip_cond = false;  // probe fully satisfies the condition (no residual)
  Value eq_key;            // kIndexEq: probe key (already folded if needed)
  std::string lower;       // kIndexPrefix: scan keys in [lower, upper)
  std::string upper;       // empty upper = scan to the end of the index
  Bound range_lower;       // kIndexRange: window over the index keys; the
  Bound range_upper;       //   tightest intersection of every range condition
  std::vector<size_t> range_conds;  // kIndexRange: conditions the window
                                    // fully absorbs (no residual check)
  std::vector<Value> in_keys;       // kIndexIn: the distinct probe keys
                                    // (sorted; one index probe per key)
};

// Case-folds an index key: strings are lowercased, other values pass
// through.  Shared by index maintenance (table.cc) and the planner so probe
// keys and stored keys always agree.
Value FoldCaseKey(const Value& v);

// Estimated number of rows Match(conditions) would emit, derived from the
// same statistics PlanAccess consults: an equality probe expects
// entries/distinct_keys rows, a two-sided range window a quarter of the
// table, a one-sided window or a residual-only scan half of it.  The join
// planner orders probe stages by this estimate; it only needs the estimates
// to rank correctly, not to be exact.
double EstimateMatchRows(const Table& table, const std::vector<Condition>& conditions);

// Picks the cheapest access path for `conditions` against `table`:
//   1. the equality-indexable condition whose index has the highest
//      cardinality (fewest expected rows per key) — kEq on an exact index,
//      kEqNoCase on a folded index, kEq on a folded index as a fallback;
//   1b. otherwise a kIn membership set over an exact index, executed as a
//      union of equality probes (most selective index on ties);
//   2. otherwise the indexed column with the tightest ordered-range window:
//      every kLt/kLe/kGt/kGe/kBetween condition on one indexed column is
//      intersected into a single [lower, upper] window over the index keys
//      (preferring a window bounded on both ends, then the index with the
//      most distinct keys), and the absorbed conditions run no residual;
//   3. otherwise the wildcard condition with the longest literal prefix that
//      has an ordered index to range-scan — kWild on an exact index,
//      kWildNoCase (or kWild) on a folded index;
//   4. otherwise a full scan.
AccessPath PlanAccess(const Table& table, const std::vector<Condition>& conditions);

// Fluent multi-stage query over one or more tables.  Stage 0 is the base
// table; each Join adds a stage.  Where/Filter apply to the most recently
// added stage.  Terminal operations (Emit/ForEach/Rows/One/Count) run the
// pipeline; each stage's conditions go through the planner.
//
// Multi-stage execution is cost-based.  At terminal time the join planner
// estimates each stage's standalone output cardinality (EstimateMatchRows)
// and starts from the most selective stage, walking the join chain outward
// toward whichever neighbour is cheaper next — so a pipeline whose tail
// carries the selective predicate runs tail-first with reverse index probes
// instead of fanning out from an unselective base.  Each probe stage batches
// its outer keys: tuples are sorted and grouped by join key, the stage is
// planned once (the key operand is patched per group), and duplicate keys
// reuse the previous group's rows, so a fan-out join costs O(distinct keys)
// index lookups rather than O(outer rows).  Emission order is unaffected:
// tuples are restored to the order the left-to-right nested loop would have
// produced (lexicographic by per-stage row index), so results are
// plan-independent.  TableStats counts both behaviours (join_reorders on the
// base table, probe_cache_hits on the probed table).
class Selector {
 public:
  explicit Selector(const Table* table);

  // Adds a predicate on the current stage.  Naming a column the stage's
  // table does not have is a caller bug and aborts in every build mode
  // (release included): a silently dropped predicate would leak rows.
  Selector& Where(Condition cond);
  Selector& Where(std::string_view column, Condition::Op op, Value operand);
  Selector& WhereEq(std::string_view column, Value operand);
  // Ordered-range helpers; planned as index range scans when the column has
  // an index (see PlanAccess step 2).
  Selector& WhereLt(std::string_view column, Value operand);
  Selector& WhereLe(std::string_view column, Value operand);
  Selector& WhereGt(std::string_view column, Value operand);
  Selector& WhereGe(std::string_view column, Value operand);
  // Closed range: lower <= column <= upper.
  Selector& WhereBetween(std::string_view column, Value lower, Value upper);
  // Wildcard helper: picks kEq/kEqNoCase when the pattern has no
  // metacharacters, else kWild/kWildNoCase.
  Selector& WhereWild(std::string_view column, std::string_view pattern,
                      bool case_insensitive = false);
  // Typed predicates the planner can see into (unlike an opaque Filter,
  // these push down into shard-local scans and cost estimation).
  Selector& WhereNe(std::string_view column, Value operand);
  // (column & mask) != 0 — the flag-membership shape of the qualifier
  // queries (DCM-enable bits, status masks).
  Selector& WhereAnyBits(std::string_view column, int64_t mask);
  // column ∈ set — the membership shape previously expressed as a
  // set-capturing Filter lambda.  The set is sorted and deduplicated here;
  // with an exact index on the column it plans as a union of index probes
  // (kIndexIn) instead of a full scan.
  Selector& WhereIn(std::string_view column, std::vector<Value> set);

  // Residual predicate the planner cannot index (ranges, bitmasks,
  // tri-state).  Runs after the stage's conditions.
  Selector& Filter(std::function<bool(const Table&, size_t)> pred);

  // Inner join: rows of `other` where other[right_col] == current[left_col].
  // The per-row equality lookup goes through the planner, so it is an index
  // probe whenever `other` indexes right_col.
  Selector& Join(const Table* other, std::string_view left_col,
                 std::string_view right_col);

  // Forces the pre-cost-based behaviour: probe stages strictly left to
  // right, one planner pass and one index probe per outer row, no batching.
  // The baseline for consistency tests and the bench reduction factors.
  Selector& ForceNaiveJoin();

  // The stage order the cost-based planner would execute (identity when
  // naive execution is forced or there is no join).  Exposed for tests.
  std::vector<size_t> PlannedJoinOrder() const;

  // --- Terminal operations ---

  // Visits every surviving tuple; `rows[i]` is the row index in stage i's
  // table.  ForEach stops early when the visitor returns false.
  void Emit(const std::function<void(const std::vector<size_t>&)>& visit) const;
  void ForEach(const std::function<bool(const std::vector<size_t>&)>& visit) const;

  // Base-table row indices of every surviving tuple (deduplicated, in
  // storage order).  With no joins this is exactly Table::Match + filters —
  // already sorted and unique by Match's merge-point guarantee, so the
  // single-stage path asserts that order instead of re-sorting; only joined
  // pipelines (which may revisit base rows) sort + dedup here.
  std::vector<size_t> Rows() const;

  // The single surviving base row; nullopt when zero or several match.
  std::optional<size_t> One() const;

  size_t Count() const;
  bool Any() const;

 private:
  struct Stage {
    const Table* table = nullptr;
    // Join columns linking this stage to the previous one (-1 for stage 0).
    int left_col = -1;
    int right_col = -1;
    std::vector<Condition> conds;
    std::vector<std::function<bool(const Table&, size_t)>> filters;
  };

  bool RunStage(size_t stage_pos, std::vector<size_t>* rows,
                const std::function<bool(const std::vector<size_t>&)>& visit) const;
  bool ExecuteJoin(const std::function<bool(const std::vector<size_t>&)>& visit) const;
  bool PassesFilters(const Stage& stage, size_t row) const;

  std::vector<Stage> stages_;
  bool naive_join_ = false;
};

// Entry points reading as a query: From(table).Where(...).Emit(...).
Selector From(const Table* table);
Selector From(const Table& table);

}  // namespace moira

#endif  // MOIRA_SRC_DB_EXEC_H_
