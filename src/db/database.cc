#include "src/db/database.h"

#include <algorithm>

namespace moira {

Database::Database(const Clock* clock) : clock_(clock) {}

Table* Database::CreateTable(TableSchema schema) {
  if (tables_.contains(schema.name)) {
    return nullptr;
  }
  return Install(std::make_unique<Table>(std::move(schema)));
}

Table* Database::CreateShardedTable(TableSchema schema,
                                    std::string_view partition_column,
                                    size_t shards) {
  if (tables_.contains(schema.name)) {
    return nullptr;
  }
  return Install(
      std::make_unique<ShardedTable>(std::move(schema), partition_column, shards));
}

Table* Database::Install(std::unique_ptr<Table> table) {
  std::string name = table->name();
  table->set_time_source([this] { return clock_->Now(); });
  table->set_worker_pool(pool_);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  table_order_.push_back(name);
  return raw;
}

void Database::AttachWorkerPool(WorkerPool* pool) {
  pool_ = pool;
  for (auto& [name, table] : tables_) {
    table->set_worker_pool(pool);
  }
}

Table* Database::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  return it != tables_.end() ? it->second.get() : nullptr;
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it != tables_.end() ? it->second.get() : nullptr;
}

std::vector<std::string> Database::TableNames() const { return table_order_; }

UnixTime Database::LastModified() const {
  UnixTime latest = 0;
  for (const auto& [name, table] : tables_) {
    latest = std::max(latest, table->stats().modtime);
  }
  return latest;
}

void Database::ClearAllRows() {
  for (auto& [name, table] : tables_) {
    std::vector<size_t> live;
    table->Scan([&](size_t index, const Row&) {
      live.push_back(index);
      return true;
    });
    for (size_t index : live) {
      table->Delete(index);
    }
  }
}

}  // namespace moira
