// A single relation of the Moira database engine.
//
// Rows are kept in an append-only slot vector with tombstoned deletes, so row
// indices remain stable across mutation (scans that collect matches and then
// update are safe).  Optional per-column equality indexes accelerate the id
// and name lookups that dominate the query mix; folded-case indexes back the
// case-insensitive predicates, and because indexes are ordered they also
// serve literal-prefix pruning for wildcard patterns and ordered-range
// predicates (kLt/kLe/kGt/kGe/kBetween) — see src/db/exec.h for the planner
// that chooses among them.
//
// Sharding.  A table may be hash-partitioned over a partition column into N
// shards (ShardedTable, or the three-argument constructor).  Sharding is an
// *index* organization, not a storage one: the slot vector stays global and
// row indices are identical for any shard count, so query results are
// byte-identical whether a table has 1 shard or 8 (the sharded-vs-flat
// consistency suite pins this).  What changes is that every index is split
// into per-shard runs: an exact equality probe on the partition column
// routes to a single shard (one small multimap probe), while every other
// path fans out across all shards and merges the per-shard runs back into
// storage order at a single merge point.  Fan-out legs and chunked full
// scans run on the attached WorkerPool when one is set, serially otherwise —
// with identical results either way.  See DESIGN.md "Sharding & concurrency
// model".
#ifndef MOIRA_SRC_DB_TABLE_H_
#define MOIRA_SRC_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stat_counter.h"
#include "src/db/value.h"

namespace moira {

class WorkerPool;

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
};

using Row = std::vector<Value>;

// A predicate on one column, used by Table::Match.
struct Condition {
  enum class Op {
    kEq,          // exact equality
    kEqNoCase,    // case-insensitive string equality (exact for non-strings)
    kWild,        // wildcard pattern match ('*' and '?')
    kWildNoCase,  // case-insensitive wildcard match
    kLt,          // cell <  operand
    kLe,          // cell <= operand
    kGt,          // cell >  operand
    kGe,          // cell >= operand
    kBetween,     // operand <= cell <= operand2 (closed range)
    kNe,          // cell != operand
    kAnyBits,     // (cell & operand) != 0, ints only (flag-mask membership)
    kIn,          // cell is one of operand_set (which must be sorted)
  };
  Condition() = default;
  Condition(int column_in, Op op_in, Value operand_in, const Value& operand2_in = Value())
      : column(column_in),
        op(op_in),
        operand(std::move(operand_in)),
        operand2(operand2_in) {}

  int column = 0;
  Op op = Op::kEq;
  Value operand;
  Value operand2{};  // kBetween only: the upper bound
  // kIn only: the membership set.  Must be sorted ascending and deduplicated
  // (Selector::WhereIn enforces this); evaluation binary-searches it.
  std::vector<Value> operand_set;
};

// Mutation counters, surfaced as the TBLSTATS relation (paper section 6),
// plus the access-path counters the query executor maintains so load can be
// reasoned about per table (index-backed vs. scanning execution).
//
// Mutation counters are plain integers: all writes are serialized on the
// journal path (DESIGN.md locking contract).  Access-path counters are
// bumped on const read paths that may execute concurrently (parallel shard
// fan-out, the server's read worker pool), so they are relaxed atomics that
// read like plain int64_t fields.
struct TableStats {
  int64_t appends = 0;
  int64_t updates = 0;
  int64_t deletes = 0;
  int64_t modtime = 0;  // unix time of last append/update/delete

  // Access paths taken by Match (one increment per Match call).
  StatCounter index_hits = 0;    // answered by an equality-index probe
  StatCounter prefix_scans = 0;  // answered by a literal-prefix index range
  StatCounter range_scans = 0;   // answered by an ordered-index range scan
  StatCounter full_scans = 0;    // had to visit every live row
  StatCounter set_probes = 0;    // answered by a kIn union of index probes

  // Shard routing taken by Match on a sharded table (both zero when the
  // table has a single shard).
  StatCounter single_shard_probes = 0;  // routed to exactly one shard
  StatCounter fanout_scans = 0;         // had to visit every shard

  // Work done vs. work returned across all Match calls.
  StatCounter rows_examined = 0;  // rows fetched and tested against predicates
  StatCounter rows_emitted = 0;   // rows that satisfied every predicate

  // Join-executor counters, bumped by Selector (src/db/exec.cc) rather than
  // by Match itself.
  StatCounter join_reorders = 0;     // pipelines rooted here whose probe order
                                     // was rewritten by the cost-based planner
  StatCounter probe_cache_hits = 0;  // join probes of this table answered from
                                     // the batched distinct-key cache
};

// Public description of one index, consumed by the planner (src/db/exec.cc)
// to estimate selectivity without reaching into Table internals.
struct IndexDesc {
  int column = 0;
  bool folded = false;       // keys are stored case-folded (supports NoCase ops)
  size_t distinct_keys = 0;  // live cardinality; higher means more selective.
                             // Summed over shards, so a key that appears in k
                             // shards counts k times — exact for a single
                             // shard and for the partition column, an
                             // overestimate otherwise (documented planner
                             // bias toward such indexes; acceptable because
                             // every candidate is biased the same way).
  size_t entries = 0;        // live rows indexed (== Table::LiveCount())
};

struct AccessPath;  // planner output; defined in src/db/exec.h

class Table {
 public:
  // A flat (single-shard) table; the historical constructor.
  explicit Table(TableSchema schema);

  // A hash-partitioned table: rows are assigned to one of `shards` shards by
  // a deterministic hash of `partition_column` (which must exist in the
  // schema).  `shards` == 1 is exactly the flat table.
  Table(TableSchema schema, std::string_view partition_column, size_t shards);

  virtual ~Table() = default;

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  // Returns the column position, or -1 if no such column.
  int ColumnIndex(std::string_view column) const;

  // Builds an equality index over `column`.  Idempotent.
  void CreateIndex(std::string_view column);

  // Builds a case-folded index over `column`: keys are stored lowercased, so
  // kEqNoCase probes and kWildNoCase prefix ranges are index-backed.
  // Idempotent, and independent of any exact index on the same column.
  void CreateFoldedIndex(std::string_view column);

  // Describes every index (for the planner and for tests).
  std::vector<IndexDesc> IndexDescs() const;

  // Appends a row (must match the schema arity); returns its stable index.
  size_t Append(Row row);

  // Overwrites one cell of a live row.
  void Update(size_t row_index, int column, Value value);

  // Bookkeeping write: updates the cell (and indexes) without counting in
  // TBLSTATS or bumping the table modtime.  Used for DCM-internal fields —
  // the paper's ModTime "refers only to modification by a user, not by the
  // DCM", and the incremental-generation check must not see DCM writes.
  void UpdateNoStats(size_t row_index, int column, Value value);

  // Overwrites a whole row.
  void UpdateRow(size_t row_index, Row row);

  // Tombstones a row.
  void Delete(size_t row_index);

  bool IsLive(size_t row_index) const {
    return row_index < slots_.size() && slots_[row_index].live;
  }

  const Row& At(size_t row_index) const { return slots_[row_index].row; }
  const Value& Cell(size_t row_index, int column) const {
    return slots_[row_index].row[column];
  }

  // Returns the indices of all live rows satisfying every condition, using
  // the cheapest access path the planner finds (see src/db/exec.h).  The
  // result is always in ascending row-index (storage) order, independent of
  // the plan and of the shard count.
  std::vector<size_t> Match(const std::vector<Condition>& conditions) const;

  // Executes `conditions` along a caller-supplied plan.  The Selector join
  // executor plans each probe stage once and patches the probe key between
  // calls instead of re-planning per key; the plan must have been produced
  // by PlanAccess against this table and a structurally identical condition
  // list (only operand values may differ).
  std::vector<size_t> Match(const std::vector<Condition>& conditions,
                            const AccessPath& path) const;

  // Join-executor hooks: these counters belong to TableStats but are bumped
  // by Selector (a const reader), outside any Match call.
  void NoteJoinReorder() const { ++stats_.join_reorders; }
  void NoteProbeCacheHits(int64_t n) const { stats_.probe_cache_hits += n; }

  // Visits every live row; stop early by returning false from the visitor.
  // This is the raw storage sweep — it bypasses the planner and counts as a
  // full scan.  Query handlers should go through Selector instead.
  void Scan(const std::function<bool(size_t, const Row&)>& visit) const;

  // Number of live rows.
  size_t LiveCount() const { return live_count_; }

  // Total slots including tombstones (the valid row-index range).
  size_t SlotCount() const { return slots_.size(); }

  const TableStats& stats() const { return stats_; }

  // --- sharding introspection ---
  size_t shard_count() const { return shard_count_; }
  // Column position rows are partitioned on, or -1 for a flat table.
  int partition_column() const { return partition_col_; }
  // The shard a key on the partition column routes to.
  size_t ShardOfKey(const Value& key) const;
  // The shard a live row was assigned to.
  size_t ShardOfRow(size_t row_index) const { return slots_[row_index].shard; }
  // Live rows per shard (size == shard_count()).
  std::vector<int64_t> ShardLiveCounts() const;
  // rows_examined broken down by the shard each examined row lives in
  // (size == shard_count()).  This is the per-shard work ledger the
  // sharded-vs-flat bench turns into a critical-path speedup model.
  std::vector<int64_t> ShardRowsExamined() const;

  // Attaches a worker pool for parallel fan-out scans; nullptr (the default)
  // keeps execution serial.  Results are identical either way.  Not owned.
  void set_worker_pool(WorkerPool* pool) { pool_ = pool; }
  WorkerPool* worker_pool() const { return pool_; }

  // The engine stamps stats modtimes through this hook; set by Database.
  void set_time_source(const std::function<int64_t()>& now) { now_ = now; }

 private:
  struct Slot {
    Row row;
    bool live = true;
    uint32_t shard = 0;
  };

  // One shard's run of an index: an ordered multimap from key to row index.
  struct IndexShard {
    size_t distinct_keys = 0;
    std::multimap<Value, size_t> entries;
  };

  struct Index {
    int column;
    bool folded = false;
    std::vector<IndexShard> shards;  // size == shard_count_
  };

  void Touch(int64_t* counter);
  void BuildIndex(int column, bool folded);
  void IndexInsert(size_t row_index);
  void IndexErase(size_t row_index);
  uint32_t ShardOfRowValue(const Row& row) const;
  // Re-derives a row's shard after a cell write (the partition cell may have
  // changed); must run between IndexErase and IndexInsert.
  void ReshardRow(size_t row_index);
  // Executes a plan produced by PlanAccess (src/db/exec.cc), bumping the
  // access-path counters.
  std::vector<size_t> ExecutePath(const AccessPath& path,
                                  const std::vector<Condition>& conditions) const;

  TableSchema schema_;
  std::vector<Slot> slots_;
  std::vector<Index> indexes_;
  size_t live_count_ = 0;
  size_t shard_count_ = 1;
  int partition_col_ = -1;
  std::vector<int64_t> shard_live_;  // live rows per shard
  // Mutation counters are bumped by writers; the access-path counters are
  // bumped by const reads, hence mutable (and atomic — see TableStats).
  mutable TableStats stats_;
  mutable std::vector<StatCounter> shard_examined_;  // size == shard_count_
  WorkerPool* pool_ = nullptr;
  std::function<int64_t()> now_;
};

// A hash-partitioned table.  Behaviour lives entirely in Table (the shard
// machinery activates whenever shard_count > 1); this type exists so schema
// code and dumps can say what a relation *is* — `new ShardedTable(schema,
// "users_id", 4)` reads as the paper's hot-relation partitioning decision,
// and Database::CreateShardedTable returns one.
class ShardedTable : public Table {
 public:
  ShardedTable(TableSchema schema, std::string_view partition_column,
               size_t shards)
      : Table(std::move(schema), partition_column, shards) {}
};

}  // namespace moira

#endif  // MOIRA_SRC_DB_TABLE_H_
