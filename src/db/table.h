// A single relation of the Moira database engine.
//
// Rows are kept in an append-only slot vector with tombstoned deletes, so row
// indices remain stable across mutation (scans that collect matches and then
// update are safe).  Optional per-column equality indexes accelerate the id
// and name lookups that dominate the query mix.
#ifndef MOIRA_SRC_DB_TABLE_H_
#define MOIRA_SRC_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/value.h"

namespace moira {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
};

using Row = std::vector<Value>;

// A predicate on one column, used by Table::Match.
struct Condition {
  enum class Op {
    kEq,          // exact equality
    kEqNoCase,    // case-insensitive string equality
    kWild,        // wildcard pattern match ('*' and '?')
    kWildNoCase,  // case-insensitive wildcard match
  };
  int column = 0;
  Op op = Op::kEq;
  Value operand;
};

// Mutation counters, surfaced as the TBLSTATS relation (paper section 6).
struct TableStats {
  int64_t appends = 0;
  int64_t updates = 0;
  int64_t deletes = 0;
  int64_t modtime = 0;  // unix time of last append/update/delete
};

class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  // Returns the column position, or -1 if no such column.
  int ColumnIndex(std::string_view column) const;

  // Builds an equality index over `column`.  Idempotent.
  void CreateIndex(std::string_view column);

  // Appends a row (must match the schema arity); returns its stable index.
  size_t Append(Row row);

  // Overwrites one cell of a live row.
  void Update(size_t row_index, int column, Value value);

  // Bookkeeping write: updates the cell (and indexes) without counting in
  // TBLSTATS or bumping the table modtime.  Used for DCM-internal fields —
  // the paper's ModTime "refers only to modification by a user, not by the
  // DCM", and the incremental-generation check must not see DCM writes.
  void UpdateNoStats(size_t row_index, int column, Value value);

  // Overwrites a whole row.
  void UpdateRow(size_t row_index, Row row);

  // Tombstones a row.
  void Delete(size_t row_index);

  bool IsLive(size_t row_index) const {
    return row_index < slots_.size() && slots_[row_index].live;
  }

  const Row& At(size_t row_index) const { return slots_[row_index].row; }
  const Value& Cell(size_t row_index, int column) const {
    return slots_[row_index].row[column];
  }

  // Returns the indices of all live rows satisfying every condition.
  std::vector<size_t> Match(const std::vector<Condition>& conditions) const;

  // Visits every live row; stop early by returning false from the visitor.
  void Scan(const std::function<bool(size_t, const Row&)>& visit) const;

  // Number of live rows.
  size_t LiveCount() const { return live_count_; }

  // Total slots including tombstones (the valid row-index range).
  size_t SlotCount() const { return slots_.size(); }

  const TableStats& stats() const { return stats_; }

  // The engine stamps stats modtimes through this hook; set by Database.
  void set_time_source(const std::function<int64_t()>& now) { now_ = now; }

 private:
  struct Slot {
    Row row;
    bool live = true;
  };

  struct Index {
    int column;
    std::multimap<Value, size_t> entries;
  };

  void Touch(int64_t* counter);
  void IndexInsert(size_t row_index);
  void IndexErase(size_t row_index);
  const Index* FindIndexFor(const std::vector<Condition>& conditions, size_t* cond_pos) const;

  TableSchema schema_;
  std::vector<Slot> slots_;
  std::vector<Index> indexes_;
  size_t live_count_ = 0;
  TableStats stats_;
  std::function<int64_t()> now_;
};

}  // namespace moira

#endif  // MOIRA_SRC_DB_TABLE_H_
