// A single relation of the Moira database engine.
//
// Rows are kept in an append-only slot vector with tombstoned deletes, so row
// indices remain stable across mutation (scans that collect matches and then
// update are safe).  Optional per-column equality indexes accelerate the id
// and name lookups that dominate the query mix; folded-case indexes back the
// case-insensitive predicates, and because indexes are ordered they also
// serve literal-prefix pruning for wildcard patterns and ordered-range
// predicates (kLt/kLe/kGt/kGe/kBetween) — see src/db/exec.h for the planner
// that chooses among them.
#ifndef MOIRA_SRC_DB_TABLE_H_
#define MOIRA_SRC_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/value.h"

namespace moira {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
};

using Row = std::vector<Value>;

// A predicate on one column, used by Table::Match.
struct Condition {
  enum class Op {
    kEq,          // exact equality
    kEqNoCase,    // case-insensitive string equality (exact for non-strings)
    kWild,        // wildcard pattern match ('*' and '?')
    kWildNoCase,  // case-insensitive wildcard match
    kLt,          // cell <  operand
    kLe,          // cell <= operand
    kGt,          // cell >  operand
    kGe,          // cell >= operand
    kBetween,     // operand <= cell <= operand2 (closed range)
  };
  int column = 0;
  Op op = Op::kEq;
  Value operand;
  Value operand2{};  // kBetween only: the upper bound
};

// Mutation counters, surfaced as the TBLSTATS relation (paper section 6),
// plus the access-path counters the query executor maintains so load can be
// reasoned about per table (index-backed vs. scanning execution).
struct TableStats {
  int64_t appends = 0;
  int64_t updates = 0;
  int64_t deletes = 0;
  int64_t modtime = 0;  // unix time of last append/update/delete

  // Access paths taken by Match (one increment per Match call).
  int64_t index_hits = 0;    // answered by an equality-index probe
  int64_t prefix_scans = 0;  // answered by a literal-prefix index range
  int64_t range_scans = 0;   // answered by an ordered-index range scan
  int64_t full_scans = 0;    // had to visit every live row

  // Work done vs. work returned across all Match calls.
  int64_t rows_examined = 0;  // rows fetched and tested against predicates
  int64_t rows_emitted = 0;   // rows that satisfied every predicate

  // Join-executor counters, bumped by Selector (src/db/exec.cc) rather than
  // by Match itself.
  int64_t join_reorders = 0;     // pipelines rooted here whose probe order
                                 // was rewritten by the cost-based planner
  int64_t probe_cache_hits = 0;  // join probes of this table answered from
                                 // the batched distinct-key cache
};

// Public description of one index, consumed by the planner (src/db/exec.cc)
// to estimate selectivity without reaching into Table internals.
struct IndexDesc {
  int column = 0;
  bool folded = false;       // keys are stored case-folded (supports NoCase ops)
  size_t distinct_keys = 0;  // live cardinality; higher means more selective
  size_t entries = 0;        // live rows indexed (== Table::LiveCount())
};

struct AccessPath;  // planner output; defined in src/db/exec.h

class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  // Returns the column position, or -1 if no such column.
  int ColumnIndex(std::string_view column) const;

  // Builds an equality index over `column`.  Idempotent.
  void CreateIndex(std::string_view column);

  // Builds a case-folded index over `column`: keys are stored lowercased, so
  // kEqNoCase probes and kWildNoCase prefix ranges are index-backed.
  // Idempotent, and independent of any exact index on the same column.
  void CreateFoldedIndex(std::string_view column);

  // Describes every index (for the planner and for tests).
  std::vector<IndexDesc> IndexDescs() const;

  // Appends a row (must match the schema arity); returns its stable index.
  size_t Append(Row row);

  // Overwrites one cell of a live row.
  void Update(size_t row_index, int column, Value value);

  // Bookkeeping write: updates the cell (and indexes) without counting in
  // TBLSTATS or bumping the table modtime.  Used for DCM-internal fields —
  // the paper's ModTime "refers only to modification by a user, not by the
  // DCM", and the incremental-generation check must not see DCM writes.
  void UpdateNoStats(size_t row_index, int column, Value value);

  // Overwrites a whole row.
  void UpdateRow(size_t row_index, Row row);

  // Tombstones a row.
  void Delete(size_t row_index);

  bool IsLive(size_t row_index) const {
    return row_index < slots_.size() && slots_[row_index].live;
  }

  const Row& At(size_t row_index) const { return slots_[row_index].row; }
  const Value& Cell(size_t row_index, int column) const {
    return slots_[row_index].row[column];
  }

  // Returns the indices of all live rows satisfying every condition, using
  // the cheapest access path the planner finds (see src/db/exec.h).
  std::vector<size_t> Match(const std::vector<Condition>& conditions) const;

  // Executes `conditions` along a caller-supplied plan.  The Selector join
  // executor plans each probe stage once and patches the probe key between
  // calls instead of re-planning per key; the plan must have been produced
  // by PlanAccess against this table and a structurally identical condition
  // list (only operand values may differ).
  std::vector<size_t> Match(const std::vector<Condition>& conditions,
                            const AccessPath& path) const;

  // Join-executor hooks: these counters belong to TableStats but are bumped
  // by Selector (a const reader), outside any Match call.
  void NoteJoinReorder() const { ++stats_.join_reorders; }
  void NoteProbeCacheHits(int64_t n) const { stats_.probe_cache_hits += n; }

  // Visits every live row; stop early by returning false from the visitor.
  // This is the raw storage sweep — it bypasses the planner and counts as a
  // full scan.  Query handlers should go through Selector instead.
  void Scan(const std::function<bool(size_t, const Row&)>& visit) const;

  // Number of live rows.
  size_t LiveCount() const { return live_count_; }

  // Total slots including tombstones (the valid row-index range).
  size_t SlotCount() const { return slots_.size(); }

  const TableStats& stats() const { return stats_; }

  // The engine stamps stats modtimes through this hook; set by Database.
  void set_time_source(const std::function<int64_t()>& now) { now_ = now; }

 private:
  struct Slot {
    Row row;
    bool live = true;
  };

  struct Index {
    int column;
    bool folded = false;
    size_t distinct_keys = 0;
    std::multimap<Value, size_t> entries;
  };

  void Touch(int64_t* counter);
  void BuildIndex(int column, bool folded);
  void IndexInsert(size_t row_index);
  void IndexErase(size_t row_index);
  // Executes a plan produced by PlanAccess (src/db/exec.cc), bumping the
  // access-path counters.
  std::vector<size_t> ExecutePath(const AccessPath& path,
                                  const std::vector<Condition>& conditions) const;

  TableSchema schema_;
  std::vector<Slot> slots_;
  std::vector<Index> indexes_;
  size_t live_count_ = 0;
  // Mutation counters are bumped by writers; the access-path counters are
  // bumped by const reads, hence mutable.
  mutable TableStats stats_;
  std::function<int64_t()> now_;
};

}  // namespace moira

#endif  // MOIRA_SRC_DB_TABLE_H_
