#include "src/db/table.h"

#include <cassert>

#include "src/common/strutil.h"

namespace moira {
namespace {

bool ConditionHolds(const Condition& cond, const Row& row) {
  const Value& cell = row[cond.column];
  switch (cond.op) {
    case Condition::Op::kEq:
      return cell == cond.operand;
    case Condition::Op::kEqNoCase:
      return cell.is_string() && cond.operand.is_string() &&
             EqualsIgnoreCase(cell.AsString(), cond.operand.AsString());
    case Condition::Op::kWild:
      return WildcardMatch(cond.operand.ToString(), cell.ToString());
    case Condition::Op::kWildNoCase:
      return WildcardMatch(cond.operand.ToString(), cell.ToString(), /*case_insensitive=*/true);
  }
  return false;
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

int Table::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < schema_.columns.size(); ++i) {
    if (schema_.columns[i].name == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Table::CreateIndex(std::string_view column) {
  int col = ColumnIndex(column);
  assert(col >= 0);
  for (const Index& index : indexes_) {
    if (index.column == col) {
      return;
    }
  }
  Index index;
  index.column = col;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) {
      index.entries.emplace(slots_[i].row[col], i);
    }
  }
  indexes_.push_back(std::move(index));
}

size_t Table::Append(Row row) {
  assert(row.size() == schema_.columns.size());
  slots_.push_back(Slot{std::move(row), /*live=*/true});
  size_t row_index = slots_.size() - 1;
  ++live_count_;
  IndexInsert(row_index);
  Touch(&stats_.appends);
  return row_index;
}

void Table::Update(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::UpdateNoStats(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  IndexInsert(row_index);
}

void Table::UpdateRow(size_t row_index, Row row) {
  assert(IsLive(row_index));
  assert(row.size() == schema_.columns.size());
  IndexErase(row_index);
  slots_[row_index].row = std::move(row);
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::Delete(size_t row_index) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].live = false;
  slots_[row_index].row.clear();
  --live_count_;
  Touch(&stats_.deletes);
}

const Table::Index* Table::FindIndexFor(const std::vector<Condition>& conditions,
                                        size_t* cond_pos) const {
  for (size_t c = 0; c < conditions.size(); ++c) {
    if (conditions[c].op != Condition::Op::kEq) {
      continue;
    }
    for (const Index& index : indexes_) {
      if (index.column == conditions[c].column) {
        *cond_pos = c;
        return &index;
      }
    }
  }
  return nullptr;
}

std::vector<size_t> Table::Match(const std::vector<Condition>& conditions) const {
  std::vector<size_t> out;
  size_t indexed_cond = 0;
  const Index* index = FindIndexFor(conditions, &indexed_cond);
  auto satisfies_rest = [&](size_t row_index) {
    const Row& row = slots_[row_index].row;
    for (size_t c = 0; c < conditions.size(); ++c) {
      if (index != nullptr && c == indexed_cond) {
        continue;  // already satisfied via the index
      }
      if (!ConditionHolds(conditions[c], row)) {
        return false;
      }
    }
    return true;
  };
  if (index != nullptr) {
    auto [begin, end] = index->entries.equal_range(conditions[indexed_cond].operand);
    for (auto it = begin; it != end; ++it) {
      if (slots_[it->second].live && satisfies_rest(it->second)) {
        out.push_back(it->second);
      }
    }
    return out;
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live && satisfies_rest(i)) {
      out.push_back(i);
    }
  }
  return out;
}

void Table::Scan(const std::function<bool(size_t, const Row&)>& visit) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live && !visit(i, slots_[i].row)) {
      return;
    }
  }
}

void Table::Touch(int64_t* counter) {
  ++*counter;
  stats_.modtime = now_ ? now_() : 0;
}

void Table::IndexInsert(size_t row_index) {
  for (Index& index : indexes_) {
    index.entries.emplace(slots_[row_index].row[index.column], row_index);
  }
}

void Table::IndexErase(size_t row_index) {
  for (Index& index : indexes_) {
    auto [begin, end] = index.entries.equal_range(slots_[row_index].row[index.column]);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_index) {
        index.entries.erase(it);
        break;
      }
    }
  }
}

}  // namespace moira
