#include "src/db/table.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "src/common/strutil.h"
#include "src/common/worker_pool.h"
#include "src/db/exec.h"

namespace moira {
namespace {

// Shard hashing must be deterministic across builds and runs: the journal
// replays rows in append order on replicas, and dumps are compared
// byte-for-byte, so a platform-dependent std::hash would not do.  Integers
// go through the SplitMix64 finalizer (sequential ids must not land on
// sequential shards); strings through FNV-1a.
uint64_t HashInt(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashValue(const Value& v) {
  return v.is_int() ? HashInt(static_cast<uint64_t>(v.AsInt()))
                    : HashBytes(v.AsString());
}

bool ConditionHolds(const Condition& cond, const Row& row) {
  const Value& cell = row[cond.column];
  switch (cond.op) {
    case Condition::Op::kEq:
      return cell == cond.operand;
    case Condition::Op::kEqNoCase:
      // Case only exists for strings; against anything else (an int uid
      // probed case-insensitively, say) this is plain equality.
      if (!cell.is_string() || !cond.operand.is_string()) {
        return cell == cond.operand;
      }
      return EqualsIgnoreCase(cell.AsString(), cond.operand.AsString());
    case Condition::Op::kWild:
      return WildcardMatch(cond.operand.ToString(), cell.ToString());
    case Condition::Op::kWildNoCase:
      return WildcardMatch(cond.operand.ToString(), cell.ToString(), /*case_insensitive=*/true);
    case Condition::Op::kLt:
      return cell < cond.operand;
    case Condition::Op::kLe:
      return !(cond.operand < cell);
    case Condition::Op::kGt:
      return cond.operand < cell;
    case Condition::Op::kGe:
      return !(cell < cond.operand);
    case Condition::Op::kBetween:
      return !(cell < cond.operand) && !(cond.operand2 < cell);
    case Condition::Op::kNe:
      return cell != cond.operand;
    case Condition::Op::kAnyBits:
      // Flag-mask membership; only meaningful between ints.
      return cell.is_int() && cond.operand.is_int() &&
             (cell.AsInt() & cond.operand.AsInt()) != 0;
    case Condition::Op::kIn:
      // operand_set is sorted (Selector::WhereIn enforces it).
      return std::binary_search(cond.operand_set.begin(), cond.operand_set.end(),
                                cell);
  }
  return false;
}

// Merges ascending per-shard runs into one ascending vector.  Shard counts
// are single digits, so a sequential two-way merge cascade is fine.
std::vector<size_t> MergeSortedRuns(std::vector<std::vector<size_t>>* runs) {
  std::vector<size_t> out;
  std::vector<size_t> tmp;
  for (std::vector<size_t>& run : *runs) {
    if (run.empty()) {
      continue;
    }
    if (out.empty()) {
      out = std::move(run);
      continue;
    }
    tmp.clear();
    tmp.reserve(out.size() + run.size());
    std::merge(out.begin(), out.end(), run.begin(), run.end(),
               std::back_inserter(tmp));
    out.swap(tmp);
  }
  return out;
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  shard_live_.assign(1, 0);
  shard_examined_.assign(1, 0);
}

Table::Table(TableSchema schema, std::string_view partition_column, size_t shards)
    : schema_(std::move(schema)), shard_count_(shards == 0 ? 1 : shards) {
  partition_col_ = ColumnIndex(partition_column);
  // A multi-shard table without a real partition column would silently hash
  // row[-1]; make the misconfiguration loud in every build.
  assert(shard_count_ == 1 || partition_col_ >= 0);
  if (partition_col_ < 0) {
    shard_count_ = 1;
  }
  shard_live_.assign(shard_count_, 0);
  shard_examined_.assign(shard_count_, 0);
}

size_t Table::ShardOfKey(const Value& key) const {
  if (shard_count_ <= 1) {
    return 0;
  }
  return static_cast<size_t>(HashValue(key) % shard_count_);
}

uint32_t Table::ShardOfRowValue(const Row& row) const {
  if (shard_count_ <= 1 || partition_col_ < 0) {
    return 0;
  }
  return static_cast<uint32_t>(ShardOfKey(row[partition_col_]));
}

std::vector<int64_t> Table::ShardLiveCounts() const { return shard_live_; }

std::vector<int64_t> Table::ShardRowsExamined() const {
  std::vector<int64_t> out;
  out.reserve(shard_examined_.size());
  for (const StatCounter& c : shard_examined_) {
    out.push_back(c.load());
  }
  return out;
}

int Table::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < schema_.columns.size(); ++i) {
    if (schema_.columns[i].name == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Table::CreateIndex(std::string_view column) {
  int col = ColumnIndex(column);
  assert(col >= 0);
  BuildIndex(col, /*folded=*/false);
}

void Table::CreateFoldedIndex(std::string_view column) {
  int col = ColumnIndex(column);
  assert(col >= 0);
  BuildIndex(col, /*folded=*/true);
}

void Table::BuildIndex(int column, bool folded) {
  for (const Index& index : indexes_) {
    if (index.column == column && index.folded == folded) {
      return;
    }
  }
  Index index;
  index.column = column;
  index.folded = folded;
  index.shards.resize(shard_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) {
      continue;
    }
    IndexShard& shard = index.shards[slots_[i].shard];
    Value key = folded ? FoldCaseKey(slots_[i].row[column]) : slots_[i].row[column];
    if (shard.entries.find(key) == shard.entries.end()) {
      ++shard.distinct_keys;
    }
    shard.entries.emplace(std::move(key), i);
  }
  indexes_.push_back(std::move(index));
}

std::vector<IndexDesc> Table::IndexDescs() const {
  std::vector<IndexDesc> out;
  out.reserve(indexes_.size());
  for (const Index& index : indexes_) {
    IndexDesc desc;
    desc.column = index.column;
    desc.folded = index.folded;
    for (const IndexShard& shard : index.shards) {
      desc.distinct_keys += shard.distinct_keys;
      desc.entries += shard.entries.size();
    }
    out.push_back(desc);
  }
  return out;
}

size_t Table::Append(Row row) {
  assert(row.size() == schema_.columns.size());
  uint32_t shard = ShardOfRowValue(row);
  slots_.push_back(Slot{std::move(row), /*live=*/true, shard});
  size_t row_index = slots_.size() - 1;
  ++live_count_;
  ++shard_live_[shard];
  IndexInsert(row_index);
  Touch(&stats_.appends);
  return row_index;
}

void Table::ReshardRow(size_t row_index) {
  uint32_t shard = ShardOfRowValue(slots_[row_index].row);
  if (shard != slots_[row_index].shard) {
    --shard_live_[slots_[row_index].shard];
    slots_[row_index].shard = shard;
    ++shard_live_[shard];
  }
}

void Table::Update(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  if (column == partition_col_) {
    ReshardRow(row_index);
  }
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::UpdateNoStats(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  if (column == partition_col_) {
    ReshardRow(row_index);
  }
  IndexInsert(row_index);
}

void Table::UpdateRow(size_t row_index, Row row) {
  assert(IsLive(row_index));
  assert(row.size() == schema_.columns.size());
  IndexErase(row_index);
  slots_[row_index].row = std::move(row);
  ReshardRow(row_index);
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::Delete(size_t row_index) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].live = false;
  slots_[row_index].row.clear();
  --live_count_;
  --shard_live_[slots_[row_index].shard];
  Touch(&stats_.deletes);
}

std::vector<size_t> Table::Match(const std::vector<Condition>& conditions) const {
  return ExecutePath(PlanAccess(*this, conditions), conditions);
}

std::vector<size_t> Table::Match(const std::vector<Condition>& conditions,
                                 const AccessPath& path) const {
  return ExecutePath(path, conditions);
}

std::vector<size_t> Table::ExecutePath(const AccessPath& path,
                                       const std::vector<Condition>& conditions) const {
  std::vector<size_t> out;
  // planned_away[c] is true when the access path itself already guarantees
  // condition `c`, so the residual pass must not re-evaluate it.  Computed
  // once up front: the per-row loop is the hot path.
  std::vector<bool> planned_away(conditions.size(), false);
  if ((path.kind == AccessPath::Kind::kIndexEq ||
       path.kind == AccessPath::Kind::kIndexIn) &&
      path.skip_cond) {
    planned_away[path.cond_pos] = true;
  } else if (path.kind == AccessPath::Kind::kIndexRange) {
    for (size_t c : path.range_conds) {
      planned_away[c] = true;
    }
  }
  // Thread-safety: `satisfies` runs concurrently from fan-out legs; it only
  // reads immutable state and bumps relaxed atomic counters, and every leg
  // writes its own run vector.
  auto satisfies = [&](size_t row_index) {
    ++stats_.rows_examined;
    ++shard_examined_[slots_[row_index].shard];
    const Row& row = slots_[row_index].row;
    for (size_t c = 0; c < conditions.size(); ++c) {
      if (planned_away[c]) {
        continue;  // fully satisfied by the index probe or range window
      }
      if (!ConditionHolds(conditions[c], row)) {
        return false;
      }
    }
    return true;
  };
  // Probes one shard's run of an index for `key`.  An equal range holds rows
  // in insertion order (an update re-inserts its row at the end), so each
  // run is sorted to storage order before the merge.
  auto probe_shard = [&](const IndexShard& shard, const Value& key,
                         std::vector<size_t>* run) {
    auto [begin, end] = shard.entries.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (slots_[it->second].live && satisfies(it->second)) {
        run->push_back(it->second);
      }
    }
    std::sort(run->begin(), run->end());
  };
  // Runs `leg` against every shard of `index` — on the worker pool when one
  // is attached — and merges the ascending per-shard runs.
  auto fan_out = [&](const Index& index,
                     const std::function<void(const IndexShard&, std::vector<size_t>*)>& leg) {
    if (shard_count_ > 1) {
      ++stats_.fanout_scans;
    }
    std::vector<std::vector<size_t>> runs(shard_count_);
    if (pool_ != nullptr && shard_count_ > 1) {
      pool_->ParallelFor(shard_count_,
                         [&](size_t s) { leg(index.shards[s], &runs[s]); });
    } else {
      for (size_t s = 0; s < shard_count_; ++s) {
        leg(index.shards[s], &runs[s]);
      }
    }
    return MergeSortedRuns(&runs);
  };
  switch (path.kind) {
    case AccessPath::Kind::kIndexEq: {
      ++stats_.index_hits;
      const Index& index = indexes_[path.index_pos];
      if (shard_count_ > 1 && !index.folded && index.column == partition_col_) {
        // Exact probe on the partition column: the key's hash names the only
        // shard that can hold matches.
        ++stats_.single_shard_probes;
        probe_shard(index.shards[ShardOfKey(path.eq_key)], path.eq_key, &out);
      } else {
        out = fan_out(index, [&](const IndexShard& shard, std::vector<size_t>* run) {
          probe_shard(shard, path.eq_key, run);
        });
      }
      break;
    }
    case AccessPath::Kind::kIndexIn: {
      ++stats_.set_probes;
      const Index& index = indexes_[path.index_pos];
      const bool routed =
          shard_count_ > 1 && !index.folded && index.column == partition_col_;
      if (routed) {
        ++stats_.single_shard_probes;
      } else if (shard_count_ > 1) {
        ++stats_.fanout_scans;
      }
      auto probe_into = [&](const IndexShard& shard, const Value& key) {
        auto [begin, end] = shard.entries.equal_range(key);
        for (auto it = begin; it != end; ++it) {
          if (slots_[it->second].live && satisfies(it->second)) {
            out.push_back(it->second);
          }
        }
      };
      for (const Value& key : path.in_keys) {
        if (routed) {
          probe_into(index.shards[ShardOfKey(key)], key);
        } else {
          for (size_t s = 0; s < shard_count_; ++s) {
            probe_into(index.shards[s], key);
          }
        }
      }
      // Per-key probes arrive key-ordered, not storage-ordered; this is the
      // union's merge step (keys are distinct, so runs are disjoint).
      std::sort(out.begin(), out.end());
      break;
    }
    case AccessPath::Kind::kIndexRange: {
      ++stats_.range_scans;
      const AccessPath::Bound& lo = path.range_lower;
      const AccessPath::Bound& hi = path.range_upper;
      // A contradictory window (lower above upper, or a touching pair with
      // an exclusive end) is empty; skip before deriving iterators, where an
      // inverted pair would walk off the map.
      bool empty = lo.present && hi.present &&
                   (hi.key < lo.key ||
                    (!(lo.key < hi.key) && !(lo.inclusive && hi.inclusive)));
      if (!empty) {
        out = fan_out(indexes_[path.index_pos],
                      [&](const IndexShard& shard, std::vector<size_t>* run) {
          auto begin = !lo.present    ? shard.entries.begin()
                       : lo.inclusive ? shard.entries.lower_bound(lo.key)
                                      : shard.entries.upper_bound(lo.key);
          auto end = !hi.present    ? shard.entries.end()
                     : hi.inclusive ? shard.entries.upper_bound(hi.key)
                                    : shard.entries.lower_bound(hi.key);
          for (auto it = begin; it != end; ++it) {
            if (slots_[it->second].live && satisfies(it->second)) {
              run->push_back(it->second);
            }
          }
          // Key order -> storage order before the merge, as for every run.
          std::sort(run->begin(), run->end());
        });
      }
      break;
    }
    case AccessPath::Kind::kIndexPrefix: {
      ++stats_.prefix_scans;
      out = fan_out(indexes_[path.index_pos],
                    [&](const IndexShard& shard, std::vector<size_t>* run) {
        auto it = shard.entries.lower_bound(Value(path.lower));
        auto end = path.upper.empty() ? shard.entries.end()
                                      : shard.entries.lower_bound(Value(path.upper));
        for (; it != end; ++it) {
          if (slots_[it->second].live && satisfies(it->second)) {
            run->push_back(it->second);
          }
        }
        std::sort(run->begin(), run->end());
      });
      break;
    }
    case AccessPath::Kind::kFullScan: {
      ++stats_.full_scans;
      if (shard_count_ > 1) {
        ++stats_.fanout_scans;  // a full scan visits every shard's rows
      }
      const size_t n = slots_.size();
      // Chunked parallel sweep: contiguous slot ranges keep each run
      // ascending, so concatenation in chunk order is already merged.
      constexpr size_t kParallelScanMinSlots = 4096;
      if (pool_ != nullptr && pool_->thread_count() > 0 &&
          n >= kParallelScanMinSlots) {
        const size_t chunks = pool_->thread_count() + 1;
        const size_t chunk = (n + chunks - 1) / chunks;
        std::vector<std::vector<size_t>> runs(chunks);
        pool_->ParallelFor(chunks, [&](size_t c) {
          const size_t lo = c * chunk;
          const size_t hi = std::min(n, lo + chunk);
          for (size_t i = lo; i < hi; ++i) {
            if (slots_[i].live && satisfies(i)) {
              runs[c].push_back(i);
            }
          }
        });
        for (std::vector<size_t>& run : runs) {
          out.insert(out.end(), run.begin(), run.end());
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (slots_[i].live && satisfies(i)) {
            out.push_back(i);
          }
        }
      }
      break;
    }
  }
  stats_.rows_emitted += static_cast<int64_t>(out.size());
  // THE merge point: every path above — single-shard probe, merged fan-out,
  // kIn union, chunked scan — must deliver ascending storage order here, so
  // results never depend on the plan or the shard count.  Downstream
  // consumers (Selector::Rows and the query handlers) rely on this instead
  // of re-sorting.
  assert(std::is_sorted(out.begin(), out.end()));
  return out;
}

void Table::Scan(const std::function<bool(size_t, const Row&)>& visit) const {
  ++stats_.full_scans;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) {
      ++stats_.rows_examined;
      ++shard_examined_[slots_[i].shard];
      // A raw sweep has no predicate: every visited row reaches the caller,
      // so it counts as emitted too, keeping the examined/emitted selectivity
      // ratio meaningful for scan-heavy callers.
      ++stats_.rows_emitted;
      if (!visit(i, slots_[i].row)) {
        return;
      }
    }
  }
}

void Table::Touch(int64_t* counter) {
  ++*counter;
  stats_.modtime = now_ ? now_() : 0;
}

void Table::IndexInsert(size_t row_index) {
  for (Index& index : indexes_) {
    IndexShard& shard = index.shards[slots_[row_index].shard];
    Value key = index.folded ? FoldCaseKey(slots_[row_index].row[index.column])
                             : slots_[row_index].row[index.column];
    if (shard.entries.find(key) == shard.entries.end()) {
      ++shard.distinct_keys;
    }
    shard.entries.emplace(std::move(key), row_index);
  }
}

void Table::IndexErase(size_t row_index) {
  for (Index& index : indexes_) {
    IndexShard& shard = index.shards[slots_[row_index].shard];
    Value key = index.folded ? FoldCaseKey(slots_[row_index].row[index.column])
                             : slots_[row_index].row[index.column];
    auto [begin, end] = shard.entries.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_index) {
        shard.entries.erase(it);
        break;
      }
    }
    if (shard.entries.find(key) == shard.entries.end()) {
      --shard.distinct_keys;
    }
  }
}

}  // namespace moira
