#include "src/db/table.h"

#include <algorithm>
#include <cassert>

#include "src/common/strutil.h"
#include "src/db/exec.h"

namespace moira {
namespace {

bool ConditionHolds(const Condition& cond, const Row& row) {
  const Value& cell = row[cond.column];
  switch (cond.op) {
    case Condition::Op::kEq:
      return cell == cond.operand;
    case Condition::Op::kEqNoCase:
      // Case only exists for strings; against anything else (an int uid
      // probed case-insensitively, say) this is plain equality.
      if (!cell.is_string() || !cond.operand.is_string()) {
        return cell == cond.operand;
      }
      return EqualsIgnoreCase(cell.AsString(), cond.operand.AsString());
    case Condition::Op::kWild:
      return WildcardMatch(cond.operand.ToString(), cell.ToString());
    case Condition::Op::kWildNoCase:
      return WildcardMatch(cond.operand.ToString(), cell.ToString(), /*case_insensitive=*/true);
    case Condition::Op::kLt:
      return cell < cond.operand;
    case Condition::Op::kLe:
      return !(cond.operand < cell);
    case Condition::Op::kGt:
      return cond.operand < cell;
    case Condition::Op::kGe:
      return !(cell < cond.operand);
    case Condition::Op::kBetween:
      return !(cell < cond.operand) && !(cond.operand2 < cell);
  }
  return false;
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

int Table::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < schema_.columns.size(); ++i) {
    if (schema_.columns[i].name == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Table::CreateIndex(std::string_view column) {
  int col = ColumnIndex(column);
  assert(col >= 0);
  BuildIndex(col, /*folded=*/false);
}

void Table::CreateFoldedIndex(std::string_view column) {
  int col = ColumnIndex(column);
  assert(col >= 0);
  BuildIndex(col, /*folded=*/true);
}

void Table::BuildIndex(int column, bool folded) {
  for (const Index& index : indexes_) {
    if (index.column == column && index.folded == folded) {
      return;
    }
  }
  Index index;
  index.column = column;
  index.folded = folded;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) {
      continue;
    }
    Value key = folded ? FoldCaseKey(slots_[i].row[column]) : slots_[i].row[column];
    if (index.entries.find(key) == index.entries.end()) {
      ++index.distinct_keys;
    }
    index.entries.emplace(std::move(key), i);
  }
  indexes_.push_back(std::move(index));
}

std::vector<IndexDesc> Table::IndexDescs() const {
  std::vector<IndexDesc> out;
  out.reserve(indexes_.size());
  for (const Index& index : indexes_) {
    out.push_back(IndexDesc{index.column, index.folded, index.distinct_keys,
                            index.entries.size()});
  }
  return out;
}

size_t Table::Append(Row row) {
  assert(row.size() == schema_.columns.size());
  slots_.push_back(Slot{std::move(row), /*live=*/true});
  size_t row_index = slots_.size() - 1;
  ++live_count_;
  IndexInsert(row_index);
  Touch(&stats_.appends);
  return row_index;
}

void Table::Update(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::UpdateNoStats(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  IndexInsert(row_index);
}

void Table::UpdateRow(size_t row_index, Row row) {
  assert(IsLive(row_index));
  assert(row.size() == schema_.columns.size());
  IndexErase(row_index);
  slots_[row_index].row = std::move(row);
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::Delete(size_t row_index) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].live = false;
  slots_[row_index].row.clear();
  --live_count_;
  Touch(&stats_.deletes);
}

std::vector<size_t> Table::Match(const std::vector<Condition>& conditions) const {
  return ExecutePath(PlanAccess(*this, conditions), conditions);
}

std::vector<size_t> Table::Match(const std::vector<Condition>& conditions,
                                 const AccessPath& path) const {
  return ExecutePath(path, conditions);
}

std::vector<size_t> Table::ExecutePath(const AccessPath& path,
                                       const std::vector<Condition>& conditions) const {
  std::vector<size_t> out;
  // planned_away[c] is true when the access path itself already guarantees
  // condition `c`, so the residual pass must not re-evaluate it.  Computed
  // once up front: the per-row loop is the hot path.
  std::vector<bool> planned_away(conditions.size(), false);
  if (path.kind == AccessPath::Kind::kIndexEq && path.skip_cond) {
    planned_away[path.cond_pos] = true;
  } else if (path.kind == AccessPath::Kind::kIndexRange) {
    for (size_t c : path.range_conds) {
      planned_away[c] = true;
    }
  }
  auto satisfies = [&](size_t row_index) {
    ++stats_.rows_examined;
    const Row& row = slots_[row_index].row;
    for (size_t c = 0; c < conditions.size(); ++c) {
      if (planned_away[c]) {
        continue;  // fully satisfied by the index probe or range window
      }
      if (!ConditionHolds(conditions[c], row)) {
        return false;
      }
    }
    return true;
  };
  switch (path.kind) {
    case AccessPath::Kind::kIndexEq: {
      ++stats_.index_hits;
      const Index& index = indexes_[path.index_pos];
      auto [begin, end] = index.entries.equal_range(path.eq_key);
      for (auto it = begin; it != end; ++it) {
        if (slots_[it->second].live && satisfies(it->second)) {
          out.push_back(it->second);
        }
      }
      // An equal range holds rows in insertion order (an update re-inserts
      // its row at the end), so report storage order like the other paths —
      // result order must not depend on the plan chosen.
      std::sort(out.begin(), out.end());
      break;
    }
    case AccessPath::Kind::kIndexRange: {
      ++stats_.range_scans;
      const Index& index = indexes_[path.index_pos];
      const AccessPath::Bound& lo = path.range_lower;
      const AccessPath::Bound& hi = path.range_upper;
      // A contradictory window (lower above upper, or a touching pair with
      // an exclusive end) is empty; skip before deriving iterators, where an
      // inverted pair would walk off the map.
      bool empty = lo.present && hi.present &&
                   (hi.key < lo.key ||
                    (!(lo.key < hi.key) && !(lo.inclusive && hi.inclusive)));
      if (!empty) {
        auto begin = !lo.present          ? index.entries.begin()
                     : lo.inclusive       ? index.entries.lower_bound(lo.key)
                                          : index.entries.upper_bound(lo.key);
        auto end = !hi.present      ? index.entries.end()
                   : hi.inclusive   ? index.entries.upper_bound(hi.key)
                                    : index.entries.lower_bound(hi.key);
        for (auto it = begin; it != end; ++it) {
          if (slots_[it->second].live && satisfies(it->second)) {
            out.push_back(it->second);
          }
        }
      }
      // Key order -> storage order, as for every other path.
      std::sort(out.begin(), out.end());
      break;
    }
    case AccessPath::Kind::kIndexPrefix: {
      ++stats_.prefix_scans;
      const Index& index = indexes_[path.index_pos];
      auto it = index.entries.lower_bound(Value(path.lower));
      auto end = path.upper.empty() ? index.entries.end()
                                    : index.entries.lower_bound(Value(path.upper));
      for (; it != end; ++it) {
        if (slots_[it->second].live && satisfies(it->second)) {
          out.push_back(it->second);
        }
      }
      // The range visits rows in key order; report them in storage order like
      // the scan path would, so result order is stable across plan changes.
      std::sort(out.begin(), out.end());
      break;
    }
    case AccessPath::Kind::kFullScan: {
      ++stats_.full_scans;
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].live && satisfies(i)) {
          out.push_back(i);
        }
      }
      break;
    }
  }
  stats_.rows_emitted += static_cast<int64_t>(out.size());
  return out;
}

void Table::Scan(const std::function<bool(size_t, const Row&)>& visit) const {
  ++stats_.full_scans;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) {
      ++stats_.rows_examined;
      // A raw sweep has no predicate: every visited row reaches the caller,
      // so it counts as emitted too, keeping the examined/emitted selectivity
      // ratio meaningful for scan-heavy callers.
      ++stats_.rows_emitted;
      if (!visit(i, slots_[i].row)) {
        return;
      }
    }
  }
}

void Table::Touch(int64_t* counter) {
  ++*counter;
  stats_.modtime = now_ ? now_() : 0;
}

void Table::IndexInsert(size_t row_index) {
  for (Index& index : indexes_) {
    Value key = index.folded ? FoldCaseKey(slots_[row_index].row[index.column])
                             : slots_[row_index].row[index.column];
    if (index.entries.find(key) == index.entries.end()) {
      ++index.distinct_keys;
    }
    index.entries.emplace(std::move(key), row_index);
  }
}

void Table::IndexErase(size_t row_index) {
  for (Index& index : indexes_) {
    Value key = index.folded ? FoldCaseKey(slots_[row_index].row[index.column])
                             : slots_[row_index].row[index.column];
    auto [begin, end] = index.entries.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_index) {
        index.entries.erase(it);
        break;
      }
    }
    if (index.entries.find(key) == index.entries.end()) {
      --index.distinct_keys;
    }
  }
}

}  // namespace moira
