#include "src/db/table.h"

#include <algorithm>
#include <cassert>

#include "src/common/strutil.h"
#include "src/db/exec.h"

namespace moira {
namespace {

bool ConditionHolds(const Condition& cond, const Row& row) {
  const Value& cell = row[cond.column];
  switch (cond.op) {
    case Condition::Op::kEq:
      return cell == cond.operand;
    case Condition::Op::kEqNoCase:
      return cell.is_string() && cond.operand.is_string() &&
             EqualsIgnoreCase(cell.AsString(), cond.operand.AsString());
    case Condition::Op::kWild:
      return WildcardMatch(cond.operand.ToString(), cell.ToString());
    case Condition::Op::kWildNoCase:
      return WildcardMatch(cond.operand.ToString(), cell.ToString(), /*case_insensitive=*/true);
  }
  return false;
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {}

int Table::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < schema_.columns.size(); ++i) {
    if (schema_.columns[i].name == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Table::CreateIndex(std::string_view column) {
  int col = ColumnIndex(column);
  assert(col >= 0);
  BuildIndex(col, /*folded=*/false);
}

void Table::CreateFoldedIndex(std::string_view column) {
  int col = ColumnIndex(column);
  assert(col >= 0);
  BuildIndex(col, /*folded=*/true);
}

void Table::BuildIndex(int column, bool folded) {
  for (const Index& index : indexes_) {
    if (index.column == column && index.folded == folded) {
      return;
    }
  }
  Index index;
  index.column = column;
  index.folded = folded;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) {
      continue;
    }
    Value key = folded ? FoldCaseKey(slots_[i].row[column]) : slots_[i].row[column];
    if (index.entries.find(key) == index.entries.end()) {
      ++index.distinct_keys;
    }
    index.entries.emplace(std::move(key), i);
  }
  indexes_.push_back(std::move(index));
}

std::vector<IndexDesc> Table::IndexDescs() const {
  std::vector<IndexDesc> out;
  out.reserve(indexes_.size());
  for (const Index& index : indexes_) {
    out.push_back(IndexDesc{index.column, index.folded, index.distinct_keys,
                            index.entries.size()});
  }
  return out;
}

size_t Table::Append(Row row) {
  assert(row.size() == schema_.columns.size());
  slots_.push_back(Slot{std::move(row), /*live=*/true});
  size_t row_index = slots_.size() - 1;
  ++live_count_;
  IndexInsert(row_index);
  Touch(&stats_.appends);
  return row_index;
}

void Table::Update(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::UpdateNoStats(size_t row_index, int column, Value value) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].row[column] = std::move(value);
  IndexInsert(row_index);
}

void Table::UpdateRow(size_t row_index, Row row) {
  assert(IsLive(row_index));
  assert(row.size() == schema_.columns.size());
  IndexErase(row_index);
  slots_[row_index].row = std::move(row);
  IndexInsert(row_index);
  Touch(&stats_.updates);
}

void Table::Delete(size_t row_index) {
  assert(IsLive(row_index));
  IndexErase(row_index);
  slots_[row_index].live = false;
  slots_[row_index].row.clear();
  --live_count_;
  Touch(&stats_.deletes);
}

std::vector<size_t> Table::Match(const std::vector<Condition>& conditions) const {
  return ExecutePath(PlanAccess(*this, conditions), conditions);
}

std::vector<size_t> Table::ExecutePath(const AccessPath& path,
                                       const std::vector<Condition>& conditions) const {
  std::vector<size_t> out;
  auto satisfies = [&](size_t row_index, bool skip_planned) {
    ++stats_.rows_examined;
    const Row& row = slots_[row_index].row;
    for (size_t c = 0; c < conditions.size(); ++c) {
      if (skip_planned && c == path.cond_pos) {
        continue;  // fully satisfied by the index probe
      }
      if (!ConditionHolds(conditions[c], row)) {
        return false;
      }
    }
    return true;
  };
  switch (path.kind) {
    case AccessPath::Kind::kIndexEq: {
      ++stats_.index_hits;
      const Index& index = indexes_[path.index_pos];
      auto [begin, end] = index.entries.equal_range(path.eq_key);
      for (auto it = begin; it != end; ++it) {
        if (slots_[it->second].live && satisfies(it->second, path.skip_cond)) {
          out.push_back(it->second);
        }
      }
      break;
    }
    case AccessPath::Kind::kIndexPrefix: {
      ++stats_.prefix_scans;
      const Index& index = indexes_[path.index_pos];
      auto it = index.entries.lower_bound(Value(path.lower));
      auto end = path.upper.empty() ? index.entries.end()
                                    : index.entries.lower_bound(Value(path.upper));
      for (; it != end; ++it) {
        if (slots_[it->second].live && satisfies(it->second, /*skip_planned=*/false)) {
          out.push_back(it->second);
        }
      }
      // The range visits rows in key order; report them in storage order like
      // the scan path would, so result order is stable across plan changes.
      std::sort(out.begin(), out.end());
      break;
    }
    case AccessPath::Kind::kFullScan: {
      ++stats_.full_scans;
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].live && satisfies(i, /*skip_planned=*/false)) {
          out.push_back(i);
        }
      }
      break;
    }
  }
  stats_.rows_emitted += static_cast<int64_t>(out.size());
  return out;
}

void Table::Scan(const std::function<bool(size_t, const Row&)>& visit) const {
  ++stats_.full_scans;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) {
      ++stats_.rows_examined;
      if (!visit(i, slots_[i].row)) {
        return;
      }
    }
  }
}

void Table::Touch(int64_t* counter) {
  ++*counter;
  stats_.modtime = now_ ? now_() : 0;
}

void Table::IndexInsert(size_t row_index) {
  for (Index& index : indexes_) {
    Value key = index.folded ? FoldCaseKey(slots_[row_index].row[index.column])
                             : slots_[row_index].row[index.column];
    if (index.entries.find(key) == index.entries.end()) {
      ++index.distinct_keys;
    }
    index.entries.emplace(std::move(key), row_index);
  }
}

void Table::IndexErase(size_t row_index) {
  for (Index& index : indexes_) {
    Value key = index.folded ? FoldCaseKey(slots_[row_index].row[index.column])
                             : slots_[row_index].row[index.column];
    auto [begin, end] = index.entries.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_index) {
        index.entries.erase(it);
        break;
      }
    }
    if (index.entries.find(key) == index.entries.end()) {
      --index.distinct_keys;
    }
  }
}

}  // namespace moira
