// The Moira database engine (paper section 5.2).
//
// A small embedded relational store substituting for RTI INGRES.  Moira is
// explicitly designed not to depend on any special DBMS feature; the only
// interface the rest of the system sees is tables, rows, and predicates, and
// everything above this layer goes through named query handles.
#ifndef MOIRA_SRC_DB_DATABASE_H_
#define MOIRA_SRC_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/db/table.h"

namespace moira {

class Database {
 public:
  // The clock stamps TBLSTATS modtimes; it must outlive the database.
  explicit Database(const Clock* clock);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates a table; returns nullptr if one with that name already exists.
  Table* CreateTable(TableSchema schema);

  // Creates a hash-partitioned table over `partition_column` (see
  // ShardedTable in table.h); `shards` == 1 degenerates to CreateTable.
  // Returns nullptr if a table with that name already exists.
  Table* CreateShardedTable(TableSchema schema, std::string_view partition_column,
                            size_t shards);

  // Looks up a table; nullptr if absent.
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  // Names of all tables, in creation order.
  std::vector<std::string> TableNames() const;

  // Unix time of the most recent mutation to any table, 0 if none.
  UnixTime LastModified() const;

  // Drops all rows from every table, preserving schemas and indexes.
  void ClearAllRows();

  // Attaches a worker pool to every table (current and future) for parallel
  // fan-out scans; nullptr detaches.  The pool is not owned and must outlive
  // the database (or be detached first).
  void AttachWorkerPool(WorkerPool* pool);
  WorkerPool* worker_pool() const { return pool_; }

  const Clock& clock() const { return *clock_; }

 private:
  Table* Install(std::unique_ptr<Table> table);

  const Clock* clock_;
  WorkerPool* pool_ = nullptr;
  std::vector<std::string> table_order_;
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace moira

#endif  // MOIRA_SRC_DB_DATABASE_H_
