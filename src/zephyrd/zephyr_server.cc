#include "src/zephyrd/zephyr_server.h"

#include "src/common/strutil.h"

namespace moira {
namespace {

// Parses one .acl file: "; xmt" style section headers followed by principal
// lines or the "*.*@*" wildcard (the format gen_zephyr.cc emits).
bool ParseAcl(const std::string& contents, ZephyrClassAcl* out) {
  ZephyrClassAcl::Function* current = nullptr;
  size_t pos = 0;
  while (pos <= contents.size()) {
    size_t eol = contents.find('\n', pos);
    std::string_view line = eol == std::string::npos
                                ? std::string_view(contents).substr(pos)
                                : std::string_view(contents).substr(pos, eol - pos);
    pos = eol == std::string::npos ? contents.size() + 1 : eol + 1;
    line = TrimWhitespace(line);
    if (line.empty()) {
      continue;
    }
    if (line[0] == ';') {
      std::string_view section = TrimWhitespace(line.substr(1));
      if (section == "xmt") {
        current = &out->xmt;
      } else if (section == "sub") {
        current = &out->sub;
      } else if (section == "iws") {
        current = &out->iws;
      } else if (section == "iui") {
        current = &out->iui;
      } else {
        return false;
      }
      continue;
    }
    if (current == nullptr) {
      return false;
    }
    if (line == "*.*@*") {
      current->wildcard = true;
    } else {
      current->principals.insert(std::string(line));
    }
  }
  return true;
}

}  // namespace

int ZephyrServerSim::ReloadAcls(const std::string& dir) {
  std::string prefix = dir + "/";
  std::map<std::string, ZephyrClassAcl, std::less<>> fresh;
  for (const std::string& path : host_->ListFiles()) {
    if (!path.starts_with(prefix) || !path.ends_with(".acl")) {
      continue;
    }
    std::string klass = path.substr(prefix.size(), path.size() - prefix.size() - 4);
    ZephyrClassAcl acl;
    if (!ParseAcl(*host_->ReadFile(path), &acl)) {
      return 1;
    }
    fresh.emplace(std::move(klass), std::move(acl));
  }
  classes_ = std::move(fresh);
  ++reload_count_;
  return 0;
}

const ZephyrClassAcl* ZephyrServerSim::FindClass(std::string_view klass) const {
  auto it = classes_.find(klass);
  return it != classes_.end() ? &it->second : nullptr;
}

bool ZephyrServerSim::Allowed(const ZephyrClassAcl::Function& function,
                              std::string_view principal) {
  return function.wildcard || function.principals.contains(std::string(principal));
}

bool ZephyrServerSim::MayTransmit(std::string_view klass, std::string_view principal) const {
  const ZephyrClassAcl* acl = FindClass(klass);
  return acl == nullptr || Allowed(acl->xmt, principal);
}

bool ZephyrServerSim::MaySubscribe(std::string_view klass,
                                   std::string_view principal) const {
  const ZephyrClassAcl* acl = FindClass(klass);
  return acl == nullptr || Allowed(acl->sub, principal);
}

void InstallZephyrReloadCommand(SimHost* host, ZephyrServerSim* server,
                                const std::string& acl_dir) {
  host->RegisterCommand("restart_zephyrd", [server, acl_dir](SimHost&) {
    return server->ReloadAcls(acl_dir);
  });
}

}  // namespace moira
