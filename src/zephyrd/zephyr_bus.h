// Minimal Zephyr notification substrate.
//
// The DCM reports hard errors by sending a zephyrgram to class MOIRA instance
// DCM (paper section 5.7.1), and the update protocol notifies maintainers of
// failures (section 5.9).  This bus records notices and delivers them to
// subscribers so tests can observe the failure-notification path.
#ifndef MOIRA_SRC_ZEPHYRD_ZEPHYR_BUS_H_
#define MOIRA_SRC_ZEPHYRD_ZEPHYR_BUS_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"

namespace moira {

struct ZephyrNotice {
  std::string klass;
  std::string instance;
  std::string sender;
  std::string message;
  UnixTime when = 0;
};

class ZephyrBus {
 public:
  using Subscriber = std::function<void(const ZephyrNotice&)>;

  explicit ZephyrBus(const Clock* clock) : clock_(clock) {}

  void Send(std::string_view klass, std::string_view instance, std::string_view sender,
            std::string_view message);

  // Delivers matching notices as they are sent; "*" matches any value.
  void Subscribe(std::string klass, std::string instance, Subscriber subscriber);

  const std::vector<ZephyrNotice>& notices() const { return notices_; }

  // Notices matching the given class/instance ("*" wildcards allowed).
  std::vector<ZephyrNotice> Matching(std::string_view klass, std::string_view instance) const;

  void Clear() { notices_.clear(); }

 private:
  struct Subscription {
    std::string klass;
    std::string instance;
    Subscriber subscriber;
  };

  const Clock* clock_;
  std::vector<ZephyrNotice> notices_;
  std::vector<Subscription> subscriptions_;
};

}  // namespace moira

#endif  // MOIRA_SRC_ZEPHYRD_ZEPHYR_BUS_H_
