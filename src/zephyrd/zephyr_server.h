// Zephyr server substrate (paper section 5.8.2): loads the per-class ACL
// files Moira propagates and enforces the transmit function — the actual
// consumer of the *.acl files the ZEPHYR DCM service ships.
#ifndef MOIRA_SRC_ZEPHYRD_ZEPHYR_SERVER_H_
#define MOIRA_SRC_ZEPHYRD_ZEPHYR_SERVER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "src/update/sim_host.h"
#include "src/zephyrd/zephyr_bus.h"

namespace moira {

// Per-class access control state parsed from a <class>.acl file: the four
// function sections (xmt/sub/iws/iui), each either the wildcard or a set of
// principals.
struct ZephyrClassAcl {
  struct Function {
    bool wildcard = false;             // "*.*@*": unrestricted
    std::set<std::string> principals;  // "login@REALM" entries
  };
  Function xmt;
  Function sub;
  Function iws;
  Function iui;
};

class ZephyrServerSim {
 public:
  explicit ZephyrServerSim(SimHost* host) : host_(host) {}

  // Reloads all <class>.acl files under `dir` from the host filesystem (the
  // restart_zephyrd install command).  Returns 0 on success, 1 on a parse
  // error.
  int ReloadAcls(const std::string& dir);

  size_t class_count() const { return classes_.size(); }
  int reload_count() const { return reload_count_; }
  const ZephyrClassAcl* FindClass(std::string_view klass) const;

  // Enforcement: may `principal` ("login@REALM") transmit on / subscribe to
  // the class?  An unknown class is uncontrolled (allowed), matching zephyr's
  // default-open classes.
  bool MayTransmit(std::string_view klass, std::string_view principal) const;
  bool MaySubscribe(std::string_view klass, std::string_view principal) const;

 private:
  static bool Allowed(const ZephyrClassAcl::Function& function,
                      std::string_view principal);

  SimHost* host_;
  std::map<std::string, ZephyrClassAcl, std::less<>> classes_;
  int reload_count_ = 0;
};

// Registers the "restart_zephyrd" exec command on `host`.
void InstallZephyrReloadCommand(SimHost* host, ZephyrServerSim* server,
                                const std::string& acl_dir = "/etc/athena/zephyr/acl");

}  // namespace moira

#endif  // MOIRA_SRC_ZEPHYRD_ZEPHYR_SERVER_H_
