#include "src/zephyrd/zephyr_bus.h"

namespace moira {
namespace {

bool Matches(std::string_view pattern, std::string_view value) {
  return pattern == "*" || pattern == value;
}

}  // namespace

void ZephyrBus::Send(std::string_view klass, std::string_view instance,
                     std::string_view sender, std::string_view message) {
  ZephyrNotice notice{std::string(klass), std::string(instance), std::string(sender),
                      std::string(message), clock_->Now()};
  for (const Subscription& sub : subscriptions_) {
    if (Matches(sub.klass, notice.klass) && Matches(sub.instance, notice.instance)) {
      sub.subscriber(notice);
    }
  }
  notices_.push_back(std::move(notice));
}

void ZephyrBus::Subscribe(std::string klass, std::string instance, Subscriber subscriber) {
  subscriptions_.push_back(Subscription{std::move(klass), std::move(instance),
                                        std::move(subscriber)});
}

std::vector<ZephyrNotice> ZephyrBus::Matching(std::string_view klass,
                                              std::string_view instance) const {
  std::vector<ZephyrNotice> out;
  for (const ZephyrNotice& notice : notices_) {
    if (Matches(klass, notice.klass) && Matches(instance, notice.instance)) {
      out.push_back(notice);
    }
  }
  return out;
}

}  // namespace moira
