#include "src/quota/quota.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/dcm/delta.h"

namespace moira {
namespace {

int64_t CounterValue(MoiraContext& mc, const std::string& name) {
  int64_t v = 0;
  return mc.GetValue(name, &v) == MR_SUCCESS ? v : 0;
}

}  // namespace

QuotaIngestStats IngestUsageReports(MoiraContext& mc, Journal* journal,
                                    const std::string& machine,
                                    const std::vector<UsageReportLine>& lines,
                                    std::string_view principal) {
  QuotaIngestStats stats;
  for (const UsageReportLine& line : lines) {
    int32_t code = ExecuteJournaled(
        mc, journal, principal, "quota_ingest", "report_quota_usage",
        {machine, line.partition, std::to_string(line.uid), std::to_string(line.delta),
         std::to_string(line.seq)});
    if (code == MR_SUCCESS) {
      ++stats.applied;
    } else if (code == MR_EXISTS) {
      ++stats.deduped;
    } else {
      ++stats.rejected;
    }
  }
  return stats;
}

QuotaSweepSummary RunQuotaSweep(MoiraContext& mc, Journal* journal, ZephyrBus* zephyr,
                                uint64_t* last_swept_seq) {
  QuotaSweepSummary summary;
  if (last_swept_seq != nullptr && journal != nullptr &&
      *last_swept_seq >= journal->base_seq() &&
      CounterValue(mc, "quota_grace_pending") == 0) {
    // Skippable only when no grace window is running: grace expiry is the
    // one sweep transition driven by time alone, not by journal traffic.
    DeltaPlan plan = ExtractDeltaPlan(mc, journal->EntriesFromSeq(*last_swept_seq + 1));
    if (!plan.full_all && !plan.quota_state_dirty) {
      summary.through_seq = journal->last_seq();
      *last_swept_seq = summary.through_seq;
      return summary;  // idle: nothing quota-relevant landed since last pass
    }
  }
  int64_t flagged_before = CounterValue(mc, "quota_sweep_flagged");
  int64_t deduped_before = CounterValue(mc, "quota_sweep_deduped");
  std::vector<Tuple> crossings;
  int32_t code = ExecuteJournaled(mc, journal, "root", "quota_sweep",
                                  "process_quota_sweep", {},
                                  [&](Tuple t) { crossings.push_back(std::move(t)); });
  if (code != MR_SUCCESS) {
    return summary;
  }
  summary.ran = true;
  summary.notices = static_cast<int64_t>(crossings.size());
  summary.flagged = CounterValue(mc, "quota_sweep_flagged") - flagged_before;
  summary.deduped = CounterValue(mc, "quota_sweep_deduped") - deduped_before;
  if (zephyr != nullptr) {
    for (const Tuple& t : crossings) {
      // (login, filesys, usage, quota) — queries_quota.cc's emit order.
      zephyr->Send(kQuotaZephyrClass, kQuotaZephyrInstance, kQuotaSender,
                   t[0] + " over hard quota on " + t[1] + " (" + t[2] + "/" + t[3] +
                       " units)");
    }
  }
  summary.through_seq = journal != nullptr ? journal->last_seq() : 0;
  if (last_swept_seq != nullptr) {
    *last_swept_seq = summary.through_seq;
  }
  return summary;
}

void ScheduleQuotaSweep(CronScheduler* cron, MoiraContext* mc, Journal* journal,
                        ZephyrBus* zephyr, UnixTime interval, QuotaSweepSummary* last) {
  // The marker lives in the closure (like the DCM's per-service low-water
  // marks, it is primary-side scheduling state, not replicated data); the
  // first firing sweeps unconditionally to establish a baseline.
  auto state = std::make_shared<std::pair<bool, uint64_t>>(false, 0);
  cron->Schedule("quota_sweep", interval, [mc, journal, zephyr, last, state]() {
    QuotaSweepSummary summary =
        RunQuotaSweep(*mc, journal, zephyr, state->first ? &state->second : nullptr);
    state->first = true;
    state->second = summary.through_seq;
    if (last != nullptr) {
      *last = summary;
    }
  });
}

QuotaIngestStats QuotaTelemetryDriver::RunRound(const QuotaFaultPlan& plan) {
  ++rounds_;
  QuotaIngestStats total;
  auto add = [&total](const QuotaIngestStats& s) {
    total.applied += s.applied;
    total.deduped += s.deduped;
    total.rejected += s.rejected;
  };
  for (AttachedServer& s : servers_) {
    s.server->ChurnUsage(churn_rng_.Next());
    // Both dice are rolled unconditionally so the churn stream (and the
    // defer decisions) stay identical across runs with different plans.
    bool defer = fault_rng_.Below(1000) < static_cast<uint64_t>(plan.defer_permille);
    bool duplicate =
        fault_rng_.Below(1000) < static_cast<uint64_t>(plan.duplicate_permille);
    if (defer) {
      continue;  // transport outage: deltas keep accumulating on the server
    }
    std::vector<UsageReportLine> lines = s.server->DrainUsageReports();
    s.pending.insert(s.pending.end(), lines.begin(), lines.end());
    if (s.pending.empty()) {
      continue;
    }
    add(IngestUsageReports(*mc_, journal_, s.machine, s.pending));
    if (duplicate) {
      // At-least-once retry: the tail of what was just shipped arrives
      // again; the per-machine sequence check must absorb it.
      size_t n = 1 + fault_rng_.Below(std::min<uint64_t>(s.pending.size(), 5));
      add(IngestUsageReports(
          *mc_, journal_, s.machine,
          std::vector<UsageReportLine>(s.pending.end() - n, s.pending.end())));
    }
    s.pending.clear();
  }
  return total;
}

}  // namespace moira
