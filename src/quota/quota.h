// The quota engine's service layer (DESIGN.md "Quota engine").
//
// The core queries (src/core/queries_quota.cc) do the accounting; this layer
// closes the loop around them: IngestUsageReports ships a fileserver's
// drained usage deltas through the journalled report_quota_usage path,
// RunQuotaSweep executes the journalled process_quota_sweep pass and turns
// its emitted crossing tuples into Zephyr notices (class MOIRA instance
// QUOTA), ScheduleQuotaSweep puts the sweep on the DCM cron, and
// QuotaTelemetryDriver drives a fleet of NfsServerSims through seeded
// churn/report rounds with at-least-once fault injection — the workload
// generator for bench_quota and the fault-oracle tests.
#ifndef MOIRA_SRC_QUOTA_QUOTA_H_
#define MOIRA_SRC_QUOTA_QUOTA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"
#include "src/core/context.h"
#include "src/dcm/cron.h"
#include "src/nfsd/nfs_server.h"
#include "src/server/journal.h"
#include "src/zephyrd/zephyr_bus.h"

namespace moira {

// Zephyr addressing for hard-limit notices (alongside MOIRA/DCM).
inline constexpr char kQuotaZephyrClass[] = "MOIRA";
inline constexpr char kQuotaZephyrInstance[] = "QUOTA";
inline constexpr char kQuotaSender[] = "moira.quota";

struct QuotaIngestStats {
  int applied = 0;   // reports that changed the accounting
  int deduped = 0;   // stale/duplicate sequences dropped (MR_EXISTS)
  int rejected = 0;  // malformed or unresolvable reports
};

// Ships one fileserver's report lines into the journalled
// report_quota_usage path, in order.  Duplicate deliveries are absorbed by
// the per-machine sequence check and counted in `deduped`.
QuotaIngestStats IngestUsageReports(MoiraContext& mc, Journal* journal,
                                    const std::string& machine,
                                    const std::vector<UsageReportLine>& lines,
                                    std::string_view principal = "root");

struct QuotaSweepSummary {
  bool ran = false;          // false: skipped (no quota-relevant journal traffic)
  int64_t flagged = 0;       // grace expiries flagged this pass
  int64_t notices = 0;       // Zephyr notices fired this pass
  int64_t deduped = 0;       // hard-over rows suppressed by the notice bit
  uint64_t through_seq = 0;  // journal position the sweep covered
};

// Runs one quota sweep as the journalled process_quota_sweep query and sends
// one Zephyr notice per emitted hard-limit crossing.  With `last_swept_seq`
// given, the pass is skipped (ran=false) when the journal entries since that
// sequence carry no quota-relevant mutations — the DeltaPlan dirty bit —
// AND no grace window is currently running (values counter
// quota_grace_pending; grace expiry is driven by time, not by journal
// traffic).  The marker is advanced either way.  A truncation below the
// marker sweeps unconditionally (the safe default, as incremental DCM does).
QuotaSweepSummary RunQuotaSweep(MoiraContext& mc, Journal* journal, ZephyrBus* zephyr,
                                uint64_t* last_swept_seq = nullptr);

// Registers the sweep as cron job "quota_sweep" firing every `interval`
// seconds (alongside "dcm" and "checkpoint").  The first firing always
// sweeps; later firings use the dirty-bit skip.  When `last` is non-null the
// most recent firing's summary is stored there.
void ScheduleQuotaSweep(CronScheduler* cron, MoiraContext* mc, Journal* journal,
                        ZephyrBus* zephyr, UnixTime interval,
                        QuotaSweepSummary* last = nullptr);

// Fault dimensions for one telemetry round (at-least-once transport).
struct QuotaFaultPlan {
  int duplicate_permille = 0;  // per server-round: redeliver just-shipped lines
  int defer_permille = 0;      // per server-round: hold this server's drain
};

// Drives attached NfsServerSims through seeded usage-churn rounds and ships
// their drained reports through IngestUsageReports.  Deterministic for a
// given seed, attach order, and fault plan; the servers' usage() maps remain
// the ground truth an oracle can compare the accounting tables against.
class QuotaTelemetryDriver {
 public:
  struct AttachedServer {
    std::string machine;
    NfsServerSim* server;
    std::vector<UsageReportLine> pending;  // drained but not yet shipped
  };

  // Churn and fault injection draw from separate seeded streams, and the
  // fault dice are rolled every server-round regardless of the plan — so two
  // runs differing only in their fault plan see byte-identical churn (the
  // oracle tests compare a faulty run against an exactly-once run).
  QuotaTelemetryDriver(MoiraContext* mc, Journal* journal, uint64_t seed)
      : mc_(mc), journal_(journal), churn_rng_(seed), fault_rng_(~seed) {}

  void AttachServer(std::string machine, NfsServerSim* server) {
    servers_.push_back(AttachedServer{std::move(machine), server, {}});
  }

  // One round: churn every server, then (unless deferred) drain and ship its
  // pending reports, occasionally redelivering a just-shipped suffix.
  QuotaIngestStats RunRound(const QuotaFaultPlan& plan = {});

  int rounds() const { return rounds_; }
  const std::vector<AttachedServer>& servers() const { return servers_; }

 private:
  MoiraContext* mc_;
  Journal* journal_;
  SplitMix64 churn_rng_;
  SplitMix64 fault_rng_;
  std::vector<AttachedServer> servers_;
  int rounds_ = 0;
};

}  // namespace moira

#endif  // MOIRA_SRC_QUOTA_QUOTA_H_
