#include "src/krb/block_cipher.h"

#include <bit>
#include <cstring>

namespace moira {
namespace {

constexpr int kBlockSize = 8;
constexpr int kRounds = 8;

uint64_t RoundKey(uint64_t key, int round) {
  uint64_t rk = key + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(round + 1);
  rk ^= rk >> 31;
  rk *= 0xbf58476d1ce4e5b9ull;
  return rk;
}

// An invertible 64-bit mixing round: add round key, rotate, multiply by an
// odd constant (invertible mod 2^64), xor-shift (invertible).
uint64_t EncryptBlock(uint64_t key, uint64_t block) {
  for (int r = 0; r < kRounds; ++r) {
    block += RoundKey(key, r);
    block = std::rotl(block, 17);
    block *= 0x2545f4914f6cdd1dull;
    block ^= block >> 23;
  }
  return block;
}

uint64_t InvertXorShift23(uint64_t x) {
  // y = x ^ (x >> 23); recover x by repeated back-substitution.
  uint64_t v = x;
  v = x ^ (v >> 23);
  v = x ^ (v >> 23);
  v = x ^ (v >> 23);
  return v;
}

// Modular inverse of 0x2545f4914f6cdd1d mod 2^64 (computed via Newton
// iteration; verified in tests by round-tripping).
constexpr uint64_t ModInverse(uint64_t a) {
  uint64_t x = a;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) {
    x *= 2 - a * x;  // doubles the number of correct bits
  }
  return x;
}

constexpr uint64_t kMulInverse = ModInverse(0x2545f4914f6cdd1dull);

uint64_t DecryptBlock(uint64_t key, uint64_t block) {
  for (int r = kRounds - 1; r >= 0; --r) {
    block = InvertXorShift23(block);
    block *= kMulInverse;
    block = std::rotr(block, 17);
    block -= RoundKey(key, r);
  }
  return block;
}

uint64_t LoadBlock(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, kBlockSize);
  return v;
}

void StoreBlock(char* p, uint64_t v) { std::memcpy(p, &v, kBlockSize); }

}  // namespace

uint64_t DeriveBlockKey(std::string_view key_string) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : key_string) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h == 0 ? 0x1ull : h;
}

std::string PcbcEncrypt(uint64_t key, std::string_view plaintext) {
  // Frame: 8-byte little-endian length, then zero-padded plaintext.
  size_t padded = (plaintext.size() + kBlockSize - 1) / kBlockSize * kBlockSize;
  std::string frame(kBlockSize + padded, '\0');
  uint64_t len = plaintext.size();
  StoreBlock(frame.data(), len);
  std::memcpy(frame.data() + kBlockSize, plaintext.data(), plaintext.size());

  std::string out(frame.size(), '\0');
  uint64_t prev_plain = 0;
  uint64_t prev_cipher = 0x6d6f69726131ull;  // fixed IV, fine for this protocol
  for (size_t off = 0; off < frame.size(); off += kBlockSize) {
    uint64_t p = LoadBlock(frame.data() + off);
    uint64_t c = EncryptBlock(key, p ^ prev_plain ^ prev_cipher);
    StoreBlock(out.data() + off, c);
    prev_plain = p;
    prev_cipher = c;
  }
  return out;
}

std::optional<std::string> PcbcDecrypt(uint64_t key, std::string_view ciphertext) {
  if (ciphertext.size() < kBlockSize || ciphertext.size() % kBlockSize != 0) {
    return std::nullopt;
  }
  std::string frame(ciphertext.size(), '\0');
  uint64_t prev_plain = 0;
  uint64_t prev_cipher = 0x6d6f69726131ull;
  for (size_t off = 0; off < ciphertext.size(); off += kBlockSize) {
    uint64_t c = LoadBlock(ciphertext.data() + off);
    uint64_t p = DecryptBlock(key, c) ^ prev_plain ^ prev_cipher;
    StoreBlock(frame.data() + off, p);
    prev_plain = p;
    prev_cipher = c;
  }
  uint64_t len = LoadBlock(frame.data());
  if (len > frame.size() - kBlockSize) {
    return std::nullopt;  // wrong key almost always lands here
  }
  return frame.substr(kBlockSize, len);
}

}  // namespace moira
