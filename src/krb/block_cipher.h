// Error-propagating cipher-block-chaining over a toy 64-bit block cipher.
//
// SUBSTITUTION (see DESIGN.md): the registration protocol (paper section
// 5.10) DES-encrypts {IDnumber, hashIDnumber, ...} in "the error propagating
// cypher-block-chaining mode of DES" keyed by the crypt()ed ID.  The protocol
// property actually relied upon is that decryption with the wrong key, or of
// tampered ciphertext, garbles the embedded plaintext ID so verification
// fails.  PCBC over this keyed 64-bit permutation preserves exactly that
// property.  This is NOT DES and NOT cryptographically strong.
#ifndef MOIRA_SRC_KRB_BLOCK_CIPHER_H_
#define MOIRA_SRC_KRB_BLOCK_CIPHER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace moira {

// Derives a 64-bit cipher key from an arbitrary key string (e.g. the
// crypt()ed MIT ID, or a Kerberos password).
uint64_t DeriveBlockKey(std::string_view key_string);

// Encrypts `plaintext` in PCBC mode.  Output length is a multiple of 8 plus
// an 8-byte length header; arbitrary binary-safe std::string.
std::string PcbcEncrypt(uint64_t key, std::string_view plaintext);

// Decrypts; returns nullopt if the ciphertext is structurally invalid
// (wrong framing).  A wrong key yields garbage plaintext, as with real PCBC —
// callers validate embedded fields, exactly as the registration server does.
std::optional<std::string> PcbcDecrypt(uint64_t key, std::string_view ciphertext);

}  // namespace moira

#endif  // MOIRA_SRC_KRB_BLOCK_CIPHER_H_
