// Simulated Kerberos private-key authentication (paper sections 4, 5.9.2,
// 5.10).
//
// Moira authenticates every mutating client with Kerberos [2] and uses
// srvtab-srvtab authentication between the registration server and the
// Kerberos admin server.  This module reproduces the moving parts Moira
// exercises: a principal database (the KDC), initial-ticket issuance,
// per-connection authenticators with timestamps, ticket lifetimes, and a
// replay cache ("safe from ... replay of transactions").
//
// SUBSTITUTION (see DESIGN.md): tickets and authenticators are sealed with
// the toy PCBC cipher of block_cipher.h rather than DES.  The handshake
// shape, failure codes, and replay semantics match the paper; the
// cryptography does not pretend to.
#ifndef MOIRA_SRC_KRB_KERBEROS_H_
#define MOIRA_SRC_KRB_KERBEROS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "src/common/clock.h"

namespace moira {

// The Kerberos service name the Moira server registers and authenticates as.
inline constexpr char kMoiraServiceName[] = "moira";

// A ticket as held by a client: the sealed part is opaque to the client and
// only the named service can open it.
struct Ticket {
  std::string client;         // principal the ticket was issued to
  std::string service;        // service it is good for
  UnixTime issued = 0;
  UnixTime lifetime = 0;      // seconds
  uint64_t session_key = 0;   // shared with the service via the sealed part
  std::string sealed;         // encrypted under the service key
};

// Identity and session key established by a successful verification.
struct VerifiedIdentity {
  std::string principal;
  uint64_t session_key = 0;
};

// The realm: principal database plus ticket-granting.  In this simulation the
// KDC object is shared (by reference) between client and server code, exactly
// as the real KDC is shared via the network.
class KerberosRealm {
 public:
  // Default ticket lifetime, as in Athena practice.
  static constexpr UnixTime kDefaultLifetime = 10 * kSecondsPerHour;
  // Maximum allowed clock skew for authenticator timestamps.
  static constexpr UnixTime kMaxSkew = 5 * kSecondsPerMinute;

  explicit KerberosRealm(const Clock* clock);

  // --- Admin server operations (used by the registration server over its
  // srvtab-srvtab channel) ---

  // Adds a principal; MR_EXISTS if already present.
  int32_t AddPrincipal(std::string_view name, std::string_view password);
  // Changes a password; MR_KRB_NO_PRINC if absent.
  int32_t SetPassword(std::string_view name, std::string_view password);
  int32_t DeletePrincipal(std::string_view name);
  bool HasPrincipal(std::string_view name) const;

  // Registers a service principal and returns its key (the "srvtab").
  uint64_t RegisterService(std::string_view name);
  // Returns 0 if unknown.
  uint64_t ServiceKey(std::string_view name) const;

  // --- Client operations ---

  // Obtains initial tickets for `service`.  Returns MR_SUCCESS and fills
  // `out`, or MR_KRB_NO_PRINC / MR_KRB_BAD_PASSWORD, or MR_KDC_UNAVAILABLE
  // during an injected KDC outage.  Userreg uses exactly this call to probe
  // whether a login name is free (paper section 5.10).
  int32_t GetInitialTickets(std::string_view principal, std::string_view password,
                            std::string_view service, Ticket* out);

  // Directory-outage injection (fault harness): while down, the
  // ticket-granting path fails with MR_KDC_UNAVAILABLE.  Already-issued
  // tickets keep working — MakeAuthenticator and server-side Verify never
  // contact the KDC, which is exactly the cached-ticket path clients ride
  // out a KDC blip on.
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  // Builds a wire authenticator from a ticket: sealed ticket + a fresh
  // {client, timestamp, nonce} sealed under the session key.
  std::string MakeAuthenticator(const Ticket& ticket);

  const Clock& clock() const { return *clock_; }

 private:
  const Clock* clock_;
  std::map<std::string, std::string, std::less<>> principals_;  // name -> password
  std::map<std::string, uint64_t, std::less<>> services_;       // name -> key
  uint64_t nonce_counter_ = 1;
  bool down_ = false;  // injected KDC outage
};

// Server-side verifier: owned by each authenticating service, holds the
// service key and the replay cache.
class ServiceVerifier {
 public:
  ServiceVerifier(std::string service, uint64_t service_key, const Clock* clock);

  // Verifies a wire authenticator.  Returns MR_SUCCESS and fills `out`, or
  // MR_BAD_AUTH (garbled / wrong service), MR_KRB_TKT_EXPIRED, or
  // MR_KRB_REPLAY.
  int32_t Verify(std::string_view authenticator, VerifiedIdentity* out);

  // Drops replay-cache entries older than the skew window.
  void ExpireReplayCache();

  size_t replay_cache_size() const { return replay_cache_.size(); }

 private:
  std::string service_;
  uint64_t service_key_;
  const Clock* clock_;
  std::set<std::pair<UnixTime, uint64_t>> replay_cache_;  // (timestamp, nonce)
};

// Internal wire helpers, exposed for tests: length-prefixed field packing.
void PackField(std::string* out, std::string_view field);
bool UnpackField(std::string_view* in, std::string* field);

}  // namespace moira

#endif  // MOIRA_SRC_KRB_KERBEROS_H_
