// crypt(3)-style one-way salted hash.
//
// SUBSTITUTION (see DESIGN.md): the paper stores each student's MIT ID
// encrypted with the UNIX C library crypt() function, salted with the first
// letters of the first and last names (section 5.10).  We reproduce the
// interface and output format (2 salt characters + 11 hash characters drawn
// from the ./0-9A-Za-z alphabet) over an iterated 64-bit mixing function.
// This is NOT DES and NOT suitable for real password storage; it preserves
// the properties the registration flow needs: deterministic, one-way in
// practice for this system's purposes, salt-dependent.
#ifndef MOIRA_SRC_KRB_CRYPT_H_
#define MOIRA_SRC_KRB_CRYPT_H_

#include <string>
#include <string_view>

namespace moira {

// Returns a 13-character crypt-format string: salt[0] salt[1] then 11 hash
// characters.  Only the first two characters of `salt` are used; missing salt
// characters default to '.'.
std::string Crypt(std::string_view key, std::string_view salt);

// Convenience for the registration flow: hashes an MIT ID number using the
// first letter of the first name and first letter of the last name as salt
// (paper section 5.10).  Hyphens in the ID are removed and only the last
// seven characters are hashed, as the paper specifies.
std::string HashMitId(std::string_view id_number, std::string_view first_name,
                      std::string_view last_name);

}  // namespace moira

#endif  // MOIRA_SRC_KRB_CRYPT_H_
