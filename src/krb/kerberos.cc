#include "src/krb/kerberos.h"

#include <cstring>

#include "src/comerr/moira_errors.h"
#include "src/common/checksum.h"
#include "src/krb/block_cipher.h"

namespace moira {
namespace {

// Seals fields under `key` with an integrity crc so wrong-key decryption is
// detected (PCBC garbles; the crc catches it).
std::string Seal(uint64_t key, const std::string& payload) {
  std::string framed;
  PackField(&framed, payload);
  uint32_t crc = Crc32(payload);
  framed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return PcbcEncrypt(key, framed);
}

bool Unseal(uint64_t key, std::string_view sealed, std::string* payload) {
  std::optional<std::string> framed = PcbcDecrypt(key, sealed);
  if (!framed.has_value()) {
    return false;
  }
  std::string_view rest(*framed);
  std::string body;
  if (!UnpackField(&rest, &body) || rest.size() != sizeof(uint32_t)) {
    return false;
  }
  uint32_t crc;
  std::memcpy(&crc, rest.data(), sizeof(crc));
  if (crc != Crc32(body)) {
    return false;
  }
  *payload = std::move(body);
  return true;
}

std::string PackInt(int64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool UnpackInt(std::string_view* in, int64_t* v) {
  if (in->size() < sizeof(*v)) {
    return false;
  }
  std::memcpy(v, in->data(), sizeof(*v));
  in->remove_prefix(sizeof(*v));
  return true;
}

}  // namespace

void PackField(std::string* out, std::string_view field) {
  uint32_t len = static_cast<uint32_t>(field.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(field);
}

bool UnpackField(std::string_view* in, std::string* field) {
  if (in->size() < sizeof(uint32_t)) {
    return false;
  }
  uint32_t len;
  std::memcpy(&len, in->data(), sizeof(len));
  in->remove_prefix(sizeof(len));
  if (in->size() < len) {
    return false;
  }
  field->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

KerberosRealm::KerberosRealm(const Clock* clock) : clock_(clock) {}

int32_t KerberosRealm::AddPrincipal(std::string_view name, std::string_view password) {
  if (principals_.contains(name)) {
    return MR_EXISTS;
  }
  principals_.emplace(std::string(name), std::string(password));
  return MR_SUCCESS;
}

int32_t KerberosRealm::SetPassword(std::string_view name, std::string_view password) {
  auto it = principals_.find(name);
  if (it == principals_.end()) {
    return MR_KRB_NO_PRINC;
  }
  it->second = std::string(password);
  return MR_SUCCESS;
}

int32_t KerberosRealm::DeletePrincipal(std::string_view name) {
  auto it = principals_.find(name);
  if (it == principals_.end()) {
    return MR_KRB_NO_PRINC;
  }
  principals_.erase(it);
  return MR_SUCCESS;
}

bool KerberosRealm::HasPrincipal(std::string_view name) const {
  return principals_.contains(name);
}

uint64_t KerberosRealm::RegisterService(std::string_view name) {
  auto it = services_.find(name);
  if (it != services_.end()) {
    return it->second;
  }
  uint64_t key = DeriveBlockKey(std::string("service-key:") + std::string(name));
  services_.emplace(std::string(name), key);
  return key;
}

uint64_t KerberosRealm::ServiceKey(std::string_view name) const {
  auto it = services_.find(name);
  return it != services_.end() ? it->second : 0;
}

int32_t KerberosRealm::GetInitialTickets(std::string_view principal,
                                         std::string_view password,
                                         std::string_view service, Ticket* out) {
  if (down_) {
    return MR_KDC_UNAVAILABLE;
  }
  auto it = principals_.find(principal);
  if (it == principals_.end()) {
    return MR_KRB_NO_PRINC;
  }
  if (it->second != password) {
    return MR_KRB_BAD_PASSWORD;
  }
  uint64_t service_key = ServiceKey(service);
  if (service_key == 0) {
    return MR_KRB_NO_PRINC;
  }
  out->client = std::string(principal);
  out->service = std::string(service);
  out->issued = clock_->Now();
  out->lifetime = kDefaultLifetime;
  out->session_key =
      DeriveBlockKey(std::string(principal) + "/" + std::to_string(out->issued) + "/" +
                     std::to_string(nonce_counter_));
  // Sealed part, readable only by the service: client, issued, lifetime,
  // session key.
  std::string payload;
  PackField(&payload, out->client);
  payload += PackInt(out->issued);
  payload += PackInt(out->lifetime);
  payload += PackInt(static_cast<int64_t>(out->session_key));
  out->sealed = Seal(service_key, payload);
  return MR_SUCCESS;
}

std::string KerberosRealm::MakeAuthenticator(const Ticket& ticket) {
  uint64_t nonce = nonce_counter_++;
  std::string auth_payload;
  PackField(&auth_payload, ticket.client);
  auth_payload += PackInt(clock_->Now());
  auth_payload += PackInt(static_cast<int64_t>(nonce));
  std::string sealed_auth = Seal(ticket.session_key, auth_payload);

  std::string wire;
  PackField(&wire, ticket.sealed);
  PackField(&wire, sealed_auth);
  return wire;
}

ServiceVerifier::ServiceVerifier(std::string service, uint64_t service_key,
                                 const Clock* clock)
    : service_(std::move(service)), service_key_(service_key), clock_(clock) {}

int32_t ServiceVerifier::Verify(std::string_view authenticator, VerifiedIdentity* out) {
  std::string_view rest = authenticator;
  std::string sealed_ticket;
  std::string sealed_auth;
  if (!UnpackField(&rest, &sealed_ticket) || !UnpackField(&rest, &sealed_auth) ||
      !rest.empty()) {
    return MR_BAD_AUTH;
  }
  std::string ticket_payload;
  if (!Unseal(service_key_, sealed_ticket, &ticket_payload)) {
    return MR_BAD_AUTH;
  }
  std::string_view tp(ticket_payload);
  std::string client;
  int64_t issued;
  int64_t lifetime;
  int64_t session_key_bits;
  if (!UnpackField(&tp, &client) || !UnpackInt(&tp, &issued) || !UnpackInt(&tp, &lifetime) ||
      !UnpackInt(&tp, &session_key_bits) || !tp.empty()) {
    return MR_BAD_AUTH;
  }
  const UnixTime now = clock_->Now();
  if (now > issued + lifetime) {
    return MR_KRB_TKT_EXPIRED;
  }
  auto session_key = static_cast<uint64_t>(session_key_bits);
  std::string auth_payload;
  if (!Unseal(session_key, sealed_auth, &auth_payload)) {
    return MR_BAD_AUTH;
  }
  std::string_view ap(auth_payload);
  std::string auth_client;
  int64_t stamp;
  int64_t nonce;
  if (!UnpackField(&ap, &auth_client) || !UnpackInt(&ap, &stamp) || !UnpackInt(&ap, &nonce) ||
      !ap.empty()) {
    return MR_BAD_AUTH;
  }
  if (auth_client != client) {
    return MR_BAD_AUTH;
  }
  if (stamp < now - KerberosRealm::kMaxSkew || stamp > now + KerberosRealm::kMaxSkew) {
    return MR_KRB_TKT_EXPIRED;
  }
  auto cache_key = std::make_pair(static_cast<UnixTime>(stamp), static_cast<uint64_t>(nonce));
  if (!replay_cache_.insert(cache_key).second) {
    return MR_KRB_REPLAY;
  }
  out->principal = std::move(client);
  out->session_key = session_key;
  return MR_SUCCESS;
}

void ServiceVerifier::ExpireReplayCache() {
  const UnixTime horizon = clock_->Now() - KerberosRealm::kMaxSkew;
  auto it = replay_cache_.begin();
  while (it != replay_cache_.end() && it->first < horizon) {
    it = replay_cache_.erase(it);
  }
}

}  // namespace moira
