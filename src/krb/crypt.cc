#include "src/krb/crypt.h"

#include <cstdint>

namespace moira {
namespace {

constexpr char kAlphabet[] =
    "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

uint64_t Mix(uint64_t h, uint64_t x) {
  h ^= x;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return h;
}

char SaltChar(char c) {
  // Any byte is accepted as salt but is folded into the crypt alphabet.
  for (const char* p = kAlphabet; *p != '\0'; ++p) {
    if (*p == c) {
      return c;
    }
  }
  return kAlphabet[static_cast<unsigned char>(c) % 64];
}

}  // namespace

std::string Crypt(std::string_view key, std::string_view salt) {
  char s0 = SaltChar(salt.empty() ? '.' : salt[0]);
  char s1 = SaltChar(salt.size() < 2 ? '.' : salt[1]);
  uint64_t h = 0x6d6f697261ull;  // "moira"
  h = Mix(h, static_cast<uint64_t>(s0) << 8 | static_cast<uint64_t>(s1));
  for (char c : key) {
    h = Mix(h, static_cast<unsigned char>(c));
  }
  // Iterate to make the transform mildly expensive, as crypt(3) did with its
  // 25 DES iterations.
  for (int i = 0; i < 25; ++i) {
    h = Mix(h, 0x5deece66dull + static_cast<uint64_t>(i));
  }
  std::string out;
  out.reserve(13);
  out.push_back(s0);
  out.push_back(s1);
  uint64_t bits = h;
  for (int i = 0; i < 11; ++i) {
    out.push_back(kAlphabet[bits & 63]);
    bits >>= 6;
    if (i == 9) {
      bits |= static_cast<uint64_t>(Mix(h, 0xa5a5a5a5ull)) << 4;  // top-up for 66 bits
    }
  }
  return out;
}

std::string HashMitId(std::string_view id_number, std::string_view first_name,
                      std::string_view last_name) {
  std::string digits;
  for (char c : id_number) {
    if (c != '-') {
      digits.push_back(c);
    }
  }
  if (digits.size() > 7) {
    digits = digits.substr(digits.size() - 7);
  }
  char salt[2] = {first_name.empty() ? '.' : first_name[0],
                  last_name.empty() ? '.' : last_name[0]};
  return Crypt(digits, std::string_view(salt, 2));
}

}  // namespace moira
