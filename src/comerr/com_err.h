// The com_err display front-end (paper section 5.6.1).
//
// By default, ComErr prints "whoami: error_message(code) message" to stderr.
// A hook may be installed to redirect messages (e.g. to syslog or a window
// system dialogue), exactly as the paper describes.
#ifndef MOIRA_SRC_COMERR_COM_ERR_H_
#define MOIRA_SRC_COMERR_COM_ERR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace moira {

using ComErrHook =
    std::function<void(std::string_view whoami, int32_t code, std::string_view message)>;

// Reports an error.  If code is zero, nothing is printed for the error
// message (only the supplied text).
void ComErr(std::string_view whoami, int32_t code, std::string_view message);

// Installs a hook; passing nullptr restores the default stderr behaviour.
// Returns the previously installed hook (empty if default).
ComErrHook SetComErrHook(ComErrHook hook);

}  // namespace moira

#endif  // MOIRA_SRC_COMERR_COM_ERR_H_
