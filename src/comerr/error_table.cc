#include "src/comerr/error_table.h"

#include <cstring>
#include <map>
#include <mutex>

namespace moira {
namespace {

struct Registry {
  std::mutex mu;
  std::map<int32_t, ErrorTable> tables;  // keyed by base code
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

}  // namespace

int32_t InitErrorTable(const ErrorTable& table) {
  const int32_t base = ErrorTableBase(table.name);
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.tables.emplace(base, table);
  return base;
}

std::string ErrorMessage(int32_t code) {
  if (code == 0) {
    return "Success";
  }
  const int32_t offset = code & (kMaxTableMessages - 1);
  const int32_t base = code - offset;
  if (base == 0) {
    // System errno range.
    const char* msg = std::strerror(code);
    return msg != nullptr ? msg : "Unknown system error";
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.tables.find(base);
  if (it != registry.tables.end() &&
      offset < static_cast<int32_t>(it->second.messages.size())) {
    return std::string(it->second.messages[offset]);
  }
  std::string name = it != registry.tables.end() ? std::string(it->second.name) : "?";
  return "Unknown code " + name + " " + std::to_string(offset);
}

}  // namespace moira
