#include "src/comerr/moira_errors.h"

#include <array>

namespace moira {
namespace {

constexpr std::string_view kMessages[] = {
#define MOIRA_ERROR_MESSAGE(sym, msg) msg,
    MOIRA_ERROR_LIST(MOIRA_ERROR_MESSAGE)
#undef MOIRA_ERROR_MESSAGE
};

}  // namespace

void RegisterMoiraErrorTable() {
  static const ErrorTableRegistration registration{ErrorTable{
      .name = "sms",
      .messages = std::span<const std::string_view>(kMessages),
  }};
  (void)registration;
}

}  // namespace moira
