// Error-table system, a reproduction of Ken Raeburn's libcom_err as used by
// Moira (paper section 5.6.1).
//
// Several independent sets of error codes coexist in one program: every error
// code is an integer, and each error table reserves a subrange of the
// integers based on a hash of the table name.  UNIX errno values occupy the
// low range.  By convention zero indicates success.
#ifndef MOIRA_SRC_COMERR_ERROR_TABLE_H_
#define MOIRA_SRC_COMERR_ERROR_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace moira {

// Number of low-order bits reserved for the code offset within a table.
inline constexpr int kErrorCodeRange = 8;
// Maximum number of messages a single table may hold.
inline constexpr int kMaxTableMessages = 1 << kErrorCodeRange;

// Maps a table-name character to its 6-bit value (historical char_to_num).
constexpr int ErrorTableCharToNum(char c) {
  if (c >= 'A' && c <= 'Z') {
    return c - 'A' + 1;
  }
  if (c >= 'a' && c <= 'z') {
    return c - 'a' + 27;
  }
  if (c >= '0' && c <= '9') {
    return c - '0' + 53;
  }
  return c == '_' ? 63 : 0;
}

// Computes the base code of an error table from its (1..4 character) name,
// using the historical com_err char_to_num packing: each character maps to a
// 6-bit value, the packed name is shifted left by kErrorCodeRange.
constexpr int32_t ErrorTableBase(std::string_view table_name) {
  int32_t base = 0;
  for (char c : table_name.substr(0, 4)) {
    base = (base << 6) + ErrorTableCharToNum(c);
  }
  return base << kErrorCodeRange;
}

// A statically-defined error table.  `messages` must outlive the registry
// registration (tables are expected to be static data).
struct ErrorTable {
  std::string_view name;                        // 1..4 character table name.
  std::span<const std::string_view> messages;   // message for base+0, base+1...
};

// Registers a table; idempotent for the same name.  Returns the table base.
// Thread-compatible: registration is expected at startup, lookups anywhere.
int32_t InitErrorTable(const ErrorTable& table);

// Returns the message associated with `code`.  Falls back to strerror() for
// small codes, and to "Unknown code <table> <offset>" for unregistered codes.
std::string ErrorMessage(int32_t code);

// RAII helper so a translation unit can register its table at load time.
class ErrorTableRegistration {
 public:
  explicit ErrorTableRegistration(const ErrorTable& table) { InitErrorTable(table); }
};

}  // namespace moira

#endif  // MOIRA_SRC_COMERR_ERROR_TABLE_H_
