// The Moira ("sms") error table, reproducing the codes listed in paper
// section 7.1 plus the library/protocol codes of sections 5.3 and 5.6.2.
//
// Codes live in the com_err subrange reserved by the table name "sms" (the
// paper notes the string "sms" still crops up in the code; the error table
// kept that name after the Moira rename).
#ifndef MOIRA_SRC_COMERR_MOIRA_ERRORS_H_
#define MOIRA_SRC_COMERR_MOIRA_ERRORS_H_

#include <cstdint>

#include "src/comerr/error_table.h"

namespace moira {

inline constexpr int32_t kMrErrorBase = ErrorTableBase("sms");

// X-macro: (symbol, message).  Offsets are assigned in declaration order.
#define MOIRA_ERROR_LIST(X)                                                            \
  X(MR_SUCCESS, "Success")                                                             \
  /* General errors (may be returned by all queries). */                              \
  X(MR_ARG_TOO_LONG, "An argument contains too many characters")                      \
  X(MR_ARGS, "Incorrect number of arguments")                                         \
  X(MR_DEADLOCK, "Database deadlock; try again later")                                \
  X(MR_INGRES_ERR, "An unexpected error occured in the underlying DBMS")              \
  X(MR_INTERNAL, "Internal consistency failure")                                      \
  X(MR_NO_HANDLE, "Unknown query specified")                                          \
  X(MR_NO_MEM, "Server ran out of memory")                                            \
  X(MR_PERM, "Insufficient permission to perform requested database access")          \
  X(MR_NO_MATCH, "No records in database match query")                                \
  X(MR_BAD_CHAR, "Illegal character in argument")                                     \
  X(MR_EXISTS, "Record already exists")                                               \
  X(MR_INTEGER, "String could not be parsed as an integer")                           \
  X(MR_NO_ID, "Cannot allocate new ID")                                               \
  X(MR_NOT_UNIQUE, "Arguments not unique")                                            \
  X(MR_IN_USE, "Object is in use")                                                    \
  /* Query-specific errors. */                                                        \
  X(MR_ACE, "No such access control entity")                                          \
  X(MR_BAD_CLASS, "Specified class is not known")                                     \
  X(MR_BAD_GROUP, "Invalid group ID")                                                 \
  X(MR_CLUSTER, "Unknown cluster")                                                    \
  X(MR_DATE, "Invalid date")                                                          \
  X(MR_FILESYS, "Named file system does not exist")                                   \
  X(MR_FILESYS_EXISTS, "Named file system already exists")                            \
  X(MR_FILESYS_ACCESS, "Invalid filesys access")                                      \
  X(MR_FSTYPE, "Invalid filesys type")                                                \
  X(MR_LIST, "No such list")                                                          \
  X(MR_MACHINE, "Unknown machine")                                                    \
  X(MR_NFS, "Specified directory not exported")                                       \
  X(MR_NFSPHYS, "Machine/device pair not in nfsphys relation")                        \
  X(MR_NO_FILESYS, "Cannot find space for filesys")                                   \
  X(MR_NO_POBOX, "No post office box found")                                          \
  X(MR_NO_QUOTA, "No quota found")                                                    \
  X(MR_POBOX, "Invalid post office box")                                              \
  X(MR_QUOTA, "Invalid quota")                                                        \
  X(MR_SERVICE, "Unknown service")                                                    \
  X(MR_STRING, "Unknown string")                                                      \
  X(MR_TYPE, "Invalid type")                                                          \
  X(MR_USER, "No such user")                                                          \
  X(MR_WILDCARD, "Wildcards not allowed here")                                        \
  X(MR_ZEPHYR, "Unknown zephyr class")                                                \
  /* Application library / protocol errors (sections 5.3, 5.6.2). */                  \
  X(MR_MORE_DATA, "More data available")                                              \
  X(MR_NOT_CONNECTED, "Not connected to Moira server")                                \
  X(MR_ALREADY_CONNECTED, "Already connected to Moira server")                        \
  X(MR_ABORTED, "Connection aborted")                                                 \
  X(MR_VERSION_HIGH, "Client version higher than server version")                     \
  X(MR_VERSION_LOW, "Client version lower than server version")                       \
  X(MR_UNKNOWN_PROC, "Unknown procedure requested")                                   \
  X(MR_BAD_AUTH, "Authentication failure")                                            \
  /* DCM / update protocol errors (sections 5.7, 5.9). */                             \
  X(MR_NO_CHANGE, "No change in database since last file generation")                 \
  X(MR_DCM_DISABLED, "The DCM has been disabled")                                     \
  X(MR_GEN_FAILED, "Server file generator failed")                                    \
  X(MR_UPDATE_CONN, "Could not connect to target server")                             \
  X(MR_UPDATE_XFER, "File transfer to target server failed")                          \
  X(MR_UPDATE_CKSUM, "Checksum mismatch in transferred file")                         \
  X(MR_UPDATE_EXEC, "Install script failed on target server")                         \
  X(MR_UPDATE_TIMEOUT, "Update timed out")                                            \
  /* Kerberos simulation errors (section 5.10). */                                    \
  X(MR_KRB_NO_PRINC, "Kerberos principal unknown")                                    \
  X(MR_KRB_BAD_PASSWORD, "Kerberos password incorrect")                               \
  X(MR_KRB_TKT_EXPIRED, "Kerberos ticket expired")                                    \
  X(MR_KRB_NO_TKT, "Can't find Kerberos ticket")                                      \
  X(MR_KRB_REPLAY, "Kerberos authenticator replayed")                                 \
  /* Registration server errors (section 5.10). */                                    \
  X(MR_REG_NOT_FOUND, "No such student in registration database")                     \
  X(MR_REG_ALREADY, "Student already registered")                                     \
  X(MR_REG_LOGIN_TAKEN, "Login name already taken")                                   \
  X(MR_REG_BAD_AUTH, "Registration authenticator invalid")                            \
  /* Directory-outage / replication errors (appended; earlier codes keep */           \
  /* their values).                                                      */           \
  X(MR_KDC_UNAVAILABLE, "Kerberos KDC unreachable")                                   \
  X(MR_REPL_READONLY, "Replica is read-only; send changes to the primary")            \
  X(MR_REPL_TRUNCATED, "Requested journal entries have been truncated")               \
  X(MR_REPL_BEHIND, "Replica has not caught up to the requested sequence")            \
  X(MR_UPDATE_PATCH, "Installed file does not match patch base")                      \
  X(MR_QUORUM_TIMEOUT, "Write not acknowledged by a quorum of replicas")              \
  X(MR_REPL_EPOCH, "Stale replication epoch; a newer primary has been elected")

// Error code constants.  MR_SUCCESS is 0 by convention; all other codes are
// offset into the "sms" com_err table.
enum MrError : int32_t {
#define MOIRA_DECLARE_ERROR(sym, msg) sym##_OFFSET_,
  MOIRA_ERROR_LIST(MOIRA_DECLARE_ERROR)
#undef MOIRA_DECLARE_ERROR
};

#define MOIRA_DEFINE_ERROR(sym, msg) \
  inline constexpr int32_t sym = (sym##_OFFSET_ == 0) ? 0 : kMrErrorBase + sym##_OFFSET_;
MOIRA_ERROR_LIST(MOIRA_DEFINE_ERROR)
#undef MOIRA_DEFINE_ERROR

// Registers the "sms" error table with the com_err registry.  Called lazily
// by the library; safe to call repeatedly.
void RegisterMoiraErrorTable();

}  // namespace moira

#endif  // MOIRA_SRC_COMERR_MOIRA_ERRORS_H_
