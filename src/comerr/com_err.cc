#include "src/comerr/com_err.h"

#include <cstdio>
#include <mutex>
#include <utility>

#include "src/comerr/error_table.h"

namespace moira {
namespace {

std::mutex g_hook_mu;
ComErrHook g_hook;

}  // namespace

void ComErr(std::string_view whoami, int32_t code, std::string_view message) {
  ComErrHook hook;
  {
    std::lock_guard<std::mutex> lock(g_hook_mu);
    hook = g_hook;
  }
  if (hook) {
    hook(whoami, code, message);
    return;
  }
  std::string out(whoami);
  out += ": ";
  if (code != 0) {
    out += ErrorMessage(code);
    out += " ";
  }
  out += message;
  out += "\n";
  std::fputs(out.c_str(), stderr);
}

ComErrHook SetComErrHook(ComErrHook hook) {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  return std::exchange(g_hook, std::move(hook));
}

}  // namespace moira
