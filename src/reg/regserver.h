// New user registration (paper section 5.10).
//
// The Moira database machine runs a registration server listening on a
// well-known UDP port for three request types: Verify User, Grab Login, and
// Set Password.  Requests carry an authenticator — the student's ID number
// and its crypt() hash, DES-PCBC-encrypted using the hash as the key — so the
// server can validate the requester knows the ID without the ID travelling in
// clear.  Grab Login registers the login in the Moira database (the
// register_user query: pobox, group, home filesystem, quota) and reserves the
// name with Kerberos; Set Password forwards to the Kerberos admin server over
// a srvtab-srvtab channel.
#ifndef MOIRA_SRC_REG_REGSERVER_H_
#define MOIRA_SRC_REG_REGSERVER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/context.h"
#include "src/krb/kerberos.h"

namespace moira {

enum class RegRequestType : uint32_t {
  kVerifyUser = 1,
  kGrabLogin = 2,
  kSetPassword = 3,
};

// Reply codes carried alongside the Moira error code.
struct RegReply {
  int32_t code = 0;        // MR_SUCCESS / MR_REG_* / ...
  int64_t user_status = 0; // current account status on kVerifyUser success
};

// Builds the wire authenticator: {IDnumber, hashIDnumber[, extra]} encrypted
// with the error-propagating cipher keyed by hashIDnumber.
std::string BuildRegAuthenticator(std::string_view id_number, std::string_view hash_id,
                                  std::string_view extra);

class RegistrationServer {
 public:
  RegistrationServer(MoiraContext* mc, KerberosRealm* realm);

  // Handles one datagram; returns the reply datagram.  Packet format:
  // counted fields {type, first, last, authenticator}.
  std::string HandlePacket(std::string_view packet);

  // Typed interface used by the userreg client (the packet path wraps this).
  RegReply VerifyUser(std::string_view first, std::string_view last,
                      std::string_view authenticator);
  RegReply GrabLogin(std::string_view first, std::string_view last,
                     std::string_view authenticator);
  RegReply SetPassword(std::string_view first, std::string_view last,
                       std::string_view authenticator);

 private:
  // Locates the user row by name + hashed id and validates the
  // authenticator.  Fills `extra` with the decrypted trailing field.
  int32_t Validate(std::string_view first, std::string_view last,
                   std::string_view authenticator, size_t* user_row, std::string* extra);

  MoiraContext* mc_;
  KerberosRealm* realm_;
};

// The userreg workstation program: drives the full registration conversation
// (paper section 5.10's "register"/"athena" login flow).
class UserregClient {
 public:
  UserregClient(RegistrationServer* server, KerberosRealm* realm);

  // Runs the whole flow: verify, probe the login against Kerberos, grab it,
  // set the initial password.  Returns MR_SUCCESS or the first failure.
  int32_t Register(std::string_view first, std::string_view mi, std::string_view last,
                   std::string_view id_number, std::string_view login,
                   std::string_view password);

 private:
  RegistrationServer* server_;
  KerberosRealm* realm_;
};

}  // namespace moira

#endif  // MOIRA_SRC_REG_REGSERVER_H_
