#include "src/reg/regserver.h"

#include "src/core/registry.h"
#include "src/krb/block_cipher.h"
#include "src/krb/crypt.h"

namespace moira {
namespace {

std::string StripHyphens(std::string_view id_number) {
  std::string digits;
  for (char c : id_number) {
    if (c != '-') {
      digits.push_back(c);
    }
  }
  return digits;
}

}  // namespace

std::string BuildRegAuthenticator(std::string_view id_number, std::string_view hash_id,
                                  std::string_view extra) {
  std::string plain;
  PackField(&plain, StripHyphens(id_number));
  PackField(&plain, hash_id);
  PackField(&plain, extra);
  return PcbcEncrypt(DeriveBlockKey(hash_id), plain);
}

RegistrationServer::RegistrationServer(MoiraContext* mc, KerberosRealm* realm)
    : mc_(mc), realm_(realm) {
  // The registration server talks to the Kerberos admin server over a
  // srvtab-srvtab channel; registering its service principal models that.
  realm_->RegisterService("moira_reg");
}

int32_t RegistrationServer::Validate(std::string_view first, std::string_view last,
                                     std::string_view authenticator, size_t* user_row,
                                     std::string* extra) {
  Table* users = mc_->users();
  std::vector<size_t> candidates = users->Match({
      Condition{users->ColumnIndex("first"), Condition::Op::kEq, Value(first), Value()},
      Condition{users->ColumnIndex("last"), Condition::Op::kEq, Value(last), Value()},
  });
  if (candidates.empty()) {
    return MR_REG_NOT_FOUND;
  }
  for (size_t row : candidates) {
    const std::string& stored_hash = MoiraContext::StrCell(users, row, "mit_id");
    if (stored_hash.empty()) {
      continue;
    }
    std::optional<std::string> plain =
        PcbcDecrypt(DeriveBlockKey(stored_hash), authenticator);
    if (!plain.has_value()) {
      continue;
    }
    std::string_view view(*plain);
    std::string id_digits;
    std::string hash_in_auth;
    std::string extra_field;
    if (!UnpackField(&view, &id_digits) || !UnpackField(&view, &hash_in_auth) ||
        !UnpackField(&view, &extra_field) || !view.empty()) {
      continue;  // wrong key garbles the framing
    }
    // The server verifies the request by re-encrypting the ID number and
    // comparing against the stored hash (paper section 5.10).
    if (hash_in_auth != stored_hash ||
        HashMitId(id_digits, first, last) != stored_hash) {
      continue;
    }
    *user_row = row;
    *extra = std::move(extra_field);
    return MR_SUCCESS;
  }
  return MR_REG_BAD_AUTH;
}

RegReply RegistrationServer::VerifyUser(std::string_view first, std::string_view last,
                                        std::string_view authenticator) {
  size_t row = 0;
  std::string extra;
  if (int32_t code = Validate(first, last, authenticator, &row, &extra);
      code != MR_SUCCESS) {
    return RegReply{code, 0};
  }
  int64_t status = MoiraContext::IntCell(mc_->users(), row, "status");
  if (status != kUserNotRegistered) {
    return RegReply{MR_REG_ALREADY, status};
  }
  return RegReply{MR_SUCCESS, status};
}

RegReply RegistrationServer::GrabLogin(std::string_view first, std::string_view last,
                                       std::string_view authenticator) {
  size_t row = 0;
  std::string login;
  if (int32_t code = Validate(first, last, authenticator, &row, &login);
      code != MR_SUCCESS) {
    return RegReply{code, 0};
  }
  if (MoiraContext::IntCell(mc_->users(), row, "status") != kUserNotRegistered) {
    return RegReply{MR_REG_ALREADY, 0};
  }
  if (realm_->HasPrincipal(login)) {
    return RegReply{MR_REG_LOGIN_TAKEN, 0};
  }
  // register_user assigns the login plus pobox, group, home filesystem, and
  // quota in one step.
  std::string uid = std::to_string(MoiraContext::IntCell(mc_->users(), row, "uid"));
  int32_t code = QueryRegistry::Instance().Execute(
      *mc_, "root", "userreg", "register_user",
      {uid, login, std::to_string(kFsStudent)}, [](Tuple) {});
  if (code == MR_IN_USE) {
    return RegReply{MR_REG_LOGIN_TAKEN, 0};
  }
  if (code != MR_SUCCESS) {
    return RegReply{code, 0};
  }
  // Reserve the name with Kerberos (no password yet).
  realm_->AddPrincipal(login, "");
  return RegReply{MR_SUCCESS, kUserHalfRegistered};
}

RegReply RegistrationServer::SetPassword(std::string_view first, std::string_view last,
                                         std::string_view authenticator) {
  size_t row = 0;
  std::string password;
  if (int32_t code = Validate(first, last, authenticator, &row, &password);
      code != MR_SUCCESS) {
    return RegReply{code, 0};
  }
  Table* users = mc_->users();
  if (MoiraContext::IntCell(users, row, "status") != kUserHalfRegistered) {
    return RegReply{MR_REG_NOT_FOUND, 0};
  }
  const std::string& login = MoiraContext::StrCell(users, row, "login");
  if (int32_t code = realm_->SetPassword(login, password); code != MR_SUCCESS) {
    return RegReply{code, 0};
  }
  // Fully established: pending propagation to hesiod, the mail hub, and the
  // home fileserver, the account becomes active.
  int32_t code = QueryRegistry::Instance().Execute(*mc_, "root", "userreg",
                                                   "update_user_status",
                                                   {login, "1"}, [](Tuple) {});
  return RegReply{code, kUserActive};
}

std::string RegistrationServer::HandlePacket(std::string_view packet) {
  std::string_view view = packet;
  std::string type_field;
  std::string first;
  std::string last;
  std::string authenticator;
  RegReply reply{MR_REG_BAD_AUTH, 0};
  if (UnpackField(&view, &type_field) && UnpackField(&view, &first) &&
      UnpackField(&view, &last) && UnpackField(&view, &authenticator) && view.empty()) {
    if (type_field == "1") {
      reply = VerifyUser(first, last, authenticator);
    } else if (type_field == "2") {
      reply = GrabLogin(first, last, authenticator);
    } else if (type_field == "3") {
      reply = SetPassword(first, last, authenticator);
    }
  }
  std::string out;
  PackField(&out, std::to_string(reply.code));
  PackField(&out, std::to_string(reply.user_status));
  return out;
}

UserregClient::UserregClient(RegistrationServer* server, KerberosRealm* realm)
    : server_(server), realm_(realm) {}

int32_t UserregClient::Register(std::string_view first, std::string_view mi,
                                std::string_view last, std::string_view id_number,
                                std::string_view login, std::string_view password) {
  (void)mi;  // the middle initial is displayed but not part of the lookup
  std::string hash = HashMitId(id_number, first, last);
  RegReply verify =
      server_->VerifyUser(first, last, BuildRegAuthenticator(id_number, hash, ""));
  if (verify.code != MR_SUCCESS) {
    return verify.code;
  }
  // Two-step login probe: first try to get initial tickets for the name; if
  // that *fails* with an unknown principal the name is free (paper section
  // 5.10), and only then is grab_login sent.
  Ticket probe;
  int32_t krb = realm_->GetInitialTickets(login, "", kMoiraServiceName, &probe);
  if (krb != MR_KRB_NO_PRINC) {
    return MR_REG_LOGIN_TAKEN;
  }
  RegReply grab =
      server_->GrabLogin(first, last, BuildRegAuthenticator(id_number, hash, login));
  if (grab.code != MR_SUCCESS) {
    return grab.code;
  }
  RegReply set =
      server_->SetPassword(first, last, BuildRegAuthenticator(id_number, hash, password));
  return set.code;
}

}  // namespace moira
