#include "src/update/sim_host.h"

#include "src/comerr/moira_errors.h"
#include "src/common/checksum.h"
#include "src/common/random.h"
#include "src/common/strutil.h"
#include "src/update/patch.h"

namespace moira {

SimHost::SimHost(std::string name, KerberosRealm* realm, const Clock* clock)
    : name_(std::move(name)),
      verifier_(kUpdateServiceName, realm->RegisterService(kUpdateServiceName), clock) {}

bool SimHost::HasFile(std::string_view path) const { return files_.contains(path); }

const std::string* SimHost::ReadFile(std::string_view path) const {
  auto it = files_.find(path);
  return it != files_.end() ? &it->second : nullptr;
}

void SimHost::WriteFileDirect(std::string_view path, std::string contents) {
  files_[std::string(path)] = std::move(contents);
}

void SimHost::RemoveFile(std::string_view path) {
  auto it = files_.find(path);
  if (it != files_.end()) {
    files_.erase(it);
  }
}

std::vector<std::string> SimHost::ListFiles() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, contents] : files_) {
    out.push_back(path);
  }
  return out;
}

void SimHost::SetFailMode(HostFailMode mode, int count) {
  fail_mode_ = mode;
  fail_count_ = count;
}

void SimHost::Reboot() {
  crashed_ = false;
  session_open_ = false;
  session_target_.clear();
  session_script_.clear();
}

bool SimHost::ConsumeFailMode(HostFailMode mode) {
  if (fail_mode_ != mode || fail_count_ <= 0) {
    return false;
  }
  if (--fail_count_ == 0) {
    fail_mode_ = HostFailMode::kNone;
  }
  return true;
}

int32_t SimHost::BeginSession(std::string_view authenticator) {
  ++connect_attempts_;
  if (crashed_) {
    return MR_UPDATE_CONN;
  }
  if (ConsumeFailMode(HostFailMode::kRefuseConnection) ||
      ConsumeFailMode(HostFailMode::kFlaky)) {
    return MR_UPDATE_CONN;
  }
  VerifiedIdentity identity;
  if (int32_t code = verifier_.Verify(authenticator, &identity); code != MR_SUCCESS) {
    return MR_BAD_AUTH;
  }
  session_open_ = true;
  session_target_.clear();
  session_script_.clear();
  return MR_SUCCESS;
}

int32_t SimHost::ReceiveFile(const std::string& target, std::string_view data,
                             uint32_t crc) {
  if (crashed_ || !session_open_) {
    return MR_UPDATE_CONN;
  }
  std::string temp_path = target + kUpdateSuffix;
  // An existing temp file may be incomplete from a crashed update; it is
  // deleted when the next update starts (paper section 5.9 trouble recovery).
  RemoveFile(temp_path);
  if (ConsumeFailMode(HostFailMode::kCrashDuringTransfer)) {
    // Partial write, then the machine goes down.
    files_[temp_path] = std::string(data.substr(0, data.size() / 2));
    crashed_ = true;
    session_open_ = false;
    return MR_UPDATE_XFER;
  }
  if (ConsumeFailMode(HostFailMode::kSlow)) {
    // The transfer completes but takes so long the client's transfer-phase
    // deadline expires.  Only a simulated clock can be stalled.
    if (sim_clock_ != nullptr) {
      sim_clock_->Advance(slow_seconds_);
    }
  }
  if (ConsumeFailMode(HostFailMode::kCorruptTransfer) || Crc32(data) != crc) {
    return MR_UPDATE_CKSUM;
  }
  // Complete transfer: the temp file is atomically renamed onto the target.
  files_[target] = std::string(data);
  session_target_ = target;
  return MR_SUCCESS;
}

int32_t SimHost::ReceiveScript(std::string_view script_text) {
  if (crashed_ || !session_open_) {
    return MR_UPDATE_CONN;
  }
  session_script_ = std::string(script_text);
  return MR_SUCCESS;
}

int32_t SimHost::Flush() {
  if (crashed_ || !session_open_) {
    return MR_UPDATE_CONN;
  }
  if (ConsumeFailMode(HostFailMode::kCrashBeforeExecute)) {
    crashed_ = true;
    session_open_ = false;
    return MR_UPDATE_CONN;
  }
  return MR_SUCCESS;
}

int32_t SimHost::RunInstruction(std::string_view line, std::string* errmsg) {
  std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return MR_SUCCESS;
  }
  std::vector<std::string> words = Split(std::string(trimmed), ' ');
  const std::string& op = words[0];
  if (op == "extract" && words.size() == 3) {
    // extract <member> <dest>: pull a member from the transferred archive
    // into <dest>.moira_update (one at a time, as the paper specifies).
    const std::string* payload = ReadFile(session_target_);
    if (payload == nullptr) {
      *errmsg = "no transferred data file";
      return MR_UPDATE_EXEC;
    }
    std::optional<Archive> archive = Archive::Parse(*payload);
    if (!archive.has_value()) {
      *errmsg = "transferred file is not a valid archive";
      return MR_UPDATE_EXEC;
    }
    const std::string* member = archive->Find(words[1]);
    if (member == nullptr) {
      *errmsg = "archive member not found: " + words[1];
      return MR_UPDATE_EXEC;
    }
    files_[words[2] + kUpdateSuffix] = *member;
    return MR_SUCCESS;
  }
  if (op == "syncdir" && words.size() == 2) {
    // syncdir <dir>: extract every archive member into <dir>/<member> with
    // the same temp-file + atomic-rename discipline as extract/install.
    const std::string* payload = ReadFile(session_target_);
    if (payload == nullptr) {
      *errmsg = "no transferred data file";
      return MR_UPDATE_EXEC;
    }
    std::optional<Archive> archive = Archive::Parse(*payload);
    if (!archive.has_value()) {
      *errmsg = "transferred file is not a valid archive";
      return MR_UPDATE_EXEC;
    }
    for (const auto& [member, contents] : archive->members()) {
      std::string dest = words[1] + "/" + member;
      files_[dest + kUpdateSuffix] = contents;
      FlushWrites(dest, contents);
      files_.erase(dest + kUpdateSuffix);
    }
    return MR_SUCCESS;
  }
  if (op == "applypatch" && words.size() == 1) {
    // applypatch: the transferred data file is an ArchivePatch.  Two phases:
    // first verify every base CRC and compute every result (nothing is
    // touched if any file mismatches), then install them all.
    const std::string* payload = ReadFile(session_target_);
    if (payload == nullptr) {
      *errmsg = "no transferred data file";
      return MR_UPDATE_EXEC;
    }
    std::optional<ArchivePatch> patch = ArchivePatch::Parse(*payload);
    if (!patch.has_value()) {
      *errmsg = "transferred file is not a valid patch";
      return MR_UPDATE_EXEC;
    }
    std::vector<std::pair<std::string, std::string>> staged;
    staged.reserve(patch->size());
    for (const FilePatch& file : patch->files()) {
      const std::string* base = ReadFile(file.path);
      std::optional<std::string> result =
          ApplyFilePatch(base != nullptr ? std::string_view(*base)
                                         : std::string_view(),
                         file);
      if (!result.has_value()) {
        *errmsg = "patch base mismatch: " + file.path;
        return MR_UPDATE_PATCH;
      }
      staged.emplace_back(file.path, std::move(*result));
    }
    for (auto& [path, contents] : staged) {
      FlushWrites(path, std::move(contents));
    }
    return MR_SUCCESS;
  }
  if (op == "install" && words.size() == 2) {
    // Atomic rename swap: current file to .moira_backup, .moira_update in.
    // Both "files" live in the same map, mirroring same-partition renames.
    auto temp_it = files_.find(words[1] + kUpdateSuffix);
    if (temp_it == files_.end()) {
      *errmsg = "nothing to install for " + words[1];
      return MR_UPDATE_EXEC;
    }
    FlushWrites(words[1], std::move(temp_it->second));
    files_.erase(words[1] + kUpdateSuffix);
    return MR_SUCCESS;
  }
  if (op == "revert" && words.size() == 2) {
    auto backup_it = files_.find(words[1] + kBackupSuffix);
    if (backup_it == files_.end()) {
      *errmsg = "no backup to revert for " + words[1];
      return MR_UPDATE_EXEC;
    }
    files_[words[1]] = std::move(backup_it->second);
    files_.erase(words[1] + kBackupSuffix);
    return MR_SUCCESS;
  }
  if (op == "signal" && words.size() == 2) {
    // The process id is read from the named file at execution time.
    if (!HasFile(words[1])) {
      *errmsg = "pid file missing: " + words[1];
      return MR_UPDATE_EXEC;
    }
    signals_sent_.push_back(words[1]);
    return MR_SUCCESS;
  }
  if (op == "exec" && words.size() >= 2) {
    std::string command = std::string(trimmed.substr(5));
    executed_commands_.push_back(command);
    auto handler = commands_.find(words[1]);
    if (handler != commands_.end()) {
      int status = handler->second(*this);
      if (status != 0) {
        *errmsg = "command exited " + std::to_string(status) + ": " + command;
        return MR_UPDATE_EXEC;
      }
    }
    return MR_SUCCESS;
  }
  *errmsg = "unknown instruction: " + std::string(trimmed);
  return MR_UPDATE_EXEC;
}

void SimHost::FlushWrites(const std::string& path, std::string contents) {
  auto current = files_.find(path);
  if (current != files_.end()) {
    files_[path + kBackupSuffix] = std::move(current->second);
  }
  if (ConsumeFailMode(HostFailMode::kTornFlush)) {
    // Silent partial write: the caller (and thus the DCM) still sees
    // success, so the host's lts advances over a torn file.
    contents.resize(contents.size() / 2);
  }
  files_[path] = std::move(contents);
}

int32_t SimHost::ExecuteInstructions(std::string* errmsg) {
  if (crashed_ || !session_open_) {
    return MR_UPDATE_CONN;
  }
  if (ConsumeFailMode(HostFailMode::kScriptError)) {
    *errmsg = "install script failed (injected)";
    session_open_ = false;
    return MR_UPDATE_EXEC;
  }
  bool crash_mid_execute = ConsumeFailMode(HostFailMode::kCrashDuringExecute);
  int executed = 0;
  size_t pos = 0;
  const std::string& script = session_script_;
  while (pos <= script.size()) {
    size_t eol = script.find('\n', pos);
    std::string_view line = eol == std::string::npos
                                ? std::string_view(script).substr(pos)
                                : std::string_view(script).substr(pos, eol - pos);
    pos = eol == std::string::npos ? script.size() + 1 : eol + 1;
    if (TrimWhitespace(line).empty()) {
      continue;
    }
    if (crash_mid_execute && executed == 1) {
      crashed_ = true;
      session_open_ = false;
      return MR_UPDATE_CONN;
    }
    if (int32_t code = RunInstruction(line, errmsg); code != MR_SUCCESS) {
      session_open_ = false;
      return code;
    }
    ++executed;
  }
  ++update_count_;
  session_open_ = false;
  return MR_SUCCESS;
}

void SimHost::RegisterCommand(std::string command, std::function<int(SimHost&)> handler) {
  commands_[std::move(command)] = std::move(handler);
}

namespace {

void ArmHost(const FaultPlanSpec& spec, SimHost* host, uint64_t seed) {
  // One independent, reproducible stream per (seed, pass, host).
  SplitMix64 rng(seed);
  host->SetFailMode(HostFailMode::kNone, 0);
  if (spec.down_permille > 0 && rng.Chance(spec.down_permille, 1000)) {
    // Down for the whole pass, however many attempts the client makes.
    host->SetFailMode(HostFailMode::kRefuseConnection, 1 << 20);
    return;
  }
  if (spec.flaky_permille > 0 && rng.Chance(spec.flaky_permille, 1000)) {
    host->SetFailMode(HostFailMode::kFlaky, spec.flaky_fail_count);
    return;
  }
  if (spec.slow_permille > 0 && rng.Chance(spec.slow_permille, 1000)) {
    host->SetSlowDelay(spec.slow_seconds);
    host->SetFailMode(HostFailMode::kSlow, 1);
    return;
  }
  if (spec.corrupt_permille > 0 && rng.Chance(spec.corrupt_permille, 1000)) {
    host->SetFailMode(HostFailMode::kCorruptTransfer, 1);
    return;
  }
  if (spec.torn_permille > 0 && rng.Chance(spec.torn_permille, 1000)) {
    host->SetFailMode(HostFailMode::kTornFlush, 1);
  }
}

}  // namespace

void FaultPlan::ArmPass(const std::vector<SimHost*>& hosts, int pass) const {
  for (size_t i = 0; i < hosts.size(); ++i) {
    ArmHost(spec_, hosts[i],
            spec_.seed + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(pass) * 8192 + i));
  }
}

void FaultPlan::ArmPass(const std::vector<std::unique_ptr<SimHost>>& hosts,
                        int pass) const {
  for (size_t i = 0; i < hosts.size(); ++i) {
    ArmHost(spec_, hosts[i].get(),
            spec_.seed + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(pass) * 8192 + i));
  }
}

void FaultPlan::ArmDirectories(KerberosRealm* realm, HostDirectory* directory,
                               int pass) const {
  if (realm != nullptr) {
    SplitMix64 rng(spec_.seed +
                   0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(pass) * 8192 + 8190));
    realm->SetDown(spec_.kdc_down_permille > 0 &&
                   rng.Chance(spec_.kdc_down_permille, 1000));
  }
  if (directory != nullptr) {
    SplitMix64 rng(spec_.seed +
                   0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(pass) * 8192 + 8191));
    directory->SetDown(spec_.hesiod_down_permille > 0 &&
                       rng.Chance(spec_.hesiod_down_permille, 1000));
  }
}

void HostDirectory::Register(SimHost* host) { hosts_[host->name()] = host; }

SimHost* HostDirectory::Find(std::string_view name) const {
  if (down_) {
    return nullptr;  // Hesiod outage: resolution fails until the next arm
  }
  auto it = hosts_.find(name);
  return it != hosts_.end() ? it->second : nullptr;
}

}  // namespace moira
