// DCM side of the Moira-to-server update protocol (paper section 5.9).
//
// Strategy: a transfer phase (authenticate, ship the data file with a
// checksum, ship the install instruction sequence, flush), then an execution
// phase triggered by a single command, then a confirmation recorded by the
// DCM.  Failures are classified soft (likely transient: connection refused,
// crash, checksum) or hard (the install script itself failed).
//
// Resilience layer (DESIGN.md): soft failures are retried in-pass under a
// clock-driven RetryPolicy, each protocol phase runs under its own deadline,
// and the outcome reports how many attempts were made, how long the update
// took, and how far the protocol got — the DCM's circuit breaker feeds on
// those.  The DCM's update ticket is cached for its Kerberos lifetime so a
// fleet-wide scan costs one KDC round trip, not one per host.
#ifndef MOIRA_SRC_UPDATE_UPDATE_CLIENT_H_
#define MOIRA_SRC_UPDATE_UPDATE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/retry.h"
#include "src/krb/kerberos.h"
#include "src/update/sim_host.h"

namespace moira {

// How far an update attempt got before it stopped.
enum class UpdatePhase {
  kNone,      // no host / no attempt
  kAuth,      // obtaining tickets or opening the session
  kTransfer,  // shipping the data file and instruction sequence
  kExecute,   // running the install instructions
  kConfirm,   // recording the success
  kDone,
};

const char* UpdatePhaseName(UpdatePhase phase);

struct UpdateOutcome {
  int32_t code = 0;
  bool hard = false;      // true: operator attention needed; false: retry later
  std::string message;
  int attempts = 0;       // protocol attempts made this pass (>= 1 if reachable)
  UnixTime elapsed = 0;   // seconds from first attempt to final outcome
  UpdatePhase phase = UpdatePhase::kNone;  // furthest phase reached
};

// Per-phase wall-clock budgets, in seconds; 0 = unbounded.  A phase that
// overruns its budget fails soft with MR_UPDATE_TIMEOUT (a stuck host is
// indistinguishable from a slow one; later passes or the breaker decide).
struct UpdateDeadlines {
  UnixTime transfer = 0;
  UnixTime execute = 0;
  UnixTime confirm = 0;
};

class UpdateClient {
 public:
  // `principal`/`password` identify the DCM to the update service on each
  // host ("Kerberos is used to verify the identity of both ends at
  // connection set-up time", section 5.9.2).
  UpdateClient(KerberosRealm* realm, std::string principal, std::string password);

  // Runs the full three-phase update of one host, retrying soft failures
  // in-pass under the configured policy.  `single_attempt` suppresses the
  // retry loop (used for half-open circuit-breaker probes).
  UpdateOutcome Update(SimHost* host, const std::string& target,
                       const std::string& payload, const std::string& script,
                       bool single_attempt = false);

  // In-pass retry policy for soft failures; default is one attempt.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  void set_deadlines(const UpdateDeadlines& deadlines) { deadlines_ = deadlines; }
  // How backoffs wait.  Unset, retries re-attempt immediately; tests and
  // benches install a hook that advances their SimulatedClock.
  void set_sleep_fn(std::function<void(UnixTime)> fn) { sleep_fn_ = std::move(fn); }

  // KDC round trips made so far (observability for the ticket cache).
  int ticket_requests() const { return ticket_requests_; }
  // Drops the cached ticket (e.g. after a DCM restart in tests).
  void InvalidateTicket() { has_ticket_ = false; }

 private:
  UpdateOutcome AttemptOnce(SimHost* host, const std::string& target,
                            const std::string& payload, const std::string& script);
  // Returns MR_SUCCESS with a usable cached or freshly-fetched ticket.
  int32_t EnsureTicket(bool force_refresh);

  KerberosRealm* realm_;
  std::string principal_;
  std::string password_;
  RetryPolicy retry_policy_;
  UpdateDeadlines deadlines_;
  std::function<void(UnixTime)> sleep_fn_;
  Ticket ticket_;
  bool has_ticket_ = false;
  int ticket_requests_ = 0;
};

}  // namespace moira

#endif  // MOIRA_SRC_UPDATE_UPDATE_CLIENT_H_
