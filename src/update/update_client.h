// DCM side of the Moira-to-server update protocol (paper section 5.9).
//
// Strategy: a transfer phase (authenticate, ship the data file with a
// checksum, ship the install instruction sequence, flush), then an execution
// phase triggered by a single command, then a confirmation recorded by the
// DCM.  Failures are classified soft (likely transient: connection refused,
// crash, checksum) or hard (the install script itself failed).
#ifndef MOIRA_SRC_UPDATE_UPDATE_CLIENT_H_
#define MOIRA_SRC_UPDATE_UPDATE_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/krb/kerberos.h"
#include "src/update/sim_host.h"

namespace moira {

struct UpdateOutcome {
  int32_t code = 0;
  bool hard = false;      // true: operator attention needed; false: retry later
  std::string message;
};

class UpdateClient {
 public:
  // `principal`/`password` identify the DCM to the update service on each
  // host ("Kerberos is used to verify the identity of both ends at
  // connection set-up time", section 5.9.2).
  UpdateClient(KerberosRealm* realm, std::string principal, std::string password);

  // Runs the full three-phase update of one host.
  UpdateOutcome Update(SimHost* host, const std::string& target,
                       const std::string& payload, const std::string& script);

 private:
  KerberosRealm* realm_;
  std::string principal_;
  std::string password_;
};

}  // namespace moira

#endif  // MOIRA_SRC_UPDATE_UPDATE_CLIENT_H_
