#include "src/update/archive.h"

#include <cstring>

#include "src/common/checksum.h"

namespace moira {
namespace {

constexpr char kMagic[4] = {'M', 'T', 'A', 'R'};

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < sizeof(*v)) {
    return false;
  }
  std::memcpy(v, in->data(), sizeof(*v));
  in->remove_prefix(sizeof(*v));
  return true;
}

void PutCounted(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetCounted(std::string_view* in, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, &len) || in->size() < len) {
    return false;
  }
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

}  // namespace

void Archive::Add(std::string name, std::string contents) {
  for (auto& [existing_name, existing_contents] : members_) {
    if (existing_name == name) {
      existing_contents = std::move(contents);
      return;
    }
  }
  members_.emplace_back(std::move(name), std::move(contents));
}

const std::string* Archive::Find(std::string_view name) const {
  for (const auto& [member_name, contents] : members_) {
    if (member_name == name) {
      return &contents;
    }
  }
  return nullptr;
}

size_t Archive::ContentBytes() const {
  size_t total = 0;
  for (const auto& [name, contents] : members_) {
    total += contents.size();
  }
  return total;
}

std::string Archive::Serialize() const {
  std::string out(kMagic, sizeof(kMagic));
  PutU32(&out, static_cast<uint32_t>(members_.size()));
  for (const auto& [name, contents] : members_) {
    PutCounted(&out, name);
    PutCounted(&out, contents);
  }
  PutU32(&out, Crc32(out));
  return out;
}

std::optional<Archive> Archive::Parse(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 2 * sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::string_view body = bytes.substr(0, bytes.size() - sizeof(uint32_t));
  std::string_view crc_view = bytes.substr(bytes.size() - sizeof(uint32_t));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, crc_view.data(), sizeof(stored_crc));
  if (stored_crc != Crc32(body)) {
    return std::nullopt;
  }
  std::string_view in = body.substr(sizeof(kMagic));
  uint32_t count = 0;
  if (!GetU32(&in, &count)) {
    return std::nullopt;
  }
  Archive archive;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::string contents;
    if (!GetCounted(&in, &name) || !GetCounted(&in, &contents)) {
      return std::nullopt;
    }
    archive.Add(std::move(name), std::move(contents));
  }
  if (!in.empty()) {
    return std::nullopt;
  }
  return archive;
}

}  // namespace moira
