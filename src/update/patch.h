// Keyed-file patches for incremental DCM propagation (paper section 5.1.E:
// files "will only be generated and propagated if the data has changed").
//
// Every server file the DCM patches incrementally is a *keyed text file*: a
// sequence of blocks, each owned by one record key (a Hesiod name, a login,
// a uid), preceded by an optional comment prologue.  KeyedFile is the
// canonical in-memory form; both the full generators and the patch appliers
// serialize through it (prologue verbatim, blocks sorted by key), so
// "apply this patch to the old file" and "regenerate the file from the
// database" produce byte-identical output whenever they agree on block
// contents.
//
// An ArchivePatch is the wire form: per installed file, the expected base
// CRC, a list of keyed upsert/delete ops (or a whole-file replacement for
// unkeyed files), and the expected result CRC.  A host whose installed file
// does not match the base CRC — it missed a pass, or tore a write — refuses
// the patch, and the DCM falls back to shipping the full archive.
#ifndef MOIRA_SRC_UPDATE_PATCH_H_
#define MOIRA_SRC_UPDATE_PATCH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace moira {

// How a line's owning key is derived.
enum class KeyRule : uint8_t {
  // Key is the first whitespace-delimited token ("login.passwd HS ...",
  // "lockername uid gid type", "uid quota").
  kFirstToken = 0,
  // Key is everything before the first ':' ("login:*:uid:...",
  // "listname: member, member").  Needed where later fields contain spaces.
  kUpToColon = 1,
};

// Canonical keyed text file: comment prologue + key-sorted blocks.
class KeyedFile {
 public:
  explicit KeyedFile(KeyRule rule = KeyRule::kFirstToken) : rule_(rule) {}

  // Parses text into prologue + blocks.  Leading lines starting with ';' or
  // '#' form the prologue; every following line is appended to the block of
  // its derived key (consecutive or not — blocks are keyed, not positional).
  static KeyedFile Parse(std::string_view text, KeyRule rule);

  // Appends one line (newline added if missing) to its key's block.
  void AppendLine(std::string_view line);
  // Appends a raw prologue line (kept verbatim, before all blocks).
  void AppendPrologue(std::string_view line);

  void SetBlock(const std::string& key, std::string block);
  void DeleteBlock(const std::string& key);
  // Returns the block for a key, or nullptr.
  const std::string* FindBlock(std::string_view key) const;

  // Prologue, then blocks in ascending key order.
  std::string Serialize() const;

  KeyRule rule() const { return rule_; }
  const std::map<std::string, std::string>& blocks() const { return blocks_; }

  // The key a line belongs to under a rule.
  static std::string KeyOf(std::string_view line, KeyRule rule);

 private:
  KeyRule rule_;
  std::string prologue_;
  std::map<std::string, std::string> blocks_;
};

// One keyed edit inside a file.
struct PatchOp {
  enum Kind : uint8_t { kUpsert = 0, kDelete = 1 };
  Kind kind = kUpsert;
  std::string key;
  std::string block;  // empty for kDelete
};

// Edits for one installed file.
struct FilePatch {
  std::string member;    // archive member name (e.g. "passwd.db")
  std::string path;      // installed path on the host
  KeyRule key_rule = KeyRule::kFirstToken;
  uint32_t base_crc = 0;    // CRC of the file the ops apply to
  uint32_t result_crc = 0;  // CRC the patched file must hash to
  bool replace = false;     // whole-file replacement (unkeyed files)
  std::string contents;     // replacement contents when replace is set
  std::vector<PatchOp> ops;
};

// The shippable unit: patches for every file a pass changed on one host.
class ArchivePatch {
 public:
  void Add(FilePatch patch);
  const FilePatch* Find(std::string_view member) const;

  const std::vector<FilePatch>& files() const { return files_; }
  bool empty() const { return files_.empty(); }
  size_t size() const { return files_.size(); }

  // Same framing discipline as Archive: magic, counted fields, trailing CRC.
  std::string Serialize() const;
  static std::optional<ArchivePatch> Parse(std::string_view bytes);

 private:
  std::vector<FilePatch> files_;
};

// Applies one file's patch to its base bytes.  Returns the patched contents,
// or nullopt if the base does not hash to base_crc or the result does not
// hash to result_crc (the caller falls back to a full ship).
std::optional<std::string> ApplyFilePatch(std::string_view base,
                                          const FilePatch& patch);

}  // namespace moira

#endif  // MOIRA_SRC_UPDATE_PATCH_H_
