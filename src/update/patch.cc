#include "src/update/patch.h"

#include <cstring>

#include "src/common/checksum.h"

namespace moira {
namespace {

constexpr char kPatchMagic[4] = {'M', 'P', 'A', 'T'};

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < sizeof(*v)) {
    return false;
  }
  std::memcpy(v, in->data(), sizeof(*v));
  in->remove_prefix(sizeof(*v));
  return true;
}

void PutCounted(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetCounted(std::string_view* in, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, &len) || in->size() < len) {
    return false;
  }
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

}  // namespace

std::string KeyedFile::KeyOf(std::string_view line, KeyRule rule) {
  if (rule == KeyRule::kUpToColon) {
    size_t colon = line.find(':');
    return std::string(line.substr(0, colon == std::string_view::npos
                                          ? line.size()
                                          : colon));
  }
  size_t start = line.find_first_not_of(" \t");
  if (start == std::string_view::npos) {
    return std::string();
  }
  size_t end = line.find_first_of(" \t", start);
  return std::string(line.substr(start, end == std::string_view::npos
                                            ? line.size() - start
                                            : end - start));
}

KeyedFile KeyedFile::Parse(std::string_view text, KeyRule rule) {
  KeyedFile file(rule);
  bool in_prologue = true;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    if (in_prologue && !line.empty() && (line[0] == ';' || line[0] == '#')) {
      file.AppendPrologue(line);
      continue;
    }
    in_prologue = false;
    if (!line.empty()) {
      file.AppendLine(line);
    }
  }
  return file;
}

void KeyedFile::AppendLine(std::string_view line) {
  std::string& block = blocks_[KeyOf(line, rule_)];
  block.append(line);
  if (block.empty() || block.back() != '\n') {
    block.push_back('\n');
  }
}

void KeyedFile::AppendPrologue(std::string_view line) {
  prologue_.append(line);
  if (prologue_.empty() || prologue_.back() != '\n') {
    prologue_.push_back('\n');
  }
}

void KeyedFile::SetBlock(const std::string& key, std::string block) {
  if (!block.empty() && block.back() != '\n') {
    block.push_back('\n');
  }
  blocks_[key] = std::move(block);
}

void KeyedFile::DeleteBlock(const std::string& key) { blocks_.erase(key); }

const std::string* KeyedFile::FindBlock(std::string_view key) const {
  auto it = blocks_.find(std::string(key));
  return it == blocks_.end() ? nullptr : &it->second;
}

std::string KeyedFile::Serialize() const {
  std::string out = prologue_;
  for (const auto& [key, block] : blocks_) {
    out.append(block);
  }
  return out;
}

void ArchivePatch::Add(FilePatch patch) {
  for (FilePatch& existing : files_) {
    if (existing.member == patch.member) {
      existing = std::move(patch);
      return;
    }
  }
  files_.push_back(std::move(patch));
}

const FilePatch* ArchivePatch::Find(std::string_view member) const {
  for (const FilePatch& patch : files_) {
    if (patch.member == member) {
      return &patch;
    }
  }
  return nullptr;
}

std::string ArchivePatch::Serialize() const {
  std::string out(kPatchMagic, sizeof(kPatchMagic));
  PutU32(&out, static_cast<uint32_t>(files_.size()));
  for (const FilePatch& file : files_) {
    PutCounted(&out, file.member);
    PutCounted(&out, file.path);
    PutU32(&out, static_cast<uint32_t>(file.key_rule));
    PutU32(&out, file.base_crc);
    PutU32(&out, file.result_crc);
    PutU32(&out, file.replace ? 1 : 0);
    PutCounted(&out, file.contents);
    PutU32(&out, static_cast<uint32_t>(file.ops.size()));
    for (const PatchOp& op : file.ops) {
      PutU32(&out, static_cast<uint32_t>(op.kind));
      PutCounted(&out, op.key);
      PutCounted(&out, op.block);
    }
  }
  PutU32(&out, Crc32(out));
  return out;
}

std::optional<ArchivePatch> ArchivePatch::Parse(std::string_view bytes) {
  if (bytes.size() < sizeof(kPatchMagic) + 2 * sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kPatchMagic, sizeof(kPatchMagic)) != 0) {
    return std::nullopt;
  }
  std::string_view body = bytes.substr(0, bytes.size() - sizeof(uint32_t));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body.size(), sizeof(stored_crc));
  if (stored_crc != Crc32(body)) {
    return std::nullopt;
  }
  std::string_view in = body.substr(sizeof(kPatchMagic));
  uint32_t count = 0;
  if (!GetU32(&in, &count)) {
    return std::nullopt;
  }
  ArchivePatch patch;
  for (uint32_t i = 0; i < count; ++i) {
    FilePatch file;
    uint32_t rule = 0;
    uint32_t replace = 0;
    uint32_t op_count = 0;
    if (!GetCounted(&in, &file.member) || !GetCounted(&in, &file.path) ||
        !GetU32(&in, &rule) || !GetU32(&in, &file.base_crc) ||
        !GetU32(&in, &file.result_crc) || !GetU32(&in, &replace) ||
        !GetCounted(&in, &file.contents) || !GetU32(&in, &op_count)) {
      return std::nullopt;
    }
    if (rule > static_cast<uint32_t>(KeyRule::kUpToColon)) {
      return std::nullopt;
    }
    file.key_rule = static_cast<KeyRule>(rule);
    file.replace = replace != 0;
    for (uint32_t j = 0; j < op_count; ++j) {
      PatchOp op;
      uint32_t kind = 0;
      if (!GetU32(&in, &kind) || kind > PatchOp::kDelete ||
          !GetCounted(&in, &op.key) || !GetCounted(&in, &op.block)) {
        return std::nullopt;
      }
      op.kind = static_cast<PatchOp::Kind>(kind);
      file.ops.push_back(std::move(op));
    }
    patch.Add(std::move(file));
  }
  if (!in.empty()) {
    return std::nullopt;
  }
  return patch;
}

std::optional<std::string> ApplyFilePatch(std::string_view base,
                                          const FilePatch& patch) {
  if (Crc32(base) != patch.base_crc) {
    return std::nullopt;
  }
  std::string result;
  if (patch.replace) {
    result = patch.contents;
  } else {
    KeyedFile file = KeyedFile::Parse(base, patch.key_rule);
    for (const PatchOp& op : patch.ops) {
      if (op.kind == PatchOp::kDelete) {
        file.DeleteBlock(op.key);
      } else {
        file.SetBlock(op.key, op.block);
      }
    }
    result = file.Serialize();
  }
  if (Crc32(result) != patch.result_crc) {
    return std::nullopt;
  }
  return result;
}

}  // namespace moira
