#include "src/update/update_client.h"

#include "src/comerr/moira_errors.h"
#include "src/common/checksum.h"

namespace moira {

const char* UpdatePhaseName(UpdatePhase phase) {
  switch (phase) {
    case UpdatePhase::kNone:
      return "none";
    case UpdatePhase::kAuth:
      return "auth";
    case UpdatePhase::kTransfer:
      return "transfer";
    case UpdatePhase::kExecute:
      return "execute";
    case UpdatePhase::kConfirm:
      return "confirm";
    case UpdatePhase::kDone:
      return "done";
  }
  return "unknown";
}

UpdateClient::UpdateClient(KerberosRealm* realm, std::string principal,
                           std::string password)
    : realm_(realm), principal_(std::move(principal)), password_(std::move(password)) {}

int32_t UpdateClient::EnsureTicket(bool force_refresh) {
  const UnixTime now = realm_->clock().Now();
  if (!force_refresh && has_ticket_ && now < ticket_.issued + ticket_.lifetime) {
    return MR_SUCCESS;
  }
  ++ticket_requests_;
  int32_t code =
      realm_->GetInitialTickets(principal_, password_, kUpdateServiceName, &ticket_);
  has_ticket_ = code == MR_SUCCESS;
  return code;
}

UpdateOutcome UpdateClient::AttemptOnce(SimHost* host, const std::string& target,
                                        const std::string& payload,
                                        const std::string& script) {
  const Clock& clock = realm_->clock();
  if (int32_t code = EnsureTicket(/*force_refresh=*/false); code != MR_SUCCESS) {
    // A KDC outage is transient — retry later like any soft failure; a
    // missing principal or bad password needs an operator.
    return UpdateOutcome{code, /*hard=*/code != MR_KDC_UNAVAILABLE,
                         "cannot obtain update tickets", 0, 0, UpdatePhase::kAuth};
  }
  // Phase A: transfer, under its own deadline.
  const UnixTime transfer_start = clock.Now();
  auto transfer_overran = [&] {
    return deadlines_.transfer > 0 && clock.Now() - transfer_start > deadlines_.transfer;
  };
  int32_t code = host->BeginSession(realm_->MakeAuthenticator(ticket_));
  if (code == MR_BAD_AUTH) {
    // The cached ticket may have gone stale server-side; refresh once.
    if (EnsureTicket(/*force_refresh=*/true) == MR_SUCCESS) {
      code = host->BeginSession(realm_->MakeAuthenticator(ticket_));
    }
  }
  if (code != MR_SUCCESS) {
    return UpdateOutcome{code, /*hard=*/code == MR_BAD_AUTH,
                         "connection/authentication failed", 0, 0, UpdatePhase::kAuth};
  }
  if (int32_t c = host->ReceiveFile(target, payload, Crc32(payload)); c != MR_SUCCESS) {
    return UpdateOutcome{c, /*hard=*/false, "file transfer failed", 0, 0,
                         UpdatePhase::kTransfer};
  }
  if (transfer_overran()) {
    return UpdateOutcome{MR_UPDATE_TIMEOUT, /*hard=*/false, "transfer phase overran", 0,
                         0, UpdatePhase::kTransfer};
  }
  if (int32_t c = host->ReceiveScript(script); c != MR_SUCCESS) {
    return UpdateOutcome{c, /*hard=*/false, "script transfer failed", 0, 0,
                         UpdatePhase::kTransfer};
  }
  if (int32_t c = host->Flush(); c != MR_SUCCESS) {
    return UpdateOutcome{c, /*hard=*/false, "flush failed", 0, 0, UpdatePhase::kTransfer};
  }
  if (transfer_overran()) {
    return UpdateOutcome{MR_UPDATE_TIMEOUT, /*hard=*/false, "transfer phase overran", 0,
                         0, UpdatePhase::kTransfer};
  }
  // Phase B: execute, under its own deadline.
  const UnixTime execute_start = clock.Now();
  std::string errmsg;
  code = host->ExecuteInstructions(&errmsg);
  if (code == MR_SUCCESS &&
      deadlines_.execute > 0 && clock.Now() - execute_start > deadlines_.execute) {
    return UpdateOutcome{MR_UPDATE_TIMEOUT, /*hard=*/false, "execute phase overran", 0, 0,
                         UpdatePhase::kExecute};
  }
  if (code == MR_UPDATE_EXEC) {
    return UpdateOutcome{code, /*hard=*/true, errmsg, 0, 0, UpdatePhase::kExecute};
  }
  if (code != MR_SUCCESS) {
    return UpdateOutcome{code, /*hard=*/false,
                         errmsg.empty() ? "update interrupted" : errmsg, 0, 0,
                         UpdatePhase::kExecute};
  }
  // Phase C: confirmation (the DCM records it; the budget still applies so a
  // stuck recording path cannot hang the pass).
  const UnixTime confirm_start = clock.Now();
  if (deadlines_.confirm > 0 && clock.Now() - confirm_start > deadlines_.confirm) {
    return UpdateOutcome{MR_UPDATE_TIMEOUT, /*hard=*/false, "confirm phase overran", 0, 0,
                         UpdatePhase::kConfirm};
  }
  return UpdateOutcome{MR_SUCCESS, false, "", 0, 0, UpdatePhase::kDone};
}

UpdateOutcome UpdateClient::Update(SimHost* host, const std::string& target,
                                   const std::string& payload, const std::string& script,
                                   bool single_attempt) {
  if (host == nullptr) {
    // An unknown host cannot heal without an operator fixing the machine or
    // serverhosts relation: hard, never retried.
    return UpdateOutcome{MR_UPDATE_CONN, /*hard=*/true, "no such host", 0, 0,
                         UpdatePhase::kNone};
  }
  const Clock& clock = realm_->clock();
  RetryPolicy policy = retry_policy_;
  if (single_attempt) {
    policy.max_attempts = 1;
  }
  RetryController retry(policy, &clock);
  const UnixTime start = clock.Now();
  UpdateOutcome outcome;
  int attempts = 0;
  while (true) {
    outcome = AttemptOnce(host, target, payload, script);
    ++attempts;
    if (outcome.code == MR_SUCCESS || outcome.hard) {
      break;
    }
    if (outcome.code == MR_UPDATE_PATCH) {
      // A patch-base mismatch is deterministic — the installed file will not
      // change by retrying.  Soft (the host is healthy), but handed straight
      // back so the DCM can fall back to a full-archive ship.
      break;
    }
    UnixTime backoff = retry.RecordFailure();
    if (backoff < 0) {
      break;  // attempt budget or overall deadline exhausted
    }
    if (sleep_fn_ && backoff > 0) {
      sleep_fn_(backoff);
    }
  }
  outcome.attempts = attempts;
  outcome.elapsed = clock.Now() - start;
  return outcome;
}

}  // namespace moira
