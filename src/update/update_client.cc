#include "src/update/update_client.h"

#include "src/comerr/moira_errors.h"
#include "src/common/checksum.h"

namespace moira {

UpdateClient::UpdateClient(KerberosRealm* realm, std::string principal,
                           std::string password)
    : realm_(realm), principal_(std::move(principal)), password_(std::move(password)) {}

UpdateOutcome UpdateClient::Update(SimHost* host, const std::string& target,
                                   const std::string& payload, const std::string& script) {
  if (host == nullptr) {
    return UpdateOutcome{MR_UPDATE_CONN, /*hard=*/false, "no such host"};
  }
  Ticket ticket;
  if (int32_t code =
          realm_->GetInitialTickets(principal_, password_, kUpdateServiceName, &ticket);
      code != MR_SUCCESS) {
    return UpdateOutcome{code, /*hard=*/true, "cannot obtain update tickets"};
  }
  // Phase A: transfer.
  if (int32_t code = host->BeginSession(realm_->MakeAuthenticator(ticket));
      code != MR_SUCCESS) {
    return UpdateOutcome{code, /*hard=*/code == MR_BAD_AUTH,
                         "connection/authentication failed"};
  }
  if (int32_t code = host->ReceiveFile(target, payload, Crc32(payload));
      code != MR_SUCCESS) {
    return UpdateOutcome{code, /*hard=*/false, "file transfer failed"};
  }
  if (int32_t code = host->ReceiveScript(script); code != MR_SUCCESS) {
    return UpdateOutcome{code, /*hard=*/false, "script transfer failed"};
  }
  if (int32_t code = host->Flush(); code != MR_SUCCESS) {
    return UpdateOutcome{code, /*hard=*/false, "flush failed"};
  }
  // Phase B + C: execute and confirm.
  std::string errmsg;
  int32_t code = host->ExecuteInstructions(&errmsg);
  if (code == MR_SUCCESS) {
    return UpdateOutcome{MR_SUCCESS, false, ""};
  }
  if (code == MR_UPDATE_EXEC) {
    return UpdateOutcome{code, /*hard=*/true, errmsg};
  }
  return UpdateOutcome{code, /*hard=*/false,
                       errmsg.empty() ? "update interrupted" : errmsg};
}

}  // namespace moira
