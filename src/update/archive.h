// A tar-style archive container (paper sections 5.8.2, 5.9): the DCM ships a
// single data file per update; for multi-file services (Hesiod's 11 .db
// files, Zephyr's acl set) that file is an archive of members which the
// install script extracts one at a time.
#ifndef MOIRA_SRC_UPDATE_ARCHIVE_H_
#define MOIRA_SRC_UPDATE_ARCHIVE_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace moira {

class Archive {
 public:
  Archive() = default;

  // Adds a member; names must be unique (later adds replace earlier ones).
  void Add(std::string name, std::string contents);

  // Returns a member's contents, or nullptr.
  const std::string* Find(std::string_view name) const;

  const std::vector<std::pair<std::string, std::string>>& members() const {
    return members_;
  }

  bool empty() const { return members_.empty(); }
  size_t size() const { return members_.size(); }

  // Total bytes of member contents (the paper's per-file "Size" column).
  size_t ContentBytes() const;

  // Serializes with a magic header and per-member counted strings plus a
  // trailing CRC so truncation and corruption are detectable.
  std::string Serialize() const;
  static std::optional<Archive> Parse(std::string_view bytes);

 private:
  std::vector<std::pair<std::string, std::string>> members_;
};

}  // namespace moira

#endif  // MOIRA_SRC_UPDATE_ARCHIVE_H_
