// Simulated server hosts (DESIGN.md substitution for the paper's real Hesiod,
// NFS, mail-hub, and Zephyr machines).
//
// Each SimHost has its own in-memory filesystem and implements the server
// side of the Moira-to-server update protocol (paper section 5.9): verify the
// DCM's authenticator, receive the data file (with checksum) and the install
// instruction sequence into temporary files, then on command execute the
// instructions — extract archive members, swap files in with atomic renames,
// revert, signal processes, execute commands.  Failure injection covers every
// trouble-recovery scenario the paper enumerates.
#ifndef MOIRA_SRC_UPDATE_SIM_HOST_H_
#define MOIRA_SRC_UPDATE_SIM_HOST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/krb/kerberos.h"
#include "src/update/archive.h"

namespace moira {

// The Kerberos service name used for DCM-to-server updates.
inline constexpr char kUpdateServiceName[] = "moira_update";

// Suffixes used by the install protocol.
inline constexpr char kUpdateSuffix[] = ".moira_update";
inline constexpr char kBackupSuffix[] = ".moira_backup";

enum class HostFailMode {
  kNone,
  kRefuseConnection,     // connect refused: soft error, retried later
  kCrashDuringTransfer,  // host crashes mid-transfer; temp file incomplete
  kCrashBeforeExecute,   // transfer completes, crash before the install command
  kCrashDuringExecute,   // crash after the first install instruction
  kScriptError,          // install script exits non-zero: hard error
  kFlaky,                // refuse the next `count` attempts, then heal
  kSlow,                 // transfer succeeds but stalls past the deadline
  kCorruptTransfer,      // bits flip in flight: checksum mismatch, soft
  kTornFlush,            // one installed file is silently truncated mid-flush:
                         // the update reports success, so only the next
                         // patch's base-CRC check can catch it
};

class SimHost {
 public:
  SimHost(std::string name, KerberosRealm* realm, const Clock* clock);

  SimHost(const SimHost&) = delete;
  SimHost& operator=(const SimHost&) = delete;

  const std::string& name() const { return name_; }

  // --- filesystem ---
  bool HasFile(std::string_view path) const;
  const std::string* ReadFile(std::string_view path) const;
  void WriteFileDirect(std::string_view path, std::string contents);
  void RemoveFile(std::string_view path);
  std::vector<std::string> ListFiles() const;

  // --- failure injection and crash/reboot simulation ---
  // Arms `mode` for the next `count` update attempts, then reverts to kNone.
  void SetFailMode(HostFailMode mode, int count = 1);
  // How long a kSlow transfer stalls (advances the attached simulated clock).
  void SetSlowDelay(UnixTime seconds) { slow_seconds_ = seconds; }
  // kSlow needs to move time forward; only a simulated clock can.
  void AttachSimClock(SimulatedClock* clock) { sim_clock_ = clock; }
  bool crashed() const { return crashed_; }
  // Brings a crashed host back up.  Installed files survive; per the paper,
  // stale temporaries are cleaned when the next update starts, not at boot.
  void Reboot();

  // --- update protocol, server side ---
  // Phase A step 1: authentication.  MR_UPDATE_CONN if down/refusing,
  // MR_BAD_AUTH on a bad authenticator.
  int32_t BeginSession(std::string_view authenticator);
  // Phase A step 2: transfer the data file to `target`.  Stale `.moira_update`
  // temporaries for this target are deleted first (paper section 5.9 B).
  int32_t ReceiveFile(const std::string& target, std::string_view data, uint32_t crc);
  // Phase A step 3: transfer the instruction sequence.
  int32_t ReceiveScript(std::string_view script_text);
  // Phase A step 4: flush to disk (no-op in memory, but honours crash modes).
  int32_t Flush();
  // Phase B + C: execute the instruction sequence; returns the script's exit
  // status as an error code and fills `errmsg`.
  int32_t ExecuteInstructions(std::string* errmsg);

  // --- observability for tests ---
  const std::vector<std::string>& executed_commands() const { return executed_commands_; }
  const std::vector<std::string>& signals_sent() const { return signals_sent_; }
  int update_count() const { return update_count_; }
  // Connection attempts received (successful or refused): quarantined hosts
  // should stop accumulating these while their breaker is open.
  int connect_attempts() const { return connect_attempts_; }
  // The currently armed fault (what FaultPlan::ArmPass drew for this pass).
  HostFailMode fail_mode() const { return fail_mode_; }
  int fail_count() const { return fail_count_; }

  // Registers a handler for `exec <command>` instructions (e.g. restarting a
  // hesiod server).  The handler's return value is the command exit status.
  void RegisterCommand(std::string command, std::function<int(SimHost&)> handler);

 private:
  bool ConsumeFailMode(HostFailMode mode);
  int32_t RunInstruction(std::string_view line, std::string* errmsg);
  // Installs `contents` at `path` with the backup discipline shared by
  // install/syncdir/applypatch.  A kTornFlush draw truncates the write but
  // still reports success — the torn file is only caught later, by the next
  // patch's base-CRC verification.
  void FlushWrites(const std::string& path, std::string contents);

  std::string name_;
  ServiceVerifier verifier_;
  std::map<std::string, std::string, std::less<>> files_;
  std::map<std::string, std::function<int(SimHost&)>, std::less<>> commands_;
  std::vector<std::string> executed_commands_;
  std::vector<std::string> signals_sent_;
  HostFailMode fail_mode_ = HostFailMode::kNone;
  int fail_count_ = 0;
  SimulatedClock* sim_clock_ = nullptr;
  UnixTime slow_seconds_ = kSecondsPerHour;
  bool crashed_ = false;
  bool session_open_ = false;
  std::string session_target_;  // target of the current session's data file
  std::string session_script_;
  int update_count_ = 0;
  int connect_attempts_ = 0;
};

// A directory of hosts the DCM can reach, keyed by canonical machine name —
// the stand-in for Hesiod name resolution.  An injected outage makes every
// lookup fail temporarily (Find returns nullptr), which callers must treat
// as a soft, retry-later condition rather than a missing host.
class HostDirectory {
 public:
  void Register(SimHost* host);
  SimHost* Find(std::string_view name) const;
  size_t size() const { return hosts_.size(); }

  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

 private:
  std::map<std::string, SimHost*, std::less<>> hosts_;
  bool down_ = false;
};

// Deterministic fleet-wide fault injection: before each DCM pass, every host
// draws its fault mode for that pass from a stream seeded by (seed, pass,
// host index), so the same spec replays the exact same fault schedule no
// matter how many passes a configuration needs to converge.
struct FaultPlanSpec {
  uint64_t seed = 1988;
  // Per-pass probability (permille) that a host is flaky: it refuses the
  // first `flaky_fail_count` attempts of the pass, then heals.
  int flaky_permille = 0;
  int flaky_fail_count = 2;
  // Probability that a host is down for the whole pass (refuses everything).
  int down_permille = 0;
  // Probability that a host's transfer stalls past the phase deadline.
  int slow_permille = 0;
  UnixTime slow_seconds = kSecondsPerHour;
  // Probability that the transferred bytes are corrupted (checksum mismatch).
  int corrupt_permille = 0;
  // Probability that one installed file tears mid-flush (silent truncation:
  // the update still reports success; self-healing relies on the next
  // patch's base-CRC check forcing a full ship).
  int torn_permille = 0;
  // Directory-server outages (ROADMAP PR-4 residual): probability per pass
  // that the KDC refuses ticket requests, and that Hesiod (the
  // HostDirectory) fails lookups.  Already-issued tickets keep working, so
  // cached-ticket paths ride out a KDC blip.
  int kdc_down_permille = 0;
  int hesiod_down_permille = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanSpec& spec) : spec_(spec) {}

  // Arms each host's fail mode for pass number `pass` (0-based).  Hosts not
  // selected by any draw are reset to healthy.
  void ArmPass(const std::vector<SimHost*>& hosts, int pass) const;
  void ArmPass(const std::vector<std::unique_ptr<SimHost>>& hosts, int pass) const;

  // Arms the directory servers for pass number `pass` from their own
  // deterministic streams (host indices stay below 8192, so the reserved
  // indices 8190/8191 never collide with a host's stream).  Either pointer
  // may be null.
  void ArmDirectories(KerberosRealm* realm, HostDirectory* directory, int pass) const;

  const FaultPlanSpec& spec() const { return spec_; }

 private:
  FaultPlanSpec spec_;
};

}  // namespace moira

#endif  // MOIRA_SRC_UPDATE_SIM_HOST_H_
