// Simulated server hosts (DESIGN.md substitution for the paper's real Hesiod,
// NFS, mail-hub, and Zephyr machines).
//
// Each SimHost has its own in-memory filesystem and implements the server
// side of the Moira-to-server update protocol (paper section 5.9): verify the
// DCM's authenticator, receive the data file (with checksum) and the install
// instruction sequence into temporary files, then on command execute the
// instructions — extract archive members, swap files in with atomic renames,
// revert, signal processes, execute commands.  Failure injection covers every
// trouble-recovery scenario the paper enumerates.
#ifndef MOIRA_SRC_UPDATE_SIM_HOST_H_
#define MOIRA_SRC_UPDATE_SIM_HOST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/krb/kerberos.h"
#include "src/update/archive.h"

namespace moira {

// The Kerberos service name used for DCM-to-server updates.
inline constexpr char kUpdateServiceName[] = "moira_update";

// Suffixes used by the install protocol.
inline constexpr char kUpdateSuffix[] = ".moira_update";
inline constexpr char kBackupSuffix[] = ".moira_backup";

enum class HostFailMode {
  kNone,
  kRefuseConnection,     // connect refused: soft error, retried later
  kCrashDuringTransfer,  // host crashes mid-transfer; temp file incomplete
  kCrashBeforeExecute,   // transfer completes, crash before the install command
  kCrashDuringExecute,   // crash after the first install instruction
  kScriptError,          // install script exits non-zero: hard error
};

class SimHost {
 public:
  SimHost(std::string name, KerberosRealm* realm, const Clock* clock);

  SimHost(const SimHost&) = delete;
  SimHost& operator=(const SimHost&) = delete;

  const std::string& name() const { return name_; }

  // --- filesystem ---
  bool HasFile(std::string_view path) const;
  const std::string* ReadFile(std::string_view path) const;
  void WriteFileDirect(std::string_view path, std::string contents);
  void RemoveFile(std::string_view path);
  std::vector<std::string> ListFiles() const;

  // --- failure injection and crash/reboot simulation ---
  // Arms `mode` for the next `count` update attempts, then reverts to kNone.
  void SetFailMode(HostFailMode mode, int count = 1);
  bool crashed() const { return crashed_; }
  // Brings a crashed host back up.  Installed files survive; per the paper,
  // stale temporaries are cleaned when the next update starts, not at boot.
  void Reboot();

  // --- update protocol, server side ---
  // Phase A step 1: authentication.  MR_UPDATE_CONN if down/refusing,
  // MR_BAD_AUTH on a bad authenticator.
  int32_t BeginSession(std::string_view authenticator);
  // Phase A step 2: transfer the data file to `target`.  Stale `.moira_update`
  // temporaries for this target are deleted first (paper section 5.9 B).
  int32_t ReceiveFile(const std::string& target, std::string_view data, uint32_t crc);
  // Phase A step 3: transfer the instruction sequence.
  int32_t ReceiveScript(std::string_view script_text);
  // Phase A step 4: flush to disk (no-op in memory, but honours crash modes).
  int32_t Flush();
  // Phase B + C: execute the instruction sequence; returns the script's exit
  // status as an error code and fills `errmsg`.
  int32_t ExecuteInstructions(std::string* errmsg);

  // --- observability for tests ---
  const std::vector<std::string>& executed_commands() const { return executed_commands_; }
  const std::vector<std::string>& signals_sent() const { return signals_sent_; }
  int update_count() const { return update_count_; }

  // Registers a handler for `exec <command>` instructions (e.g. restarting a
  // hesiod server).  The handler's return value is the command exit status.
  void RegisterCommand(std::string command, std::function<int(SimHost&)> handler);

 private:
  bool ConsumeFailMode(HostFailMode mode);
  int32_t RunInstruction(std::string_view line, std::string* errmsg);

  std::string name_;
  ServiceVerifier verifier_;
  std::map<std::string, std::string, std::less<>> files_;
  std::map<std::string, std::function<int(SimHost&)>, std::less<>> commands_;
  std::vector<std::string> executed_commands_;
  std::vector<std::string> signals_sent_;
  HostFailMode fail_mode_ = HostFailMode::kNone;
  int fail_count_ = 0;
  bool crashed_ = false;
  bool session_open_ = false;
  std::string session_target_;  // target of the current session's data file
  std::string session_script_;
  int update_count_ = 0;
};

// A directory of hosts the DCM can reach, keyed by canonical machine name.
class HostDirectory {
 public:
  void Register(SimHost* host);
  SimHost* Find(std::string_view name) const;
  size_t size() const { return hosts_.size(); }

 private:
  std::map<std::string, SimHost*, std::less<>> hosts_;
};

}  // namespace moira

#endif  // MOIRA_SRC_UPDATE_SIM_HOST_H_
