// The attach client (paper section 5.8.2, FILSYS.DB: "all of the filesystem
// entries needed to find and attach NFS lockers and RVDs by name").
//
// A workstation resolves <label>.filsys through Hesiod and mounts the
// filesystem at its default mount point.  This client parses the generated
// filsys.db records and tracks the workstation's attach table.
#ifndef MOIRA_SRC_CLIENT_ATTACH_H_
#define MOIRA_SRC_CLIENT_ATTACH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/hesiod/resolver.h"

namespace moira {

// One parsed filsys record: "NFS /u1/babette nfs-1.mit.edu w /mit/babette".
struct FilsysEntry {
  std::string type;    // NFS or RVD
  std::string remote;  // server directory (NFS) or pack name (RVD)
  std::string server;  // file server machine
  std::string access;  // r or w
  std::string mount;   // default client mount point
};

// Parses a filsys.db record payload; nullopt on malformed input.
std::optional<FilsysEntry> ParseFilsysEntry(std::string_view record);

class AttachClient {
 public:
  explicit AttachClient(const HesiodResolver* resolver) : resolver_(resolver) {}

  // Resolves and attaches a filesystem by label.  Returns MR_SUCCESS and
  // fills `out` (if non-null); MR_FILESYS if hesiod has no entry or it is
  // garbled; MR_IN_USE if something is already attached at its mount point.
  int32_t Attach(std::string_view label, FilsysEntry* out = nullptr);

  // Detaches by label.  MR_NO_MATCH if not attached.
  int32_t Detach(std::string_view label);

  // The entry attached under `label`, or nullptr.
  const FilsysEntry* Attached(std::string_view label) const;

  size_t attach_count() const { return attached_.size(); }

 private:
  const HesiodResolver* resolver_;
  std::map<std::string, FilsysEntry, std::less<>> attached_;   // by label
  std::map<std::string, std::string, std::less<>> mounts_;     // mountpoint -> label
};

}  // namespace moira

#endif  // MOIRA_SRC_CLIENT_ATTACH_H_
