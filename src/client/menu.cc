#include "src/client/menu.h"

#include <istream>
#include <ostream>

#include "src/common/strutil.h"

namespace moira {

Menu* Menu::AddSubmenu(std::string name, std::string title) {
  submenus_.emplace_back(std::move(name), std::make_unique<Menu>(std::move(title)));
  return submenus_.back().second.get();
}

void Menu::AddCommand(MenuCommand command) { commands_.push_back(std::move(command)); }

void Menu::PrintHelp(std::ostream& out) const {
  out << "--- " << title_ << " ---\n";
  for (const MenuCommand& command : commands_) {
    out << "  " << command.name << " - " << command.description << "\n";
  }
  for (const auto& [name, submenu] : submenus_) {
    out << "  " << name << " -> " << submenu->title() << "\n";
  }
  out << "  ? - this help; q - quit\n";
}

bool Menu::Dispatch(const std::string& line, std::istream& in, std::ostream& out,
                    int* executed) const {
  std::string choice(TrimWhitespace(line));
  if (choice.empty()) {
    return true;
  }
  if (choice == "q" || choice == "quit" || choice == "r" || choice == "return") {
    return false;
  }
  if (choice == "?" || choice == "help") {
    PrintHelp(out);
    return true;
  }
  for (const auto& [name, submenu] : submenus_) {
    if (choice == name) {
      *executed += submenu->Run(in, out);
      return true;
    }
  }
  for (const MenuCommand& command : commands_) {
    if (choice != command.name) {
      continue;
    }
    std::vector<std::string> args;
    for (const std::string& prompt : command.prompts) {
      out << prompt << ": ";
      std::string value;
      if (!std::getline(in, value)) {
        out << "(eof)\n";
        return false;
      }
      args.emplace_back(TrimWhitespace(value));
    }
    out << command.action(args) << "\n";
    ++*executed;
    return true;
  }
  out << "unknown command: " << choice << " (? for help)\n";
  return true;
}

int Menu::Run(std::istream& in, std::ostream& out) const {
  PrintHelp(out);
  int executed = 0;
  std::string line;
  while (true) {
    out << title_ << "> ";
    if (!std::getline(in, line)) {
      break;
    }
    if (!Dispatch(line, in, out, &executed)) {
      break;
    }
  }
  return executed;
}

}  // namespace moira
