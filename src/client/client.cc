#include "src/client/client.h"

#include "src/comerr/moira_errors.h"
#include "src/protocol/wire.h"

namespace moira {

MrClient::MrClient(Connector connector) : connector_(std::move(connector)) {
  RegisterMoiraErrorTable();
}

void MrClient::SetKerberosIdentity(KerberosRealm* realm, std::string principal,
                                   std::string password) {
  realm_ = realm;
  principal_ = std::move(principal);
  password_ = std::move(password);
}

int32_t MrClient::Connect() {
  if (channel_ != nullptr) {
    return MR_ALREADY_CONNECTED;
  }
  channel_ = connector_();
  if (channel_ == nullptr) {
    return MR_ABORTED;
  }
  return MR_SUCCESS;
}

int32_t MrClient::Disconnect() {
  if (channel_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  channel_.reset();
  return MR_SUCCESS;
}

int32_t MrClient::RoundTrip(const MrRequest& request, const TupleSink* sink) {
  if (channel_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  if (int32_t code = channel_->Send(EncodeRequest(request)); code != MR_SUCCESS) {
    channel_.reset();
    return MR_ABORTED;
  }
  // Consume MR_MORE_DATA tuples until the final reply arrives.
  while (true) {
    std::string payload;
    if (int32_t code = channel_->Recv(&payload); code != MR_SUCCESS) {
      channel_.reset();
      return MR_ABORTED;
    }
    std::optional<MrReply> reply = DecodeReply(payload);
    if (!reply.has_value()) {
      channel_.reset();
      return MR_ABORTED;
    }
    if (reply->version != kMrProtocolVersion) {
      channel_.reset();
      return reply->version > kMrProtocolVersion ? MR_VERSION_LOW : MR_VERSION_HIGH;
    }
    if (reply->code == MR_MORE_DATA) {
      if (sink != nullptr) {
        (*sink)(std::move(reply->fields));
      }
      continue;
    }
    return reply->code;
  }
}

int32_t MrClient::Noop() {
  return RoundTrip(MrRequest{kMrProtocolVersion, MajorRequest::kNoop, {}}, nullptr);
}

int32_t MrClient::Auth(std::string_view client_name) {
  if (channel_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  if (realm_ == nullptr) {
    return MR_KRB_NO_TKT;
  }
  Ticket ticket;
  if (int32_t code =
          realm_->GetInitialTickets(principal_, password_, kMoiraServiceName, &ticket);
      code != MR_SUCCESS) {
    return code;
  }
  MrRequest request{kMrProtocolVersion,
                    MajorRequest::kAuthenticate,
                    {realm_->MakeAuthenticator(ticket), std::string(client_name)}};
  return RoundTrip(request, nullptr);
}

int32_t MrClient::Access(std::string_view name, const std::vector<std::string>& args) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kAccess, {}};
  request.args.reserve(args.size() + 1);
  request.args.emplace_back(name);
  request.args.insert(request.args.end(), args.begin(), args.end());
  return RoundTrip(request, nullptr);
}

int32_t MrClient::Query(std::string_view name, const std::vector<std::string>& args,
                        const TupleSink& sink) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kQuery, {}};
  request.args.reserve(args.size() + 1);
  request.args.emplace_back(name);
  request.args.insert(request.args.end(), args.begin(), args.end());
  return RoundTrip(request, &sink);
}

int32_t MrClient::TriggerDcm() {
  return RoundTrip(MrRequest{kMrProtocolVersion, MajorRequest::kTriggerDcm, {}}, nullptr);
}

DirectClient::DirectClient(MoiraContext* mc, std::string client_name)
    : mc_(mc), client_name_(std::move(client_name)) {
  RegisterMoiraErrorTable();
}

int32_t DirectClient::Query(std::string_view name, const std::vector<std::string>& args,
                            const TupleSink& sink) {
  return QueryRegistry::Instance().Execute(*mc_, "root", client_name_, name, args, sink);
}

int32_t DirectClient::Access(std::string_view name, const std::vector<std::string>& args) {
  return QueryRegistry::Instance().CheckAccess(*mc_, "root", name, args);
}

TupleSink WrapCallback(MrCallbackProc callproc, void* callarg) {
  return [callproc, callarg](Tuple tuple) {
    std::vector<const char*> argv;
    argv.reserve(tuple.size());
    for (const std::string& field : tuple) {
      argv.push_back(field.c_str());
    }
    callproc(static_cast<int>(argv.size()), argv.data(), callarg);
  };
}

}  // namespace moira
