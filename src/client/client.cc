#include "src/client/client.h"

#include "src/comerr/moira_errors.h"
#include "src/protocol/wire.h"

namespace moira {

MrClient::MrClient(Connector connector) : connector_(std::move(connector)) {
  RegisterMoiraErrorTable();
}

void MrClient::SetKerberosIdentity(KerberosRealm* realm, std::string principal,
                                   std::string password) {
  realm_ = realm;
  principal_ = std::move(principal);
  password_ = std::move(password);
  has_ticket_ = false;
}

void MrClient::SetRetryPolicy(const RetryPolicy& policy, const Clock* clock) {
  retry_policy_ = policy;
  clock_ = clock;
}

int32_t MrClient::Connect() {
  if (channel_ != nullptr) {
    return MR_ALREADY_CONNECTED;
  }
  channel_ = connector_();
  if (channel_ == nullptr) {
    return MR_ABORTED;
  }
  return MR_SUCCESS;
}

int32_t MrClient::Disconnect() {
  if (channel_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  channel_.reset();
  authed_ = false;
  return MR_SUCCESS;
}

int32_t MrClient::EnsureTicket(Ticket* out) {
  if (realm_ == nullptr) {
    return MR_KRB_NO_TKT;
  }
  const UnixTime now = realm_->clock().Now();
  if (has_ticket_ && now < ticket_.issued + ticket_.lifetime) {
    *out = ticket_;
    return MR_SUCCESS;
  }
  ++ticket_requests_;
  int32_t code =
      realm_->GetInitialTickets(principal_, password_, kMoiraServiceName, &ticket_);
  if (code == MR_KDC_UNAVAILABLE && has_ticket_ &&
      now < ticket_.issued + ticket_.lifetime) {
    // KDC blip: ride it out on the still-valid cached ticket.
    *out = ticket_;
    return MR_SUCCESS;
  }
  has_ticket_ = code == MR_SUCCESS;
  if (code == MR_SUCCESS) {
    *out = ticket_;
  }
  return code;
}

bool MrClient::Reconnect() {
  channel_ = connector_();
  if (channel_ == nullptr) {
    return false;
  }
  if (!authed_) {
    return true;
  }
  // Restore the authenticated identity before the request is replayed.
  Ticket ticket;
  if (EnsureTicket(&ticket) != MR_SUCCESS) {
    return false;
  }
  MrRequest auth{kMrProtocolVersion,
                 MajorRequest::kAuthenticate,
                 {realm_->MakeAuthenticator(ticket), auth_client_name_}};
  return TryRoundTrip(auth, nullptr) == MR_SUCCESS;
}

int32_t MrClient::TryRoundTrip(const MrRequest& request, const TupleSink* sink) {
  if (channel_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  if (int32_t code = channel_->Send(EncodeRequest(request)); code != MR_SUCCESS) {
    channel_.reset();
    return MR_ABORTED;
  }
  // Consume MR_MORE_DATA tuples until the final reply arrives.  Tuples are
  // buffered and only delivered once the exchange completes, so a retried
  // request cannot hand the sink a partial run twice.
  std::vector<Tuple> buffered;
  while (true) {
    std::string payload;
    if (int32_t code = channel_->Recv(&payload); code != MR_SUCCESS) {
      channel_.reset();
      return MR_ABORTED;
    }
    std::optional<MrReply> reply = DecodeReply(payload);
    if (!reply.has_value()) {
      channel_.reset();
      return MR_ABORTED;
    }
    if (reply->version != kMrProtocolVersion) {
      channel_.reset();
      return reply->version > kMrProtocolVersion ? MR_VERSION_LOW : MR_VERSION_HIGH;
    }
    if (reply->code == MR_MORE_DATA) {
      buffered.push_back(std::move(reply->fields));
      continue;
    }
    last_fields_ = std::move(reply->fields);
    if (sink != nullptr) {
      for (Tuple& tuple : buffered) {
        (*sink)(std::move(tuple));
      }
    }
    return reply->code;
  }
}

int32_t MrClient::RoundTrip(const MrRequest& request, const TupleSink* sink) {
  last_rpc_ = {};
  if (clock_ == nullptr) {
    // No retry policy installed: historical single-attempt behaviour.
    ++last_rpc_.attempts;
    return TryRoundTrip(request, sink);
  }
  RetryController retry(retry_policy_, clock_);
  const UnixTime start = clock_->Now();
  int32_t code;
  while (true) {
    ++last_rpc_.attempts;
    code = TryRoundTrip(request, sink);
    // Only transport-layer failures are retried; server verdicts are final.
    if (code != MR_ABORTED && code != MR_NOT_CONNECTED) {
      break;
    }
    UnixTime backoff = retry.RecordFailure();
    if (backoff < 0) {
      break;  // attempt budget or deadline exhausted
    }
    if (sleep_fn_ && backoff > 0) {
      sleep_fn_(backoff);
    }
    if (!Reconnect()) {
      channel_.reset();
    }
  }
  last_rpc_.elapsed = clock_->Now() - start;
  return code;
}

int32_t MrClient::Noop() {
  return RoundTrip(MrRequest{kMrProtocolVersion, MajorRequest::kNoop, {}}, nullptr);
}

int32_t MrClient::Auth(std::string_view client_name) {
  if (channel_ == nullptr) {
    return MR_NOT_CONNECTED;
  }
  Ticket ticket;
  if (int32_t code = EnsureTicket(&ticket); code != MR_SUCCESS) {
    return code;
  }
  MrRequest request{kMrProtocolVersion,
                    MajorRequest::kAuthenticate,
                    {realm_->MakeAuthenticator(ticket), std::string(client_name)}};
  int32_t code = RoundTrip(request, nullptr);
  if (code == MR_SUCCESS) {
    authed_ = true;
    auth_client_name_ = std::string(client_name);
  }
  return code;
}

int32_t MrClient::Access(std::string_view name, const std::vector<std::string>& args) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kAccess, {}};
  request.args.reserve(args.size() + 1);
  request.args.emplace_back(name);
  request.args.insert(request.args.end(), args.begin(), args.end());
  return RoundTrip(request, nullptr);
}

int32_t MrClient::Query(std::string_view name, const std::vector<std::string>& args,
                        const TupleSink& sink) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kQuery, {}};
  request.args.reserve(args.size() + 1);
  request.args.emplace_back(name);
  request.args.insert(request.args.end(), args.begin(), args.end());
  return RoundTrip(request, &sink);
}

int32_t MrClient::QueryAtSeq(uint64_t min_seq, std::string_view name,
                             const std::vector<std::string>& args,
                             const TupleSink& sink) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kQueryAtSeq, {}};
  request.args.reserve(args.size() + 2);
  request.args.push_back(std::to_string(min_seq));
  request.args.emplace_back(name);
  request.args.insert(request.args.end(), args.begin(), args.end());
  return RoundTrip(request, &sink);
}

int32_t MrClient::ReplFetch(std::string_view replica_name, uint64_t from_seq,
                            int max_entries, const TupleSink& sink) {
  MrRequest request{kMrProtocolVersion,
                    MajorRequest::kReplFetch,
                    {std::string(replica_name), std::to_string(from_seq),
                     std::to_string(max_entries)}};
  return RoundTrip(request, &sink);
}

int32_t MrClient::ReplFetch(std::string_view replica_name, uint64_t from_seq,
                            int max_entries, uint64_t epoch, const TupleSink& sink) {
  if (epoch == 0) {
    return ReplFetch(replica_name, from_seq, max_entries, sink);
  }
  MrRequest request{kMrProtocolVersion,
                    MajorRequest::kReplFetch,
                    {std::string(replica_name), std::to_string(from_seq),
                     std::to_string(max_entries), std::to_string(epoch)}};
  return RoundTrip(request, &sink);
}

int32_t MrClient::ReplPush(uint64_t epoch, uint64_t prev_seq, uint64_t prev_epoch,
                           const std::vector<std::string>& lines) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kReplPush, {}};
  request.args.reserve(lines.size() + 3);
  request.args.push_back(std::to_string(epoch));
  request.args.push_back(std::to_string(prev_seq));
  request.args.push_back(std::to_string(prev_epoch));
  request.args.insert(request.args.end(), lines.begin(), lines.end());
  return RoundTrip(request, nullptr);
}

int32_t MrClient::ReplHello() {
  return RoundTrip(MrRequest{kMrProtocolVersion, MajorRequest::kReplHello, {}}, nullptr);
}

int32_t MrClient::ReplVote(uint64_t epoch, uint64_t candidate_applied_seq,
                           uint64_t candidate_tail_epoch,
                           std::string_view candidate_name, bool pre) {
  MrRequest request{kMrProtocolVersion,
                    MajorRequest::kReplVote,
                    {std::to_string(epoch), std::to_string(candidate_applied_seq),
                     std::to_string(candidate_tail_epoch), std::string(candidate_name)}};
  if (pre) {
    request.args.push_back("pre");
  }
  return RoundTrip(request, nullptr);
}

int32_t MrClient::QueryTagged(std::string_view tag, std::string_view name,
                              const std::vector<std::string>& args,
                              const TupleSink& sink) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kQueryTagged, {}};
  request.args.reserve(args.size() + 2);
  request.args.emplace_back(tag);
  request.args.emplace_back(name);
  request.args.insert(request.args.end(), args.begin(), args.end());
  return RoundTrip(request, &sink);
}

int32_t MrClient::ReplSnapshot(std::string_view replica_name, const TupleSink& sink) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kReplSnapshot,
                    {std::string(replica_name)}};
  return RoundTrip(request, &sink);
}

int32_t MrClient::TriggerDcm() {
  return RoundTrip(MrRequest{kMrProtocolVersion, MajorRequest::kTriggerDcm, {}}, nullptr);
}

DirectClient::DirectClient(MoiraContext* mc, std::string client_name)
    : mc_(mc), client_name_(std::move(client_name)) {
  RegisterMoiraErrorTable();
}

int32_t DirectClient::Query(std::string_view name, const std::vector<std::string>& args,
                            const TupleSink& sink) {
  return QueryRegistry::Instance().Execute(*mc_, "root", client_name_, name, args, sink);
}

int32_t DirectClient::Access(std::string_view name, const std::vector<std::string>& args) {
  return QueryRegistry::Instance().CheckAccess(*mc_, "root", name, args);
}

TupleSink WrapCallback(MrCallbackProc callproc, void* callarg) {
  return [callproc, callarg](Tuple tuple) {
    std::vector<const char*> argv;
    argv.reserve(tuple.size());
    for (const std::string& field : tuple) {
      argv.push_back(field.c_str());
    }
    callproc(static_cast<int>(argv.size()), argv.data(), callarg);
  };
}

}  // namespace moira
