// The Moira application library (paper section 5.6).
//
// Applications never touch the database; they call this library, which speaks
// the Moira protocol to the server.  For the DCM and other utilities running
// on the database host there is a "glue" version (DirectClient) presenting
// the exact same interface but calling the query layer directly, without
// Kerberos authentication, for throughput (paper section 5.6 "direct calls to
// Ingres, rather than going through the server").
#ifndef MOIRA_SRC_CLIENT_CLIENT_H_
#define MOIRA_SRC_CLIENT_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/protocol/wire.h"

namespace moira {

// Common query interface shared by the RPC client and the direct glue
// client, so the DCM and applications are transport-agnostic.
class MoiraClientApi {
 public:
  virtual ~MoiraClientApi() = default;

  // Runs a named query; `sink` is called once per returned tuple.
  virtual int32_t Query(std::string_view name, const std::vector<std::string>& args,
                        const TupleSink& sink) = 0;

  // Checks access without executing (mr_access).
  virtual int32_t Access(std::string_view name, const std::vector<std::string>& args) = 0;
};

// RPC client: mr_connect / mr_auth / mr_query / ... of section 5.6.2.
class MrClient final : public MoiraClientApi {
 public:
  // Produces a connected channel; invoked by Connect().  Returning nullptr
  // maps to ECONNREFUSED-style failure.
  using Connector = std::function<std::unique_ptr<ClientChannel>()>;

  explicit MrClient(Connector connector);

  // Supplies the identity used by Auth().  The realm must outlive the client.
  void SetKerberosIdentity(KerberosRealm* realm, std::string principal,
                           std::string password);

  // mr_connect: connects without authenticating (cheap read-only queries may
  // not need authentication).  MR_ALREADY_CONNECTED if connected.
  int32_t Connect();

  // mr_disconnect: MR_NOT_CONNECTED if there was no connection.
  int32_t Disconnect();

  // mr_noop: protocol handshake for testing and performance measurement.
  int32_t Noop();

  // mr_auth: authenticates as the configured identity; `client_name` is the
  // program acting on behalf of the user.
  int32_t Auth(std::string_view client_name);

  // mr_access / mr_query.
  int32_t Access(std::string_view name, const std::vector<std::string>& args) override;
  int32_t Query(std::string_view name, const std::vector<std::string>& args,
                const TupleSink& sink) override;

  // Asks the server to spawn a DCM immediately (Trigger_DCM).
  int32_t TriggerDcm();

  bool connected() const { return channel_ != nullptr; }

 private:
  int32_t RoundTrip(const MrRequest& request, const TupleSink* sink);

  Connector connector_;
  std::unique_ptr<ClientChannel> channel_;
  KerberosRealm* realm_ = nullptr;
  std::string principal_;
  std::string password_;
};

// Glue client: same interface, direct execution, fixed root identity, no
// Kerberos.  Used by the DCM and the backup programs.
class DirectClient final : public MoiraClientApi {
 public:
  explicit DirectClient(MoiraContext* mc, std::string client_name = "direct");

  int32_t Query(std::string_view name, const std::vector<std::string>& args,
                const TupleSink& sink) override;
  int32_t Access(std::string_view name, const std::vector<std::string>& args) override;

 private:
  MoiraContext* mc_;
  std::string client_name_;
};

// Historical C-style callback signature (paper section 5.6.2): callproc is
// called with the tuple size, the tuple fields, and the caller's argument.
using MrCallbackProc = void (*)(int argc, const char** argv, void* callarg);

// Adapts the historical callback to a TupleSink.
TupleSink WrapCallback(MrCallbackProc callproc, void* callarg);

}  // namespace moira

#endif  // MOIRA_SRC_CLIENT_CLIENT_H_
