// The Moira application library (paper section 5.6).
//
// Applications never touch the database; they call this library, which speaks
// the Moira protocol to the server.  For the DCM and other utilities running
// on the database host there is a "glue" version (DirectClient) presenting
// the exact same interface but calling the query layer directly, without
// Kerberos authentication, for throughput (paper section 5.6 "direct calls to
// Ingres, rather than going through the server").
#ifndef MOIRA_SRC_CLIENT_CLIENT_H_
#define MOIRA_SRC_CLIENT_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/retry.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/protocol/wire.h"

namespace moira {

// Common query interface shared by the RPC client and the direct glue
// client, so the DCM and applications are transport-agnostic.
class MoiraClientApi {
 public:
  virtual ~MoiraClientApi() = default;

  // Runs a named query; `sink` is called once per returned tuple.
  virtual int32_t Query(std::string_view name, const std::vector<std::string>& args,
                        const TupleSink& sink) = 0;

  // Checks access without executing (mr_access).
  virtual int32_t Access(std::string_view name, const std::vector<std::string>& args) = 0;
};

// RPC client: mr_connect / mr_auth / mr_query / ... of section 5.6.2.
//
// Resilience (ROADMAP PR-4 residual): with SetRetryPolicy installed, every
// RPC that fails at the transport layer is transparently retried under the
// clock-driven policy — reconnecting through the connector and replaying the
// authentication with the cached Kerberos ticket — and the attempt count and
// elapsed time are surfaced via last_rpc().  Tuples are buffered until the
// final reply arrives so a replayed request never delivers duplicates to the
// sink.  Without a policy the historical single-attempt behaviour is kept.
class MrClient final : public MoiraClientApi {
 public:
  // Produces a connected channel; invoked by Connect().  Returning nullptr
  // maps to ECONNREFUSED-style failure.
  using Connector = std::function<std::unique_ptr<ClientChannel>()>;

  explicit MrClient(Connector connector);

  // Supplies the identity used by Auth().  The realm must outlive the client.
  void SetKerberosIdentity(KerberosRealm* realm, std::string principal,
                           std::string password);

  // Installs the transport retry policy.  `clock` drives backoff and elapsed
  // accounting and must outlive the client; pass the realm's clock.
  void SetRetryPolicy(const RetryPolicy& policy, const Clock* clock);
  // How backoffs wait; tests install a hook advancing their SimulatedClock.
  void set_sleep_fn(std::function<void(UnixTime)> fn) { sleep_fn_ = std::move(fn); }

  // mr_connect: connects without authenticating (cheap read-only queries may
  // not need authentication).  MR_ALREADY_CONNECTED if connected.
  int32_t Connect();

  // mr_disconnect: MR_NOT_CONNECTED if there was no connection.
  int32_t Disconnect();

  // mr_noop: protocol handshake for testing and performance measurement.
  int32_t Noop();

  // mr_auth: authenticates as the configured identity; `client_name` is the
  // program acting on behalf of the user.  The initial ticket is cached for
  // its Kerberos lifetime, so re-authentication after a reconnect works even
  // through a KDC outage (MakeAuthenticator never contacts the KDC).
  int32_t Auth(std::string_view client_name);

  // mr_access / mr_query.
  int32_t Access(std::string_view name, const std::vector<std::string>& args) override;
  int32_t Query(std::string_view name, const std::vector<std::string>& args,
                const TupleSink& sink) override;

  // Read with a read-your-writes token: the serving replica must have applied
  // at least `min_seq` (the primary trivially satisfies any token it issued).
  int32_t QueryAtSeq(uint64_t min_seq, std::string_view name,
                     const std::vector<std::string>& args, const TupleSink& sink);

  // Replication stream RPCs (replica side; privileged on the server).  Each
  // ReplFetch tuple is one journal line; each ReplSnapshot tuple is
  // [table, row_line].  The final reply fields land in last_fields().
  int32_t ReplFetch(std::string_view replica_name, uint64_t from_seq, int max_entries,
                    const TupleSink& sink);
  // As above, carrying the replica's epoch floor so a deposed primary is
  // fenced on contact (MR_REPL_EPOCH); epoch 0 omits the floor.
  int32_t ReplFetch(std::string_view replica_name, uint64_t from_seq, int max_entries,
                    uint64_t epoch, const TupleSink& sink);
  int32_t ReplSnapshot(std::string_view replica_name, const TupleSink& sink);

  // Quorum replication + failover RPCs (DESIGN.md "Replication layer").
  // ReplPush ships epoch-stamped journal lines primary -> replica; the final
  // reply (last_fields()) is [applied_seq, replica_epoch].  ReplHello is the
  // unauthenticated liveness/role probe, final reply
  // [applied_seq, epoch, writable].  ReplVote solicits an election vote,
  // final reply [granted, voter_epoch_floor]; with `pre` set the voter
  // answers whether it WOULD grant without binding itself (Raft pre-vote),
  // so a candidate that cannot win never poisons its own epoch floor.
  // QueryTagged runs a mutation under an idempotency tag: replaying the tag
  // acks the original seq.
  int32_t ReplPush(uint64_t epoch, uint64_t prev_seq, uint64_t prev_epoch,
                   const std::vector<std::string>& lines);
  int32_t ReplHello();
  int32_t ReplVote(uint64_t epoch, uint64_t candidate_applied_seq,
                   uint64_t candidate_tail_epoch, std::string_view candidate_name,
                   bool pre = false);
  int32_t QueryTagged(std::string_view tag, std::string_view name,
                      const std::vector<std::string>& args, const TupleSink& sink);

  // Asks the server to spawn a DCM immediately (Trigger_DCM).
  int32_t TriggerDcm();

  bool connected() const { return channel_ != nullptr; }

  // Observability for the retry satellite and the replication router.
  struct RpcStats {
    int attempts = 0;      // transport attempts of the last RPC (>= 1)
    UnixTime elapsed = 0;  // clock seconds the last RPC took (0 without clock)
  };
  const RpcStats& last_rpc() const { return last_rpc_; }
  // Fields of the last final (non-MORE_DATA) reply; a successful mutation
  // carries [assigned_journal_seq].
  const std::vector<std::string>& last_fields() const { return last_fields_; }
  // KDC round trips made (ticket-cache observability).
  int ticket_requests() const { return ticket_requests_; }
  void InvalidateTicket() { has_ticket_ = false; }

 private:
  int32_t RoundTrip(const MrRequest& request, const TupleSink* sink);
  int32_t TryRoundTrip(const MrRequest& request, const TupleSink* sink);
  int32_t EnsureTicket(Ticket* out);
  // Re-establishes channel and, if this client had authenticated,
  // re-authenticates with the cached/refreshed ticket.
  bool Reconnect();

  Connector connector_;
  std::unique_ptr<ClientChannel> channel_;
  KerberosRealm* realm_ = nullptr;
  std::string principal_;
  std::string password_;
  RetryPolicy retry_policy_;
  const Clock* clock_ = nullptr;  // non-null once a retry policy is installed
  std::function<void(UnixTime)> sleep_fn_;
  Ticket ticket_;
  bool has_ticket_ = false;
  int ticket_requests_ = 0;
  bool authed_ = false;
  std::string auth_client_name_;
  RpcStats last_rpc_;
  std::vector<std::string> last_fields_;
};

// Glue client: same interface, direct execution, fixed root identity, no
// Kerberos.  Used by the DCM and the backup programs.
class DirectClient final : public MoiraClientApi {
 public:
  explicit DirectClient(MoiraContext* mc, std::string client_name = "direct");

  int32_t Query(std::string_view name, const std::vector<std::string>& args,
                const TupleSink& sink) override;
  int32_t Access(std::string_view name, const std::vector<std::string>& args) override;

 private:
  MoiraContext* mc_;
  std::string client_name_;
};

// Historical C-style callback signature (paper section 5.6.2): callproc is
// called with the tuple size, the tuple fields, and the caller's argument.
using MrCallbackProc = void (*)(int argc, const char** argv, void* callarg);

// Adapts the historical callback to a TupleSink.
TupleSink WrapCallback(MrCallbackProc callproc, void* callarg);

}  // namespace moira

#endif  // MOIRA_SRC_CLIENT_CLIENT_H_
