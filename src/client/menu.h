// The menu package used by some of the Moira clients (paper section 5.6.3).
//
// The historical library drove the full-screen "moira" administrative client:
// nested menus of commands, each prompting for arguments and invoking a
// query.  This version is I/O-agnostic (reads choices and arguments from any
// istream, writes to any ostream) so clients are scriptable and testable.
#ifndef MOIRA_SRC_CLIENT_MENU_H_
#define MOIRA_SRC_CLIENT_MENU_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace moira {

class Menu;

// A leaf command: prompts for each named argument, then runs the action with
// the collected values.  The action's return text is printed.
struct MenuCommand {
  std::string name;                       // what the user types
  std::string description;
  std::vector<std::string> prompts;       // one prompt per argument
  std::function<std::string(const std::vector<std::string>&)> action;
};

// A menu node: commands plus sub-menus.  "?"/"help" lists entries, "q"/"quit"
// leaves the (sub)menu, "r"/"return" is a synonym historically used.
class Menu {
 public:
  explicit Menu(std::string title) : title_(std::move(title)) {}

  Menu* AddSubmenu(std::string name, std::string title);
  void AddCommand(MenuCommand command);

  const std::string& title() const { return title_; }

  // Runs the interaction loop until quit or EOF.  Returns the number of
  // commands executed (including in sub-menus).
  int Run(std::istream& in, std::ostream& out) const;

 private:
  void PrintHelp(std::ostream& out) const;
  // Executes one line of input; returns false when the loop should exit.
  bool Dispatch(const std::string& line, std::istream& in, std::ostream& out,
                int* executed) const;

  std::string title_;
  std::vector<MenuCommand> commands_;
  std::vector<std::pair<std::string, std::unique_ptr<Menu>>> submenus_;
};

}  // namespace moira

#endif  // MOIRA_SRC_CLIENT_MENU_H_
