#include "src/client/attach.h"

#include "src/comerr/moira_errors.h"
#include "src/common/strutil.h"

namespace moira {

std::optional<FilsysEntry> ParseFilsysEntry(std::string_view record) {
  std::vector<std::string> fields = Split(std::string(TrimWhitespace(record)), ' ');
  if (fields.size() != 5 || (fields[0] != "NFS" && fields[0] != "RVD")) {
    return std::nullopt;
  }
  return FilsysEntry{fields[0], fields[1], fields[2], fields[3], fields[4]};
}

int32_t AttachClient::Attach(std::string_view label, FilsysEntry* out) {
  if (attached_.contains(label)) {
    return MR_IN_USE;
  }
  std::vector<std::string> answers;
  HesiodRcode rcode = resolver_->Resolve(label, "filsys", &answers);
  if (rcode != HesiodRcode::kNoError || answers.empty()) {
    return MR_FILESYS;
  }
  std::optional<FilsysEntry> entry = ParseFilsysEntry(answers[0]);
  if (!entry.has_value()) {
    return MR_FILESYS;
  }
  auto [it, inserted] = mounts_.emplace(entry->mount, std::string(label));
  if (!inserted) {
    return MR_IN_USE;  // another locker already mounted there
  }
  if (out != nullptr) {
    *out = *entry;
  }
  attached_.emplace(std::string(label), std::move(*entry));
  return MR_SUCCESS;
}

int32_t AttachClient::Detach(std::string_view label) {
  auto it = attached_.find(label);
  if (it == attached_.end()) {
    return MR_NO_MATCH;
  }
  mounts_.erase(it->second.mount);
  attached_.erase(it);
  return MR_SUCCESS;
}

const FilsysEntry* AttachClient::Attached(std::string_view label) const {
  auto it = attached_.find(label);
  return it != attached_.end() ? &it->second : nullptr;
}

}  // namespace moira
