// Reusable clock-driven retry policy (resilience layer, DESIGN.md).
//
// A RetryPolicy bounds how stubbornly a caller re-attempts a failing
// operation: a per-pass attempt budget, exponential backoff between attempts
// with deterministic seeded jitter (so fleets of retriers decorrelate without
// losing reproducibility), and an overall wall-clock deadline.  Everything is
// computed against the injectable Clock, so tests and benches replay hours of
// backoff in milliseconds on a SimulatedClock.
#ifndef MOIRA_SRC_COMMON_RETRY_H_
#define MOIRA_SRC_COMMON_RETRY_H_

#include "src/common/clock.h"
#include "src/common/random.h"

namespace moira {

struct RetryPolicy {
  // Total attempts allowed, first try included.  1 = no retries.
  int max_attempts = 1;
  // Backoff before the second attempt, in seconds; doubles (times
  // `multiplier`) per failure, capped at `max_backoff`.
  UnixTime initial_backoff = 1;
  int multiplier = 2;
  UnixTime max_backoff = 10 * kSecondsPerMinute;
  // Overall budget in seconds from the first attempt; 0 = unbounded.  A new
  // attempt (or a backoff that would overrun it) is refused once exceeded.
  UnixTime deadline = 0;
  // Backoff is scaled by a factor drawn uniformly from
  // [1 - jitter_permille/1000, 1 + jitter_permille/1000]; 0 = no jitter.
  uint32_t jitter_permille = 0;
  // Seed for the jitter stream; the same seed replays the same schedule.
  uint64_t seed = 0;
};

// Tracks one operation's attempts against a policy.  Typical loop:
//
//   RetryController retry(policy, clock);
//   while (true) {
//     if (TryOnce()) break;
//     UnixTime backoff = retry.RecordFailure();
//     if (backoff < 0) break;      // budget exhausted
//     Sleep(backoff);              // tests: clock->Advance(backoff)
//   }
class RetryController {
 public:
  RetryController(const RetryPolicy& policy, const Clock* clock);

  // Records a failed attempt.  Returns the backoff (seconds, possibly 0) to
  // wait before the next attempt, or -1 when the attempt budget or the
  // overall deadline is exhausted.
  UnixTime RecordFailure();

  // True while the deadline (if any) has not passed.
  bool WithinDeadline() const;

  int attempts() const { return attempts_; }
  UnixTime elapsed() const { return clock_->Now() - start_; }

 private:
  RetryPolicy policy_;
  const Clock* clock_;
  SplitMix64 jitter_;
  UnixTime start_;
  UnixTime next_backoff_;
  int attempts_ = 0;
};

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_RETRY_H_
