// Bounded worker pool for the parallel query executor.
//
// A fixed set of threads consuming a bounded FIFO of tasks.  Producers block
// when the queue is full (back-pressure, not unbounded growth), Shutdown
// drains the queue and joins every thread, and exceptions thrown by tasks are
// captured and re-thrown to the caller at the next join point (ParallelFor
// rethrows the first failure after the whole batch has finished, so no task
// is left running against destroyed stack state).
//
// The database layer uses a pool for fan-out shard scans and batched join
// probes (src/db), and MoiraServer uses one to execute read-only queries
// concurrently (src/server) — see DESIGN.md "Sharding & concurrency model"
// for the locking contract that makes those reads safe.
#ifndef MOIRA_SRC_COMMON_WORKER_POOL_H_
#define MOIRA_SRC_COMMON_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace moira {

class WorkerPool {
 public:
  // `threads` worker threads; 0 is allowed and makes every operation run
  // inline on the caller (a degenerate pool for single-core builds and
  // tests).  `queue_capacity` bounds the pending-task FIFO; Submit blocks
  // when it is full.
  explicit WorkerPool(size_t threads, size_t queue_capacity = 256);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  // Enqueues one task.  Blocks while the queue is at capacity; returns false
  // (dropping the task) only after Shutdown.  A task that throws has its
  // exception captured; the next Drain/Shutdown call rethrows the first one.
  bool Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished, then rethrows the
  // first captured task exception, if any.
  void Drain();

  // Runs body(0..n-1), spreading indices over the workers with the caller
  // participating, and returns when all n calls have finished.  The first
  // exception any call throws is rethrown here (after the barrier).  Indices
  // are claimed dynamically, so uneven per-index cost still balances.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  // Stops accepting work, finishes what is queued, joins all threads, and
  // rethrows the first captured Submit-task exception.  Idempotent; the
  // destructor calls it (swallowing the rethrow).
  void Shutdown();

  // --- introspection (tests and TBLSTATS-style reporting) ---
  struct PoolStats {
    int64_t tasks_run = 0;        // tasks executed to completion (or throw)
    int64_t submit_blocks = 0;    // Submit calls that had to wait on a full queue
    int64_t parallel_fors = 0;    // ParallelFor batches executed
  };
  PoolStats stats() const;

 private:
  void WorkerLoop();
  void RecordException();

  const size_t queue_capacity_;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;   // workers wait here for tasks
  std::condition_variable queue_space_;  // producers wait here when full
  std::condition_variable idle_;         // Drain waits here
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;  // tasks currently executing
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  PoolStats stats_;
};

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_WORKER_POOL_H_
