// Time source abstraction.
//
// Every Moira timestamp (modtime, dfgen, dfcheck, ltt, lts — paper section 6)
// is a unix-format time: seconds since January 1, 1970 GMT.  The DCM's entire
// behaviour is driven by comparing such timestamps against service update
// intervals, so tests and benches inject a simulated clock and replay days of
// operation in milliseconds.
#ifndef MOIRA_SRC_COMMON_CLOCK_H_
#define MOIRA_SRC_COMMON_CLOCK_H_

#include <cstdint>

namespace moira {

// Unix-format time, seconds since the epoch.
using UnixTime = int64_t;

inline constexpr UnixTime kSecondsPerMinute = 60;
inline constexpr UnixTime kSecondsPerHour = 3600;
inline constexpr UnixTime kSecondsPerDay = 86400;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual UnixTime Now() const = 0;
};

// Wall-clock time.
class SystemClock final : public Clock {
 public:
  UnixTime Now() const override;
};

// Manually-advanced time for tests and benches.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(UnixTime start = 0) : now_(start) {}
  UnixTime Now() const override { return now_; }
  void Advance(UnixTime seconds) { now_ += seconds; }
  void Set(UnixTime t) { now_ = t; }

 private:
  UnixTime now_;
};

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_CLOCK_H_
