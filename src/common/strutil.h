// String utility routines provided by the Moira library (paper section
// 5.6.3): whitespace trimming, case folding, and the Ingres-style wildcard
// matching used by the retrieval queries of section 7.
#ifndef MOIRA_SRC_COMMON_STRUTIL_H_
#define MOIRA_SRC_COMMON_STRUTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace moira {

// Removes leading and trailing whitespace.
std::string_view TrimWhitespace(std::string_view s);

// Case folding (ASCII).
std::string ToUpperCopy(std::string_view s);
std::string ToLowerCopy(std::string_view s);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Matches `value` against `pattern` where '*' matches any run of characters
// and '?' matches any single character.  Optionally case-insensitive.
bool WildcardMatch(std::string_view pattern, std::string_view value,
                   bool case_insensitive = false);

// True if the pattern contains a wildcard metacharacter.
bool HasWildcard(std::string_view pattern);

// Parses a base-10 integer; returns nullopt on any non-numeric content.
std::optional<int64_t> ParseInt(std::string_view s);

// True if every character of `s` is in the legal set for Moira name fields:
// printable ASCII excluding the characters that break the colon-separated
// server file formats (':', '*', '?', '"', and whitespace other than space).
bool IsLegalNameChars(std::string_view s);

// Canonicalizes a hostname: uppercases and strips a trailing dot (paper
// section 5.6.3, "canonicalize hostname"; all machine names are stored in
// uppercase per section 7.0.2).
std::string CanonicalizeHostname(std::string_view name);

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_STRUTIL_H_
