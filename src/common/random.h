// Deterministic pseudo-random source for the synthetic population generator
// and failure injection.  SplitMix64: tiny, fast, and reproducible across
// platforms (unlike std::default_random_engine distributions).
#ifndef MOIRA_SRC_COMMON_RANDOM_H_
#define MOIRA_SRC_COMMON_RANDOM_H_

#include <cstdint>

namespace moira {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Bernoulli with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_RANDOM_H_
