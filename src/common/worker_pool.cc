#include "src/common/worker_pool.h"

#include <algorithm>

namespace moira {

WorkerPool::WorkerPool(size_t threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(queue_capacity, 1)) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  try {
    Shutdown();
  } catch (...) {
    // A captured task exception nobody drained; destruction is not the place
    // to rethrow it.
  }
}

void WorkerPool::RecordException() {
  // Caller holds mu_.
  if (!first_error_) {
    first_error_ = std::current_exception();
  }
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with nothing left to do
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      queue_space_.notify_one();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      RecordException();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.tasks_run;
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

bool WorkerPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    // Degenerate pool: run inline, capturing the exception like a worker
    // would so Drain/Shutdown report it the same way.
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      RecordException();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.tasks_run;
    return true;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.size() >= queue_capacity_) {
    ++stats_.submit_blocks;
    queue_space_.wait(lock,
                      [this] { return shutdown_ || queue_.size() < queue_capacity_; });
  }
  if (shutdown_) {
    return false;
  }
  queue_.push_back(std::move(task));
  task_ready_.notify_one();
  return true;
}

void WorkerPool::Drain() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.parallel_fors;
  }
  if (n == 0) {
    return;
  }
  // Inline when there is nothing to spread over, or only one index.
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  // Dynamic index claiming: each participant (workers + the caller) pulls the
  // next index until none remain, so skewed per-index cost still balances.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto remaining = std::make_shared<std::atomic<size_t>>(n);
  auto error = std::make_shared<std::atomic<bool>>(false);
  auto error_ptr = std::make_shared<std::exception_ptr>();
  auto error_mu = std::make_shared<std::mutex>();
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;

  auto run_indices = [=]() {
    while (true) {
      size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return size_t{0};
      }
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mu);
        if (!error->exchange(true)) {
          *error_ptr = std::current_exception();
        }
      }
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        return size_t{1};  // this call retired the last index
      }
    }
  };

  // One helper task per worker (not per index): the queue stays small and
  // the dynamic claim above does the load balancing.  Helpers are best-effort
  // — the caller runs indices too and always finishes the batch alone if the
  // queue is full, so a nested ParallelFor can never deadlock waiting for
  // queue space.
  const size_t helpers = std::min(threads_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_ || queue_.size() >= queue_capacity_) {
        break;
      }
      queue_.push_back([run_indices, &done_mu, &done_cv, &done] {
        if (run_indices() == 1) {
          std::lock_guard<std::mutex> inner(done_mu);
          done = true;
          done_cv.notify_all();
        }
      });
    }
    task_ready_.notify_one();
  }
  if (run_indices() == 1) {
    std::lock_guard<std::mutex> lock(done_mu);
    done = true;
    done_cv.notify_all();
  }
  {
    // Wait for the retirement of the last index, not for queue idleness:
    // other producers may be feeding the pool concurrently.
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done; });
  }
  if (error->load()) {
    std::lock_guard<std::mutex> lock(*error_mu);
    std::rethrow_exception(*error_ptr);
  }
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    task_ready_.notify_all();
    queue_space_.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

WorkerPool::PoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace moira
