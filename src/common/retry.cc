#include "src/common/retry.h"

namespace moira {

RetryController::RetryController(const RetryPolicy& policy, const Clock* clock)
    : policy_(policy),
      clock_(clock),
      jitter_(policy.seed),
      start_(clock->Now()),
      next_backoff_(policy.initial_backoff) {}

bool RetryController::WithinDeadline() const {
  return policy_.deadline <= 0 || clock_->Now() - start_ < policy_.deadline;
}

UnixTime RetryController::RecordFailure() {
  ++attempts_;
  if (attempts_ >= policy_.max_attempts) {
    return -1;
  }
  UnixTime backoff = next_backoff_;
  if (backoff < 0) {
    backoff = 0;
  }
  if (policy_.jitter_permille > 0 && backoff > 0) {
    // Deterministic scale in [1000 - j, 1000 + j] permille.
    uint64_t span = 2 * policy_.jitter_permille + 1;
    int64_t scale =
        1000 - policy_.jitter_permille + static_cast<int64_t>(jitter_.Below(span));
    backoff = backoff * scale / 1000;
  }
  next_backoff_ = next_backoff_ * policy_.multiplier;
  if (next_backoff_ > policy_.max_backoff) {
    next_backoff_ = policy_.max_backoff;
  }
  if (policy_.deadline > 0 && clock_->Now() - start_ + backoff >= policy_.deadline) {
    return -1;  // the wait itself would overrun the overall deadline
  }
  return backoff;
}

}  // namespace moira
