// Simple queue abstraction from the Moira library (paper section 5.6.3).
//
// A bounded-growth FIFO built on a ring buffer; used by the network layer for
// per-connection outbound reply queues and by the DCM host scan.
#ifndef MOIRA_SRC_COMMON_QUEUE_H_
#define MOIRA_SRC_COMMON_QUEUE_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace moira {

template <typename T>
class MrQueue {
 public:
  MrQueue() : slots_(8) {}

  void Push(T value) {
    if (size_ == slots_.size()) {
      Grow();
    }
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
  }

  // Removes and returns the front element; nullopt if empty.
  std::optional<T> Pop() {
    if (size_ == 0) {
      return std::nullopt;
    }
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return out;
  }

  T* Front() { return size_ != 0 ? &slots_[head_] : nullptr; }
  const T* Front() const { return size_ != 0 ? &slots_[head_] : nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void Grow() {
    std::vector<T> bigger(slots_.size() * 2);
    for (size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) % slots_.size()]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_QUEUE_H_
