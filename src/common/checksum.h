// CRC-32 checksum used by the Moira-to-server update protocol (paper section
// 5.9: "The file transfer includes a checksum to insure data integrity").
#ifndef MOIRA_SRC_COMMON_CHECKSUM_H_
#define MOIRA_SRC_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string_view>

namespace moira {

// Standard CRC-32 (IEEE 802.3 polynomial, reflected).
uint32_t Crc32(std::string_view data);

// Incremental form: feed `data` into a running crc (start with 0).
uint32_t Crc32Update(uint32_t crc, std::string_view data);

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_CHECKSUM_H_
