#include "src/common/checksum.h"

#include <array>

namespace moira {
namespace {

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  uint32_t c = crc ^ 0xffffffffu;
  for (char ch : data) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace moira
