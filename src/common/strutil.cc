#include "src/common/strutil.h"

#include <cctype>

namespace moira {
namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

char FoldLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToUpperCopy(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToLowerCopy(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = FoldLower(c);
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (FoldLower(a[i]) != FoldLower(b[i])) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool WildcardMatch(std::string_view pattern, std::string_view value, bool case_insensitive) {
  // Iterative glob match with single-star backtracking.
  size_t p = 0;
  size_t v = 0;
  size_t star = std::string_view::npos;
  size_t star_v = 0;
  auto eq = [&](char a, char b) {
    return case_insensitive ? FoldLower(a) == FoldLower(b) : a == b;
  };
  while (v < value.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || eq(pattern[p], value[v]))) {
      ++p;
      ++v;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_v = v;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

bool HasWildcard(std::string_view pattern) {
  return pattern.find_first_of("*?") != std::string_view::npos;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) {
    return std::nullopt;
  }
  size_t i = 0;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    i = 1;
    if (i == s.size()) {
      return std::nullopt;
    }
  }
  int64_t out = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return std::nullopt;
    }
    out = out * 10 + (s[i] - '0');
  }
  return negative ? -out : out;
}

bool IsLegalNameChars(std::string_view s) {
  for (char c : s) {
    auto uc = static_cast<unsigned char>(c);
    if (uc < 0x20 || uc >= 0x7f) {
      return false;
    }
    if (c == ':' || c == '*' || c == '?' || c == '"') {
      return false;
    }
  }
  return true;
}

std::string CanonicalizeHostname(std::string_view name) {
  std::string_view trimmed = TrimWhitespace(name);
  if (!trimmed.empty() && trimmed.back() == '.') {
    trimmed.remove_suffix(1);
  }
  return ToUpperCopy(trimmed);
}

}  // namespace moira
