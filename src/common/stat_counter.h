// A relaxed atomic counter that behaves like a plain int64_t field.
//
// The executor's access-path statistics are bumped on const read paths that
// may run concurrently (parallel shard scans, the server's read worker pool),
// so the counters must be atomic; everything that *reads* them — TBLSTATS
// materialization, benches, tests — wants plain integer semantics.  This
// wrapper gives both: relaxed fetch_add on writes, implicit load on reads,
// and a copying constructor so aggregate stats structs stay copyable.
// Counters are monotonic tallies, so relaxed ordering is sufficient — no
// reader derives control flow from cross-counter ordering.
#ifndef MOIRA_SRC_COMMON_STAT_COUNTER_H_
#define MOIRA_SRC_COMMON_STAT_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace moira {

class StatCounter {
 public:
  StatCounter(int64_t v = 0) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  StatCounter(const StatCounter& other) noexcept : v_(other.load()) {}
  StatCounter& operator=(const StatCounter& other) noexcept {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator int64_t() const noexcept { return load(); }  // NOLINT
  int64_t load() const noexcept { return v_.load(std::memory_order_relaxed); }

  StatCounter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator+=(int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<int64_t> v_;
};

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_STAT_COUNTER_H_
