// Hash table abstraction from the Moira library (paper section 5.6.3).
//
// The historical library provided a string-keyed chained hash table used by
// the server's access cache and the DCM.  This is the same structure with a
// typed C++ interface: separate chaining, power-of-two bucket count, grows at
// load factor 1.
#ifndef MOIRA_SRC_COMMON_HASH_TABLE_H_
#define MOIRA_SRC_COMMON_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace moira {

template <typename V>
class MrHashTable {
 public:
  explicit MrHashTable(size_t initial_buckets = 16) : buckets_(RoundUp(initial_buckets)) {}

  // Stores value under key, replacing any previous binding.
  void Store(std::string_view key, V value) {
    Node* node = FindNode(key);
    if (node != nullptr) {
      node->value = std::move(value);
      return;
    }
    if (size_ >= buckets_.size()) {
      Grow();
    }
    size_t b = Hash(key) & (buckets_.size() - 1);
    auto fresh = std::make_unique<Node>();
    fresh->key = std::string(key);
    fresh->value = std::move(value);
    fresh->next = std::move(buckets_[b]);
    buckets_[b] = std::move(fresh);
    ++size_;
  }

  // Returns a pointer to the stored value, or nullptr.
  V* Fetch(std::string_view key) {
    Node* node = FindNode(key);
    return node != nullptr ? &node->value : nullptr;
  }
  const V* Fetch(std::string_view key) const {
    return const_cast<MrHashTable*>(this)->Fetch(key);
  }

  // Removes the binding; returns true if one existed.
  bool Remove(std::string_view key) {
    size_t b = Hash(key) & (buckets_.size() - 1);
    std::unique_ptr<Node>* link = &buckets_[b];
    while (*link != nullptr) {
      if ((*link)->key == key) {
        *link = std::move((*link)->next);
        --size_;
        return true;
      }
      link = &(*link)->next;
    }
    return false;
  }

  // Visits every (key, value) pair.
  void ForEach(const std::function<void(const std::string&, V&)>& fn) {
    for (auto& head : buckets_) {
      for (Node* node = head.get(); node != nullptr; node = node->next.get()) {
        fn(node->key, node->value);
      }
    }
  }

  void Clear() {
    for (auto& head : buckets_) {
      head.reset();
    }
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::string key;
    V value;
    std::unique_ptr<Node> next;
  };

  static size_t RoundUp(size_t n) {
    size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  static uint64_t Hash(std::string_view key) {
    // FNV-1a.
    uint64_t h = 1469598103934665603ull;
    for (char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  Node* FindNode(std::string_view key) {
    size_t b = Hash(key) & (buckets_.size() - 1);
    for (Node* node = buckets_[b].get(); node != nullptr; node = node->next.get()) {
      if (node->key == key) {
        return node;
      }
    }
    return nullptr;
  }

  void Grow() {
    std::vector<std::unique_ptr<Node>> old = std::move(buckets_);
    buckets_.clear();
    buckets_.resize(old.size() * 2);
    for (auto& head : old) {
      while (head != nullptr) {
        std::unique_ptr<Node> node = std::move(head);
        head = std::move(node->next);
        size_t b = Hash(node->key) & (buckets_.size() - 1);
        node->next = std::move(buckets_[b]);
        buckets_[b] = std::move(node);
      }
    }
  }

  std::vector<std::unique_ptr<Node>> buckets_;
  size_t size_ = 0;
};

}  // namespace moira

#endif  // MOIRA_SRC_COMMON_HASH_TABLE_H_
