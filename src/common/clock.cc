#include "src/common/clock.h"

#include <ctime>

namespace moira {

UnixTime SystemClock::Now() const { return static_cast<UnixTime>(std::time(nullptr)); }

}  // namespace moira
