// NFS fileserver substrate (paper section 5.8.2).
//
// Consumes the three Moira-generated files on a server host — credentials,
// <partition>.quotas, and <partition>.dirs — and performs what the paper's
// shell script does: "mkdir <username>, chown, chgrp, chmod - using
// directories file; setquota <quota> - using quotas file".  Lockers of type
// HOMEDIR are loaded with the default init files.  Creation is idempotent:
// an existing locker is never re-created, so user files survive updates.
//
// The quota engine (DESIGN.md "Quota engine") closes the loop in the other
// direction: the server tracks per-uid simulated disk usage (grown by the
// seeded churn driver), and DrainUsageReports ships the accumulated deltas
// back to Moira as sequenced per-partition report lines.
#ifndef MOIRA_SRC_NFSD_NFS_SERVER_H_
#define MOIRA_SRC_NFSD_NFS_SERVER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/update/sim_host.h"

namespace moira {

struct NfsLocker {
  std::string path;
  int64_t uid = 0;
  int64_t gid = 0;
  std::string type;  // HOMEDIR, PROJECT, ...
};

struct NfsCredential {
  int64_t uid = 0;
  std::vector<int64_t> gids;
};

// One usage delta bound for Moira's report_quota_usage query.  seq is the
// server's monotone report sequence: the ingest side drops anything at or
// below the last applied sequence, so at-least-once delivery stays
// exactly-once in the accounting.
struct UsageReportLine {
  std::string partition;  // partition stem, as in the .quotas file name
  int64_t uid = 0;
  int64_t delta = 0;  // units since the last drained report
  int64_t seq = 0;
};

class NfsServerSim {
 public:
  // The server owns no files itself; it reads and writes through the host's
  // simulated filesystem.
  explicit NfsServerSim(SimHost* host) : host_(host) {}

  // The update_lockers script: parses every credentials/*.quotas/*.dirs file
  // under `dir` and applies it.  Returns 0 on success, 1 on a parse error —
  // the exit status the DCM's exec instruction reports.
  int ApplyMoiraFiles(const std::string& dir);

  // --- resulting state ---
  const NfsLocker* FindLocker(std::string_view path) const;
  size_t locker_count() const { return lockers_.size(); }
  int lockers_created() const { return lockers_created_; }

  // Quota in units for a uid; nullopt if the uid has no quota assigned
  // (distinct from an explicit 0-unit quota).
  std::optional<int64_t> QuotaFor(int64_t uid) const;

  // Credentials lookups, as the server would consult for NFS access mapping.
  bool HasCredential(std::string_view login) const;
  const NfsCredential* CredentialFor(std::string_view login) const;

  // --- simulated usage accounting ---
  // Grows/shrinks every quota-holding uid's usage deterministically from
  // `seed` (biased toward growth, clamped at zero).
  void ChurnUsage(uint64_t seed);
  // Sets a uid's usage directly (tests and targeted scenarios).
  void SetUsage(int64_t uid, int64_t units) { usage_[uid] = units < 0 ? 0 : units; }
  int64_t UsageFor(int64_t uid) const;
  const std::map<int64_t, int64_t>& usage() const { return usage_; }
  // Returns one sequenced report line per uid whose usage moved since the
  // last drain, and marks those amounts reported.  Lines are ordered by uid;
  // sequences are monotone across the server's lifetime.
  std::vector<UsageReportLine> DrainUsageReports();
  int64_t report_seq() const { return report_seq_; }

 private:
  int ApplyCredentials(const std::string& contents);
  int ApplyQuotas(const std::string& partition, const std::string& contents);
  int ApplyDirs(const std::string& contents);

  SimHost* host_;
  std::map<std::string, NfsLocker, std::less<>> lockers_;
  std::map<int64_t, int64_t> quotas_;              // uid -> units
  std::map<int64_t, std::string> partition_of_;    // uid -> partition stem
  std::map<int64_t, int64_t> usage_;               // uid -> live units
  std::map<int64_t, int64_t> reported_;            // uid -> last drained units
  int64_t report_seq_ = 0;
  std::map<std::string, NfsCredential, std::less<>> credentials_;
  int lockers_created_ = 0;
};

// Registers the "update_lockers" exec command on `host`, backed by `server`
// (which must outlive the host's command registry).
void InstallNfsUpdateCommand(SimHost* host, NfsServerSim* server,
                             const std::string& moira_dir = "/site/moira");

}  // namespace moira

#endif  // MOIRA_SRC_NFSD_NFS_SERVER_H_
