// NFS fileserver substrate (paper section 5.8.2).
//
// Consumes the three Moira-generated files on a server host — credentials,
// <partition>.quotas, and <partition>.dirs — and performs what the paper's
// shell script does: "mkdir <username>, chown, chgrp, chmod - using
// directories file; setquota <quota> - using quotas file".  Lockers of type
// HOMEDIR are loaded with the default init files.  Creation is idempotent:
// an existing locker is never re-created, so user files survive updates.
#ifndef MOIRA_SRC_NFSD_NFS_SERVER_H_
#define MOIRA_SRC_NFSD_NFS_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/update/sim_host.h"

namespace moira {

struct NfsLocker {
  std::string path;
  int64_t uid = 0;
  int64_t gid = 0;
  std::string type;  // HOMEDIR, PROJECT, ...
};

struct NfsCredential {
  int64_t uid = 0;
  std::vector<int64_t> gids;
};

class NfsServerSim {
 public:
  // The server owns no files itself; it reads and writes through the host's
  // simulated filesystem.
  explicit NfsServerSim(SimHost* host) : host_(host) {}

  // The update_lockers script: parses every credentials/*.quotas/*.dirs file
  // under `dir` and applies it.  Returns 0 on success, 1 on a parse error —
  // the exit status the DCM's exec instruction reports.
  int ApplyMoiraFiles(const std::string& dir);

  // --- resulting state ---
  const NfsLocker* FindLocker(std::string_view path) const;
  size_t locker_count() const { return lockers_.size(); }
  int lockers_created() const { return lockers_created_; }

  // Quota in units for a uid; 0 if none assigned.
  int64_t QuotaFor(int64_t uid) const;

  // Credentials lookups, as the server would consult for NFS access mapping.
  bool HasCredential(std::string_view login) const;
  const NfsCredential* CredentialFor(std::string_view login) const;

 private:
  int ApplyCredentials(const std::string& contents);
  int ApplyQuotas(const std::string& contents);
  int ApplyDirs(const std::string& contents);

  SimHost* host_;
  std::map<std::string, NfsLocker, std::less<>> lockers_;
  std::map<int64_t, int64_t> quotas_;  // uid -> units
  std::map<std::string, NfsCredential, std::less<>> credentials_;
  int lockers_created_ = 0;
};

// Registers the "update_lockers" exec command on `host`, backed by `server`
// (which must outlive the host's command registry).
void InstallNfsUpdateCommand(SimHost* host, NfsServerSim* server,
                             const std::string& moira_dir = "/site/moira");

}  // namespace moira

#endif  // MOIRA_SRC_NFSD_NFS_SERVER_H_
