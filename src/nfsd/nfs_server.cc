#include "src/nfsd/nfs_server.h"

#include "src/common/strutil.h"

namespace moira {
namespace {

// Applies `fn` to each non-empty line.
template <typename Fn>
int ForEachLine(const std::string& contents, Fn fn) {
  size_t pos = 0;
  while (pos <= contents.size()) {
    size_t eol = contents.find('\n', pos);
    std::string_view line = eol == std::string::npos
                                ? std::string_view(contents).substr(pos)
                                : std::string_view(contents).substr(pos, eol - pos);
    pos = eol == std::string::npos ? contents.size() + 1 : eol + 1;
    line = TrimWhitespace(line);
    if (!line.empty() && !fn(line)) {
      return 1;
    }
  }
  return 0;
}

constexpr char kDefaultCshrc[] = "# Athena default .cshrc\nsource /usr/athena/lib/cshrc\n";
constexpr char kDefaultLogin[] = "# Athena default .login\nsource /usr/athena/lib/login\n";

}  // namespace

int NfsServerSim::ApplyCredentials(const std::string& contents) {
  credentials_.clear();
  return ForEachLine(contents, [&](std::string_view line) {
    std::vector<std::string> fields = Split(std::string(line), ':');
    if (fields.size() < 2) {
      return false;
    }
    std::optional<int64_t> uid = ParseInt(fields[1]);
    if (!uid.has_value()) {
      return false;
    }
    NfsCredential credential;
    credential.uid = *uid;
    for (size_t i = 2; i < fields.size(); ++i) {
      std::optional<int64_t> gid = ParseInt(fields[i]);
      if (!gid.has_value()) {
        return false;
      }
      credential.gids.push_back(*gid);
    }
    credentials_[fields[0]] = std::move(credential);
    return true;
  });
}

int NfsServerSim::ApplyQuotas(const std::string& contents) {
  return ForEachLine(contents, [&](std::string_view line) {
    std::vector<std::string> fields = Split(std::string(line), ' ');
    if (fields.size() != 2) {
      return false;
    }
    std::optional<int64_t> uid = ParseInt(fields[0]);
    std::optional<int64_t> quota = ParseInt(fields[1]);
    if (!uid.has_value() || !quota.has_value()) {
      return false;
    }
    // setquota <quota>
    quotas_[*uid] = *quota;
    return true;
  });
}

int NfsServerSim::ApplyDirs(const std::string& contents) {
  return ForEachLine(contents, [&](std::string_view line) {
    std::vector<std::string> fields = Split(std::string(line), ' ');
    if (fields.size() != 4) {
      return false;
    }
    std::optional<int64_t> uid = ParseInt(fields[1]);
    std::optional<int64_t> gid = ParseInt(fields[2]);
    if (!uid.has_value() || !gid.has_value()) {
      return false;
    }
    const std::string& path = fields[0];
    if (lockers_.contains(path)) {
      return true;  // "If the directory does not already exist..."
    }
    // mkdir, chown, chgrp, chmod.
    NfsLocker locker{path, *uid, *gid, fields[3]};
    lockers_.emplace(path, std::move(locker));
    ++lockers_created_;
    // HOMEDIR lockers are loaded with the default init files.
    if (fields[3] == "HOMEDIR") {
      host_->WriteFileDirect(path + "/.cshrc", kDefaultCshrc);
      host_->WriteFileDirect(path + "/.login", kDefaultLogin);
    }
    return true;
  });
}

int NfsServerSim::ApplyMoiraFiles(const std::string& dir) {
  std::string prefix = dir + "/";
  int status = 0;
  for (const std::string& path : host_->ListFiles()) {
    if (!path.starts_with(prefix)) {
      continue;
    }
    const std::string& contents = *host_->ReadFile(path);
    if (path == prefix + "credentials") {
      status |= ApplyCredentials(contents);
    } else if (path.ends_with(".quotas")) {
      status |= ApplyQuotas(contents);
    } else if (path.ends_with(".dirs")) {
      status |= ApplyDirs(contents);
    }
  }
  return status;
}

const NfsLocker* NfsServerSim::FindLocker(std::string_view path) const {
  auto it = lockers_.find(path);
  return it != lockers_.end() ? &it->second : nullptr;
}

int64_t NfsServerSim::QuotaFor(int64_t uid) const {
  auto it = quotas_.find(uid);
  return it != quotas_.end() ? it->second : 0;
}

bool NfsServerSim::HasCredential(std::string_view login) const {
  return credentials_.contains(login);
}

const NfsCredential* NfsServerSim::CredentialFor(std::string_view login) const {
  auto it = credentials_.find(login);
  return it != credentials_.end() ? &it->second : nullptr;
}

void InstallNfsUpdateCommand(SimHost* host, NfsServerSim* server,
                             const std::string& moira_dir) {
  host->RegisterCommand("update_lockers", [server, moira_dir](SimHost&) {
    return server->ApplyMoiraFiles(moira_dir);
  });
}

}  // namespace moira
