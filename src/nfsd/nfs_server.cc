#include "src/nfsd/nfs_server.h"

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/common/strutil.h"

namespace moira {
namespace {

// Applies `fn` to each non-empty line.
template <typename Fn>
int ForEachLine(const std::string& contents, Fn fn) {
  size_t pos = 0;
  while (pos <= contents.size()) {
    size_t eol = contents.find('\n', pos);
    std::string_view line = eol == std::string::npos
                                ? std::string_view(contents).substr(pos)
                                : std::string_view(contents).substr(pos, eol - pos);
    pos = eol == std::string::npos ? contents.size() + 1 : eol + 1;
    line = TrimWhitespace(line);
    if (!line.empty() && !fn(line)) {
      return 1;
    }
  }
  return 0;
}

constexpr char kDefaultCshrc[] = "# Athena default .cshrc\nsource /usr/athena/lib/cshrc\n";
constexpr char kDefaultLogin[] = "# Athena default .login\nsource /usr/athena/lib/login\n";

}  // namespace

int NfsServerSim::ApplyCredentials(const std::string& contents) {
  credentials_.clear();
  return ForEachLine(contents, [&](std::string_view line) {
    std::vector<std::string> fields = Split(std::string(line), ':');
    if (fields.size() < 2) {
      return false;
    }
    std::optional<int64_t> uid = ParseInt(fields[1]);
    if (!uid.has_value()) {
      return false;
    }
    NfsCredential credential;
    credential.uid = *uid;
    for (size_t i = 2; i < fields.size(); ++i) {
      std::optional<int64_t> gid = ParseInt(fields[i]);
      if (!gid.has_value()) {
        return false;
      }
      credential.gids.push_back(*gid);
    }
    credentials_[fields[0]] = std::move(credential);
    return true;
  });
}

int NfsServerSim::ApplyQuotas(const std::string& partition, const std::string& contents) {
  std::set<int64_t> seen;
  return ForEachLine(contents, [&](std::string_view line) {
    std::vector<std::string> fields = Split(std::string(line), ' ');
    if (fields.size() != 2) {
      return false;
    }
    std::optional<int64_t> uid = ParseInt(fields[0]);
    std::optional<int64_t> quota = ParseInt(fields[1]);
    if (!uid.has_value() || !quota.has_value()) {
      return false;
    }
    if (*quota < 0) {
      return false;  // negative units are malformed, not "no quota"
    }
    if (!seen.insert(*uid).second) {
      return false;  // duplicate uid within one partition file
    }
    // setquota <quota>
    quotas_[*uid] = *quota;
    partition_of_[*uid] = partition;
    return true;
  });
}

int NfsServerSim::ApplyDirs(const std::string& contents) {
  return ForEachLine(contents, [&](std::string_view line) {
    std::vector<std::string> fields = Split(std::string(line), ' ');
    if (fields.size() != 4) {
      return false;
    }
    std::optional<int64_t> uid = ParseInt(fields[1]);
    std::optional<int64_t> gid = ParseInt(fields[2]);
    if (!uid.has_value() || !gid.has_value()) {
      return false;
    }
    const std::string& path = fields[0];
    if (lockers_.contains(path)) {
      return true;  // "If the directory does not already exist..."
    }
    // mkdir, chown, chgrp, chmod.
    NfsLocker locker{path, *uid, *gid, fields[3]};
    lockers_.emplace(path, std::move(locker));
    ++lockers_created_;
    // HOMEDIR lockers are loaded with the default init files.
    if (fields[3] == "HOMEDIR") {
      host_->WriteFileDirect(path + "/.cshrc", kDefaultCshrc);
      host_->WriteFileDirect(path + "/.login", kDefaultLogin);
    }
    return true;
  });
}

int NfsServerSim::ApplyMoiraFiles(const std::string& dir) {
  std::string prefix = dir + "/";
  int status = 0;
  for (const std::string& path : host_->ListFiles()) {
    if (!path.starts_with(prefix)) {
      continue;
    }
    const std::string& contents = *host_->ReadFile(path);
    if (path == prefix + "credentials") {
      status |= ApplyCredentials(contents);
    } else if (path.ends_with(".quotas")) {
      std::string stem =
          path.substr(prefix.size(), path.size() - prefix.size() - 7 /* ".quotas" */);
      status |= ApplyQuotas(stem, contents);
    } else if (path.ends_with(".dirs")) {
      status |= ApplyDirs(contents);
    }
  }
  return status;
}

const NfsLocker* NfsServerSim::FindLocker(std::string_view path) const {
  auto it = lockers_.find(path);
  return it != lockers_.end() ? &it->second : nullptr;
}

std::optional<int64_t> NfsServerSim::QuotaFor(int64_t uid) const {
  auto it = quotas_.find(uid);
  return it != quotas_.end() ? std::optional<int64_t>(it->second) : std::nullopt;
}

int64_t NfsServerSim::UsageFor(int64_t uid) const {
  auto it = usage_.find(uid);
  return it != usage_.end() ? it->second : 0;
}

void NfsServerSim::ChurnUsage(uint64_t seed) {
  SplitMix64 rng(seed);
  for (const auto& [uid, quota] : quotas_) {
    int64_t& used = usage_[uid];
    // Biased toward growth so the population drifts across its soft limits:
    // 70% grow, 20% shrink, 10% idle.  Steps scale with the quota so small
    // and large lockers churn proportionally.
    int64_t step = std::max<int64_t>(int64_t{1}, quota / 8);
    uint64_t roll = rng.Below(10);
    if (roll < 7) {
      used += rng.Between(1, step);
    } else if (roll < 9) {
      used -= rng.Between(1, std::max<int64_t>(int64_t{1}, used / 2));
    }
    used = std::max<int64_t>(int64_t{0}, used);
  }
}

std::vector<UsageReportLine> NfsServerSim::DrainUsageReports() {
  std::vector<UsageReportLine> out;
  for (const auto& [uid, used] : usage_) {
    int64_t& last = reported_[uid];
    if (used == last) {
      continue;
    }
    auto pit = partition_of_.find(uid);
    if (pit == partition_of_.end()) {
      continue;  // usage for a uid that never appeared in a .quotas file
    }
    out.push_back(UsageReportLine{pit->second, uid, used - last, ++report_seq_});
    last = used;
  }
  return out;
}

bool NfsServerSim::HasCredential(std::string_view login) const {
  return credentials_.contains(login);
}

const NfsCredential* NfsServerSim::CredentialFor(std::string_view login) const {
  auto it = credentials_.find(login);
  return it != credentials_.end() ? &it->second : nullptr;
}

void InstallNfsUpdateCommand(SimHost* host, NfsServerSim* server,
                             const std::string& moira_dir) {
  host->RegisterCommand("update_lockers", [server, moira_dir](SimHost&) {
    return server->ApplyMoiraFiles(moira_dir);
  });
}

}  // namespace moira
