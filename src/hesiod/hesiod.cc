#include "src/hesiod/hesiod.h"

#include "src/common/strutil.h"

namespace moira {
namespace {

constexpr int kMaxCnameDepth = 8;

// Splits a record line into whitespace-separated tokens, keeping a trailing
// quoted string as one token (quotes stripped).
bool TokenizeLine(std::string_view line, std::vector<std::string>* tokens) {
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    if (i >= line.size()) {
      break;
    }
    if (line[i] == '"') {
      size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        return false;
      }
      tokens->emplace_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t') {
        ++end;
      }
      tokens->emplace_back(line.substr(i, end - i));
      i = end;
    }
  }
  return true;
}

}  // namespace

int HesiodServer::LoadDb(std::string_view text) {
  int loaded = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos ? text.substr(pos)
                                                          : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line = TrimWhitespace(line);
    if (line.empty() || line[0] == ';') {
      continue;
    }
    std::vector<std::string> tokens;
    if (!TokenizeLine(line, &tokens) || tokens.size() < 4 || tokens[1] != "HS") {
      return -1;
    }
    HesiodRecord record;
    if (tokens[2] == "UNSPECA") {
      record.kind = HesiodRecord::Kind::kUnspecA;
      record.data = tokens[3];
    } else if (tokens[2] == "CNAME") {
      record.kind = HesiodRecord::Kind::kCname;
      record.data = ToLowerCopy(tokens[3]);
    } else {
      return -1;
    }
    records_.emplace(ToLowerCopy(tokens[0]), std::move(record));
    ++loaded;
  }
  return loaded;
}

void HesiodServer::Clear() { records_.clear(); }

std::vector<std::string> HesiodServer::Resolve(std::string_view name,
                                               std::string_view type) const {
  std::string key = ToLowerCopy(std::string(name) + "." + std::string(type));
  std::vector<std::string> out;
  for (int depth = 0; depth < kMaxCnameDepth; ++depth) {
    auto [begin, end] = records_.equal_range(key);
    if (begin == end) {
      return out;
    }
    std::string next_key;
    for (auto it = begin; it != end; ++it) {
      if (it->second.kind == HesiodRecord::Kind::kUnspecA) {
        out.push_back(it->second.data);
      } else if (next_key.empty()) {
        next_key = it->second.data;
      }
    }
    if (!out.empty() || next_key.empty()) {
      return out;
    }
    key = next_key;  // chase the CNAME
  }
  return out;
}

int HesiodServer::Reload(const std::vector<std::string>& db_texts) {
  Clear();
  int total = 0;
  for (const std::string& text : db_texts) {
    int loaded = LoadDb(text);
    if (loaded < 0) {
      return -1;
    }
    total += loaded;
  }
  ++reload_count_;
  return total;
}

}  // namespace moira
