// The Hesiod name server (paper section 5.8.2).
//
// Hesiod serves BIND HS-class records loaded from the .db files Moira
// generates: UNSPECA records carrying quoted string data, and CNAME records
// aliasing one name to another.  The real server loads the files into memory
// at startup and is restarted by the Moira install script after an update;
// this implementation does the same via Reload().
#ifndef MOIRA_SRC_HESIOD_HESIOD_H_
#define MOIRA_SRC_HESIOD_HESIOD_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace moira {

struct HesiodRecord {
  enum class Kind { kUnspecA, kCname };
  Kind kind = Kind::kUnspecA;
  std::string data;  // the quoted payload, or the CNAME target key
};

class HesiodServer {
 public:
  // Parses one .db file's text and merges its records.  Returns the number of
  // records loaded, or -1 on a malformed line.  Lines starting with ';' are
  // comments.  Keys ("name.type") are case-insensitive.
  int LoadDb(std::string_view text);

  // Drops all records (used before re-loading after a Moira update).
  void Clear();

  // Resolves name.type: returns every UNSPECA data string, following CNAME
  // chains (bounded depth to survive cycles).  Empty if no match.
  std::vector<std::string> Resolve(std::string_view name, std::string_view type) const;

  size_t record_count() const { return records_.size(); }
  int reload_count() const { return reload_count_; }

  // Install-script entry point: clears and reloads from the given file texts,
  // bumping reload_count (the "kill and restart the server" of the paper).
  int Reload(const std::vector<std::string>& db_texts);

 private:
  std::multimap<std::string, HesiodRecord> records_;  // key: lowercase name.type
  int reload_count_ = 0;
};

}  // namespace moira

#endif  // MOIRA_SRC_HESIOD_HESIOD_H_
