#include "src/hesiod/resolver.h"

#include "src/krb/kerberos.h"  // PackField/UnpackField datagram helpers

namespace moira {

std::string HesiodProtocolServer::HandleQuery(std::string_view packet) const {
  ++queries_served_;
  std::string_view view = packet;
  std::string name;
  std::string type;
  std::string reply;
  if (!UnpackField(&view, &name) || !UnpackField(&view, &type) || !view.empty()) {
    PackField(&reply, std::to_string(static_cast<uint32_t>(HesiodRcode::kFormErr)));
    return reply;
  }
  std::vector<std::string> answers = server_->Resolve(name, type);
  HesiodRcode rcode = answers.empty() ? HesiodRcode::kNxDomain : HesiodRcode::kNoError;
  PackField(&reply, std::to_string(static_cast<uint32_t>(rcode)));
  for (const std::string& answer : answers) {
    PackField(&reply, answer);
  }
  return reply;
}

HesiodRcode HesiodResolver::Resolve(std::string_view name, std::string_view type,
                                    std::vector<std::string>* answers) const {
  std::string packet;
  PackField(&packet, name);
  PackField(&packet, type);
  std::string reply = transport_(packet);
  std::string_view view = reply;
  std::string rcode_field;
  if (!UnpackField(&view, &rcode_field)) {
    return HesiodRcode::kFormErr;
  }
  answers->clear();
  std::string answer;
  while (UnpackField(&view, &answer)) {
    answers->push_back(std::move(answer));
  }
  if (rcode_field == "0") {
    return HesiodRcode::kNoError;
  }
  if (rcode_field == "3") {
    return HesiodRcode::kNxDomain;
  }
  return HesiodRcode::kFormErr;
}

}  // namespace moira
