// The Hesiod wire interface: hes_resolve(name, type) over a datagram
// exchange, as workstation clients (login, attach, lpr, zhm...) used it.
//
// The real Hesiod rode BIND's class-HS DNS messages; this reproduction keeps
// the request/reply shape — a query for (name, type) answered by zero or
// more strings, with an rcode — over the same counted-field packet framing
// the rest of this codebase uses for datagrams.
#ifndef MOIRA_SRC_HESIOD_RESOLVER_H_
#define MOIRA_SRC_HESIOD_RESOLVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/hesiod/hesiod.h"

namespace moira {

// Reply codes, mirroring DNS rcodes.
enum class HesiodRcode : uint32_t {
  kNoError = 0,
  kFormErr = 1,
  kNxDomain = 3,
};

// Server side: answers one query datagram.
class HesiodProtocolServer {
 public:
  explicit HesiodProtocolServer(const HesiodServer* server) : server_(server) {}

  // Parses a query packet {name, type}, resolves, and returns the reply
  // packet {rcode, answer...}.
  std::string HandleQuery(std::string_view packet) const;

  uint64_t queries_served() const { return queries_served_; }

 private:
  const HesiodServer* server_;
  mutable uint64_t queries_served_ = 0;
};

// Client side: hes_resolve.
class HesiodResolver {
 public:
  // The transport delivers a query datagram and returns the reply (in tests
  // and examples this is simply the server's HandleQuery).
  using Transport = std::function<std::string(std::string_view packet)>;

  explicit HesiodResolver(Transport transport) : transport_(std::move(transport)) {}

  // Resolves name.type.  Returns kNoError and fills `answers`, kNxDomain for
  // no match, kFormErr for a garbled reply.
  HesiodRcode Resolve(std::string_view name, std::string_view type,
                      std::vector<std::string>* answers) const;

 private:
  Transport transport_;
};

}  // namespace moira

#endif  // MOIRA_SRC_HESIOD_RESOLVER_H_
