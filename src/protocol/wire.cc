#include "src/protocol/wire.h"

#include <cstring>

namespace moira {
namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                   static_cast<char>(v >> 8), static_cast<char>(v)};
  out->append(bytes, 4);
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) {
    return false;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(in->data());
  *v = (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
       (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  in->remove_prefix(4);
  return true;
}

void PutCounted(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetCounted(std::string_view* in, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, &len) || in->size() < len) {
    return false;
  }
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

std::string Frame(std::string payload) {
  std::string framed;
  framed.reserve(payload.size() + 4);
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  framed += payload;
  return framed;
}

}  // namespace

std::string EncodeRequest(const MrRequest& request) {
  std::string payload;
  PutU32(&payload, request.version);
  PutU32(&payload, static_cast<uint32_t>(request.major));
  PutU32(&payload, static_cast<uint32_t>(request.args.size()));
  for (const std::string& arg : request.args) {
    PutCounted(&payload, arg);
  }
  return Frame(std::move(payload));
}

std::string EncodeReply(const MrReply& reply) {
  std::string payload;
  PutU32(&payload, reply.version);
  PutU32(&payload, static_cast<uint32_t>(reply.code));
  PutU32(&payload, static_cast<uint32_t>(reply.fields.size()));
  for (const std::string& field : reply.fields) {
    PutCounted(&payload, field);
  }
  return Frame(std::move(payload));
}

std::optional<MrRequest> DecodeRequest(std::string_view payload) {
  MrRequest request;
  uint32_t major = 0;
  uint32_t argc = 0;
  if (!GetU32(&payload, &request.version) || !GetU32(&payload, &major) ||
      !GetU32(&payload, &argc)) {
    return std::nullopt;
  }
  // Each argument needs at least a 4-byte length; an argc beyond what the
  // payload could hold is a garbled or malicious message ("deathgram").
  if (argc > payload.size() / 4) {
    return std::nullopt;
  }
  request.major = static_cast<MajorRequest>(major);
  request.args.reserve(argc);
  for (uint32_t i = 0; i < argc; ++i) {
    std::string arg;
    if (!GetCounted(&payload, &arg)) {
      return std::nullopt;
    }
    request.args.push_back(std::move(arg));
  }
  if (!payload.empty()) {
    return std::nullopt;
  }
  return request;
}

std::optional<MrReply> DecodeReply(std::string_view payload) {
  MrReply reply;
  uint32_t code = 0;
  uint32_t fieldc = 0;
  if (!GetU32(&payload, &reply.version) || !GetU32(&payload, &code) ||
      !GetU32(&payload, &fieldc)) {
    return std::nullopt;
  }
  reply.code = static_cast<int32_t>(code);
  if (fieldc > payload.size() / 4) {
    return std::nullopt;
  }
  reply.fields.reserve(fieldc);
  for (uint32_t i = 0; i < fieldc; ++i) {
    std::string field;
    if (!GetCounted(&payload, &field)) {
      return std::nullopt;
    }
    reply.fields.push_back(std::move(field));
  }
  if (!payload.empty()) {
    return std::nullopt;
  }
  return reply;
}

std::optional<std::string> FrameReader::Next() {
  if (corrupt_) {
    return std::nullopt;
  }
  // Compact lazily once half the buffer is dead.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  std::string_view view(buffer_);
  view.remove_prefix(consumed_);
  uint32_t len = 0;
  std::string_view peek = view;
  if (!GetU32(&peek, &len)) {
    return std::nullopt;
  }
  if (len > kMaxFrame) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (peek.size() < len) {
    return std::nullopt;
  }
  std::string payload(peek.substr(0, len));
  consumed_ += 4 + len;
  return payload;
}

}  // namespace moira
