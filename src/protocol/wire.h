// The Moira protocol (paper section 5.3): a remote procedure call protocol
// layered on top of TCP/IP.
//
// Each request consists of a version number, a major request number, and
// several counted strings of bytes.  Each reply consists of a version, a
// single error code, and zero or more counted strings (one reply message per
// tuple, flagged MR_MORE_DATA, followed by a final reply carrying the overall
// code).  Messages are framed with a 32-bit length for stream transport.
#ifndef MOIRA_SRC_PROTOCOL_WIRE_H_
#define MOIRA_SRC_PROTOCOL_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace moira {

// Protocol version, checked on both sides to handle version skew cleanly.
inline constexpr uint32_t kMrProtocolVersion = 2;

// Major request numbers (paper section 5.3).
enum class MajorRequest : uint32_t {
  kNoop = 0,         // testing and profiling of the RPC layer
  kAuthenticate = 1, // one argument: a Kerberos authenticator (+ client name)
  kQuery = 2,        // query handle name + arguments
  kAccess = 3,       // access check without executing
  kTriggerDcm = 4,   // ask the server to spawn a DCM immediately
  // Replication (src/repl).  kReplFetch streams journal entries from a
  // sequence number: args [replica_name, from_seq, max_entries]; each
  // MR_MORE_DATA tuple is one journal line, the final reply carries
  // [last_seq, primary_time] (MR_REPL_TRUNCATED if from_seq predates the
  // retained log).  kReplSnapshot streams the database: tuples [table, row_line],
  // final reply [snapshot_seq, primary_time].  kQueryAtSeq is a read carrying
  // the client's read-your-writes token: args [min_seq, query, query-args...].
  kReplFetch = 5,
  kReplSnapshot = 6,
  kQueryAtSeq = 7,
  // Quorum replication + failover (src/repl).  kReplPush ships journal
  // entries primary -> replica: args [epoch, line...]; the final reply is
  // [applied_seq, replica_epoch] (MR_REPL_BEHIND when the first line does not
  // extend the replica's applied prefix, MR_REPL_EPOCH when the pusher's
  // epoch is stale).  kReplHello is an unauthenticated liveness/role probe:
  // no args, reply [applied_seq, epoch, writable] — used for heartbeat
  // discovery and primary re-discovery.  kReplVote solicits an election vote:
  // args [epoch, candidate_applied_seq, candidate_name], reply
  // [granted, voter_epoch_floor].  kQueryTagged is a mutation carrying an
  // idempotency tag: args [tag, query, query-args...]; a replayed tag is
  // acknowledged with the original sequence number instead of re-executing.
  kReplPush = 8,
  kReplHello = 9,
  kReplVote = 10,
  kQueryTagged = 11,
};

struct MrRequest {
  uint32_t version = kMrProtocolVersion;
  MajorRequest major = MajorRequest::kNoop;
  std::vector<std::string> args;
};

struct MrReply {
  uint32_t version = kMrProtocolVersion;
  int32_t code = 0;
  std::vector<std::string> fields;
};

// Serializes a request/reply into a framed message (length header included).
std::string EncodeRequest(const MrRequest& request);
std::string EncodeReply(const MrReply& reply);

// Parses a complete message payload (frame header already stripped).
std::optional<MrRequest> DecodeRequest(std::string_view payload);
std::optional<MrReply> DecodeReply(std::string_view payload);

// Incrementally extracts framed messages from a byte stream.  Append received
// bytes with Feed(); Next() returns complete payloads in order.
class FrameReader {
 public:
  // Upper bound on a single frame; larger frames indicate a corrupt or
  // malicious stream ("arbitrary deathgrams", paper section 4).
  static constexpr uint32_t kMaxFrame = 64 * 1024 * 1024;

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  // Returns the next complete message payload, or nullopt if more bytes are
  // needed.  Sets corrupt() on an oversized frame.
  std::optional<std::string> Next();

  bool corrupt() const { return corrupt_; }
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace moira

#endif  // MOIRA_SRC_PROTOCOL_WIRE_H_
