#include "src/net/channel.h"

#include <atomic>

#include "src/comerr/moira_errors.h"
#include "src/protocol/wire.h"

namespace moira {
namespace {

uint64_t NextLoopbackId() {
  // Loopback connections use the high id space so they never collide with
  // TCP connection ids.
  static std::atomic<uint64_t> counter{1ull << 32};
  return counter.fetch_add(1);
}

}  // namespace

LoopbackChannel::LoopbackChannel(MessageHandler* handler)
    : handler_(handler), conn_id_(NextLoopbackId()) {
  handler_->OnConnect(conn_id_, "loopback");
}

LoopbackChannel::~LoopbackChannel() { handler_->OnDisconnect(conn_id_); }

int32_t LoopbackChannel::Send(std::string_view framed) {
  FrameReader reader;
  reader.Feed(framed);
  while (std::optional<std::string> payload = reader.Next()) {
    inbound_ += handler_->OnMessage(conn_id_, *payload);
  }
  if (reader.corrupt()) {
    return MR_ABORTED;
  }
  return MR_SUCCESS;
}

int32_t LoopbackChannel::Recv(std::string* payload) {
  FrameReader reader;
  reader.Feed(std::string_view(inbound_).substr(consumed_));
  std::optional<std::string> next = reader.Next();
  if (!next.has_value()) {
    return MR_ABORTED;
  }
  consumed_ += 4 + next->size();
  if (consumed_ == inbound_.size()) {
    inbound_.clear();
    consumed_ = 0;
  }
  *payload = std::move(*next);
  return MR_SUCCESS;
}

}  // namespace moira
