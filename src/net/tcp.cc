#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "src/comerr/moira_errors.h"

namespace moira {
namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

}  // namespace

TcpServer::TcpServer(MessageHandler* handler, const Clock* clock)
    : handler_(handler), clock_(clock) {}

TcpServer::~TcpServer() { Stop(); }

int32_t TcpServer::Listen(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return errno;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);
  return MR_SUCCESS;
}

void TcpServer::Stop() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [conn_id, conn] : connections_) {
    ::close(conn.fd);
    handler_->OnDisconnect(conn_id);
  }
  connections_.clear();
}

void TcpServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  ::close(it->second.fd);
  connections_.erase(it);
  handler_->OnDisconnect(conn_id);
}

void TcpServer::SweepIdleConnections() {
  if (clock_ == nullptr || idle_timeout_ <= 0) {
    return;
  }
  const UnixTime now = clock_->Now();
  std::vector<uint64_t> stale;
  for (const auto& [conn_id, conn] : connections_) {
    if (now - conn.last_activity > idle_timeout_) {
      stale.push_back(conn_id);
    }
  }
  for (uint64_t conn_id : stale) {
    FlushWrites(conn_id);  // drain any pending reply before hanging up
    CloseConnection(conn_id);
    ++idle_closes_;
  }
}

void TcpServer::FlushWrites(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  Connection& conn = it->second;
  while (conn.out_consumed < conn.outbound.size()) {
    ssize_t n = ::send(conn.fd, conn.outbound.data() + conn.out_consumed,
                       conn.outbound.size() - conn.out_consumed, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_consumed += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // try again on the next poll round
    }
    CloseConnection(conn_id);
    return;
  }
  if (conn.out_consumed == conn.outbound.size()) {
    conn.outbound.clear();
    conn.out_consumed = 0;
  }
}

int TcpServer::Poll(int timeout_ms) {
  if (listen_fd_ < 0) {
    return -1;
  }
  std::vector<pollfd> fds;
  std::vector<uint64_t> ids;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  ids.push_back(0);
  for (const auto& [conn_id, conn] : connections_) {
    short events = POLLIN;
    if (conn.out_consumed < conn.outbound.size()) {
      events |= POLLOUT;
    }
    fds.push_back(pollfd{conn.fd, events, 0});
    ids.push_back(conn_id);
  }
  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  // Idle connections produce no poll events, so the sweep must run even on a
  // timeout round.
  SweepIdleConnections();
  if (ready <= 0) {
    return ready;
  }
  int handled = 0;
  // Accept new connections.
  if ((fds[0].revents & POLLIN) != 0) {
    while (true) {
      sockaddr_in peer{};
      socklen_t len = sizeof(peer);
      int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
      if (fd < 0) {
        break;
      }
      if (max_connections_ != 0 && connections_.size() >= max_connections_) {
        // Shed gracefully: the client sees an orderly EOF instead of hanging
        // in the listen backlog behind a full server.
        ::close(fd);
        ++shed_connections_;
        ++handled;
        continue;
      }
      SetNonBlocking(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      uint64_t conn_id = next_conn_id_++;
      char ip[INET_ADDRSTRLEN] = {0};
      ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
      std::string peer_name = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
      connections_[conn_id] =
          Connection{fd, FrameReader(), "", 0, peer_name,
                     clock_ != nullptr ? clock_->Now() : 0};
      handler_->OnConnect(conn_id, peer_name);
      ++handled;
    }
  }
  // Drain every readable connection first, collecting complete frames into
  // one batch, then dispatch the whole round at once: OnMessageBatch lets the
  // handler execute independent read-only requests concurrently.  Replies are
  // written back in batch order, so each connection sees its replies in the
  // order it sent the requests.
  std::vector<MessageHandler::BatchItem> batch;
  struct Drained {
    uint64_t conn_id;
    bool close_after;
  };
  std::vector<Drained> drained;
  for (size_t i = 1; i < fds.size(); ++i) {
    uint64_t conn_id = ids[i];
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) {
      continue;
    }
    if ((fds[i].revents & (POLLERR | POLLHUP)) != 0 && (fds[i].revents & POLLIN) == 0) {
      CloseConnection(conn_id);
      ++handled;
      continue;
    }
    bool close_after = false;
    if ((fds[i].revents & POLLIN) != 0) {
      char buf[16384];
      bool closed = false;
      while (true) {
        ssize_t n = ::recv(it->second.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          it->second.reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
          if (clock_ != nullptr) {
            it->second.last_activity = clock_->Now();
          }
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        }
        closed = true;
        break;
      }
      while (std::optional<std::string> payload = it->second.reader.Next()) {
        batch.push_back(MessageHandler::BatchItem{conn_id, std::move(*payload), {}});
      }
      close_after = it->second.reader.corrupt() || closed;
      ++handled;
    }
    drained.push_back(Drained{conn_id, close_after});
  }
  if (!batch.empty()) {
    handler_->OnMessageBatch(&batch);
    for (MessageHandler::BatchItem& item : batch) {
      if (auto it = connections_.find(item.conn_id); it != connections_.end()) {
        it->second.outbound += item.reply;
      }
    }
  }
  for (const Drained& d : drained) {
    FlushWrites(d.conn_id);
    if (d.close_after) {
      CloseConnection(d.conn_id);
    }
  }
  return handled;
}

TcpChannel::~TcpChannel() { Close(); }

int32_t TcpChannel::Connect(uint16_t port) {
  if (fd_ >= 0) {
    return MR_ALREADY_CONNECTED;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return errno;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    Close();
    return err;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return MR_SUCCESS;
}

void TcpChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int32_t TcpChannel::Send(std::string_view framed) {
  if (fd_ < 0) {
    return MR_NOT_CONNECTED;
  }
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return MR_ABORTED;
    }
    sent += static_cast<size_t>(n);
  }
  return MR_SUCCESS;
}

int32_t TcpChannel::Recv(std::string* payload) {
  if (fd_ < 0) {
    return MR_NOT_CONNECTED;
  }
  while (true) {
    if (std::optional<std::string> next = reader_.Next()) {
      *payload = std::move(*next);
      return MR_SUCCESS;
    }
    if (reader_.corrupt()) {
      return MR_ABORTED;
    }
    char buf[16384];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      return MR_ABORTED;
    }
    reader_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

}  // namespace moira
