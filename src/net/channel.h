// Transport abstractions for the Moira RPC layer.
//
// The paper builds its RPC on the GDB library over BSD non-blocking TCP
// (section 5.4).  Here the server consumes framed messages through a
// MessageHandler, pumped either by the poll(2)-based TcpServer or directly by
// the in-process LoopbackChannel (which tests and benches use to run
// hermetically).
#ifndef MOIRA_SRC_NET_CHANNEL_H_
#define MOIRA_SRC_NET_CHANNEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace moira {

// Client side of a message stream.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  // Sends one framed message.  Returns MR_SUCCESS or MR_ABORTED.
  virtual int32_t Send(std::string_view framed) = 0;

  // Receives the next message payload (frame header stripped).  Returns
  // MR_SUCCESS or MR_ABORTED.
  virtual int32_t Recv(std::string* payload) = 0;
};

// Server side: consumes request payloads, returns framed reply bytes (a
// single request may produce several reply frames — tuple streaming).
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;

  virtual std::string OnMessage(uint64_t conn_id, std::string_view payload) = 0;

  // One request collected by a batching transport round.
  struct BatchItem {
    uint64_t conn_id = 0;
    std::string payload;
    std::string reply;  // filled in by OnMessageBatch
  };

  // Processes one transport round's worth of requests.  The default forwards
  // each item to OnMessage in arrival order; handlers that can execute
  // read-only requests concurrently override this (MoiraServer).  The filled
  // replies must be indistinguishable from the sequential OnMessage loop —
  // the transport writes them back in batch order, so per-connection reply
  // order is preserved regardless of execution order.
  virtual void OnMessageBatch(std::vector<BatchItem>* batch) {
    for (BatchItem& item : *batch) {
      item.reply = OnMessage(item.conn_id, item.payload);
    }
  }

  virtual void OnConnect(uint64_t conn_id, std::string peer) {
    (void)conn_id;
    (void)peer;
  }
  virtual void OnDisconnect(uint64_t conn_id) { (void)conn_id; }
};

// In-process channel: Send() synchronously dispatches into the handler and
// queues its replies for Recv().
class LoopbackChannel final : public ClientChannel {
 public:
  explicit LoopbackChannel(MessageHandler* handler);
  ~LoopbackChannel() override;

  int32_t Send(std::string_view framed) override;
  int32_t Recv(std::string* payload) override;

  uint64_t conn_id() const { return conn_id_; }

 private:
  MessageHandler* handler_;
  uint64_t conn_id_;
  std::string inbound_;   // frames queued for Recv
  size_t consumed_ = 0;
};

}  // namespace moira

#endif  // MOIRA_SRC_NET_CHANNEL_H_
