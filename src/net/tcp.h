// TCP transport: a single-process, poll(2)-multiplexed server and a blocking
// client channel.
//
// This reproduces the GDB model of paper section 5.4: one UNIX process
// listening on a well-known port, making progress reading new RPC requests
// and sending old replies simultaneously via non-blocking I/O.
#ifndef MOIRA_SRC_NET_TCP_H_
#define MOIRA_SRC_NET_TCP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/net/channel.h"
#include "src/protocol/wire.h"

namespace moira {

class TcpServer {
 public:
  explicit TcpServer(MessageHandler* handler);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds and listens on 127.0.0.1:`port` (0 = ephemeral).  Returns MR_SUCCESS
  // or an errno-based code.
  int32_t Listen(uint16_t port);

  // The bound port (valid after Listen).
  uint16_t port() const { return port_; }

  // Processes pending I/O, waiting up to `timeout_ms`.  Returns the number of
  // events handled, or -1 after Stop()/fatal error.
  int Poll(int timeout_ms);

  void Stop();

  size_t connection_count() const { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbound;   // bytes not yet written
    size_t out_consumed = 0;
    std::string peer;
  };

  void CloseConnection(uint64_t conn_id);
  void FlushWrites(uint64_t conn_id);

  MessageHandler* handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, Connection> connections_;
};

// Blocking client channel over TCP.
class TcpChannel final : public ClientChannel {
 public:
  TcpChannel() = default;
  ~TcpChannel() override;

  // Connects to 127.0.0.1:`port`.  Returns MR_SUCCESS or an errno code.
  int32_t Connect(uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  int32_t Send(std::string_view framed) override;
  int32_t Recv(std::string* payload) override;

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace moira

#endif  // MOIRA_SRC_NET_TCP_H_
