// TCP transport: a single-process, poll(2)-multiplexed server and a blocking
// client channel.
//
// This reproduces the GDB model of paper section 5.4: one UNIX process
// listening on a well-known port, making progress reading new RPC requests
// and sending old replies simultaneously via non-blocking I/O.
#ifndef MOIRA_SRC_NET_TCP_H_
#define MOIRA_SRC_NET_TCP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/common/clock.h"
#include "src/net/channel.h"
#include "src/protocol/wire.h"

namespace moira {

class TcpServer {
 public:
  // The clock, when provided, drives the idle-connection sweep; without one
  // idle timeouts are disabled regardless of set_idle_timeout.
  explicit TcpServer(MessageHandler* handler, const Clock* clock = nullptr);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds and listens on 127.0.0.1:`port` (0 = ephemeral).  Returns MR_SUCCESS
  // or an errno-based code.
  int32_t Listen(uint16_t port);

  // The bound port (valid after Listen).
  uint16_t port() const { return port_; }

  // Processes pending I/O, waiting up to `timeout_ms`.  Returns the number of
  // events handled, or -1 after Stop()/fatal error.
  int Poll(int timeout_ms);

  void Stop();

  size_t connection_count() const { return connections_.size(); }

  // Connections idle (no bytes received) for more than this many seconds are
  // closed during Poll.  0 disables the sweep (the default).
  void set_idle_timeout(UnixTime seconds) { idle_timeout_ = seconds; }

  // Cap on concurrent connections; excess accepts are shed gracefully — the
  // connection is accepted and immediately closed, so the client observes EOF
  // rather than hanging in the listen backlog.  0 means unlimited.
  void set_max_connections(size_t cap) { max_connections_ = cap; }

  int idle_closes() const { return idle_closes_; }
  int shed_connections() const { return shed_connections_; }

 private:
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbound;   // bytes not yet written
    size_t out_consumed = 0;
    std::string peer;
    UnixTime last_activity = 0;
  };

  void CloseConnection(uint64_t conn_id);
  void FlushWrites(uint64_t conn_id);
  void SweepIdleConnections();

  MessageHandler* handler_;
  const Clock* clock_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;
  UnixTime idle_timeout_ = 0;
  size_t max_connections_ = 0;
  int idle_closes_ = 0;
  int shed_connections_ = 0;
  std::map<uint64_t, Connection> connections_;
};

// Blocking client channel over TCP.
class TcpChannel final : public ClientChannel {
 public:
  TcpChannel() = default;
  ~TcpChannel() override;

  // Connects to 127.0.0.1:`port`.  Returns MR_SUCCESS or an errno code.
  int32_t Connect(uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  int32_t Send(std::string_view framed) override;
  int32_t Recv(std::string* payload) override;

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace moira

#endif  // MOIRA_SRC_NET_TCP_H_
