// dbck — the database consistency checker (paper section 5.9.1: "a complete
// set of recovery tools" for bringing Moira up with consistent data after a
// catastrophic crash; the production system shipped exactly such a tool).
//
// Check() walks every cross-relation reference in the section 6 schema and
// reports violations; Repair() removes dangling references and recomputes
// derived values (nfsphys.allocated), the automatable subset of the manual
// intervention the paper anticipates.
#ifndef MOIRA_SRC_BACKUP_DBCK_H_
#define MOIRA_SRC_BACKUP_DBCK_H_

#include <string>
#include <vector>

#include "src/core/context.h"

namespace moira {

struct DbckIssue {
  std::string table;        // relation the problem lives in
  std::string description;  // human-readable finding
  bool repairable = false;  // whether Repair() can fix it mechanically
};

class DbConsistencyChecker {
 public:
  explicit DbConsistencyChecker(MoiraContext* mc) : mc_(mc) {}

  // Runs every check; an empty result means the database is consistent.
  std::vector<DbckIssue> Check();

  // Fixes the repairable findings: deletes dangling membership, quota,
  // usage, mcmap, svc, serverhost, and capacls rows; clears poboxes pointing
  // at missing machines; recomputes partition allocations, quota soft-limit
  // clamps, and the quotarollup aggregates.  Returns the number of repairs
  // applied; with `log` given, one line is appended per repair (the
  // per-violation repair report).  Idempotent: a second run repairs nothing.
  int Repair(std::vector<std::string>* log = nullptr);

 private:
  void CheckUsers(std::vector<DbckIssue>* issues);
  void CheckLists(std::vector<DbckIssue>* issues);
  void CheckMembers(std::vector<DbckIssue>* issues);
  void CheckMachinesAndClusters(std::vector<DbckIssue>* issues);
  void CheckFilesys(std::vector<DbckIssue>* issues);
  void CheckQuotasAndAllocation(std::vector<DbckIssue>* issues);
  void CheckQuotaUsage(std::vector<DbckIssue>* issues);
  void CheckServerHosts(std::vector<DbckIssue>* issues);
  void CheckAcls(std::vector<DbckIssue>* issues);

  bool UserIdExists(int64_t users_id);
  bool ListIdExists(int64_t list_id);
  bool MachineIdExists(int64_t mach_id);
  bool StringIdExists(int64_t string_id);

  MoiraContext* mc_;
};

}  // namespace moira

#endif  // MOIRA_SRC_BACKUP_DBCK_H_
