#include "src/backup/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace moira {

namespace fs = std::filesystem;

bool CheckpointManager::Write(const Database& db, const std::string& root, uint64_t seq) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return false;
  }
  const fs::path final_dir = fs::path(root) / CheckpointDirName(seq);
  if (fs::exists(final_dir, ec)) {
    return false;
  }
  const fs::path tmp_dir = fs::path(root) / kCheckpointTempName;
  fs::remove_all(tmp_dir, ec);  // a crashed writer's leftovers
  if (BackupManager::Dump(db, tmp_dir) < 0) {
    return false;
  }
  {
    // The stamp is written last: a tmp directory without it (or a renamed
    // directory whose stamp disagrees) is never treated as a checkpoint.
    std::ofstream stamp(tmp_dir / kCheckpointStampName, std::ios::trunc);
    if (!stamp) {
      return false;
    }
    stamp << seq << '\n';
    stamp.flush();
    if (!stamp) {
      return false;
    }
  }
  fs::rename(tmp_dir, final_dir, ec);
  return !ec;
}

std::vector<CheckpointRef> CheckpointManager::List(const std::string& root) {
  return ListCheckpoints(root);
}

std::optional<CheckpointRef> CheckpointManager::Latest(const std::string& root) {
  std::vector<CheckpointRef> all = ListCheckpoints(root);
  if (all.empty()) {
    return std::nullopt;
  }
  return all.back();
}

std::optional<CheckpointRef> CheckpointManager::LatestAtOrBefore(const std::string& root,
                                                                 uint64_t through_seq) {
  std::optional<CheckpointRef> best;
  for (const CheckpointRef& checkpoint : ListCheckpoints(root)) {
    if (checkpoint.seq <= through_seq) {
      best = checkpoint;
    }
  }
  return best;
}

bool CheckpointManager::Load(Database* db, const CheckpointRef& checkpoint) {
  db->ClearAllRows();
  if (BackupManager::Restore(db, checkpoint.path) != MR_SUCCESS) {
    db->ClearAllRows();
    return false;
  }
  return true;
}

int CheckpointManager::Prune(const std::string& root, int keep) {
  if (keep < 1) {
    keep = 1;
  }
  std::error_code ec;
  fs::remove_all(fs::path(root) / kCheckpointTempName, ec);
  std::vector<CheckpointRef> all = ListCheckpoints(root);
  int removed = 0;
  for (size_t i = 0; i + static_cast<size_t>(keep) < all.size(); ++i) {
    fs::remove_all(all[i].path, ec);
    if (!ec) {
      ++removed;
    }
  }
  return removed;
}

CheckpointSummary RunCheckpointPass(const Database& db, Journal* journal,
                                    const CheckpointPolicy& policy) {
  CheckpointSummary summary;
  const std::string& root = journal->directory();
  if (root.empty()) {
    return summary;
  }
  const uint64_t seq = journal->last_seq();
  std::optional<CheckpointRef> latest = CheckpointManager::Latest(root);
  const uint64_t floor = std::max<uint64_t>(policy.min_new_entries, 1);
  if (latest.has_value() && seq < latest->seq + floor) {
    return summary;  // not enough new entries to be worth a pass
  }
  if (!CheckpointManager::Write(db, root, seq)) {
    return summary;
  }
  summary.ran = true;
  summary.seq = seq;
  journal->Rotate();
  const size_t segments_before = journal->segments().size();
  const uint64_t cut = seq > policy.grace_entries ? seq - policy.grace_entries : 0;
  summary.entries_truncated = journal->TruncateThrough(cut);
  summary.segments_retired = segments_before - journal->segments().size();
  summary.checkpoints_pruned = CheckpointManager::Prune(root, policy.keep);
  return summary;
}

void ScheduleCheckpoints(CronScheduler* cron, const Database* db, Journal* journal,
                         UnixTime interval, CheckpointPolicy policy,
                         CheckpointSummary* last) {
  cron->Schedule("checkpoint", interval, [db, journal, policy, last]() {
    CheckpointSummary summary = RunCheckpointPass(*db, journal, policy);
    if (last != nullptr) {
      *last = summary;
    }
  });
}

namespace {

// entries must start at checkpoint_seq + 1 (when any exist below it on disk
// the range is gapped) and be contiguous; otherwise replay would silently
// skip committed changes.
bool TailIsContiguous(const std::vector<JournalEntry>& entries, uint64_t checkpoint_seq) {
  uint64_t expect = checkpoint_seq;
  for (const JournalEntry& entry : entries) {
    if (entry.seq != expect + 1) {
      return false;
    }
    expect = entry.seq;
  }
  return true;
}

}  // namespace

std::optional<RecoveryResult> RecoverServerState(MoiraContext* mc,
                                                 SimulatedClock* replay_clock,
                                                 Journal* journal,
                                                 const std::string& root) {
  RecoveryResult result;
  std::optional<CheckpointRef> latest = CheckpointManager::Latest(root);
  if (latest.has_value()) {
    if (!CheckpointManager::Load(&mc->db(), *latest)) {
      return std::nullopt;
    }
    result.checkpoint_seq = latest->seq;
  }
  std::error_code ec;
  fs::remove_all(fs::path(root) / kCheckpointTempName, ec);  // crashed writer
  const int loaded = journal->AttachDirectory(root, result.checkpoint_seq);
  if (loaded < 0) {
    return std::nullopt;
  }
  result.entries_loaded = loaded;
  const std::vector<JournalEntry>& tail = journal->entries();
  if (!TailIsContiguous(tail, result.checkpoint_seq)) {
    return std::nullopt;
  }
  const UnixTime before = replay_clock != nullptr ? replay_clock->Now() : 0;
  result.entries_replayed = BackupManager::ReplayJournal(mc, tail, replay_clock);
  if (replay_clock != nullptr && before > replay_clock->Now()) {
    replay_clock->Set(before);  // replay never moves the clock backwards
  }
  result.last_seq = journal->last_seq();
  return result;
}

std::optional<RecoveryResult> RestoreToSeq(MoiraContext* mc,
                                           SimulatedClock* replay_clock,
                                           const std::string& root,
                                           uint64_t target_seq) {
  RecoveryResult result;
  std::optional<CheckpointRef> checkpoint =
      CheckpointManager::LatestAtOrBefore(root, target_seq);
  if (checkpoint.has_value()) {
    if (!CheckpointManager::Load(&mc->db(), *checkpoint)) {
      return std::nullopt;
    }
    result.checkpoint_seq = checkpoint->seq;
  }
  std::optional<std::vector<JournalEntry>> tail =
      Journal::ReadRange(root, result.checkpoint_seq, target_seq);
  if (!tail.has_value()) {
    return std::nullopt;
  }
  result.entries_loaded = static_cast<int>(tail->size());
  if (!TailIsContiguous(*tail, result.checkpoint_seq)) {
    return std::nullopt;
  }
  const UnixTime before = replay_clock != nullptr ? replay_clock->Now() : 0;
  result.entries_replayed = BackupManager::ReplayJournal(mc, *tail, replay_clock);
  if (replay_clock != nullptr && before > replay_clock->Now()) {
    replay_clock->Set(before);
  }
  result.last_seq = tail->empty() ? result.checkpoint_seq : tail->back().seq;
  return result;
}

}  // namespace moira
