#include "src/backup/backup.h"

#include <fstream>

#include "src/common/strutil.h"
#include "src/core/registry.h"
#include "src/server/journal.h"

namespace moira {

std::string BackupManager::RowToLine(const Row& row) {
  std::string line;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i != 0) {
      line += ':';
    }
    line += JournalEscape(row[i].ToString());
  }
  line += '\n';
  return line;
}

bool BackupManager::LineToRow(const std::string& line, const TableSchema& schema, Row* row) {
  std::string_view view(line);
  while (!view.empty() && (view.back() == '\n' || view.back() == '\r')) {
    view.remove_suffix(1);
  }
  std::vector<std::string> fields = SplitEscaped(view);
  if (fields.size() != schema.columns.size()) {
    return false;
  }
  row->clear();
  row->reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    if (schema.columns[i].type == ColumnType::kInt) {
      std::optional<int64_t> v = ParseInt(fields[i]);
      if (!v.has_value()) {
        return false;
      }
      row->emplace_back(*v);
    } else {
      row->emplace_back(std::move(fields[i]));
    }
  }
  return true;
}

int64_t BackupManager::Dump(const Database& db, const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return -1;
  }
  int64_t total = 0;
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name);
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    if (!out) {
      return -1;
    }
    table->Scan([&](size_t, const Row& row) {
      std::string line = RowToLine(row);
      out << line;
      total += static_cast<int64_t>(line.size());
      return true;
    });
  }
  return total;
}

int32_t BackupManager::Restore(Database* db, const std::filesystem::path& dir) {
  for (const std::string& name : db->TableNames()) {
    Table* table = db->GetTable(name);
    if (table->LiveCount() != 0) {
      return MR_INTERNAL;  // restore requires an initialized empty database
    }
    std::ifstream in(dir / name, std::ios::binary);
    if (!in) {
      continue;  // a missing file restores as an empty relation
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      Row row;
      if (!LineToRow(line, table->schema(), &row)) {
        return MR_INTERNAL;
      }
      table->Append(std::move(row));
    }
  }
  return MR_SUCCESS;
}

int64_t BackupManager::RotateAndDump(const Database& db,
                                     const std::filesystem::path& root) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  std::filesystem::remove_all(root / "backup_3", ec);
  if (std::filesystem::exists(root / "backup_2")) {
    std::filesystem::rename(root / "backup_2", root / "backup_3", ec);
  }
  if (std::filesystem::exists(root / "backup_1")) {
    std::filesystem::rename(root / "backup_1", root / "backup_2", ec);
  }
  return Dump(db, root / "backup_1");
}

int BackupManager::ReplayJournal(MoiraContext* mc, const std::vector<JournalEntry>& entries,
                                 SimulatedClock* replay_clock) {
  int replayed = 0;
  for (const JournalEntry& entry : entries) {
    if (replay_clock != nullptr) {
      replay_clock->Set(entry.when);
    }
    const std::string& principal = entry.principal.empty() ? "root" : entry.principal;
    const std::string& client = entry.client.empty() ? "journal-replay" : entry.client;
    int32_t code = QueryRegistry::Instance().Execute(*mc, principal, client, entry.query,
                                                     entry.args, [](Tuple) {});
    if (code == MR_SUCCESS) {
      ++replayed;
    }
  }
  return replayed;
}

std::string BackupManager::DumpToString(const Database& db) {
  std::string out;
  for (const std::string& name : db.TableNames()) {
    out += "table ";
    out += name;
    out += '\n';
    db.GetTable(name)->Scan([&](size_t, const Row& row) {
      out += RowToLine(row);
      return true;
    });
  }
  return out;
}

}  // namespace moira
